//! Numeric factorization: the task bodies and their execution over the
//! three runtimes (§V of the paper).
//!
//! * **panel(c)** — factorize the diagonal block (POTRF / LDLᵀ / static-
//!   pivot GETRF) and apply it to the panel's off-diagonal blocks (TRSM);
//! * **update(c, b)** — apply the outer product of block `b` with the
//!   sub-panel at-and-below `b` to the facing panel (the sparse GEMM,
//!   buffer-then-scatter on CPUs).
//!
//! The LDLᵀ kernels reproduce the paper's §V-A observation: the native
//! engine materializes `D·Lᵀ` once per 1D task in a per-worker buffer so
//! updates are plain GEMMs, while the generic runtimes "perform the full
//! LDLᵀ operation at each update" — the reason PaStiX wins on `pmlDF` and
//! `Serena`.

use crate::analysis::Analysis;
use crate::coeftab::CoefTab;
use crate::tasks::{OneDGraph, TaskGraph, TaskKind};
use crate::SolverError;
use dagfact_kernels::gemm::{gemm, Trans};
use dagfact_kernels::trsm::{trsm, Diag, Side, Uplo};
use dagfact_kernels::update::{update_via_buffer, Scatter};
use dagfact_kernels::{getrf, ldlt, ldlt_apply_diag, potrf, KernelError, Scalar};
use dagfact_rt::dataflow::DataflowGraph;
use dagfact_rt::native::{run_native_checked, NativeTask};
use dagfact_rt::ptg::{run_ptg_checked, PtgProgram};
use dagfact_rt::sync::Mutex;
use dagfact_rt::{
    AccessMode, EngineError, FaultPlan, RunConfig, RunReport, RuntimeKind, SharedSlice,
};
use dagfact_sparse::CscMatrix;
use dagfact_symbolic::FactoKind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Per-worker scratch memory ("constant memory overhead per working
/// thread", §V-B).
#[derive(Default)]
struct Workspace<T> {
    /// GEMM result buffer (buffer-then-scatter strategy).
    tmp: Vec<T>,
    /// Copy of the diagonal block for aliasing-free TRSM.
    diag: Vec<T>,
    /// Row scatter map (destination storage rows).
    row_map: Vec<usize>,
    /// Global row index of each mapped row (LU's U-side scatter needs to
    /// know which rows fall inside the destination's diagonal block).
    row_glob: Vec<usize>,
}

/// Everything the task bodies need, shared across workers.
struct NumericCtx<'a, T: Scalar> {
    analysis: &'a Analysis,
    tab: &'a CoefTab<T>,
    /// LDLᵀ diagonal (length n; unused otherwise).
    d: &'a SharedSlice<T>,
    /// Absolute static-pivot threshold.
    threshold: f64,
    /// Fault-injection plan for NaN output corruption (testing).
    fault: Option<Arc<FaultPlan>>,
    pivots_repaired: AtomicUsize,
    /// First kernel error; once set, remaining tasks no-op.
    error: Mutex<Option<KernelError>>,
    workspaces: Vec<Mutex<Workspace<T>>>,
    /// Per-panel accumulation locks for the native engine: the coarse 1D
    /// DAG orders every updater *before* its target's 1D task but not the
    /// updaters of a common target against each other (fan-in from
    /// disjoint subtrees), so their scatter-adds are serialized here —
    /// PaStiX's per-cblk mutex. The verifier models these accesses as
    /// `Mode::Accum`: commutative, mutually excluded. The fine-grained
    /// engines order updates by dependency edges and skip the lock.
    panel_locks: Vec<Mutex<()>>,
}

impl<'a, T: Scalar> NumericCtx<'a, T> {
    fn failed(&self) -> bool {
        self.error.lock().is_some()
    }

    fn record_error(&self, e: KernelError) {
        let mut guard = self.error.lock();
        if guard.is_none() {
            *guard = Some(e);
        }
    }

    // ------------------------------------------------------------------
    // Panel task
    // ------------------------------------------------------------------

    /// Factorize panel `c` in place and solve its off-diagonal blocks.
    fn panel_task(&self, c: usize, worker: usize) {
        if self.failed() {
            return;
        }
        let symbol = &self.analysis.symbol;
        let cb = &symbol.cblks[c];
        let (w, stride) = (cb.width(), cb.stride);
        let below = stride - w;
        let range = self.tab.layout.panel_range(symbol, c);
        // SAFETY: the DAG gives panel(c) exclusive access to panel c.
        let l = unsafe { self.tab.lcoef.range_mut(range.clone()) };
        let mut ws = self.workspaces[worker].lock();
        let result: Result<(), KernelError> = (|| {
            match self.analysis.facto {
                FactoKind::Cholesky => {
                    potrf(w, l, stride)?;
                    if below > 0 {
                        copy_lower_triangle(l, stride, w, &mut ws.diag);
                        trsm(
                            Side::Right,
                            Uplo::Lower,
                            Trans::Trans,
                            Diag::NonUnit,
                            below,
                            w,
                            &ws.diag,
                            w,
                            &mut l[w..],
                            stride,
                        );
                    }
                }
                FactoKind::Ldlt => {
                    // SAFETY: panel(c) owns the d-range of its columns.
                    let d = unsafe { self.d.range_mut(cb.fcol..cb.lcol) };
                    let repaired = ldlt(w, l, stride, d, self.threshold)?;
                    self.pivots_repaired.fetch_add(repaired, Ordering::Relaxed);
                    if below > 0 {
                        copy_lower_triangle(l, stride, w, &mut ws.diag);
                        trsm(
                            Side::Right,
                            Uplo::Lower,
                            Trans::Trans,
                            Diag::Unit,
                            below,
                            w,
                            &ws.diag,
                            w,
                            &mut l[w..],
                            stride,
                        );
                        ldlt_apply_diag(below, w, d, &mut l[w..], stride);
                    }
                }
                FactoKind::Lu => {
                    let stats = getrf(w, l, stride, self.threshold)?;
                    self.pivots_repaired.fetch_add(stats.repaired, Ordering::Relaxed);
                    // SAFETY: panel(c) also owns its U panel.
                    let u = unsafe { self.tab.ucoef.range_mut(range) };
                    if below > 0 {
                        copy_full_block(l, stride, w, &mut ws.diag);
                        // L side: A_ik ← A_ik · U_kk⁻¹.
                        trsm(
                            Side::Right,
                            Uplo::Upper,
                            Trans::NoTrans,
                            Diag::NonUnit,
                            below,
                            w,
                            &ws.diag,
                            w,
                            &mut l[w..],
                            stride,
                        );
                        // U side (stored transposed): Uᵀ ← Uᵀ · L_kk⁻ᵀ.
                        trsm(
                            Side::Right,
                            Uplo::Lower,
                            Trans::Trans,
                            Diag::Unit,
                            below,
                            w,
                            &ws.diag,
                            w,
                            &mut u[w..],
                            stride,
                        );
                    }
                }
            }
            Ok(())
        })();
        match result {
            Err(e) => self.record_error(e),
            Ok(()) => {
                // Fault injection: corrupt this panel's output with a NaN
                // so the post-factorization sweep (and downstream pivot
                // checks) can be exercised deterministically.
                if let Some(plan) = &self.fault {
                    if plan.take_corruption(c) {
                        l[0] = T::from_f64(f64::NAN);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Update task
    // ------------------------------------------------------------------

    /// Apply update task of global block `bi` from panel `c` onto its
    /// facing panel. `dlt` optionally carries the native engine's
    /// precomputed `D·Lᵀ` panel (k × below, column per source row).
    /// `lock_target` must be true when the caller's DAG does not order
    /// updates into a common target against each other (the native 1D
    /// graph): the write then becomes a lock-protected accumulation.
    fn update_task(&self, c: usize, bi: usize, worker: usize, dlt: Option<&[T]>, lock_target: bool) {
        if self.failed() {
            return;
        }
        let symbol = &self.analysis.symbol;
        let cb = &symbol.cblks[c];
        let block = &symbol.blocks[bi];
        let j = block.facing;
        let tcb = &symbol.cblks[j];
        let k = cb.width();
        let n = block.nrows();
        let m = cb.stride - block.local_offset;
        let src = self.tab.layout.panel_range(symbol, c);
        let dst = self.tab.layout.panel_range(symbol, j);
        let mut ws = self.workspaces[worker].lock();
        let ws = &mut *ws;
        build_row_map(symbol, c, bi, j, &mut ws.row_map, &mut ws.row_glob);
        let scatter = Scatter {
            row_map: &ws.row_map,
            col_offset: block.frow - tcb.fcol,
        };
        // Serialize concurrent accumulations into panel j (native engine
        // only; see `panel_locks`). Taken before the destination borrow so
        // two updaters never hold overlapping `&mut` views.
        let _accum_guard = lock_target.then(|| self.panel_locks[j].lock());
        // SAFETY: the DAG guarantees panel c is read-only here, and either
        // serializes updates into panel j (fine-grained engines) or the
        // accumulation lock above excludes concurrent updaters (native);
        // the two panels are disjoint ranges.
        let (lsrc, ldst) = unsafe { self.tab.lcoef.disjoint_pair(src.clone(), dst.clone()) };
        let a1 = &lsrc[block.local_offset..];
        let a2 = &lsrc[block.local_offset..];
        match self.analysis.facto {
            FactoKind::Cholesky => {
                update_via_buffer(
                    m, n, k,
                    -T::one(),
                    a1, cb.stride,
                    a2, cb.stride,
                    None,
                    &mut ws.tmp,
                    ldst, tcb.stride,
                    scatter,
                );
            }
            FactoKind::Ldlt => {
                match dlt {
                    Some(w_panel) => {
                        // Native path: W = D·Lᵀ was built once per panel;
                        // pick the columns of block bi and run a plain
                        // GEMM (the PaStiX temp-buffer trick).
                        let col0 = block.local_offset - cb.width();
                        let w2 = &w_panel[col0 * k..(col0 + n) * k];
                        ws.tmp.clear();
                        ws.tmp.resize(m * n, T::zero());
                        gemm(
                            Trans::NoTrans,
                            Trans::NoTrans,
                            m, n, k,
                            T::one(),
                            a1, cb.stride,
                            w2, k,
                            T::zero(),
                            &mut ws.tmp, m,
                        );
                        scatter_sub(&ws.tmp, m, n, ldst, tcb.stride, scatter);
                    }
                    None => {
                        // Generic-runtime path: rescale by D inside every
                        // update ("a less efficient kernel that performs
                        // the full LDLᵀ operation at each update", §V-A).
                        // SAFETY: d[cols of c] was finalized by panel(c).
                        let d = unsafe { self.d.range(cb.fcol..cb.lcol) };
                        update_via_buffer(
                            m, n, k,
                            -T::one(),
                            a1, cb.stride,
                            a2, cb.stride,
                            Some(d),
                            &mut ws.tmp,
                            ldst, tcb.stride,
                            scatter,
                        );
                    }
                }
            }
            FactoKind::Lu => {
                // SAFETY: same discipline as the L side.
                let (usrc, udst) = unsafe { self.tab.ucoef.disjoint_pair(src, dst) };
                let ut = &usrc[block.local_offset..];
                // C_L -= L[R≥b, c] · (Uᵀ[R_b, c])ᵀ
                update_via_buffer(
                    m, n, k,
                    -T::one(),
                    a1, cb.stride,
                    ut, cb.stride,
                    None,
                    &mut ws.tmp,
                    ldst, tcb.stride,
                    scatter,
                );
                // C_U -= Uᵀ[R>b, c] · (L[R_b, c])ᵀ for the rows strictly
                // below block b (the diagonal part went into C_L's full
                // square). The destination splits in two:
                //   * rows inside the target's column range are the upper
                //     triangle of the target's *diagonal block*, stored
                //     transposed in the L panel (full square);
                //   * rows beyond go into the target's U panel.
                if m > n {
                    let mu = m - n;
                    let ut_below = &usrc[block.local_offset + n..];
                    let a2l = &lsrc[block.local_offset..];
                    ws.tmp.clear();
                    ws.tmp.resize(mu * n, T::zero());
                    gemm(
                        Trans::NoTrans,
                        Trans::Trans,
                        mu, n, k,
                        T::one(),
                        ut_below, cb.stride,
                        a2l, cb.stride,
                        T::zero(),
                        &mut ws.tmp, mu,
                    );
                    for jj in 0..n {
                        let cglob = block.frow + jj; // column of the target panel
                        for ii in 0..mu {
                            let r = ws.row_glob[n + ii]; // global row (r > cglob)
                            let v = ws.tmp[jj * mu + ii];
                            if r < tcb.lcol {
                                // U[cglob, r] inside the diagonal block:
                                // column r of the L panel, storage row of
                                // cglob.
                                ldst[(r - tcb.fcol) * tcb.stride + (cglob - tcb.fcol)] -= v;
                            } else {
                                // Uᵀ[r, cglob] in the U panel.
                                udst[(cglob - tcb.fcol) * tcb.stride + ws.row_map[n + ii]] -= v;
                            }
                        }
                    }
                }
            }
        }
    }

    /// The fused 1D task of the native engine: panel + all its updates,
    /// with the per-panel `D·Lᵀ` buffer for LDLᵀ.
    fn one_d_task(&self, c: usize, worker: usize) {
        self.panel_task(c, worker);
        if self.failed() {
            return;
        }
        let symbol = &self.analysis.symbol;
        let cb = &symbol.cblks[c];
        let dlt_panel: Option<Vec<T>> = if self.analysis.facto == FactoKind::Ldlt {
            let below = cb.stride - cb.width();
            if below == 0 {
                None
            } else {
                // SAFETY: panel(c) is complete and exclusively ours to read.
                let range = self.tab.layout.panel_range(symbol, c);
                let l = unsafe { self.tab.lcoef.range(range) };
                let d = unsafe { self.d.range(cb.fcol..cb.lcol) };
                let k = cb.width();
                let mut w = vec![T::zero(); k * below];
                dagfact_kernels::ldlt::ldlt_scale_transpose(
                    below,
                    k,
                    d,
                    &l[k..],
                    cb.stride,
                    &mut w,
                );
                Some(w)
            }
        } else {
            None
        };
        for bi in (cb.block_begin + 1)..cb.block_end {
            self.update_task(c, bi, worker, dlt_panel.as_deref(), true);
        }
    }
}

/// Copy the lower triangle (including diagonal) of the leading `w×w` block
/// into a compact `w×w` buffer; the upper triangle is zero-filled.
fn copy_lower_triangle<T: Scalar>(panel: &[T], stride: usize, w: usize, out: &mut Vec<T>) {
    out.clear();
    out.resize(w * w, T::zero());
    for j in 0..w {
        for i in j..w {
            out[j * w + i] = panel[j * stride + i];
        }
    }
}

/// Copy the full leading `w×w` block.
fn copy_full_block<T: Scalar>(panel: &[T], stride: usize, w: usize, out: &mut Vec<T>) {
    out.clear();
    out.resize(w * w, T::zero());
    for j in 0..w {
        out[j * w..j * w + w].copy_from_slice(&panel[j * stride..j * stride + w]);
    }
}

/// `C[scatter] -= tmp` for a contiguous `m×n` buffer.
fn scatter_sub<T: Scalar>(
    tmp: &[T],
    m: usize,
    n: usize,
    c: &mut [T],
    ldc: usize,
    scatter: Scatter<'_>,
) {
    for j in 0..n {
        let col = &mut c[(scatter.col_offset + j) * ldc..];
        for (i, &v) in tmp[j * m..j * m + m].iter().enumerate() {
            col[scatter.row_map[i]] -= v;
        }
    }
}

/// Destination storage row (`out`) and global index (`glob`) of every
/// source-panel row at-or-below block `bi`, by a merge walk over the two
/// sorted block lists.
fn build_row_map(
    symbol: &dagfact_symbolic::SymbolMatrix,
    c: usize,
    bi: usize,
    j: usize,
    out: &mut Vec<usize>,
    glob: &mut Vec<usize>,
) {
    out.clear();
    glob.clear();
    let cb = &symbol.cblks[c];
    let tblocks = symbol.panel_blocks(j);
    let mut ti = 0usize;
    for sb in &symbol.blocks[bi..cb.block_end] {
        for row in sb.frow..sb.lrow {
            while !(tblocks[ti].frow <= row && row < tblocks[ti].lrow) {
                ti += 1;
                assert!(
                    ti < tblocks.len(),
                    "source row {row} missing from target panel {j} (symbolic closure violated)"
                );
            }
            out.push(tblocks[ti].local_offset + (row - tblocks[ti].frow));
            glob.push(row);
        }
    }
}

// ---------------------------------------------------------------------
// Public entry: factorize over a runtime
// ---------------------------------------------------------------------

/// Execution-time options for one factorization run (as opposed to the
/// analysis-time [`crate::SolverOptions`]): the fault-tolerance
/// configuration handed to the runtime engine, plus the static-pivot
/// override used by the adaptive retry loop.
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Runtime fault layer: injection plan, retry policy, stall watchdog.
    pub run: RunConfig,
    /// Overrides [`crate::SolverOptions::static_pivot_epsilon`] when set.
    /// The symbolic structure does not depend on the threshold, so the
    /// recovery loop can escalate it without re-running the analysis.
    pub epsilon_override: Option<f64>,
}

/// How a factorization went: the data behind the paper-style run logs and
/// the recovery loop's decisions.
#[derive(Debug, Clone, Default)]
pub struct FactorStats {
    /// Static-pivot epsilon actually used (threshold = ε·‖A‖∞).
    pub epsilon: f64,
    /// Every epsilon tried by the adaptive recovery loop, in order; the
    /// last entry produced these factors. A single-attempt factorization
    /// has exactly one entry.
    pub epsilon_history: Vec<f64>,
    /// Factorization attempts performed by the recovery loop (≥ 1).
    pub attempts: u32,
    /// The runtime engine's execution report (task counts, retries,
    /// injected faults, elapsed time).
    pub run: RunReport,
}

/// The numeric factors produced by [`Analysis::factorize`].
pub struct Factors<'a, T: Scalar> {
    /// The analysis this factorization is based on.
    pub analysis: &'a Analysis,
    /// Coefficient storage (L, and Uᵀ for LU).
    pub tab: CoefTab<T>,
    /// LDLᵀ diagonal (empty for other kinds).
    pub d: Vec<T>,
    /// Number of pivots bumped by static pivoting.
    pub pivots_repaired: usize,
    /// Execution statistics (engine report, pivot-escalation history).
    pub stats: FactorStats,
}

impl Analysis {
    /// Numerically factorize `a` on `nthreads` workers of the chosen
    /// runtime. `a` must have the analyzed pattern (same matrix order; a
    /// superset pattern is rejected).
    pub fn factorize<'a, T: Scalar>(
        &'a self,
        a: &CscMatrix<T>,
        runtime: RuntimeKind,
        nthreads: usize,
    ) -> Result<Factors<'a, T>, SolverError> {
        self.factorize_with(a, runtime, nthreads, &ExecOptions::default())
    }

    /// [`Analysis::factorize`] with explicit execution options: a fault
    /// plan and retry/watchdog configuration for the engine, and an
    /// optional static-pivot override. Engine failures (task panics,
    /// exhausted retry budgets, scheduler stalls) surface as
    /// [`SolverError::Engine`]; a post-factorization sweep rejects
    /// non-finite coefficients with [`SolverError::NonFinite`].
    pub fn factorize_with<'a, T: Scalar>(
        &'a self,
        a: &CscMatrix<T>,
        runtime: RuntimeKind,
        nthreads: usize,
        exec: &ExecOptions,
    ) -> Result<Factors<'a, T>, SolverError> {
        if a.nrows() != self.symbol.n || a.ncols() != self.symbol.n {
            return Err(SolverError::PatternMismatch(format!(
                "analyzed order {} but matrix is {}x{}",
                self.symbol.n,
                a.nrows(),
                a.ncols()
            )));
        }
        let nthreads = nthreads.max(1);
        let tab = CoefTab::assemble(self, a);
        let d: SharedSlice<T> = SharedSlice::from_vec(vec![T::zero(); self.symbol.n]);
        // Static pivoting threshold ε·‖A‖∞ (PaStiX-style); Cholesky has
        // its own positivity check instead.
        let epsilon = exec
            .epsilon_override
            .unwrap_or(self.options.static_pivot_epsilon);
        let threshold = if self.facto == FactoKind::Cholesky {
            0.0
        } else {
            epsilon * a.norm_inf().max(1.0)
        };
        let ctx = NumericCtx {
            analysis: self,
            tab: &tab,
            d: &d,
            threshold,
            fault: exec.run.fault_plan.clone(),
            pivots_repaired: AtomicUsize::new(0),
            error: Mutex::new(None),
            workspaces: (0..nthreads).map(|_| Mutex::new(Workspace::default())).collect(),
            panel_locks: (0..self.symbol.ncblk()).map(|_| Mutex::new(())).collect(),
        };
        let report = match runtime {
            RuntimeKind::Native => self.run_native_engine(&ctx, nthreads, exec.run.clone()),
            RuntimeKind::Dataflow => self.run_dataflow_engine(&ctx, nthreads, exec.run.clone()),
            RuntimeKind::Ptg => self.run_ptg_engine(&ctx, nthreads, exec.run.clone()),
        };
        // A kernel error is the root cause when present (the engine drains
        // cleanly around it); otherwise an engine error is fatal on its
        // own.
        if let Some(e) = ctx.error.lock().take() {
            return Err(SolverError::Kernel(e));
        }
        let report = report?;
        self.sweep_non_finite(&tab, &d)?;
        let pivots = ctx.pivots_repaired.load(Ordering::Relaxed);
        Ok(Factors {
            analysis: self,
            tab,
            d: d.into_vec(),
            pivots_repaired: pivots,
            stats: FactorStats {
                epsilon,
                epsilon_history: vec![epsilon],
                attempts: 1,
                run: report,
            },
        })
    }

    /// Post-factorization scan for NaN/Inf coefficients: numeric breakdown
    /// the pivot checks cannot see (corruption in off-diagonal blocks
    /// never touched by a later pivot) must not reach the solve phase.
    fn sweep_non_finite<T: Scalar>(
        &self,
        tab: &CoefTab<T>,
        d: &SharedSlice<T>,
    ) -> Result<(), SolverError> {
        let finite = |v: &[T]| v.iter().all(|x| x.modulus().is_finite());
        let symbol = &self.symbol;
        for c in 0..symbol.ncblk() {
            let range = tab.layout.panel_range(symbol, c);
            // SAFETY: the engine has quiesced; no worker holds a borrow.
            let l = unsafe { tab.lcoef.range(range.clone()) };
            if !finite(l) {
                return Err(SolverError::NonFinite { task: "L", block: c });
            }
            if !tab.ucoef.is_empty() {
                let u = unsafe { tab.ucoef.range(range) };
                if !finite(u) {
                    return Err(SolverError::NonFinite { task: "U", block: c });
                }
            }
            if self.facto == FactoKind::Ldlt {
                let cb = &symbol.cblks[c];
                let dr = unsafe { d.range(cb.fcol..cb.lcol) };
                if !finite(dr) {
                    return Err(SolverError::NonFinite { task: "D", block: c });
                }
            }
        }
        Ok(())
    }

    fn run_native_engine<T: Scalar>(
        &self,
        ctx: &NumericCtx<'_, T>,
        nthreads: usize,
        config: RunConfig,
    ) -> Result<RunReport, EngineError> {
        let graph = OneDGraph::build(&self.symbol);
        let costs = self.costs(T::IS_COMPLEX);
        let prio = self.priorities(&costs);
        let owners = self.static_owners(&costs, nthreads);
        let tasks: Vec<NativeTask> = (0..self.symbol.ncblk())
            .map(|c| NativeTask {
                owner: owners[c],
                npred: graph.npred[c],
                succs: graph.succs[c].clone(),
                priority: prio[c],
            })
            .collect();
        run_native_checked(&tasks, nthreads, config, |c, worker| ctx.one_d_task(c, worker))
    }

    fn run_dataflow_engine<T: Scalar>(
        &self,
        ctx: &NumericCtx<'_, T>,
        nthreads: usize,
        config: RunConfig,
    ) -> Result<RunReport, EngineError> {
        // Sequential submission in the solver's program order — panel k,
        // then the updates it generates, ascending k — exactly "the simple
        // sequential submission loops typically used with STARPU" (§IV).
        // The engine infers the DAG from the R/RW hazards alone.
        let costs = self.costs(T::IS_COMPLEX);
        let prio = self.priorities(&costs);
        let mut g = DataflowGraph::new(self.symbol.ncblk());
        for (cblk, &pr) in prio.iter().enumerate().take(self.symbol.ncblk()) {
            g.submit(&[(cblk, AccessMode::ReadWrite)], pr, move |w| {
                ctx.panel_task(cblk, w)
            });
            let cb = &self.symbol.cblks[cblk];
            for block in (cb.block_begin + 1)..cb.block_end {
                let target = self.symbol.blocks[block].facing;
                g.submit(
                    &[(cblk, AccessMode::Read), (target, AccessMode::ReadWrite)],
                    pr,
                    move |w| ctx.update_task(cblk, block, w, None, false),
                );
            }
        }
        g.execute_checked(nthreads, config)
    }

    fn run_ptg_engine<T: Scalar>(
        &self,
        ctx: &NumericCtx<'_, T>,
        nthreads: usize,
        config: RunConfig,
    ) -> Result<RunReport, EngineError> {
        struct Program<'c, 'a, T: Scalar> {
            ctx: &'c NumericCtx<'a, T>,
            graph: TaskGraph,
            prio: Vec<f64>,
        }
        impl<T: Scalar> PtgProgram for Program<'_, '_, T> {
            fn num_tasks(&self) -> usize {
                self.graph.len()
            }
            fn num_predecessors(&self, t: usize) -> u32 {
                self.graph.npred[t]
            }
            fn successors(&self, t: usize, out: &mut Vec<usize>) {
                out.extend_from_slice(&self.graph.succs[t]);
            }
            fn priority(&self, t: usize) -> f64 {
                match self.graph.tasks[t] {
                    TaskKind::Panel { cblk } => self.prio[cblk],
                    TaskKind::Update { cblk, .. } => self.prio[cblk],
                }
            }
            fn execute(&self, t: usize, worker: usize) {
                match self.graph.tasks[t] {
                    TaskKind::Panel { cblk } => self.ctx.panel_task(cblk, worker),
                    TaskKind::Update { cblk, block, .. } => {
                        self.ctx.update_task(cblk, block, worker, None, false)
                    }
                }
            }
        }
        let costs = self.costs(T::IS_COMPLEX);
        let program = Program {
            ctx,
            graph: TaskGraph::build(&self.symbol),
            prio: self.priorities(&costs),
        };
        run_ptg_checked(&program, nthreads, config)
    }
}
