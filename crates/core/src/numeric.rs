//! Numeric factorization: the task bodies and their execution over the
//! three runtimes (§V of the paper).
//!
//! * **panel(c)** — factorize the diagonal block (POTRF / LDLᵀ / static-
//!   pivot GETRF) and apply it to the panel's off-diagonal blocks (TRSM);
//! * **update(c, b)** — apply the outer product of block `b` with the
//!   sub-panel at-and-below `b` to the facing panel (the sparse GEMM,
//!   buffer-then-scatter on CPUs).
//!
//! The LDLᵀ kernels reproduce the paper's §V-A observation: the native
//! engine materializes `D·Lᵀ` once per 1D task in a per-worker buffer so
//! updates are plain GEMMs, while the generic runtimes "perform the full
//! LDLᵀ operation at each update" — the reason PaStiX wins on `pmlDF` and
//! `Serena`.
//!
//! # Memory-budgeted execution
//!
//! When [`ExecOptions::run`] carries a [`MemoryBudget`], every large
//! allocation of the factorization is charged to it: the coefficient
//! panels (through the pager in [`CoefTab`]), the per-worker GEMM buffers
//! (`site::WORKSPACE`), the native engine's per-supernode packed B-panel
//! (`site::DLT` — plain `Lᵀ` for Cholesky, `D·Lᵀ` for LDLᵀ) and the
//! pivot diagonal (`site::DIAG`). Under a hard cap the tasks
//! degrade instead of failing, in pressure order:
//!
//! 1. **shed** — GEMM updates narrow their scatter buffer to a few
//!    columns, and at critical pressure drop it entirely
//!    (`update_scatter_direct`, zero workspace);
//! 2. **throttle** — the engines stop admitting new tasks past the
//!    budget's admission width (see `Supervisor::try_admit`);
//! 3. **spill** — panels whose consumers are all done are retired to the
//!    disk-backed [`crate::spill::SpillStore`] and faulted back in on the
//!    next touch (usually the solve).
//!
//! Task bodies pin every panel they touch *before* mutating anything, so
//! an injected allocation failure (`AllocFail`) at a pin is retry-safe:
//! fine-grained engines re-run the task, the native engine and the
//! adaptive solver retry the factorization without escalating the pivot
//! threshold.

use crate::analysis::Analysis;
use crate::coeftab::{CoefTab, MemoryOptions, PanelPin};
use crate::tasks::{OneDGraph, TaskGraph, TaskKind};
use crate::SolverError;
use dagfact_kernels::gemm::{gemm, Trans};
use dagfact_kernels::trsm::{trsm, Diag, Side, Uplo};
use dagfact_kernels::update::{
    pack_b, update_scatter_direct, update_scatter_packed, update_via_buffer,
    update_via_buffer_packed, Scatter,
};
use dagfact_kernels::{getrf, ldlt, ldlt_apply_diag, potrf, Scalar};
use dagfact_rt::budget::{site, MemoryBudget, PressureLevel};
use dagfact_rt::dataflow::DataflowGraph;
use dagfact_rt::native::{run_native_checked, NativeTask};
use dagfact_rt::ptg::{run_ptg_checked, PtgProgram};
use dagfact_rt::sync::Mutex;
use dagfact_rt::{
    AccessMode, EngineError, FaultPlan, RunConfig, RunReport, RuntimeKind, SharedSlice,
    TransientFault,
};
use dagfact_sparse::CscMatrix;
use dagfact_symbolic::FactoKind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Scatter-buffer width under `Yellow` pressure: wide enough to keep the
/// GEMM efficient, narrow enough to shed most of the workspace.
const SHED_COLS: usize = 8;

/// Per-worker scratch memory ("constant memory overhead per working
/// thread", §V-B).
#[derive(Default)]
struct Workspace<T> {
    /// GEMM result buffer (buffer-then-scatter strategy).
    tmp: Vec<T>,
    /// Copy of the diagonal block for aliasing-free TRSM.
    diag: Vec<T>,
    /// Row scatter map (destination storage rows).
    row_map: Vec<usize>,
    /// Global row index of each mapped row (LU's U-side scatter needs to
    /// know which rows fall inside the destination's diagonal block).
    row_glob: Vec<usize>,
    /// Bytes of `tmp` currently charged to the budget (high-water; the
    /// charge is released once when the factorization finishes). The
    /// small O(blocksize²) `diag`/`row_map` scratch is deliberately not
    /// accounted.
    tmp_charged: usize,
}

/// Everything the task bodies need, shared across workers.
///
/// `pub(crate)`: the distributed engine (`crate::dist`) reuses the task
/// bodies — panel factorization, local updates, and the
/// buffer-destination [`NumericCtx::update_into`] that accumulates a
/// fan-in contribution without touching the target panel.
pub(crate) struct NumericCtx<'a, T: Scalar> {
    analysis: &'a Analysis,
    tab: &'a CoefTab<T>,
    /// LDLᵀ diagonal (length n; unused otherwise).
    d: &'a SharedSlice<T>,
    /// Absolute static-pivot threshold.
    threshold: f64,
    /// Fault-injection plan for NaN output corruption (testing).
    fault: Option<Arc<FaultPlan>>,
    /// Memory ledger (None: historical unaccounted behavior).
    budget: Option<Arc<MemoryBudget>>,
    /// Engine retry budget allows at least one retry: a retry-safe pin
    /// failure may panic with [`TransientFault`] instead of poisoning
    /// the whole factorization.
    engine_retries: bool,
    /// Updates still reading each source panel; at zero the panel is
    /// retired to the pager (preferred spill victim).
    remaining_reads: Vec<AtomicUsize>,
    pivots_repaired: AtomicUsize,
    /// First error; once set, remaining tasks no-op.
    error: Mutex<Option<SolverError>>,
    workspaces: Vec<Mutex<Workspace<T>>>,
    /// Per-panel accumulation locks for the native engine: the coarse 1D
    /// DAG orders every updater *before* its target's 1D task but not the
    /// updaters of a common target against each other (fan-in from
    /// disjoint subtrees), so their scatter-adds are serialized here —
    /// PaStiX's per-cblk mutex. The verifier models these accesses as
    /// `Mode::Accum`: commutative, mutually excluded. The fine-grained
    /// engines order updates by dependency edges and skip the lock.
    panel_locks: Vec<Mutex<()>>,
}

impl<'a, T: Scalar> NumericCtx<'a, T> {
    /// Context for the distributed engine (`crate::dist`): no memory
    /// budget, no engine-level retry semantics, and panels are never
    /// retired to the pager — crash recovery replays tasks that re-read
    /// panels whose historical read count is long exhausted, so the
    /// read countdown is pinned effectively-infinite.
    pub(crate) fn for_dist(
        analysis: &'a Analysis,
        tab: &'a CoefTab<T>,
        d: &'a SharedSlice<T>,
        threshold: f64,
        nworkers: usize,
    ) -> NumericCtx<'a, T> {
        NumericCtx {
            analysis,
            tab,
            d,
            threshold,
            fault: None,
            budget: None,
            engine_retries: false,
            remaining_reads: (0..analysis.symbol.ncblk())
                .map(|_| AtomicUsize::new(usize::MAX / 2))
                .collect(),
            pivots_repaired: AtomicUsize::new(0),
            error: Mutex::new(None),
            workspaces: (0..nworkers.max(1))
                .map(|_| Mutex::new(Workspace::default()))
                .collect(),
            panel_locks: (0..analysis.symbol.ncblk()).map(|_| Mutex::new(())).collect(),
        }
    }

    /// Take the first recorded task error, leaving the context clean.
    pub(crate) fn take_error(&self) -> Option<SolverError> {
        self.error.lock().take()
    }

    /// Pivots bumped by static pivoting so far.
    pub(crate) fn pivots(&self) -> usize {
        // ORDERING: statistics counter.
        self.pivots_repaired.load(Ordering::Relaxed)
    }

    fn failed(&self) -> bool {
        self.error.lock().is_some()
    }

    fn record_error(&self, e: SolverError) {
        let mut guard = self.error.lock();
        if guard.is_none() {
            *guard = Some(e);
        }
    }

    /// Unwrap a pin, routing failures: a transient (injected) allocation
    /// fault panics with [`TransientFault`] when the failing task is
    /// retry-safe and the engine has retry budget — the engine re-runs
    /// it and the consumed per-site fault budget lets the retry succeed.
    /// Everything else (and transient faults with no retry capacity) is
    /// recorded, so the factorization drains and the adaptive solver can
    /// retry without escalating the pivot threshold.
    fn pin_or_fail<'t>(
        &self,
        r: Result<PanelPin<'t, T>, SolverError>,
        task: usize,
        retryable: bool,
    ) -> Option<PanelPin<'t, T>> {
        match r {
            Ok(pin) => Some(pin),
            Err(e) => {
                if retryable && self.engine_retries && e.is_transient_alloc() {
                    std::panic::panic_any(TransientFault { task, attempt: 0 });
                }
                self.record_error(e);
                None
            }
        }
    }

    /// Grow the charged high-water of a worker's `tmp` buffer to `elems`
    /// elements. `false` when the ledger (or an injected fault) refuses.
    fn ensure_tmp(&self, tmp_charged: &mut usize, elems: usize) -> bool {
        let Some(b) = &self.budget else {
            return true;
        };
        let bytes = elems * std::mem::size_of::<T>();
        if bytes <= *tmp_charged {
            return true;
        }
        match b.try_charge(bytes - *tmp_charged, site::WORKSPACE) {
            Ok(()) => {
                *tmp_charged = bytes;
                true
            }
            Err(_) => false,
        }
    }

    /// Decide the scatter-buffer width for an `m × n` update under the
    /// current memory pressure: `Some(cols)` runs the buffered kernel in
    /// column chunks of `cols` (the full `n` when unconstrained —
    /// bit-identical to the historical single call), `None` sheds the
    /// buffer entirely (direct-scatter path).
    fn plan_cols(&self, tmp_charged: &mut usize, m: usize, n: usize) -> Option<usize> {
        let Some(b) = &self.budget else {
            return Some(n);
        };
        let want = if b.cap().is_none() {
            n
        } else {
            match b.level() {
                PressureLevel::Green => n,
                PressureLevel::Yellow => n.min(SHED_COLS),
                PressureLevel::Orange => 1,
                PressureLevel::Red => {
                    b.note_shed();
                    return None;
                }
            }
        }
        .max(1);
        if self.ensure_tmp(tmp_charged, m * want) {
            if want < n {
                b.note_shed();
            }
            Some(want)
        } else {
            // Even the reduced buffer was refused: zero-workspace path.
            b.note_shed();
            None
        }
    }

    // ------------------------------------------------------------------
    // Panel task
    // ------------------------------------------------------------------

    /// Factorize panel `c` in place and solve its off-diagonal blocks.
    pub(crate) fn panel_task(&self, c: usize, worker: usize) {
        if self.failed() {
            return;
        }
        let symbol = &self.analysis.symbol;
        let cb = &symbol.cblks[c];
        let (w, stride) = (cb.width(), cb.stride);
        let below = stride - w;
        // Pin before mutating anything: an allocation failure here is
        // retry-safe for every engine (the native 1D task starts with
        // this call, so nothing has been written yet either way).
        let Some(lpin) = self.pin_or_fail(self.tab.pin_l(symbol, c), c, true) else {
            return;
        };
        let upin = if self.analysis.facto == FactoKind::Lu {
            match self.pin_or_fail(self.tab.pin_u(symbol, c), c, true) {
                Some(p) => Some(p),
                None => return,
            }
        } else {
            None
        };
        // SAFETY: the DAG gives panel(c) exclusive access to panel c.
        let l = unsafe { lpin.slice_mut() };
        let mut ws = self.workspaces[worker].lock();
        let result: Result<(), SolverError> = (|| {
            match self.analysis.facto {
                FactoKind::Cholesky => {
                    potrf(w, l, stride)?;
                    if below > 0 {
                        copy_lower_triangle(l, stride, w, &mut ws.diag);
                        trsm(
                            Side::Right,
                            Uplo::Lower,
                            Trans::Trans,
                            Diag::NonUnit,
                            below,
                            w,
                            &ws.diag,
                            w,
                            &mut l[w..],
                            stride,
                        );
                    }
                }
                FactoKind::Ldlt => {
                    // SAFETY: panel(c) owns the d-range of its columns.
                    let d = unsafe { self.d.range_mut(cb.fcol..cb.lcol) };
                    let repaired = ldlt(w, l, stride, d, self.threshold)?;
                    // ORDERING: statistics counter; no memory is
                    // published.
                    self.pivots_repaired.fetch_add(repaired, Ordering::Relaxed);
                    if below > 0 {
                        copy_lower_triangle(l, stride, w, &mut ws.diag);
                        trsm(
                            Side::Right,
                            Uplo::Lower,
                            Trans::Trans,
                            Diag::Unit,
                            below,
                            w,
                            &ws.diag,
                            w,
                            &mut l[w..],
                            stride,
                        );
                        ldlt_apply_diag(below, w, d, &mut l[w..], stride);
                    }
                }
                FactoKind::Lu => {
                    let stats = getrf(w, l, stride, self.threshold)?;
                    // ORDERING: statistics counter; no memory is
                    // published.
                    self.pivots_repaired.fetch_add(stats.repaired, Ordering::Relaxed);
                    // SAFETY: panel(c) also owns its U panel.
                    let Some(up) = &upin else {
                        unreachable!("LU panel task without a U pin")
                    };
                    let u = unsafe { up.slice_mut() };
                    if below > 0 {
                        copy_full_block(l, stride, w, &mut ws.diag);
                        // L side: A_ik ← A_ik · U_kk⁻¹.
                        trsm(
                            Side::Right,
                            Uplo::Upper,
                            Trans::NoTrans,
                            Diag::NonUnit,
                            below,
                            w,
                            &ws.diag,
                            w,
                            &mut l[w..],
                            stride,
                        );
                        // U side (stored transposed): Uᵀ ← Uᵀ · L_kk⁻ᵀ.
                        trsm(
                            Side::Right,
                            Uplo::Lower,
                            Trans::Trans,
                            Diag::Unit,
                            below,
                            w,
                            &ws.diag,
                            w,
                            &mut u[w..],
                            stride,
                        );
                    }
                }
            }
            Ok(())
        })();
        match result {
            Err(e) => self.record_error(e),
            Ok(()) => {
                // Fault injection: corrupt this panel's output with a NaN
                // so the post-factorization sweep (and downstream pivot
                // checks) can be exercised deterministically.
                if let Some(plan) = &self.fault {
                    if plan.take_corruption(c) {
                        l[0] = T::from_f64(f64::NAN);
                    }
                }
                // A panel with no updates is cold as soon as it is
                // factored.
                if self.remaining_reads[c].load(Ordering::Acquire) == 0 {
                    self.tab.retire(c);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Update task
    // ------------------------------------------------------------------

    /// Apply update task of global block `bi` from panel `c` onto its
    /// facing panel. `pack` optionally carries the native engine's
    /// per-supernode packed B-panel (k × below, column per source row):
    /// plain `Lᵀ` for Cholesky, `D·Lᵀ` for LDLᵀ. `lock_target` must be
    /// true when the caller's DAG does not order updates into a common
    /// target against each other (the native 1D graph): the write then
    /// becomes a lock-protected accumulation.
    pub(crate) fn update_task(
        &self,
        c: usize,
        bi: usize,
        worker: usize,
        pack: Option<&[T]>,
        lock_target: bool,
    ) {
        if self.failed() {
            return;
        }
        let symbol = &self.analysis.symbol;
        let cb = &symbol.cblks[c];
        let block = &symbol.blocks[bi];
        let j = block.facing;
        let n = block.nrows();
        let m = cb.stride - block.local_offset;
        // Pin every panel up front, before any mutation: a pin failure is
        // then retry-safe — but only for the fine-grained engines, whose
        // update is a task of its own. Inside a native 1D task the panel
        // has already been factored, so re-running the task would corrupt
        // it: those failures are recorded instead (solver-level retry).
        let retryable = !lock_target;
        let Some(lsrc_pin) = self.pin_or_fail(self.tab.pin_l(symbol, c), c, retryable) else {
            return;
        };
        let Some(ldst_pin) = self.pin_or_fail(self.tab.pin_l(symbol, j), c, retryable) else {
            return;
        };
        let upins = if self.analysis.facto == FactoKind::Lu {
            let Some(us) = self.pin_or_fail(self.tab.pin_u(symbol, c), c, retryable) else {
                return;
            };
            let Some(ud) = self.pin_or_fail(self.tab.pin_u(symbol, j), c, retryable) else {
                return;
            };
            Some((us, ud))
        } else {
            None
        };
        let mut ws = self.workspaces[worker].lock();
        let ws = &mut *ws;
        // Pressure-dependent buffer plan, decided before the target lock
        // so ledger traffic never happens under it.
        let cols_l = self.plan_cols(&mut ws.tmp_charged, m, n);
        // Serialize concurrent accumulations into panel j (native engine
        // only; see `panel_locks`). Taken before the destination borrow so
        // two updaters never hold overlapping `&mut` views.
        let _accum_guard = lock_target.then(|| self.panel_locks[j].lock());
        // SAFETY: the DAG guarantees panel c is read-only here, and either
        // serializes updates into panel j (fine-grained engines) or the
        // accumulation lock above excludes concurrent updaters (native);
        // the two panels are distinct allocations held by their pins.
        let lsrc = unsafe { lsrc_pin.slice() };
        let ldst = unsafe { ldst_pin.slice_mut() };
        let (usrc, udst) = match &upins {
            // SAFETY: same discipline as the L side.
            Some((us, ud)) => (Some(unsafe { us.slice() }), Some(unsafe { ud.slice_mut() })),
            None => (None, None),
        };
        self.update_kernel(c, bi, ws, cols_l, pack, lsrc, usrc, ldst, udst);
        // This update has consumed its read of panel c; the last one
        // hands the panel to the pager as a preferred spill victim.
        if self.remaining_reads[c].fetch_sub(1, Ordering::AcqRel) == 1 {
            self.tab.retire(c);
        }
    }

    /// Accumulate the update of block `bi` from panel `c` into
    /// caller-owned buffers laid out exactly like the target panel
    /// (`tcb.stride × tcb.width()`, zero-initialized) instead of the live
    /// panel — the distributed engine's fan-in pair buffers. Only the
    /// *source* panel is pinned; applying the buffer to the real target is
    /// the receiver's elementwise add. Does not consume a read of panel
    /// `c` (the dist context never retires panels: recovery replay may
    /// re-read any factored panel). `false` when a recorded error stopped
    /// the run.
    pub(crate) fn update_into(
        &self,
        c: usize,
        bi: usize,
        worker: usize,
        ldst: &mut [T],
        udst: Option<&mut [T]>,
    ) -> bool {
        if self.failed() {
            return false;
        }
        let symbol = &self.analysis.symbol;
        let cb = &symbol.cblks[c];
        let block = &symbol.blocks[bi];
        let n = block.nrows();
        let m = cb.stride - block.local_offset;
        let Some(lsrc_pin) = self.pin_or_fail(self.tab.pin_l(symbol, c), c, false) else {
            return false;
        };
        let usrc_pin = if self.analysis.facto == FactoKind::Lu {
            match self.pin_or_fail(self.tab.pin_u(symbol, c), c, false) {
                Some(p) => Some(p),
                None => return false,
            }
        } else {
            None
        };
        let mut ws = self.workspaces[worker].lock();
        let ws = &mut *ws;
        let cols_l = self.plan_cols(&mut ws.tmp_charged, m, n);
        // SAFETY: panel c is factored and read-only here; the destination
        // buffers are exclusively owned by the caller.
        let lsrc = unsafe { lsrc_pin.slice() };
        let usrc = usrc_pin.as_ref().map(|p| unsafe { p.slice() });
        self.update_kernel(c, bi, ws, cols_l, None, lsrc, usrc, ldst, udst);
        !self.failed()
    }

    /// The facto-specific GEMM + scatter math of one update, shared by
    /// [`NumericCtx::update_task`] (destination = the live target panel)
    /// and [`NumericCtx::update_into`] (destination = a fan-in pair
    /// buffer with the target panel's layout). `cols_l` is the
    /// pre-decided scatter-buffer plan for the m×n L-side GEMM; `pack`
    /// is the supernode's packed B-panel when the 1D task built one.
    #[allow(clippy::too_many_arguments)]
    fn update_kernel(
        &self,
        c: usize,
        bi: usize,
        ws: &mut Workspace<T>,
        cols_l: Option<usize>,
        pack: Option<&[T]>,
        lsrc: &[T],
        usrc: Option<&[T]>,
        ldst: &mut [T],
        udst: Option<&mut [T]>,
    ) {
        let symbol = &self.analysis.symbol;
        let cb = &symbol.cblks[c];
        let block = &symbol.blocks[bi];
        let j = block.facing;
        let tcb = &symbol.cblks[j];
        let k = cb.width();
        let n = block.nrows();
        let m = cb.stride - block.local_offset;
        build_row_map(symbol, c, bi, j, &mut ws.row_map, &mut ws.row_glob);
        let col_off = block.frow - tcb.fcol;
        let a1 = &lsrc[block.local_offset..];
        let a2 = &lsrc[block.local_offset..];
        match self.analysis.facto {
            FactoKind::Cholesky => match pack {
                Some(w_panel) => {
                    // Native path: the supernode's Lᵀ B-panel was packed
                    // once by the 1D task; every update of the panel reads
                    // the same contiguous cache-blocked columns.
                    let col0 = block.local_offset - cb.width();
                    let pk = &w_panel[col0 * k..(col0 + n) * k];
                    match cols_l {
                        Some(cols) => chunked_update_packed(
                            cols, m, n, k,
                            -T::one(),
                            a1, cb.stride,
                            pk,
                            &mut ws.tmp,
                            ldst, tcb.stride,
                            &ws.row_map, col_off,
                        ),
                        None => update_scatter_packed(
                            m, n, k,
                            -T::one(),
                            a1, cb.stride,
                            pk,
                            ldst, tcb.stride,
                            Scatter { row_map: &ws.row_map, col_offset: col_off },
                        ),
                    }
                }
                None => match cols_l {
                    Some(cols) => chunked_update(
                        cols, m, n, k,
                        -T::one(),
                        a1, cb.stride,
                        a2, cb.stride,
                        None,
                        &mut ws.tmp,
                        ldst, tcb.stride,
                        &ws.row_map, col_off,
                    ),
                    None => update_scatter_direct(
                        m, n, k,
                        -T::one(),
                        a1, cb.stride,
                        a2, cb.stride,
                        None,
                        ldst, tcb.stride,
                        Scatter { row_map: &ws.row_map, col_offset: col_off },
                    ),
                },
            },
            FactoKind::Ldlt => {
                match pack {
                    Some(w_panel) => {
                        // Native path: W = D·Lᵀ was packed once per panel;
                        // pick the columns of block bi and run a plain
                        // GEMM (the PaStiX temp-buffer trick), or the
                        // fused GEMM-scatter when the pressure ladder
                        // forbids the staging buffer.
                        let col0 = block.local_offset - cb.width();
                        let pk = &w_panel[col0 * k..(col0 + n) * k];
                        match cols_l {
                            Some(cols) => chunked_update_packed(
                                cols, m, n, k,
                                -T::one(),
                                a1, cb.stride,
                                pk,
                                &mut ws.tmp,
                                ldst, tcb.stride,
                                &ws.row_map, col_off,
                            ),
                            None => update_scatter_packed(
                                m, n, k,
                                -T::one(),
                                a1, cb.stride,
                                pk,
                                ldst, tcb.stride,
                                Scatter { row_map: &ws.row_map, col_offset: col_off },
                            ),
                        }
                    }
                    None => {
                        // Generic-runtime path: rescale by D inside every
                        // update ("a less efficient kernel that performs
                        // the full LDLᵀ operation at each update", §V-A).
                        // SAFETY: d[cols of c] was finalized by panel(c).
                        let d = unsafe { self.d.range(cb.fcol..cb.lcol) };
                        match cols_l {
                            Some(cols) => chunked_update(
                                cols, m, n, k,
                                -T::one(),
                                a1, cb.stride,
                                a2, cb.stride,
                                Some(d),
                                &mut ws.tmp,
                                ldst, tcb.stride,
                                &ws.row_map, col_off,
                            ),
                            None => update_scatter_direct(
                                m, n, k,
                                -T::one(),
                                a1, cb.stride,
                                a2, cb.stride,
                                Some(d),
                                ldst, tcb.stride,
                                Scatter { row_map: &ws.row_map, col_offset: col_off },
                            ),
                        }
                    }
                }
            }
            FactoKind::Lu => {
                let usrc = usrc.expect("LU update without a U source");
                let udst = udst.expect("LU update without a U destination");
                let ut = &usrc[block.local_offset..];
                // C_L -= L[R≥b, c] · (Uᵀ[R_b, c])ᵀ
                match cols_l {
                    Some(cols) => chunked_update(
                        cols, m, n, k,
                        -T::one(),
                        a1, cb.stride,
                        ut, cb.stride,
                        None,
                        &mut ws.tmp,
                        ldst, tcb.stride,
                        &ws.row_map, col_off,
                    ),
                    None => update_scatter_direct(
                        m, n, k,
                        -T::one(),
                        a1, cb.stride,
                        ut, cb.stride,
                        None,
                        ldst, tcb.stride,
                        Scatter { row_map: &ws.row_map, col_offset: col_off },
                    ),
                }
                // C_U -= Uᵀ[R>b, c] · (L[R_b, c])ᵀ for the rows strictly
                // below block b (the diagonal part went into C_L's full
                // square). The destination splits in two:
                //   * rows inside the target's column range are the upper
                //     triangle of the target's *diagonal block*, stored
                //     transposed in the L panel (full square);
                //   * rows beyond go into the target's U panel.
                if m > n {
                    let mu = m - n;
                    let ut_below = &usrc[block.local_offset + n..];
                    let a2l = &lsrc[block.local_offset..];
                    match self.plan_cols(&mut ws.tmp_charged, mu, n) {
                        Some(cols) => {
                            let mut jj0 = 0;
                            while jj0 < n {
                                let nc = cols.min(n - jj0);
                                ws.tmp.clear();
                                ws.tmp.resize(mu * nc, T::zero());
                                gemm(
                                    Trans::NoTrans,
                                    Trans::Trans,
                                    mu, nc, k,
                                    T::one(),
                                    ut_below, cb.stride,
                                    &a2l[jj0..], cb.stride,
                                    T::zero(),
                                    &mut ws.tmp, mu,
                                );
                                for jj in 0..nc {
                                    // Column of the target panel.
                                    let cglob = block.frow + jj0 + jj;
                                    for ii in 0..mu {
                                        let r = ws.row_glob[n + ii]; // global row (r > cglob)
                                        let v = ws.tmp[jj * mu + ii];
                                        if r < tcb.lcol {
                                            // U[cglob, r] inside the diagonal block:
                                            // column r of the L panel, storage row of
                                            // cglob.
                                            ldst[(r - tcb.fcol) * tcb.stride + (cglob - tcb.fcol)] -= v;
                                        } else {
                                            // Uᵀ[r, cglob] in the U panel.
                                            udst[(cglob - tcb.fcol) * tcb.stride + ws.row_map[n + ii]] -= v;
                                        }
                                    }
                                }
                                jj0 += nc;
                            }
                        }
                        None => {
                            // Zero-workspace fallback for the U side.
                            for jj in 0..n {
                                let cglob = block.frow + jj;
                                for l in 0..k {
                                    let s = a2l[l * cb.stride + jj];
                                    if s == T::zero() {
                                        continue;
                                    }
                                    for ii in 0..mu {
                                        let r = ws.row_glob[n + ii];
                                        let v = ut_below[l * cb.stride + ii] * s;
                                        if r < tcb.lcol {
                                            ldst[(r - tcb.fcol) * tcb.stride + (cglob - tcb.fcol)] -= v;
                                        } else {
                                            udst[(cglob - tcb.fcol) * tcb.stride + ws.row_map[n + ii]] -= v;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// The fused 1D task of the native engine: panel + all its updates,
    /// with the per-supernode packed B-panel (`Lᵀ` for Cholesky, `D·Lᵀ`
    /// for LDLᵀ) built once and reused by every trailing update.
    fn one_d_task(&self, c: usize, worker: usize) {
        self.panel_task(c, worker);
        if self.failed() {
            return;
        }
        let symbol = &self.analysis.symbol;
        let cb = &symbol.cblks[c];
        let mut pack_charged = 0usize;
        let wants_pack = matches!(
            self.analysis.facto,
            FactoKind::Cholesky | FactoKind::Ldlt
        );
        let pack_panel: Option<Vec<T>> = if wants_pack {
            let below = cb.stride - cb.width();
            let k = cb.width();
            let granted = below > 0 && {
                match &self.budget {
                    None => true,
                    Some(b) => {
                        let bytes = k * below * std::mem::size_of::<T>();
                        match b.try_charge(bytes, site::DLT) {
                            Ok(()) => {
                                pack_charged = bytes;
                                true
                            }
                            Err(_) => {
                                // Refused (pressure or injected fault):
                                // the generic per-update kernel needs no
                                // packed panel.
                                b.note_shed();
                                false
                            }
                        }
                    }
                }
            };
            if granted {
                match self.tab.pin_l(symbol, c) {
                    Ok(pin) => {
                        // SAFETY: panel(c) is complete and ours to read.
                        let l = unsafe { pin.slice() };
                        let d = (self.analysis.facto == FactoKind::Ldlt)
                            // SAFETY: d[cols of c] was finalized by panel(c).
                            .then(|| unsafe { self.d.range(cb.fcol..cb.lcol) });
                        let mut w = vec![T::zero(); k * below];
                        pack_b(below, k, d, &l[k..], cb.stride, &mut w);
                        Some(w)
                    }
                    Err(_) => {
                        // Could not read our own panel back (injected
                        // fault or spill IO): degrade to the generic
                        // update kernel; it re-pins and reports properly.
                        if let Some(b) = &self.budget {
                            b.release(pack_charged);
                        }
                        pack_charged = 0;
                        None
                    }
                }
            } else {
                None
            }
        } else {
            None
        };
        for bi in (cb.block_begin + 1)..cb.block_end {
            self.update_task(c, bi, worker, pack_panel.as_deref(), true);
        }
        drop(pack_panel);
        if pack_charged > 0 {
            if let Some(b) = &self.budget {
                b.release(pack_charged);
            }
        }
    }
}

/// Run the buffered update kernel in column chunks of `cols` — with
/// `cols == n` this is exactly one historical `update_via_buffer` call,
/// and because the kernel computes each output column independently the
/// chunked result is bit-identical for any chunk width.
#[allow(clippy::too_many_arguments)]
fn chunked_update<T: Scalar>(
    cols: usize,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a1: &[T],
    lda1: usize,
    a2: &[T],
    lda2: usize,
    d: Option<&[T]>,
    work: &mut Vec<T>,
    c: &mut [T],
    ldc: usize,
    row_map: &[usize],
    col_offset: usize,
) {
    let mut j0 = 0;
    while j0 < n {
        let nc = cols.min(n - j0);
        update_via_buffer(
            m, nc, k,
            alpha,
            a1, lda1,
            &a2[j0..], lda2,
            d,
            work,
            c, ldc,
            Scatter { row_map, col_offset: col_offset + j0 },
        );
        j0 += nc;
    }
}

/// Column-chunked twin of [`chunked_update`] over a panel packed by
/// [`pack_b`]: the per-chunk B slice is a contiguous `k×nc` subrange of
/// the supernode's pack, so every chunk is a plain `NoTrans×NoTrans`
/// GEMM (or the fused SIMD GEMM-scatter inside the kernel crate).
#[allow(clippy::too_many_arguments)]
fn chunked_update_packed<T: Scalar>(
    cols: usize,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a1: &[T],
    lda1: usize,
    pack: &[T],
    work: &mut Vec<T>,
    c: &mut [T],
    ldc: usize,
    row_map: &[usize],
    col_offset: usize,
) {
    let mut j0 = 0;
    while j0 < n {
        let nc = cols.min(n - j0);
        update_via_buffer_packed(
            m, nc, k,
            alpha,
            a1, lda1,
            &pack[j0 * k..(j0 + nc) * k],
            work,
            c, ldc,
            Scatter { row_map, col_offset: col_offset + j0 },
        );
        j0 += nc;
    }
}

/// Copy the lower triangle (including diagonal) of the leading `w×w` block
/// into a compact `w×w` buffer; the upper triangle is zero-filled.
fn copy_lower_triangle<T: Scalar>(panel: &[T], stride: usize, w: usize, out: &mut Vec<T>) {
    out.clear();
    out.resize(w * w, T::zero());
    for j in 0..w {
        for i in j..w {
            out[j * w + i] = panel[j * stride + i];
        }
    }
}

/// Copy the full leading `w×w` block.
fn copy_full_block<T: Scalar>(panel: &[T], stride: usize, w: usize, out: &mut Vec<T>) {
    out.clear();
    out.resize(w * w, T::zero());
    for j in 0..w {
        out[j * w..j * w + w].copy_from_slice(&panel[j * stride..j * stride + w]);
    }
}

/// Destination storage row (`out`) and global index (`glob`) of every
/// source-panel row at-or-below block `bi`, by a merge walk over the two
/// sorted block lists.
fn build_row_map(
    symbol: &dagfact_symbolic::SymbolMatrix,
    c: usize,
    bi: usize,
    j: usize,
    out: &mut Vec<usize>,
    glob: &mut Vec<usize>,
) {
    out.clear();
    glob.clear();
    let cb = &symbol.cblks[c];
    let tblocks = symbol.panel_blocks(j);
    let mut ti = 0usize;
    for sb in &symbol.blocks[bi..cb.block_end] {
        for row in sb.frow..sb.lrow {
            while !(tblocks[ti].frow <= row && row < tblocks[ti].lrow) {
                ti += 1;
                assert!(
                    ti < tblocks.len(),
                    "source row {row} missing from target panel {j} (symbolic closure violated)"
                );
            }
            out.push(tblocks[ti].local_offset + (row - tblocks[ti].frow));
            glob.push(row);
        }
    }
}

// ---------------------------------------------------------------------
// Public entry: factorize over a runtime
// ---------------------------------------------------------------------

/// Execution-time options for one factorization run (as opposed to the
/// analysis-time [`crate::SolverOptions`]): the fault-tolerance
/// configuration handed to the runtime engine, the memory-budget spill
/// directory, plus the static-pivot override used by the adaptive retry
/// loop.
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Runtime fault layer: injection plan, retry policy, stall watchdog,
    /// and the memory budget (`RunConfig::budget`) every allocation is
    /// charged to.
    pub run: RunConfig,
    /// Overrides [`crate::SolverOptions::static_pivot_epsilon`] when set.
    /// The symbolic structure does not depend on the threshold, so the
    /// recovery loop can escalate it without re-running the analysis.
    pub epsilon_override: Option<f64>,
    /// Base directory for spilled panels when the budget has a hard cap
    /// (default: system temp dir).
    pub spill_dir: Option<std::path::PathBuf>,
}

/// How a factorization went: the data behind the paper-style run logs and
/// the recovery loop's decisions.
#[derive(Debug, Clone, Default)]
pub struct FactorStats {
    /// Static-pivot epsilon actually used (threshold = ε·‖A‖∞).
    pub epsilon: f64,
    /// Every epsilon tried by the adaptive recovery loop, in order; the
    /// last entry produced these factors. A single-attempt factorization
    /// has exactly one entry.
    pub epsilon_history: Vec<f64>,
    /// Factorization attempts performed by the recovery loop (≥ 1).
    pub attempts: u32,
    /// The runtime engine's execution report (task counts, retries,
    /// injected faults, memory counters, elapsed time).
    pub run: RunReport,
}

/// The numeric factors produced by [`Analysis::factorize`].
pub struct Factors<'a, T: Scalar> {
    /// The analysis this factorization is based on.
    pub analysis: &'a Analysis,
    /// Coefficient storage (L, and Uᵀ for LU).
    pub tab: CoefTab<T>,
    /// LDLᵀ diagonal (empty for other kinds).
    pub d: Vec<T>,
    /// Number of pivots bumped by static pivoting.
    pub pivots_repaired: usize,
    /// Execution statistics (engine report, pivot-escalation history).
    pub stats: FactorStats,
    /// Span recorder inherited from the factorizing [`ExecOptions`]; the
    /// solve and refine phases record into it when present.
    pub trace: Option<std::sync::Arc<dagfact_rt::TraceRecorder>>,
}

impl Analysis {
    /// Numerically factorize `a` on `nthreads` workers of the chosen
    /// runtime. `a` must have the analyzed pattern (same matrix order; a
    /// superset pattern is rejected).
    pub fn factorize<'a, T: Scalar>(
        &'a self,
        a: &CscMatrix<T>,
        runtime: RuntimeKind,
        nthreads: usize,
    ) -> Result<Factors<'a, T>, SolverError> {
        self.factorize_with(a, runtime, nthreads, &ExecOptions::default())
    }

    /// [`Analysis::factorize`] with explicit execution options: a fault
    /// plan and retry/watchdog configuration for the engine, an optional
    /// memory budget (allocation accounting, pressure-aware degradation,
    /// out-of-core spilling), and an optional static-pivot override.
    /// Engine failures (task panics, exhausted retry budgets, scheduler
    /// stalls) surface as [`SolverError::Engine`]; a post-factorization
    /// sweep rejects non-finite coefficients with
    /// [`SolverError::NonFinite`].
    pub fn factorize_with<'a, T: Scalar>(
        &'a self,
        a: &CscMatrix<T>,
        runtime: RuntimeKind,
        nthreads: usize,
        exec: &ExecOptions,
    ) -> Result<Factors<'a, T>, SolverError> {
        if a.nrows() != self.symbol.n || a.ncols() != self.symbol.n {
            return Err(SolverError::PatternMismatch(format!(
                "analyzed order {} but matrix is {}x{}",
                self.symbol.n,
                a.nrows(),
                a.ncols()
            )));
        }
        let nthreads = nthreads.max(1);
        // Wire the fault plan into the budget before assembly so every
        // charge — including assembly-phase ones — sees injected faults.
        if let (Some(b), Some(plan)) = (&exec.run.budget, &exec.run.fault_plan) {
            b.set_fault_plan(plan.clone());
        }
        let mem = MemoryOptions {
            budget: exec.run.budget.clone(),
            spill_dir: exec.spill_dir.clone(),
        };
        let tracer = exec.run.trace.clone();
        if let Some(rec) = &tracer {
            // A recovery-loop retry re-runs the numeric phase with task
            // ids starting over: only the final attempt's timeline should
            // be analyzed (phase spans are kept).
            rec.reset_tasks();
        }
        let tab = match &tracer {
            Some(rec) => rec.phase("assembly", || CoefTab::assemble_with(self, a, &mem))?,
            None => CoefTab::assemble_with(self, a, &mem)?,
        };
        let d_bytes = self.symbol.n * std::mem::size_of::<T>();
        if let Some(b) = &exec.run.budget {
            // The diagonal is O(n) — forced (never degrades), but still
            // visible to accounting and injection.
            b.charge_forced(d_bytes, site::DIAG)
                .map_err(SolverError::from_budget)?;
            b.end_phase("assembly");
        }
        let d: SharedSlice<T> = SharedSlice::from_vec(vec![T::zero(); self.symbol.n]);
        // Static pivoting threshold ε·‖A‖∞ (PaStiX-style); Cholesky has
        // its own positivity check instead.
        let epsilon = exec
            .epsilon_override
            .unwrap_or(self.options.static_pivot_epsilon);
        let threshold = if self.facto == FactoKind::Cholesky {
            0.0
        } else {
            epsilon * a.norm_inf().max(1.0)
        };
        let ctx = NumericCtx {
            analysis: self,
            tab: &tab,
            d: &d,
            threshold,
            fault: exec.run.fault_plan.clone(),
            budget: exec.run.budget.clone(),
            engine_retries: exec.run.retry.max_attempts > 1,
            remaining_reads: self
                .symbol
                .cblks
                .iter()
                .map(|cb| AtomicUsize::new(cb.block_end - cb.block_begin - 1))
                .collect(),
            pivots_repaired: AtomicUsize::new(0),
            error: Mutex::new(None),
            workspaces: (0..nthreads).map(|_| Mutex::new(Workspace::default())).collect(),
            panel_locks: (0..self.symbol.ncblk()).map(|_| Mutex::new(())).collect(),
        };
        let run_numeric = || -> Result<RunReport, SolverError> {
            let report = match runtime {
                RuntimeKind::Native => self.run_native_engine(&ctx, nthreads, exec.run.clone()),
                RuntimeKind::Dataflow => self.run_dataflow_engine(&ctx, nthreads, exec.run.clone()),
                RuntimeKind::Ptg => self.run_ptg_engine(&ctx, nthreads, exec.run.clone()),
            };
            // A task-level error is the root cause when present (the
            // engine drains cleanly around it); otherwise an engine error
            // is fatal on its own.
            if let Some(e) = ctx.error.lock().take() {
                return Err(e);
            }
            let report = report?;
            self.sweep_non_finite(&tab, &d)?;
            Ok(report)
        };
        let outcome: Result<RunReport, SolverError> = match &tracer {
            Some(rec) => rec.phase("numeric", run_numeric),
            None => run_numeric(),
        };
        // Scratch charges are released on every path so a solver-level
        // retry starts from a balanced ledger (the coefficient panels
        // release through `CoefTab`'s own drop).
        if let Some(b) = &exec.run.budget {
            for wsm in &ctx.workspaces {
                let mut ws = wsm.lock();
                b.release(ws.tmp_charged);
                ws.tmp_charged = 0;
            }
            b.release(d_bytes);
            b.end_phase("factorization");
        }
        let mut report = outcome?;
        if let Some(b) = &exec.run.budget {
            // Refresh: the engine's snapshot predates the sweep and the
            // scratch releases above.
            report.memory = Some(b.stats());
        }
        // ORDERING: statistics counter, read after the engine's join
        // barrier — no concurrent writer remains.
        let pivots = ctx.pivots_repaired.load(Ordering::Relaxed);
        Ok(Factors {
            analysis: self,
            tab,
            d: d.into_vec(),
            pivots_repaired: pivots,
            stats: FactorStats {
                epsilon,
                epsilon_history: vec![epsilon],
                attempts: 1,
                run: report,
            },
            trace: tracer,
        })
    }

    /// Post-factorization scan for NaN/Inf coefficients: numeric breakdown
    /// the pivot checks cannot see (corruption in off-diagonal blocks
    /// never touched by a later pivot) must not reach the solve phase.
    pub(crate) fn sweep_non_finite<T: Scalar>(
        &self,
        tab: &CoefTab<T>,
        d: &SharedSlice<T>,
    ) -> Result<(), SolverError> {
        let finite = |v: &[T]| v.iter().all(|x| x.modulus().is_finite());
        let symbol = &self.symbol;
        for c in 0..symbol.ncblk() {
            let lp = tab.pin_l(symbol, c)?;
            // SAFETY: the engine has quiesced; no worker holds a borrow.
            if !finite(unsafe { lp.slice() }) {
                return Err(SolverError::NonFinite { task: "L", block: c });
            }
            if tab.has_u() {
                let up = tab.pin_u(symbol, c)?;
                if !finite(unsafe { up.slice() }) {
                    return Err(SolverError::NonFinite { task: "U", block: c });
                }
            }
            if self.facto == FactoKind::Ldlt {
                let cb = &symbol.cblks[c];
                let dr = unsafe { d.range(cb.fcol..cb.lcol) };
                if !finite(dr) {
                    return Err(SolverError::NonFinite { task: "D", block: c });
                }
            }
        }
        Ok(())
    }

    fn run_native_engine<T: Scalar>(
        &self,
        ctx: &NumericCtx<'_, T>,
        nthreads: usize,
        config: RunConfig,
    ) -> Result<RunReport, EngineError> {
        let graph = OneDGraph::build(&self.symbol);
        let costs = self.costs(T::IS_COMPLEX);
        let prio = self.priorities(&costs);
        let owners = self.static_owners(&costs, nthreads);
        let tasks: Vec<NativeTask> = (0..self.symbol.ncblk())
            .map(|c| NativeTask {
                owner: owners[c],
                npred: graph.npred[c],
                succs: graph.succs[c].clone(),
                priority: prio[c],
            })
            .collect();
        if let Some(rec) = &config.trace {
            // Fused 1D tasks: the task id IS the panel; the flop count
            // bundles the panel with all its updates (the cost model's
            // task_1d, so GFLOP/s matches the schedule's denominator).
            for c in 0..self.symbol.ncblk() {
                rec.set_task_meta(c, "1d-panel", c, costs.task_1d(&self.symbol, c));
            }
            rec.set_edges(
                tasks
                    .iter()
                    .enumerate()
                    .flat_map(|(t, task)| task.succs.iter().map(move |&s| (t, s)))
                    .collect(),
            );
        }
        run_native_checked(&tasks, nthreads, config, |c, worker| ctx.one_d_task(c, worker))
    }

    fn run_dataflow_engine<T: Scalar>(
        &self,
        ctx: &NumericCtx<'_, T>,
        nthreads: usize,
        config: RunConfig,
    ) -> Result<RunReport, EngineError> {
        // Sequential submission in the solver's program order — panel k,
        // then the updates it generates, ascending k — exactly "the simple
        // sequential submission loops typically used with STARPU" (§IV).
        // The engine infers the DAG from the R/RW hazards alone.
        let costs = self.costs(T::IS_COMPLEX);
        let prio = self.priorities(&costs);
        let mut g = DataflowGraph::new(self.symbol.ncblk());
        for (cblk, &pr) in prio.iter().enumerate().take(self.symbol.ncblk()) {
            let id = g.submit(&[(cblk, AccessMode::ReadWrite)], pr, move |w| {
                ctx.panel_task(cblk, w)
            });
            if let Some(rec) = &config.trace {
                rec.set_task_meta(id, "panel", cblk, costs.panel[cblk]);
            }
            let cb = &self.symbol.cblks[cblk];
            for block in (cb.block_begin + 1)..cb.block_end {
                let target = self.symbol.blocks[block].facing;
                let id = g.submit(
                    &[(cblk, AccessMode::Read), (target, AccessMode::ReadWrite)],
                    pr,
                    move |w| ctx.update_task(cblk, block, w, None, false),
                );
                if let Some(rec) = &config.trace {
                    rec.set_task_meta(id, "update", cblk, costs.update[block]);
                }
            }
        }
        if let Some(rec) = &config.trace {
            rec.set_edges(g.edges());
        }
        g.execute_checked(nthreads, config)
    }

    fn run_ptg_engine<T: Scalar>(
        &self,
        ctx: &NumericCtx<'_, T>,
        nthreads: usize,
        config: RunConfig,
    ) -> Result<RunReport, EngineError> {
        struct Program<'c, 'a, T: Scalar> {
            ctx: &'c NumericCtx<'a, T>,
            graph: TaskGraph,
            prio: Vec<f64>,
        }
        impl<T: Scalar> PtgProgram for Program<'_, '_, T> {
            fn num_tasks(&self) -> usize {
                self.graph.len()
            }
            fn num_predecessors(&self, t: usize) -> u32 {
                self.graph.npred[t]
            }
            fn successors(&self, t: usize, out: &mut Vec<usize>) {
                out.extend_from_slice(&self.graph.succs[t]);
            }
            fn priority(&self, t: usize) -> f64 {
                match self.graph.tasks[t] {
                    TaskKind::Panel { cblk } => self.prio[cblk],
                    TaskKind::Update { cblk, .. } => self.prio[cblk],
                }
            }
            fn execute(&self, t: usize, worker: usize) {
                match self.graph.tasks[t] {
                    TaskKind::Panel { cblk } => self.ctx.panel_task(cblk, worker),
                    TaskKind::Update { cblk, block, .. } => {
                        self.ctx.update_task(cblk, block, worker, None, false)
                    }
                }
            }
        }
        let costs = self.costs(T::IS_COMPLEX);
        let program = Program {
            ctx,
            graph: TaskGraph::build(&self.symbol),
            prio: self.priorities(&costs),
        };
        if let Some(rec) = &config.trace {
            for t in 0..program.graph.len() {
                match program.graph.tasks[t] {
                    TaskKind::Panel { cblk } => {
                        rec.set_task_meta(t, "panel", cblk, costs.panel[cblk]);
                    }
                    TaskKind::Update { cblk, block, .. } => {
                        rec.set_task_meta(t, "update", cblk, costs.update[block]);
                    }
                }
            }
            rec.set_edges(
                program
                    .graph
                    .succs
                    .iter()
                    .enumerate()
                    .flat_map(|(t, succs)| succs.iter().map(move |&s| (t, s)))
                    .collect(),
            );
        }
        run_ptg_checked(&program, nthreads, config)
    }
}
