//! The analysis phase: ordering → symbolic factorization → block
//! structure → cost model (§III of the paper).
//!
//! Everything here is value-free. Thanks to static pivoting, the task DAG
//! produced once by [`Analysis::new`] is reused by every subsequent
//! numerical factorization, by all three runtimes, and by the platform
//! simulator.

use dagfact_order::{compute_ordering, OrderingKind, Permutation};
use dagfact_sparse::SparsityPattern;
use dagfact_symbolic::cost::{critical_path_priorities, static_schedule, CostModel, TaskCosts};
use dagfact_symbolic::counts::column_counts;
use dagfact_symbolic::etree::{elimination_tree, postorder, relabel_parent};
use dagfact_symbolic::structure::{SplitOptions, SymbolMatrix};
use dagfact_symbolic::supernode::{
    amalgamate, build_partition, detect_supernodes, AmalgamationOptions,
};
use dagfact_symbolic::FactoKind;

/// Analysis-phase tuning knobs.
#[derive(Debug, Clone)]
pub struct SolverOptions {
    /// Fill-reducing ordering (nested dissection by default, like
    /// PaStiX+SCOTCH).
    pub ordering: OrderingKind,
    /// Amalgamation fill budget; the paper raises it to 0.12 to build
    /// GPU-sized blocks.
    pub amalgamation: AmalgamationOptions,
    /// Vertical panel splitting (parallelism knob of §III).
    pub split: SplitOptions,
    /// Static-pivoting threshold, as a multiple of `‖A‖∞·ε`; 0 disables
    /// pivot repair.
    pub static_pivot_epsilon: f64,
    /// Upper bound on total factorization attempts in the adaptive
    /// recovery loop ([`crate::Solver`]): on numeric breakdown (zero or
    /// non-finite pivots, corrupted coefficients, stalled refinement) the
    /// solver re-factorizes with the static-pivot threshold escalated
    /// ×100 per attempt, up to this many attempts. 1 disables recovery.
    pub max_refactor_attempts: u32,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            ordering: OrderingKind::NestedDissection,
            amalgamation: AmalgamationOptions::default(),
            split: SplitOptions::default(),
            static_pivot_epsilon: 1e-8,
            max_refactor_attempts: 4,
        }
    }
}

/// Headline numbers of an analyzed problem — the columns of the paper's
/// Table I.
#[derive(Debug, Clone)]
pub struct AnalysisStats {
    /// Matrix order.
    pub n: usize,
    /// nnz of the (symmetrized) input pattern.
    pub nnz_a: usize,
    /// Predicted nnz of one factor.
    pub nnz_l: usize,
    /// Factorization flops in real arithmetic.
    pub flops_real: f64,
    /// Factorization flops in double-complex arithmetic.
    pub flops_complex: f64,
    /// Number of panels (column blocks).
    pub ncblk: usize,
    /// Number of blocks (= bound on update-task count, §V).
    pub nblocks: usize,
}

/// The result of the analysis phase: permutation + block symbolic
/// structure + per-task costs, ready to drive numeric factorization or
/// simulation.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Factorization kind this analysis was built for.
    pub facto: FactoKind,
    /// Combined fill-reducing + postorder permutation (`perm[old] = new`).
    pub perm: Permutation,
    /// Block symbolic structure of the factor.
    pub symbol: SymbolMatrix,
    /// nnz of the symmetrized pattern (for stats).
    pub nnz_a: usize,
    /// Options the analysis was built with.
    pub options: SolverOptions,
}

impl Analysis {
    /// Analyze a pattern for the given factorization kind.
    ///
    /// The pattern may be structurally unsymmetric: like PaStiX, the
    /// analysis works on `A + Aᵀ` (§III).
    pub fn new(pattern: &SparsityPattern, facto: FactoKind, options: &SolverOptions) -> Analysis {
        Self::new_traced(pattern, facto, options, None)
    }

    /// [`Analysis::new`] with an optional span recorder: the ordering and
    /// the symbolic factorization are recorded as `order` / `symbolic`
    /// phase spans (see [`dagfact_rt::TraceRecorder`]).
    pub fn new_traced(
        pattern: &SparsityPattern,
        facto: FactoKind,
        options: &SolverOptions,
        trace: Option<&dagfact_rt::TraceRecorder>,
    ) -> Analysis {
        assert_eq!(
            pattern.nrows(),
            pattern.ncols(),
            "direct solvers need square matrices"
        );
        let sym = pattern.symmetrize();
        // 1) Fill-reducing ordering.
        let order_from = trace.map(dagfact_rt::TraceRecorder::now_ns);
        let fill_perm = compute_ordering(&sym, options.ordering);
        let permuted = sym.permute_symmetric(fill_perm.perm());
        if let (Some(rec), Some(from)) = (trace, order_from) {
            rec.phase_from("order", from);
        }
        let symbolic_from = trace.map(dagfact_rt::TraceRecorder::now_ns);
        // 2) Elimination tree + postorder relabeling (supernode columns
        //    must be consecutive).
        let parent = elimination_tree(&permuted);
        let post = postorder(&parent);
        // `post[k]` is the pre-postorder label of new column `k`, i.e. the
        // gather form; `from_iperm` converts it to the scatter form that
        // `permute_symmetric` expects.
        let post_perm = Permutation::from_iperm(post.clone());
        let permuted = permuted.permute_symmetric(post_perm.perm());
        let parent = relabel_parent(&parent, &post);
        let perm = fill_perm.then(&post_perm);
        // 3) Column counts, supernodes, amalgamation, splitting.
        let (cc, _nnzl) = column_counts(&permuted, &parent);
        let first = detect_supernodes(&parent, &cc);
        let partition = build_partition(&permuted, &parent, first);
        let partition = amalgamate(partition, &options.amalgamation);
        let symbol = SymbolMatrix::from_partition(&partition, &options.split);
        debug_assert_eq!(symbol.validate(), Ok(()));
        if let (Some(rec), Some(from)) = (trace, symbolic_from) {
            rec.phase_from("symbolic", from);
        }
        Analysis {
            facto,
            perm,
            symbol,
            nnz_a: sym.nnz(),
            options: options.clone(),
        }
    }

    /// Per-task flop costs for the given arithmetic.
    pub fn costs(&self, complex: bool) -> TaskCosts {
        let model = if complex {
            CostModel::complex(self.facto)
        } else {
            CostModel::real(self.facto)
        };
        TaskCosts::compute(&self.symbol, &model)
    }

    /// Critical-path priorities of the panels.
    pub fn priorities(&self, costs: &TaskCosts) -> Vec<f64> {
        critical_path_priorities(&self.symbol, costs)
    }

    /// Static worker assignment of the 1D tasks (PaStiX analyze-time
    /// mapping) for `nworkers`.
    pub fn static_owners(&self, costs: &TaskCosts, nworkers: usize) -> Vec<usize> {
        static_schedule(&self.symbol, costs, nworkers).owner
    }

    /// Table-I style statistics.
    pub fn stats(&self) -> AnalysisStats {
        let real = self.costs(false);
        let complex = self.costs(true);
        AnalysisStats {
            n: self.symbol.n,
            nnz_a: self.nnz_a,
            nnz_l: self.symbol.nnz_factor(),
            flops_real: real.total,
            flops_complex: complex.total,
            ncblk: self.symbol.ncblk(),
            nblocks: self.symbol.blocks.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagfact_sparse::gen::{grid_laplacian_2d, grid_laplacian_3d, random_spd};

    #[test]
    fn analysis_pipeline_produces_valid_symbol() {
        let a = grid_laplacian_3d(8, 8, 8);
        let an = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
        an.symbol.validate().unwrap();
        assert_eq!(an.symbol.n, 512);
        assert_eq!(an.perm.len(), 512);
        let stats = an.stats();
        assert!(stats.nnz_l >= (stats.nnz_a - stats.n) / 2 + stats.n);
        assert!(stats.flops_real > 0.0);
        assert!(stats.flops_complex > 4.0 * stats.flops_real * 0.9);
    }

    #[test]
    fn nested_dissection_beats_natural_on_fill() {
        let a = grid_laplacian_2d(24, 24);
        let nd = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
        let natural = Analysis::new(
            a.pattern(),
            FactoKind::Cholesky,
            &SolverOptions {
                ordering: OrderingKind::Natural,
                ..SolverOptions::default()
            },
        );
        assert!(
            nd.stats().flops_real < natural.stats().flops_real,
            "ND {} vs natural {}",
            nd.stats().flops_real,
            natural.stats().flops_real
        );
    }

    #[test]
    fn lu_doubles_update_flops() {
        let a = random_spd(120, 4, 3);
        let chol = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
        let lu = Analysis::new(a.pattern(), FactoKind::Lu, &SolverOptions::default());
        let fc = chol.stats().flops_real;
        let fl = lu.stats().flops_real;
        assert!(fl > 1.8 * fc && fl < 2.3 * fc, "{fc} vs {fl}");
    }

    #[test]
    fn permutation_is_consistent_with_symbol_width() {
        let a = random_spd(200, 3, 9);
        let an = Analysis::new(a.pattern(), FactoKind::Ldlt, &SolverOptions::default());
        // Every column covered by exactly one panel.
        let mut seen = vec![false; 200];
        for c in 0..an.symbol.ncblk() {
            let cb = &an.symbol.cblks[c];
            for sj in &mut seen[cb.fcol..cb.lcol] {
                assert!(!*sj);
                *sj = true;
            }
        }
        assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn static_owners_cover_workers() {
        let a = grid_laplacian_2d(20, 20);
        let an = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
        let costs = an.costs(false);
        let owners = an.static_owners(&costs, 4);
        assert_eq!(owners.len(), an.symbol.ncblk());
        let used: std::collections::HashSet<usize> = owners.iter().copied().collect();
        assert!(used.len() > 1, "static schedule used a single worker");
        assert!(used.iter().all(|&w| w < 4));
    }
}
