//! Coefficient storage: the dense panels of the factor.
//!
//! Each column block of the symbol structure owns one dense column-major
//! panel (`stride × width`). PaStiX calls this the *coeftab*. For LU two
//! coeftabs exist: `L` (which also holds the full, square diagonal blocks)
//! and `U`, stored **transposed** so the U panel shares the L panel's row
//! structure and every kernel stays column-major.

use crate::analysis::Analysis;
use dagfact_kernels::Scalar;
use dagfact_rt::SharedSlice;
use dagfact_sparse::CscMatrix;
use dagfact_symbolic::structure::SymbolMatrix;
use dagfact_symbolic::FactoKind;

/// Offsets of each panel inside one flat coefficient array.
#[derive(Debug, Clone)]
pub struct PanelLayout {
    /// Start offset of each panel; panel `c` occupies
    /// `offset[c]..offset[c] + stride_c * width_c`.
    pub offset: Vec<usize>,
    /// Total length.
    pub len: usize,
}

impl PanelLayout {
    /// Compute the layout for a symbol structure.
    pub fn new(symbol: &SymbolMatrix) -> PanelLayout {
        let mut offset = Vec::with_capacity(symbol.ncblk());
        let mut len = 0usize;
        for cb in &symbol.cblks {
            offset.push(len);
            len += cb.stride * cb.width();
        }
        PanelLayout { offset, len }
    }

    /// Range of panel `c` given its symbol.
    pub fn panel_range(&self, symbol: &SymbolMatrix, c: usize) -> core::ops::Range<usize> {
        let cb = &symbol.cblks[c];
        self.offset[c]..self.offset[c] + cb.stride * cb.width()
    }
}

/// The numeric storage of a factorization in progress.
pub struct CoefTab<T> {
    /// Panel layout shared by both sides.
    pub layout: PanelLayout,
    /// L coefficients (and full diagonal blocks).
    pub lcoef: SharedSlice<T>,
    /// Uᵀ coefficients (LU only; empty otherwise).
    pub ucoef: SharedSlice<T>,
}

impl<T: Scalar> CoefTab<T> {
    /// Allocate zeroed storage and scatter the permuted matrix entries
    /// into the panels ("coefficient initialization").
    ///
    /// `a` is the *original* (unpermuted) matrix; entries are routed
    /// through the analysis permutation. Structural zeros of the factor
    /// (fill-in) stay zero.
    pub fn assemble(analysis: &Analysis, a: &CscMatrix<T>) -> CoefTab<T> {
        let symbol = &analysis.symbol;
        let layout = PanelLayout::new(symbol);
        let lu = analysis.facto == FactoKind::Lu;
        let lcoef: SharedSlice<T> = SharedSlice::from_vec(vec![T::zero(); layout.len]);
        let ucoef: SharedSlice<T> =
            SharedSlice::from_vec(vec![T::zero(); if lu { layout.len } else { 0 }]);
        {
            // SAFETY: exclusive access during assembly (no tasks running).
            let l = unsafe { lcoef.slice_mut() };
            let u = unsafe { ucoef.slice_mut() };
            let perm = analysis.perm.perm();
            for oldj in 0..a.ncols() {
                for (&oldi, &v) in a.col_rows(oldj).iter().zip(a.col_values(oldj)) {
                    let i = perm[oldi];
                    let j = perm[oldj];
                    if i >= j {
                        // Lower triangle (or diagonal): L panel of cblk(j).
                        let c = symbol.col_to_cblk[j];
                        let cb = &symbol.cblks[c];
                        let row = symbol.row_offset_in_panel(c, i);
                        l[layout.offset[c] + (j - cb.fcol) * cb.stride + row] += v;
                    } else if !lu {
                        // Symmetric storage: the caller may have provided a
                        // fully-stored symmetric matrix; the upper entry
                        // mirrors an existing lower one — skip it.
                        continue;
                    } else {
                        // Strict upper triangle for LU: U[i, j] with i < j.
                        let c = symbol.col_to_cblk[i];
                        let cb = &symbol.cblks[c];
                        if j < cb.lcol {
                            // Inside the diagonal block: stored in L's full
                            // square diagonal block.
                            let row = symbol.row_offset_in_panel(c, i);
                            l[layout.offset[c] + (j - cb.fcol) * cb.stride + row] += v;
                        } else {
                            // Below-diagonal U entry, stored transposed:
                            // Uᵀ[j, i].
                            let row = symbol.row_offset_in_panel(c, j);
                            u[layout.offset[c] + (i - cb.fcol) * cb.stride + row] += v;
                        }
                    }
                }
            }
        }
        CoefTab {
            layout,
            lcoef,
            ucoef,
        }
    }

    /// Immutable view of an L panel (unsafe contract: no concurrent
    /// writers — guaranteed after factorization completes).
    ///
    /// # Safety
    /// See [`SharedSlice::slice`].
    pub unsafe fn l_panel(&self, symbol: &SymbolMatrix, c: usize) -> &[T] {
        unsafe { &self.lcoef.slice()[self.layout.panel_range(symbol, c)] }
    }

    /// Immutable view of a Uᵀ panel.
    ///
    /// # Safety
    /// See [`SharedSlice::slice`].
    pub unsafe fn u_panel(&self, symbol: &SymbolMatrix, c: usize) -> &[T] {
        unsafe { &self.ucoef.slice()[self.layout.panel_range(symbol, c)] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::SolverOptions;
    use dagfact_sparse::gen::{convection_diffusion_3d, grid_laplacian_2d};
    use dagfact_symbolic::FactoKind;

    #[test]
    fn assembly_places_every_symmetric_entry() {
        let a = grid_laplacian_2d(6, 5);
        let an = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
        let tab = CoefTab::assemble(&an, &a);
        let symbol = &an.symbol;
        let l = unsafe { tab.lcoef.slice() };
        // Every (i >= j) permuted entry must be found at its slot.
        let perm = an.perm.perm();
        let mut placed = 0usize;
        for oldj in 0..a.ncols() {
            for (&oldi, &v) in a.col_rows(oldj).iter().zip(a.col_values(oldj)) {
                let (i, j) = (perm[oldi], perm[oldj]);
                if i < j {
                    continue;
                }
                let c = symbol.col_to_cblk[j];
                let cb = &symbol.cblks[c];
                let row = symbol.row_offset_in_panel(c, i);
                let got = l[tab.layout.offset[c] + (j - cb.fcol) * cb.stride + row];
                assert_eq!(got, v, "entry ({oldi},{oldj})");
                placed += 1;
            }
        }
        // Lower triangle including diagonal of a symmetric matrix.
        assert_eq!(placed, (a.nnz() - a.nrows()) / 2 + a.nrows());
        // Total mass conserved (sum of placed values = sum of lower tri).
        let total: f64 = l.iter().sum();
        let expect: f64 = (0..a.ncols())
            .flat_map(|j| {
                a.col_rows(j)
                    .iter()
                    .zip(a.col_values(j))
                    .filter(move |&(&i, _)| perm[i] >= perm[j])
                    .map(|(_, &v)| v)
            })
            .sum();
        assert!((total - expect).abs() < 1e-12);
    }

    #[test]
    fn lu_assembly_splits_lower_and_upper() {
        let a = convection_diffusion_3d(4, 4, 3, 0.3);
        let an = Analysis::new(a.pattern(), FactoKind::Lu, &SolverOptions::default());
        let tab = CoefTab::assemble(&an, &a);
        assert_eq!(tab.ucoef.len(), tab.lcoef.len());
        let l = unsafe { tab.lcoef.slice() };
        let u = unsafe { tab.ucoef.slice() };
        // All value mass present across the two arrays.
        let total: f64 = l.iter().chain(u.iter()).sum();
        let expect: f64 = a.values().iter().sum();
        assert!((total - expect).abs() < 1e-10, "{total} vs {expect}");
        // U side is not empty for a convective problem.
        assert!(u.iter().any(|&v| v != 0.0));
    }
}
