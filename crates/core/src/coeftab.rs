//! Coefficient storage: the dense panels of the factor, behind a pager.
//!
//! Each column block of the symbol structure owns one dense column-major
//! panel (`stride × width`). PaStiX calls this the *coeftab*. For LU two
//! coeftabs exist: `L` (which also holds the full, square diagonal blocks)
//! and `U`, stored **transposed** so the U panel shares the L panel's row
//! structure and every kernel stays column-major.
//!
//! Storage is *per panel* (one slot each), which is what makes the
//! memory-budgeted mode possible: a panel can individually be
//!
//! * **unassembled** — its initial matrix entries held as a compact
//!   scatter list, materialized (allocated + assembled) on first touch;
//! * **resident** — a live dense allocation, charged to the
//!   [`MemoryBudget`];
//! * **spilled** — written to the disk-backed [`SpillStore`] and faulted
//!   back in on the next touch.
//!
//! Access goes through [`CoefTab::pin_l`]/[`CoefTab::pin_u`], which
//! return a [`PanelPin`] guard: while pins are outstanding the pager
//! will not evict the panel. Without a budget cap the tab behaves
//! exactly like the historical flat allocation — everything is
//! materialized eagerly at assembly and nothing ever spills — so the
//! unconstrained numeric path is unchanged.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, TryLockError};

use crate::analysis::Analysis;
use crate::spill::SpillStore;
use crate::SolverError;
use dagfact_kernels::Scalar;
use dagfact_rt::budget::{site, BudgetError, MemoryBudget};
use dagfact_sparse::CscMatrix;
use dagfact_symbolic::structure::SymbolMatrix;
use dagfact_symbolic::FactoKind;

/// Offsets of each panel inside one flat coefficient array. The layout
/// is still the canonical description of panel sizes (and what the
/// simulator costs against) even though storage is per-panel now.
#[derive(Debug, Clone)]
pub struct PanelLayout {
    /// Start offset of each panel; panel `c` occupies
    /// `offset[c]..offset[c] + stride_c * width_c`.
    pub offset: Vec<usize>,
    /// Total length.
    pub len: usize,
}

impl PanelLayout {
    /// Compute the layout for a symbol structure.
    pub fn new(symbol: &SymbolMatrix) -> PanelLayout {
        let mut offset = Vec::with_capacity(symbol.ncblk());
        let mut len = 0usize;
        for cb in &symbol.cblks {
            offset.push(len);
            len += cb.stride * cb.width();
        }
        PanelLayout { offset, len }
    }

    /// Range of panel `c` given its symbol.
    pub fn panel_range(&self, symbol: &SymbolMatrix, c: usize) -> core::ops::Range<usize> {
        let cb = &symbol.cblks[c];
        self.offset[c]..self.offset[c] + cb.stride * cb.width()
    }

    /// Length of panel `c`.
    pub fn panel_len(&self, symbol: &SymbolMatrix, c: usize) -> usize {
        let cb = &symbol.cblks[c];
        cb.stride * cb.width()
    }
}

/// Lifecycle of one panel's storage.
enum SlotState<T> {
    /// Not yet materialized: the panel's initial entries as
    /// `(local offset, value)` pairs, scattered on first touch.
    Unassembled(Vec<(usize, T)>),
    /// Live dense storage.
    Resident(Box<[T]>),
    /// On disk in the spill store.
    Spilled,
}

/// One panel slot: its state plus the pager bookkeeping.
struct Slot<T> {
    state: Mutex<SlotState<T>>,
    /// Outstanding [`PanelPin`]s; an evictor skips pinned slots.
    /// Increments happen under the state lock, so lock-plus-zero-check
    /// is a sound eviction guard; decrements (pin drops) are lock-free.
    pins: AtomicUsize,
    /// Lock-free mirror of `matches!(state, Resident)` for the eviction
    /// scan (conservative: transitions happen under the state lock).
    resident: AtomicBool,
    /// Last-touch stamp for LRU eviction.
    stamp: AtomicU64,
    /// All factorization consumers are done: preferred spill victim.
    retired: AtomicBool,
}

impl<T> Slot<T> {
    fn new(state: SlotState<T>, resident: bool) -> Slot<T> {
        Slot {
            state: Mutex::new(state),
            pins: AtomicUsize::new(0),
            resident: AtomicBool::new(resident),
            stamp: AtomicU64::new(0),
            retired: AtomicBool::new(false),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SlotState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII access to one resident panel. While alive, the pager will not
/// evict the panel; the pointer stays valid (the backing `Box` is only
/// moved out by eviction, which requires zero pins under the slot lock).
pub struct PanelPin<'a, T> {
    slot: &'a Slot<T>,
    ptr: *mut T,
    len: usize,
}

impl<T> PanelPin<'_, T> {
    /// Panel length in elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the panel empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Immutable view of the panel.
    ///
    /// # Safety
    /// The caller must guarantee no concurrent mutable access to this
    /// panel — the same happens-before contract as
    /// [`dagfact_rt::SharedSlice::slice`], discharged by the engines'
    /// dependency ordering (and machine-checked by `rt::verify`).
    pub unsafe fn slice(&self) -> &[T] {
        // SAFETY: ptr/len describe the resident allocation, kept alive
        // by the pin; aliasing discipline is the caller's contract.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Mutable view of the panel.
    ///
    /// # Safety
    /// The caller must guarantee *exclusive* access to this panel for
    /// the lifetime of the returned slice — same contract as
    /// [`dagfact_rt::SharedSlice::slice_mut`].
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self) -> &mut [T] {
        // SAFETY: as above, with exclusivity guaranteed by the caller.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

impl<T> Drop for PanelPin<'_, T> {
    fn drop(&mut self) {
        self.slot.pins.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Memory-management options for a factorization.
#[derive(Debug, Clone, Default)]
pub struct MemoryOptions {
    /// The ledger. `None` disables accounting entirely; a ledger without
    /// a cap tracks peaks but never degrades.
    pub budget: Option<Arc<MemoryBudget>>,
    /// Base directory for the spill store (default: system temp dir).
    pub spill_dir: Option<std::path::PathBuf>,
}

/// The numeric storage of a factorization in progress.
pub struct CoefTab<T> {
    /// Panel layout shared by both sides.
    pub layout: PanelLayout,
    /// Slots `0..ncblk` are the L side; `ncblk..2·ncblk` the Uᵀ side
    /// (LU only).
    slots: Vec<Slot<T>>,
    ncblk: usize,
    lu: bool,
    /// Lazy (pager) mode: set when the budget carries a hard cap.
    lazy: bool,
    budget: Option<Arc<MemoryBudget>>,
    spill: Option<SpillStore>,
    /// Bytes bulk-charged by the eager path, released on drop.
    eager_charged: usize,
    /// LRU clock.
    clock: AtomicU64,
}

impl<T: Scalar> CoefTab<T> {
    /// Allocate storage eagerly and scatter the permuted matrix entries
    /// into the panels ("coefficient initialization"), without memory
    /// accounting — the historical unbudgeted path.
    pub fn assemble(analysis: &Analysis, a: &CscMatrix<T>) -> CoefTab<T> {
        match Self::assemble_with(analysis, a, &MemoryOptions::default()) {
            Ok(tab) => tab,
            // Unreachable: with no budget nothing can fail.
            Err(e) => unreachable!("unbudgeted assembly failed: {e}"),
        }
    }

    /// Assemble under `mem`. Without a cap, every panel is materialized
    /// now (charging the ledger, if any, in bulk); with a cap, panels
    /// hold their entry lists and materialize on first touch so the
    /// working set — not the whole factor — must fit under the cap.
    ///
    /// `a` is the *original* (unpermuted) matrix; entries are routed
    /// through the analysis permutation. Structural zeros of the factor
    /// (fill-in) stay zero.
    pub fn assemble_with(
        analysis: &Analysis,
        a: &CscMatrix<T>,
        mem: &MemoryOptions,
    ) -> Result<CoefTab<T>, SolverError> {
        let symbol = &analysis.symbol;
        let layout = PanelLayout::new(symbol);
        let ncblk = symbol.ncblk();
        let lu = analysis.facto == FactoKind::Lu;
        let lazy = mem.budget.as_ref().is_some_and(|b| b.cap().is_some());
        let spill = if lazy {
            Some(
                SpillStore::create(mem.spill_dir.as_deref())
                    .map_err(|e| SolverError::Spill(e.to_string()))?,
            )
        } else {
            None
        };

        // Route every entry to its panel-local scatter list, in the same
        // global scan order the historical flat assembly used — per-slot
        // relative order (and therefore duplicate summation order) is
        // preserved, so the assembled values are bit-identical.
        let nsides = if lu { 2 * ncblk } else { ncblk };
        let mut entries: Vec<Vec<(usize, T)>> = (0..nsides).map(|_| Vec::new()).collect();
        let perm = analysis.perm.perm();
        for oldj in 0..a.ncols() {
            for (&oldi, &v) in a.col_rows(oldj).iter().zip(a.col_values(oldj)) {
                let i = perm[oldi];
                let j = perm[oldj];
                if i >= j {
                    // Lower triangle (or diagonal): L panel of cblk(j).
                    let c = symbol.col_to_cblk[j];
                    let cb = &symbol.cblks[c];
                    let row = symbol.row_offset_in_panel(c, i);
                    entries[c].push(((j - cb.fcol) * cb.stride + row, v));
                } else if !lu {
                    // Symmetric storage: the caller may have provided a
                    // fully-stored symmetric matrix; the upper entry
                    // mirrors an existing lower one — skip it.
                    continue;
                } else {
                    // Strict upper triangle for LU: U[i, j] with i < j.
                    let c = symbol.col_to_cblk[i];
                    let cb = &symbol.cblks[c];
                    if j < cb.lcol {
                        // Inside the diagonal block: stored in L's full
                        // square diagonal block.
                        let row = symbol.row_offset_in_panel(c, i);
                        entries[c].push(((j - cb.fcol) * cb.stride + row, v));
                    } else {
                        // Below-diagonal U entry, stored transposed:
                        // Uᵀ[j, i].
                        let row = symbol.row_offset_in_panel(c, j);
                        entries[ncblk + c].push(((i - cb.fcol) * cb.stride + row, v));
                    }
                }
            }
        }

        let esize = std::mem::size_of::<T>();
        let mut tab = CoefTab {
            layout,
            slots: Vec::with_capacity(nsides),
            ncblk,
            lu,
            lazy,
            budget: mem.budget.clone(),
            spill,
            eager_charged: 0,
            clock: AtomicU64::new(0),
        };

        if lazy {
            // Charge the entry plan; each panel's share is released as it
            // materializes. Panels themselves charge on first touch.
            let entry_size = std::mem::size_of::<(usize, T)>();
            let plan_bytes: usize = entries.iter().map(|e| e.len() * entry_size).sum();
            tab.charge_grow(plan_bytes, site::ASSEMBLY)?;
            for e in entries {
                tab.slots.push(Slot::new(SlotState::Unassembled(e), false));
            }
        } else {
            // Eager: bulk-charge each side, then materialize everything.
            if let Some(b) = &tab.budget {
                let l_bytes = tab.layout.len * esize;
                b.try_charge(l_bytes, site::COEFTAB_L)
                    .map_err(SolverError::from_budget)?;
                tab.eager_charged += l_bytes;
                if lu {
                    let u_bytes = tab.layout.len * esize;
                    if let Err(e) = b.try_charge(u_bytes, site::COEFTAB_U) {
                        b.release(tab.eager_charged);
                        tab.eager_charged = 0;
                        return Err(SolverError::from_budget(e));
                    }
                    tab.eager_charged += u_bytes;
                }
            }
            for (key, e) in entries.into_iter().enumerate() {
                let c = key % ncblk;
                let len = tab.layout.panel_len(symbol, c);
                let mut data = vec![T::zero(); len].into_boxed_slice();
                for (off, v) in e {
                    data[off] += v;
                }
                tab.slots.push(Slot::new(SlotState::Resident(data), true));
            }
        }
        Ok(tab)
    }

    /// Does this tab carry a U side?
    pub fn has_u(&self) -> bool {
        self.lu
    }

    /// Pin the L panel of column block `c`, materializing or faulting it
    /// in if needed.
    pub fn pin_l(&self, symbol: &SymbolMatrix, c: usize) -> Result<PanelPin<'_, T>, SolverError> {
        self.pin(c, self.layout.panel_len(symbol, c))
    }

    /// Pin the Uᵀ panel of column block `c` (LU only).
    pub fn pin_u(&self, symbol: &SymbolMatrix, c: usize) -> Result<PanelPin<'_, T>, SolverError> {
        debug_assert!(self.lu, "U panel requested for a non-LU factorization");
        self.pin(self.ncblk + c, self.layout.panel_len(symbol, c))
    }

    fn pin(&self, key: usize, len: usize) -> Result<PanelPin<'_, T>, SolverError> {
        let slot = &self.slots[key];
        let mut st = slot.lock();
        // ORDERING: the stamp is an LRU recency hint read under the slot
        // lock; a stale value only skews eviction order, never safety.
        slot.stamp
            .store(self.clock.fetch_add(1, Ordering::Relaxed) + 1, Ordering::Relaxed);
        let esize = std::mem::size_of::<T>();
        match &mut *st {
            SlotState::Resident(_) => {}
            SlotState::Unassembled(pending) => {
                // Materialize: charge, allocate zeroed, scatter entries.
                // Nothing is mutated before the charge succeeds, so an
                // injected failure here is retry-safe at any level.
                self.charge_grow(len * esize, site::PANEL_BASE + key)?;
                let entries = std::mem::take(pending);
                let entry_bytes = entries.len() * std::mem::size_of::<(usize, T)>();
                let mut data = vec![T::zero(); len].into_boxed_slice();
                for (off, v) in entries {
                    data[off] += v;
                }
                *st = SlotState::Resident(data);
                slot.resident.store(true, Ordering::Release);
                if let Some(b) = &self.budget {
                    // The entry plan's share of the ASSEMBLY charge is no
                    // longer held.
                    b.release(entry_bytes);
                }
            }
            SlotState::Spilled => {
                self.charge_grow(len * esize, site::SPILL_READBACK)?;
                let spill = self
                    .spill
                    .as_ref()
                    .ok_or_else(|| SolverError::Spill("panel spilled without a store".into()))?;
                let data = match spill.read::<T>(key, len) {
                    Ok(d) => d,
                    Err(e) => {
                        if let Some(b) = &self.budget {
                            b.release(len * esize);
                        }
                        return Err(SolverError::Spill(e.to_string()));
                    }
                };
                // The disk copy is stale the moment anyone writes the
                // panel again; a future eviction rewrites it.
                spill.remove(key);
                *st = SlotState::Resident(data);
                slot.resident.store(true, Ordering::Release);
                if let Some(b) = &self.budget {
                    b.note_fault_in();
                }
            }
        }
        slot.pins.fetch_add(1, Ordering::AcqRel);
        let ptr = match &mut *st {
            SlotState::Resident(data) => data.as_mut_ptr(),
            // Unreachable: both other arms above transition to Resident.
            _ => unreachable!("panel not resident after pin transition"),
        };
        Ok(PanelPin { slot, ptr, len })
    }

    /// [`CoefTab::pin_l`] for the solve phase, which has no error
    /// channel: injected allocation faults are transient by construction
    /// (each delivery consumes the plan's per-site failure budget), so
    /// the pin is simply retried; a genuine spill-store failure panics.
    pub fn pin_l_solve(&self, symbol: &SymbolMatrix, c: usize) -> PanelPin<'_, T> {
        loop {
            match self.pin_l(symbol, c) {
                Ok(p) => return p,
                Err(e) if e.is_transient_alloc() => continue,
                Err(e) => panic!("cannot fault L panel {c} back in for the solve: {e}"),
            }
        }
    }

    /// [`CoefTab::pin_u`], solve-phase variant (see
    /// [`CoefTab::pin_l_solve`]).
    pub fn pin_u_solve(&self, symbol: &SymbolMatrix, c: usize) -> PanelPin<'_, T> {
        loop {
            match self.pin_u(symbol, c) {
                Ok(p) => return p,
                Err(e) if e.is_transient_alloc() => continue,
                Err(e) => panic!("cannot fault U panel {c} back in for the solve: {e}"),
            }
        }
    }

    /// Mark column block `c`'s panels cold: the factorization will no
    /// longer touch them (all updates consuming them are done). Under
    /// high pressure they are spilled immediately; either way they are
    /// the preferred eviction victims from now on. The solve phase
    /// faults them back in through the pins.
    pub fn retire(&self, c: usize) {
        let keys: [Option<usize>; 2] =
            [Some(c), if self.lu { Some(self.ncblk + c) } else { None }];
        let eager_spill = self
            .budget
            .as_ref()
            .is_some_and(|b| b.should_spill() && self.spill.is_some());
        for key in keys.into_iter().flatten() {
            // SYNC: Release pairs with the Acquire scan of `s.retired`
            // in the eviction victim loop; the load goes through an
            // iterator local the pairing pass cannot resolve.
            self.slots[key].retired.store(true, Ordering::Release);
            if eager_spill {
                self.try_evict(key);
            }
        }
    }

    /// Charge `bytes` at `site`, evicting cold panels (and finally
    /// overcommitting) to guarantee progress. Only a single request
    /// larger than the whole cap — where spilling provably cannot help —
    /// or an injected fault is returned as an error.
    fn charge_grow(&self, bytes: usize, at: usize) -> Result<(), SolverError> {
        let Some(b) = &self.budget else {
            return Ok(());
        };
        loop {
            match b.try_charge(bytes, at) {
                Ok(()) => return Ok(()),
                Err(e @ BudgetError::Injected { .. }) => {
                    return Err(SolverError::from_budget(e))
                }
                Err(e @ BudgetError::Exceeded { .. }) => {
                    if b.cap().is_some_and(|cap| bytes > cap) {
                        // Even an empty ledger could not hold it.
                        return Err(SolverError::from_budget(e));
                    }
                    if !self.evict_one() {
                        // Nothing evictable (everything pinned or already
                        // spilled): overcommit rather than deadlock.
                        return b.charge_forced(bytes, at).map_err(SolverError::from_budget);
                    }
                }
            }
        }
    }

    /// Spill one unpinned resident panel — retired panels first, then
    /// least-recently-used. Returns `false` when nothing was evicted.
    fn evict_one(&self) -> bool {
        if self.spill.is_none() {
            return false;
        }
        let mut cands: Vec<(bool, u64, usize)> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.resident.load(Ordering::Acquire) && s.pins.load(Ordering::Acquire) == 0
            })
            .map(|(key, s)| {
                (
                    !s.retired.load(Ordering::Acquire),
                    // ORDERING: LRU recency hint; staleness only skews
                    // eviction order, never safety.
                    s.stamp.load(Ordering::Relaxed),
                    key,
                )
            })
            .collect();
        cands.sort_unstable();
        cands.into_iter().any(|(_, _, key)| self.try_evict(key))
    }

    /// Try to spill panel `key` right now. Fails (returns `false`) when
    /// the slot is locked, pinned, not resident, or the write errors.
    fn try_evict(&self, key: usize) -> bool {
        let Some(spill) = self.spill.as_ref() else {
            return false;
        };
        let slot = &self.slots[key];
        let mut st = match slot.state.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => return false,
        };
        if slot.pins.load(Ordering::Acquire) > 0 {
            return false;
        }
        let SlotState::Resident(data) = &*st else {
            return false;
        };
        match spill.write(key, data) {
            Ok(written) => {
                let freed = data.len() * std::mem::size_of::<T>();
                *st = SlotState::Spilled;
                slot.resident.store(false, Ordering::Release);
                if let Some(b) = &self.budget {
                    b.release(freed);
                    b.note_spill(written);
                }
                true
            }
            // An IO failure is not fatal here: the caller simply cannot
            // shed this panel and will overcommit instead.
            Err(_) => false,
        }
    }
}

impl<T> Drop for CoefTab<T> {
    fn drop(&mut self) {
        let Some(b) = self.budget.take() else {
            return;
        };
        if self.lazy {
            let entry_size = std::mem::size_of::<(usize, T)>();
            let esize = std::mem::size_of::<T>();
            for slot in &mut self.slots {
                match slot.state.get_mut().unwrap_or_else(PoisonError::into_inner) {
                    SlotState::Resident(d) => b.release(d.len() * esize),
                    SlotState::Unassembled(e) => b.release(e.len() * entry_size),
                    SlotState::Spilled => {}
                }
            }
        } else {
            b.release(self.eager_charged);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::SolverOptions;
    use dagfact_sparse::gen::{convection_diffusion_3d, grid_laplacian_2d};
    use dagfact_symbolic::FactoKind;

    #[test]
    fn assembly_places_every_symmetric_entry() {
        let a = grid_laplacian_2d(6, 5);
        let an = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
        let tab = CoefTab::assemble(&an, &a);
        let symbol = &an.symbol;
        // Every (i >= j) permuted entry must be found at its slot.
        let perm = an.perm.perm();
        let mut placed = 0usize;
        for oldj in 0..a.ncols() {
            for (&oldi, &v) in a.col_rows(oldj).iter().zip(a.col_values(oldj)) {
                let (i, j) = (perm[oldi], perm[oldj]);
                if i < j {
                    continue;
                }
                let c = symbol.col_to_cblk[j];
                let cb = &symbol.cblks[c];
                let row = symbol.row_offset_in_panel(c, i);
                let pin = tab.pin_l(symbol, c).expect("pin");
                // SAFETY: single-threaded test — no concurrent writer.
                let got = unsafe { pin.slice() }[(j - cb.fcol) * cb.stride + row];
                assert_eq!(got, v, "entry ({oldi},{oldj})");
                placed += 1;
            }
        }
        // Lower triangle including diagonal of a symmetric matrix.
        assert_eq!(placed, (a.nnz() - a.nrows()) / 2 + a.nrows());
        // Total mass conserved (sum of placed values = sum of lower tri).
        let total: f64 = (0..symbol.ncblk())
            .map(|c| {
                let pin = tab.pin_l(symbol, c).expect("pin");
                // SAFETY: single-threaded test — no concurrent writer.
                unsafe { pin.slice() }.iter().sum::<f64>()
            })
            .sum();
        let expect: f64 = (0..a.ncols())
            .flat_map(|j| {
                a.col_rows(j)
                    .iter()
                    .zip(a.col_values(j))
                    .filter(move |&(&i, _)| perm[i] >= perm[j])
                    .map(|(_, &v)| v)
            })
            .sum();
        assert!((total - expect).abs() < 1e-12);
    }

    #[test]
    fn lu_assembly_splits_lower_and_upper() {
        let a = convection_diffusion_3d(4, 4, 3, 0.3);
        let an = Analysis::new(a.pattern(), FactoKind::Lu, &SolverOptions::default());
        let tab = CoefTab::assemble(&an, &a);
        let symbol = &an.symbol;
        assert!(tab.has_u());
        // All value mass present across the two sides.
        let total: f64 = (0..symbol.ncblk())
            .map(|c| {
                let lp = tab.pin_l(symbol, c).expect("pin L");
                let up = tab.pin_u(symbol, c).expect("pin U");
                // SAFETY: single-threaded test — no concurrent writer.
                let l = unsafe { lp.slice() }.iter().sum::<f64>();
                let u = unsafe { up.slice() }.iter().sum::<f64>();
                l + u
            })
            .sum();
        let expect: f64 = a.values().iter().sum();
        assert!((total - expect).abs() < 1e-10, "{total} vs {expect}");
        // U side is not empty for a convective problem.
        let any_u = (0..symbol.ncblk()).any(|c| {
            let up = tab.pin_u(symbol, c).expect("pin U");
            // SAFETY: single-threaded test — no concurrent writer.
            unsafe { up.slice() }.iter().any(|&v| v != 0.0)
        });
        assert!(any_u);
    }

    #[test]
    fn lazy_mode_materializes_spills_and_faults_back_bit_exact() {
        let a = grid_laplacian_2d(8, 8);
        let an = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());

        // Reference: eager assembly.
        let eager = CoefTab::assemble(&an, &a);
        let symbol = &an.symbol;

        // Budgeted: a cap small enough to force paging but larger than
        // any single panel.
        let max_panel: usize = (0..symbol.ncblk())
            .map(|c| eager.layout.panel_len(symbol, c))
            .max()
            .unwrap_or(0)
            * std::mem::size_of::<f64>();
        let budget = MemoryBudget::with_cap((max_panel * 3).max(4096));
        let mem = MemoryOptions {
            budget: Some(budget.clone()),
            spill_dir: None,
        };
        let lazy = CoefTab::assemble_with(&an, &a, &mem).expect("lazy assemble");

        // Touch every panel in order (forces materialize + evictions),
        // then touch them all again (forces fault-ins) and compare.
        for c in 0..symbol.ncblk() {
            let _ = lazy.pin_l(symbol, c).expect("first touch");
            lazy.retire(c);
        }
        for c in 0..symbol.ncblk() {
            let lp = lazy.pin_l(symbol, c).expect("second touch");
            let ep = eager.pin_l(symbol, c).expect("eager pin");
            // SAFETY: single-threaded test — no concurrent writer.
            let (lzy, egr) = unsafe { (lp.slice(), ep.slice()) };
            for (x, y) in lzy.iter().zip(egr.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "panel {c} differs");
            }
        }
        let stats = budget.stats();
        assert!(stats.peak_bytes > 0);
        assert!(
            stats.spill_events > 0,
            "cap of 3 panels over {} panels must spill",
            symbol.ncblk()
        );
        assert!(stats.fault_in_events > 0, "second sweep must fault panels in");
        // Ledger stays consistent: nothing resident exceeds the peak.
        assert!(stats.used_bytes <= stats.peak_bytes);
    }

    #[test]
    fn pinned_panels_are_never_evicted() {
        let a = grid_laplacian_2d(8, 8);
        let an = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
        let symbol = &an.symbol;
        let layout = PanelLayout::new(symbol);
        let max_panel: usize = (0..symbol.ncblk())
            .map(|c| layout.panel_len(symbol, c))
            .max()
            .unwrap_or(0)
            * std::mem::size_of::<f64>();
        let budget = MemoryBudget::with_cap((max_panel * 2).max(2048));
        let mem = MemoryOptions {
            budget: Some(budget),
            spill_dir: None,
        };
        let tab = CoefTab::assemble_with(&an, &a, &mem).expect("assemble");
        let pin0 = tab.pin_l(symbol, 0).expect("pin 0");
        // SAFETY: single-threaded test — no concurrent writer.
        let before = unsafe { pin0.slice() }.to_vec();
        // Hammer the pager: materialize everything else while 0 is pinned.
        for c in 1..symbol.ncblk() {
            let _ = tab.pin_l(symbol, c).expect("pin");
        }
        // Panel 0 must still be resident and unchanged under the pin.
        // SAFETY: single-threaded test — no concurrent writer.
        let after = unsafe { pin0.slice() };
        for (x, y) in before.iter().zip(after.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn budget_release_on_drop_balances_ledger() {
        let a = grid_laplacian_2d(6, 6);
        let an = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
        let budget = MemoryBudget::unbounded();
        let mem = MemoryOptions {
            budget: Some(budget.clone()),
            spill_dir: None,
        };
        let tab = CoefTab::assemble_with(&an, &a, &mem).expect("assemble");
        assert!(budget.used() > 0, "eager assembly charges the ledger");
        drop(tab);
        assert_eq!(budget.used(), 0, "drop must release every charge");
        assert!(budget.peak() > 0);
    }
}
