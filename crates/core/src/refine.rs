//! Iterative refinement — the standard companion of static pivoting.
//!
//! PaStiX trades dynamic pivoting for a fixed task DAG; the numerical
//! accuracy lost on nearly-singular pivots is recovered by a few rounds of
//! residual correction: `r = b − A·x`, solve `A·δ = r`, `x ← x + δ`.

use crate::numeric::Factors;
use crate::SolverError;
use dagfact_kernels::Scalar;
use dagfact_sparse::CscMatrix;

/// Outcome of a refined solve.
#[derive(Debug, Clone)]
pub struct RefinedSolve<T> {
    /// The solution (the best iterate seen, if refinement stalled).
    pub x: Vec<T>,
    /// Backward-error history: ‖b − A·x‖∞ / (‖A‖∞·‖x‖∞ + ‖b‖∞) after each
    /// step (entry 0 is the unrefined solve).
    pub residuals: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// `true` when refinement diverged (the backward error grew over two
    /// consecutive corrections) and was cut short: the factorization is
    /// too inaccurate and a re-factorization with a larger static-pivot
    /// threshold is the appropriate remedy.
    pub stalled: bool,
}

impl<T: Scalar> Factors<'_, T> {
    /// Solve with iterative refinement against the original matrix `a`.
    /// Stops when the backward error drops below `tol`, after `max_iter`
    /// corrections, or as soon as divergence is detected (backward error
    /// growing across two consecutive iterations — see
    /// [`RefinedSolve::stalled`]); on divergence the best iterate seen is
    /// restored.
    pub fn solve_refined(
        &self,
        a: &CscMatrix<T>,
        b: &[T],
        max_iter: usize,
        tol: f64,
    ) -> RefinedSolve<T> {
        let n = b.len();
        let norm_a = a.norm_inf();
        let norm_b = inf_norm(b);
        let tracer = self.trace.as_deref();
        let mut x = match tracer {
            Some(rec) => rec.phase("solve", || self.solve(b)),
            None => self.solve(b),
        };
        let mut residuals = Vec::with_capacity(max_iter + 1);
        let mut r = vec![T::zero(); n];
        let mut iterations = 0;
        let mut best_x: Option<Vec<T>> = None;
        let mut best_berr = f64::INFINITY;
        let mut growths = 0usize;
        let mut stalled = false;
        let refine_from = tracer.map(|rec| rec.now_ns());
        for it in 0..=max_iter {
            // r = b - A x
            a.spmv(&x, &mut r);
            for (ri, &bi) in r.iter_mut().zip(b.iter()) {
                *ri = bi - *ri;
            }
            let berr = inf_norm(&r) / (norm_a * inf_norm(&x) + norm_b).max(f64::MIN_POSITIVE);
            // Divergence / stagnation detection (the LAPACK `gerfs`
            // criterion): a healthy correction shrinks the backward error
            // by orders of magnitude, so failing to even halve it twice in
            // a row — or growing it, or going non-finite — means the
            // factorization is too inaccurate for refinement to help.
            if let Some(&prev) = residuals.last() {
                growths = if !berr.is_finite() || berr > 0.5 * prev {
                    growths + 1
                } else {
                    0
                };
            }
            residuals.push(berr);
            if berr < best_berr {
                best_berr = berr;
                best_x = Some(x.clone());
            }
            if growths >= 2 || !berr.is_finite() {
                stalled = true;
                break;
            }
            if berr <= tol || it == max_iter {
                break;
            }
            let delta = self.solve(&r);
            for (xi, di) in x.iter_mut().zip(delta) {
                *xi += di;
            }
            iterations += 1;
        }
        if let (Some(rec), Some(from)) = (tracer, refine_from) {
            rec.phase_from("refine", from);
        }
        if stalled {
            if let Some(bx) = best_x {
                x = bx;
            }
        }
        RefinedSolve {
            x,
            residuals,
            iterations,
            stalled,
        }
    }

    /// [`Factors::solve_refined`] with divergence reported as an error:
    /// a stalled refinement that never reached `tol` becomes
    /// [`SolverError::RefinementStalled`] so callers (the adaptive solver
    /// loop, the CLI) can trigger a re-factorization.
    pub fn solve_refined_checked(
        &self,
        a: &CscMatrix<T>,
        b: &[T],
        max_iter: usize,
        tol: f64,
    ) -> Result<RefinedSolve<T>, SolverError> {
        let refined = self.solve_refined(a, b, max_iter, tol);
        // `x` is the best iterate, so judge by the best error reached.
        let best = refined
            .residuals
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        if refined.stalled && best > tol {
            return Err(SolverError::RefinementStalled {
                iterations: refined.iterations,
                last_berr: best,
            });
        }
        Ok(refined)
    }
}

/// ‖v‖∞ over scalar moduli.
pub fn inf_norm<T: Scalar>(v: &[T]) -> f64 {
    v.iter().map(|x| x.modulus()).fold(0.0, f64::max)
}
