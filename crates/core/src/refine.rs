//! Iterative refinement — the standard companion of static pivoting.
//!
//! PaStiX trades dynamic pivoting for a fixed task DAG; the numerical
//! accuracy lost on nearly-singular pivots is recovered by a few rounds of
//! residual correction: `r = b − A·x`, solve `A·δ = r`, `x ← x + δ`.

use crate::numeric::Factors;
use dagfact_kernels::Scalar;
use dagfact_sparse::CscMatrix;

/// Outcome of a refined solve.
#[derive(Debug, Clone)]
pub struct RefinedSolve<T> {
    /// The solution.
    pub x: Vec<T>,
    /// Backward-error history: ‖b − A·x‖∞ / (‖A‖∞·‖x‖∞ + ‖b‖∞) after each
    /// step (entry 0 is the unrefined solve).
    pub residuals: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
}

impl<T: Scalar> Factors<'_, T> {
    /// Solve with iterative refinement against the original matrix `a`.
    /// Stops when the backward error drops below `tol` or after
    /// `max_iter` corrections.
    pub fn solve_refined(
        &self,
        a: &CscMatrix<T>,
        b: &[T],
        max_iter: usize,
        tol: f64,
    ) -> RefinedSolve<T> {
        let n = b.len();
        let norm_a = a.norm_inf();
        let norm_b = inf_norm(b);
        let mut x = self.solve(b);
        let mut residuals = Vec::with_capacity(max_iter + 1);
        let mut r = vec![T::zero(); n];
        let mut iterations = 0;
        for it in 0..=max_iter {
            // r = b - A x
            a.spmv(&x, &mut r);
            for (ri, &bi) in r.iter_mut().zip(b.iter()) {
                *ri = bi - *ri;
            }
            let berr = inf_norm(&r) / (norm_a * inf_norm(&x) + norm_b).max(f64::MIN_POSITIVE);
            residuals.push(berr);
            if berr <= tol || it == max_iter {
                break;
            }
            let delta = self.solve(&r);
            for (xi, di) in x.iter_mut().zip(delta) {
                *xi += di;
            }
            iterations += 1;
        }
        RefinedSolve {
            x,
            residuals,
            iterations,
        }
    }
}

/// ‖v‖∞ over scalar moduli.
pub fn inf_norm<T: Scalar>(v: &[T]) -> f64 {
    v.iter().map(|x| x.modulus()).fold(0.0, f64::max)
}
