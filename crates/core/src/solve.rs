//! Triangular solve phase: forward/diagonal/backward sweeps over the
//! block structure.
//!
//! The solve walks the panels in elimination order (forward) and reverse
//! order (backward); each panel applies its diagonal triangle to the
//! right-hand-side slice and propagates its off-diagonal blocks. Solves
//! are a small fraction of factorization time, so they run sequentially
//! (as the paper's experiments do — only the factorization step is
//! timed).

use crate::numeric::Factors;
use dagfact_kernels::gemm::{gemm, Trans};
use dagfact_kernels::trsm::{trsm, Diag, Side, Uplo};
use dagfact_kernels::Scalar;
use dagfact_symbolic::FactoKind;

impl<T: Scalar> Factors<'_, T> {
    /// Solve `A·x = b` using the computed factors. `b` is in the
    /// *original* (unpermuted) numbering; so is the returned `x`.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        self.solve_many(b, 1)
    }

    /// Solve `A·X = B` for `nrhs` right-hand sides stored column-major in
    /// `b` (length `n·nrhs`). All sweeps are blocked over the RHS columns,
    /// so many-RHS solves run at GEMM speed rather than GEMV speed.
    pub fn solve_many(&self, b: &[T], nrhs: usize) -> Vec<T> {
        let n = self.analysis.symbol.n;
        assert!(nrhs >= 1);
        assert_eq!(b.len(), n * nrhs, "b must hold nrhs columns of length n");
        // x[perm[i], :] = b[i, :]
        let perm = self.analysis.perm.perm();
        let mut x = vec![T::zero(); n * nrhs];
        for r in 0..nrhs {
            for (old, &v) in b[r * n..(r + 1) * n].iter().enumerate() {
                x[r * n + perm[old]] = v;
            }
        }
        self.forward(&mut x, nrhs);
        if self.analysis.facto == FactoKind::Ldlt {
            for r in 0..nrhs {
                for (xi, &di) in x[r * n..(r + 1) * n].iter_mut().zip(self.d.iter()) {
                    *xi /= di;
                }
            }
        }
        self.backward(&mut x, nrhs);
        // out[i, :] = x[perm[i], :]
        let mut out = vec![T::zero(); n * nrhs];
        for r in 0..nrhs {
            for old in 0..n {
                out[r * n + old] = x[r * n + perm[old]];
            }
        }
        out
    }

    /// Forward sweep `L·y = b` (unit diagonal for LDLᵀ/LU).
    fn forward(&self, x: &mut [T], nrhs: usize) {
        let symbol = &self.analysis.symbol;
        let n = symbol.n;
        let diag = match self.analysis.facto {
            FactoKind::Cholesky => Diag::NonUnit,
            FactoKind::Ldlt | FactoKind::Lu => Diag::Unit,
        };
        // Panel-solution scratch (w × nrhs), reused across panels so the
        // propagation GEMM can read it while writing other rows of x.
        let mut xc = Vec::new();
        for c in 0..symbol.ncblk() {
            let cb = &symbol.cblks[c];
            let w = cb.width();
            let lpin = self.tab.pin_l_solve(symbol, c);
            // SAFETY: factorization finished; read-only access.
            let l = unsafe { lpin.slice() };
            // Diagonal solve on rows fcol..lcol of every RHS column.
            trsm(
                Side::Left,
                Uplo::Lower,
                Trans::NoTrans,
                diag,
                w,
                nrhs,
                l,
                cb.stride,
                &mut x[cb.fcol..],
                n,
            );
            gather_rows(x, n, cb.fcol, w, nrhs, &mut xc);
            // Propagate: x[R_b, :] -= L[R_b, c] · x_c for every off block.
            for b in symbol.off_blocks(c) {
                let m = b.nrows();
                let lb = &l[b.local_offset..];
                gemm(
                    Trans::NoTrans,
                    Trans::NoTrans,
                    m,
                    nrhs,
                    w,
                    -T::one(),
                    lb,
                    cb.stride,
                    &xc,
                    w,
                    T::one(),
                    &mut x[b.frow..],
                    n,
                );
            }
        }
    }

    /// Backward sweep: `Lᵀ·x = y` (Cholesky/LDLᵀ) or `U·x = y` (LU).
    fn backward(&self, x: &mut [T], nrhs: usize) {
        let symbol = &self.analysis.symbol;
        let n = symbol.n;
        let lu = self.analysis.facto == FactoKind::Lu;
        let mut xc = Vec::new();
        for c in (0..symbol.ncblk()).rev() {
            let cb = &symbol.cblks[c];
            let w = cb.width();
            let lpin = self.tab.pin_l_solve(symbol, c);
            // SAFETY: read-only post-factorization access.
            let l = unsafe { lpin.slice() };
            // Gather the panel rows, subtract below-block contributions,
            // then solve the triangle — all in the scratch buffer so the
            // reads of x stay immutable.
            gather_rows(x, n, cb.fcol, w, nrhs, &mut xc);
            // For LU the gathered contribution uses U[cols_c, R_b], which
            // is stored transposed in the U panel; otherwise Lᵀ.
            let upin = lu.then(|| self.tab.pin_u_solve(symbol, c));
            // SAFETY: read-only post-factorization access.
            let u = match &upin {
                Some(p) => unsafe { p.slice() },
                None => l,
            };
            for b in symbol.off_blocks(c) {
                let m = b.nrows();
                let coeff = &u[b.local_offset..];
                gemm(
                    Trans::Trans,
                    Trans::NoTrans,
                    w,
                    nrhs,
                    m,
                    -T::one(),
                    coeff,
                    cb.stride,
                    &x[b.frow..],
                    n,
                    T::one(),
                    &mut xc,
                    w,
                );
            }
            // Diagonal solve.
            if lu {
                trsm(
                    Side::Left,
                    Uplo::Upper,
                    Trans::NoTrans,
                    Diag::NonUnit,
                    w,
                    nrhs,
                    l,
                    cb.stride,
                    &mut xc,
                    w,
                );
            } else {
                let diag = if self.analysis.facto == FactoKind::Cholesky {
                    Diag::NonUnit
                } else {
                    Diag::Unit
                };
                trsm(
                    Side::Left,
                    Uplo::Lower,
                    Trans::Trans,
                    diag,
                    w,
                    nrhs,
                    l,
                    cb.stride,
                    &mut xc,
                    w,
                );
            }
            scatter_rows(&xc, x, n, cb.fcol, w, nrhs);
        }
    }
}

/// Copy rows `first..first+rows` of every RHS column into a compact
/// `rows × nrhs` buffer.
fn gather_rows<T: Scalar>(x: &[T], n: usize, first: usize, rows: usize, nrhs: usize, out: &mut Vec<T>) {
    out.clear();
    out.reserve(rows * nrhs);
    for r in 0..nrhs {
        out.extend_from_slice(&x[r * n + first..r * n + first + rows]);
    }
}

/// Inverse of [`gather_rows`].
fn scatter_rows<T: Scalar>(buf: &[T], x: &mut [T], n: usize, first: usize, rows: usize, nrhs: usize) {
    for r in 0..nrhs {
        x[r * n + first..r * n + first + rows].copy_from_slice(&buf[r * rows..(r + 1) * rows]);
    }
}
