//! Parallel triangular solves over the task runtimes.
//!
//! The paper times only the factorization, but a production solver also
//! parallelizes the solve phase — PaStiX does. The sweeps use the same
//! 1D dependency structure as the factorization:
//!
//! * **forward** `L·y = b`: panel `c` may solve its rows once every panel
//!   with a block facing `c` has scattered its contribution; afterwards it
//!   scatters `L[R_b, c]·y_c` into each facing panel's rows (serialized by
//!   a per-panel lock, like the runtimes serialize update tasks);
//! * **backward** `Lᵀ/U·x = y`: the reverse DAG; a panel gathers from its
//!   (already solved) facing panels, then solves its own rows — no locks
//!   needed, completed segments are read-only.

use crate::numeric::Factors;
use crate::tasks::OneDGraph;
use dagfact_kernels::gemm::{gemm, Trans};
use dagfact_kernels::trsm::{trsm, Diag, Side, Uplo};
use dagfact_kernels::Scalar;
use dagfact_rt::ptg::{run_ptg, PtgProgram};
use dagfact_rt::SharedSlice;
use dagfact_symbolic::FactoKind;
use dagfact_rt::sync::Mutex;

impl<T: Scalar> Factors<'_, T> {
    /// Solve `A·x = b` with both sweeps parallelized on `nthreads` workers
    /// of the PaRSEC-like engine. Results match [`Factors::solve`] to
    /// roundoff (contributions into a panel are applied in a potentially
    /// different order).
    pub fn solve_parallel(&self, b: &[T], nthreads: usize) -> Vec<T> {
        self.solve_parallel_many(b, 1, nthreads)
    }

    /// Multi-RHS variant of [`Factors::solve_parallel`].
    pub fn solve_parallel_many(&self, b: &[T], nrhs: usize, nthreads: usize) -> Vec<T> {
        let symbol = &self.analysis.symbol;
        let n = symbol.n;
        assert!(nrhs >= 1);
        assert_eq!(b.len(), n * nrhs, "b must hold nrhs columns of length n");
        let nthreads = nthreads.max(1);
        let perm = self.analysis.perm.perm();
        let mut x0 = vec![T::zero(); n * nrhs];
        for r in 0..nrhs {
            for (old, &v) in b[r * n..(r + 1) * n].iter().enumerate() {
                x0[r * n + perm[old]] = v;
            }
        }
        let x = SharedSlice::from_vec(x0);
        let graph = OneDGraph::build(symbol);
        let locks: Vec<Mutex<()>> = (0..symbol.ncblk()).map(|_| Mutex::new(())).collect();

        // ---- forward sweep --------------------------------------------
        struct Forward<'f, 'a, T: Scalar> {
            f: &'f Factors<'a, T>,
            x: &'f SharedSlice<T>,
            locks: &'f [Mutex<()>],
            graph: &'f OneDGraph,
            nrhs: usize,
        }
        impl<T: Scalar> PtgProgram for Forward<'_, '_, T> {
            fn num_tasks(&self) -> usize {
                self.f.analysis.symbol.ncblk()
            }
            fn num_predecessors(&self, t: usize) -> u32 {
                self.graph.npred[t]
            }
            fn successors(&self, t: usize, out: &mut Vec<usize>) {
                out.extend_from_slice(&self.graph.succs[t]);
            }
            fn priority(&self, t: usize) -> f64 {
                // Deep panels first (they unlock the longest chains).
                -(t as f64)
            }
            fn execute(&self, c: usize, _worker: usize) {
                self.f.forward_panel(c, self.x, self.locks, self.nrhs);
            }
        }
        run_ptg(
            &Forward {
                f: self,
                x: &x,
                locks: &locks,
                graph: &graph,
                nrhs,
            },
            nthreads,
        );

        // ---- diagonal sweep (LDLᵀ) -------------------------------------
        if self.analysis.facto == FactoKind::Ldlt {
            // SAFETY: `run_ptg` has returned, which joins every worker
            // thread — no other reference to `x` exists; this phase is
            // single-threaded (upheld by the engine's join barrier).
            let xs = unsafe { x.slice_mut() };
            for r in 0..nrhs {
                for (xi, &di) in xs[r * n..(r + 1) * n].iter_mut().zip(self.d.iter()) {
                    *xi /= di;
                }
            }
        }

        // ---- backward sweep --------------------------------------------
        // Reverse DAG: panel c waits for every panel it feeds.
        let mut succs_rev: Vec<Vec<usize>> = vec![Vec::new(); symbol.ncblk()];
        let mut npred_rev = vec![0u32; symbol.ncblk()];
        for (c, succ) in graph.succs.iter().enumerate() {
            npred_rev[c] = succ.len() as u32;
            for &t in succ {
                succs_rev[t].push(c);
            }
        }
        struct Backward<'f, 'a, T: Scalar> {
            f: &'f Factors<'a, T>,
            x: &'f SharedSlice<T>,
            succs_rev: &'f [Vec<usize>],
            npred_rev: &'f [u32],
            nrhs: usize,
        }
        impl<T: Scalar> PtgProgram for Backward<'_, '_, T> {
            fn num_tasks(&self) -> usize {
                self.f.analysis.symbol.ncblk()
            }
            fn num_predecessors(&self, t: usize) -> u32 {
                self.npred_rev[t]
            }
            fn successors(&self, t: usize, out: &mut Vec<usize>) {
                out.extend_from_slice(&self.succs_rev[t]);
            }
            fn priority(&self, t: usize) -> f64 {
                t as f64 // roots (top separators) first
            }
            fn execute(&self, c: usize, _worker: usize) {
                self.f.backward_panel(c, self.x, self.nrhs);
            }
        }
        run_ptg(
            &Backward {
                f: self,
                x: &x,
                succs_rev: &succs_rev,
                npred_rev: &npred_rev,
                nrhs,
            },
            nthreads,
        );

        let xs = x.into_vec();
        let mut out = vec![T::zero(); n * nrhs];
        for r in 0..nrhs {
            for old in 0..n {
                out[r * n + old] = xs[r * n + perm[old]];
            }
        }
        out
    }

    /// Forward task body: solve panel `c`'s rows, scatter to facing
    /// panels.
    fn forward_panel(&self, c: usize, x: &SharedSlice<T>, locks: &[Mutex<()>], nrhs: usize) {
        let symbol = &self.analysis.symbol;
        let n = symbol.n;
        let cb = &symbol.cblks[c];
        let w = cb.width();
        let diag = match self.analysis.facto {
            FactoKind::Cholesky => Diag::NonUnit,
            _ => Diag::Unit,
        };
        let lpin = self.tab.pin_l_solve(symbol, c);
        // SAFETY: factor panels are read-only during the solve — `self`
        // is borrowed shared, so no writer can exist (caller contract,
        // enforced by the borrow checker on `solve_parallel_many`).
        let l = unsafe { lpin.slice() };
        let mut xc = vec![T::zero(); w * nrhs];
        {
            let _own = locks[c].lock();
            // SAFETY: task `c` runs only after all its contributors
            // completed — the PTG pending counter (`release_pending`,
            // AcqRel edge proven by the loom fan-in model) orders their
            // writes before this read, and the per-panel lock excludes
            // concurrent scatters into the same rows.
            let xs = unsafe { x.slice_mut() };
            trsm(
                Side::Left,
                Uplo::Lower,
                Trans::NoTrans,
                diag,
                w,
                nrhs,
                l,
                cb.stride,
                &mut xs[cb.fcol..],
                n,
            );
            for r in 0..nrhs {
                xc[r * w..(r + 1) * w]
                    .copy_from_slice(&xs[r * n + cb.fcol..r * n + cb.fcol + w]);
            }
        }
        let mut contribution = Vec::new();
        for b in symbol.off_blocks(c) {
            let m = b.nrows();
            contribution.clear();
            contribution.resize(m * nrhs, T::zero());
            gemm(
                Trans::NoTrans,
                Trans::NoTrans,
                m,
                nrhs,
                w,
                T::one(),
                &l[b.local_offset..],
                cb.stride,
                &xc,
                w,
                T::zero(),
                &mut contribution,
                m,
            );
            // Scatter-subtract under the target panel's lock (contributions
            // from different panels commute but must not race).
            let _guard = locks[b.facing].lock();
            // SAFETY: rows frow..lrow belong to panel `facing`; the
            // panel's mutex (held here) serializes every writer of those
            // rows, and its release/acquire pair publishes the writes —
            // the mutual-exclusion contract the loom mutex model checks.
            let xs = unsafe { x.slice_mut() };
            for r in 0..nrhs {
                for (i, &v) in contribution[r * m..(r + 1) * m].iter().enumerate() {
                    xs[r * n + b.frow + i] -= v;
                }
            }
        }
    }

    /// Backward task body: gather from solved facing panels, solve own
    /// rows.
    fn backward_panel(&self, c: usize, x: &SharedSlice<T>, nrhs: usize) {
        let symbol = &self.analysis.symbol;
        let n = symbol.n;
        let cb = &symbol.cblks[c];
        let w = cb.width();
        let lu = self.analysis.facto == FactoKind::Lu;
        let lpin = self.tab.pin_l_solve(symbol, c);
        // SAFETY: factor panels are read-only during the solve (shared
        // borrow of `self`; caller contract).
        let l = unsafe { lpin.slice() };
        let upin = lu.then(|| self.tab.pin_u_solve(symbol, c));
        let u = match &upin {
            // SAFETY: as for `l` — read-only factor panels under a
            // shared borrow of `self`.
            Some(p) => unsafe { p.slice() },
            None => l,
        };
        let mut xc = vec![T::zero(); w * nrhs];
        {
            // SAFETY: the segments read here belong to `c` (exclusively
            // ours in the reverse DAG) or to facing panels that already
            // completed — ordered before us by the PTG pending counter's
            // AcqRel edge (`release_pending`, proven by the loom fan-in
            // model). No concurrent writer exists for any of them.
            let xs = unsafe { x.slice() };
            for r in 0..nrhs {
                xc[r * w..(r + 1) * w]
                    .copy_from_slice(&xs[r * n + cb.fcol..r * n + cb.fcol + w]);
            }
            for b in symbol.off_blocks(c) {
                gemm(
                    Trans::Trans,
                    Trans::NoTrans,
                    w,
                    nrhs,
                    b.nrows(),
                    -T::one(),
                    &u[b.local_offset..],
                    cb.stride,
                    &xs[b.frow..],
                    n,
                    T::one(),
                    &mut xc,
                    w,
                );
            }
        }
        if lu {
            trsm(
                Side::Left,
                Uplo::Upper,
                Trans::NoTrans,
                Diag::NonUnit,
                w,
                nrhs,
                l,
                cb.stride,
                &mut xc,
                w,
            );
        } else {
            let diag = if self.analysis.facto == FactoKind::Cholesky {
                Diag::NonUnit
            } else {
                Diag::Unit
            };
            trsm(
                Side::Left,
                Uplo::Lower,
                Trans::Trans,
                diag,
                w,
                nrhs,
                l,
                cb.stride,
                &mut xc,
                w,
            );
        }
        // SAFETY: rows fcol..fcol+w are written only by task `c` in the
        // backward sweep (reverse-DAG exclusivity: every reader of these
        // rows is a predecessor that already ran, ordered by the PTG
        // pending counter's AcqRel edge).
        let xs = unsafe { x.slice_mut() };
        for r in 0..nrhs {
            xs[r * n + cb.fcol..r * n + cb.fcol + w].copy_from_slice(&xc[r * w..(r + 1) * w]);
        }
    }
}
