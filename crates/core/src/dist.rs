//! Fault-tolerant distributed fan-in execution over a lossy cluster model
//! (ROADMAP item 3; the paper's §VI future-work direction).
//!
//! The elimination tree is partitioned into per-node shards by the same
//! [`proportional_mapping`] the communication study uses; each simulated
//! node runs the fused 1D tasks of its shard on `cores` worker slots and
//! exchanges **fan-in pair messages**: contributions from one node's
//! panels into one remote panel are accumulated locally and shipped once,
//! when the last local contributor finishes — exactly the pair structure
//! [`crate::distributed::fan_in_study`] counts, so the engine's
//! zero-fault traffic is cross-checked against the study's prediction.
//!
//! The engine is a deterministic discrete-event simulation in *virtual*
//! time (the [`EventQueue`] min-heap from `dagfact-gpusim`) that executes
//! the *real* numeric kernels against the global [`CoefTab`] — it
//! produces genuine factors plus a simulated makespan, the house style of
//! the simulator crate.
//!
//! # Failure model
//!
//! Everything is failure-first and deterministic from the
//! [`FaultPlan`] seed:
//!
//! * **node crashes** (`crash=NxK` / `cprob=PxK`): node N dies at its
//!   K-th 1D-task completion (the K-th task is lost mid-flight; `K = 0`
//!   kills the node at time zero);
//! * **message chaos** (`mloss=P`, `mdup=P`, `mreorder=P`): every data
//!   and ack transmission rolls an independent fate — dropped,
//!   delivered twice, or delayed out of order.
//!
//! The protocol recovers by construction, never by luck:
//!
//! * **heartbeats + timeout detection** — nodes heartbeat on a reliable
//!   control plane (as do `Release`/`Pull` control messages; only the
//!   bulk data/ack channel is lossy); the lowest-indexed survivor
//!   declares a silent node dead after `heartbeat_timeout_beats` missed
//!   beats and adopts its shard;
//! * **sequence-numbered idempotent application** — receivers run every
//!   delivery through an [`ApplyLog`], so at-least-once delivery becomes
//!   exactly-once application; duplicate final acks are absorbed by the
//!   [`SendState`] latch;
//! * **bounded retransmit with exponential backoff** — unacked pairs
//!   retransmit on a timeout that doubles per attempt; an exhausted
//!   budget is the *typed* [`DistError::RetransmitExhausted`], never a
//!   hang;
//! * **supernode-granular checkpoints** — the store seeds an `INITIAL`
//!   snapshot of every assembled panel and adds a `FACTORED` snapshot at
//!   each 1D completion. Senders retain a pair's buffer until the target
//!   panel is checkpointed (the `Release` message), so a crashed
//!   receiver can always re-request (`Pull`) what it lost;
//! * **lineage replay** — the adopter restores `FACTORED` panels from
//!   checkpoints, resets unfinished panels to `INITIAL`, forgets their
//!   apply-log entries, re-applies the updates of completed shard-mates,
//!   rebuilds the dead node's outbound pair buffers from checkpointed
//!   contributors, and re-requests retained pairs from live senders.
//!   Replay is deterministic, so a stale in-flight duplicate carries a
//!   payload identical to the rebuilt one and the apply log keeps the
//!   sum exact.
//!
//! If recovery is impossible (every node dead, a retransmit budget
//! spent, or no event can make progress) the engine returns a typed
//! [`DistError`] — a wrong answer is never produced silently.
//!
//! # Verification
//!
//! Per the house pattern, the message structure is verified twice:
//! statically, [`dist_graph_spec`] models pair messages as cross-node
//! edges (1D task → send → apply → target task) and must pass
//! [`check_static`]; dynamically, a zero-fault run can drive the
//! vector-clock [`RaceChecker`] over the same task/data ids
//! ([`DistOptions::verify`]). The retransmit/ack protocol primitives
//! themselves are loom-checked in `dagfact-rt` (protocol model 6).

use crate::analysis::Analysis;
use crate::coeftab::{CoefTab, MemoryOptions};
use crate::numeric::{FactorStats, Factors, NumericCtx};
use crate::tasks::OneDGraph;
use crate::SolverError;
use dagfact_gpusim::{ClusterPlatform, EventQueue};
use dagfact_kernels::Scalar;
use dagfact_rt::distproto::{ApplyLog, SendState};
use dagfact_rt::verify::{check_static, ClockGranularity, GraphSpec, Mode, RaceChecker};
use dagfact_rt::{FaultPlan, SharedSlice};
use dagfact_sparse::CscMatrix;
use dagfact_symbolic::{proportional_mapping, FactoKind, SymbolMatrix};
use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::sync::Arc;

/// Simulated ack payload size (header-only message).
const ACK_BYTES: f64 = 64.0;

/// Virtual seconds without any pending-count progress before the engine
/// declares a protocol stall (safely above the longest retransmit
/// backoff chain of the default configuration).
const STALL_LIMIT: f64 = 5.0;

/// Configuration of one distributed factorization.
#[derive(Debug, Clone)]
pub struct DistOptions {
    /// Cluster width (≥ 1).
    pub nnodes: usize,
    /// CPU cores (1D-task slots) per node.
    pub cores_per_node: usize,
    /// Deterministic fault injection (node crashes, message chaos).
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Total send budget per pair transmission state (≥ 1).
    pub max_send_attempts: u32,
    /// Heartbeat period in virtual seconds.
    pub heartbeat_interval: f64,
    /// Missed beats before a silent node is declared dead.
    pub heartbeat_timeout_beats: u32,
    /// Static-pivot epsilon override (as in
    /// [`crate::numeric::ExecOptions`]).
    pub epsilon_override: Option<f64>,
    /// Drive the vector-clock [`RaceChecker`] over the run and record
    /// the verdict in [`DistReport::verified`]. Only meaningful for
    /// zero-fault runs (replay re-executes task ids, which the checker
    /// rightly rejects); ignored when the plan injects dist faults.
    pub verify: bool,
}

impl Default for DistOptions {
    fn default() -> DistOptions {
        DistOptions {
            nnodes: 2,
            cores_per_node: 4,
            fault_plan: None,
            max_send_attempts: 8,
            heartbeat_interval: 5e-4,
            heartbeat_timeout_beats: 3,
            epsilon_override: None,
            verify: false,
        }
    }
}

/// Typed failure of a distributed run — the contract is *never a wrong
/// answer*: every abnormal outcome is one of these.
#[derive(Debug)]
pub enum DistError {
    /// Every node crashed; no survivor can adopt the lost shards.
    AllNodesCrashed,
    /// A pair message exhausted its bounded retransmit budget.
    RetransmitExhausted {
        /// Target panel of the pair.
        target: usize,
        /// Original source node of the pair.
        from_node: usize,
        /// Send attempts made.
        attempts: u32,
    },
    /// No event could make progress for [`STALL_LIMIT`] virtual seconds.
    Stalled {
        /// Panels completed when the engine gave up.
        done: usize,
        /// Total panels.
        total: usize,
    },
    /// A numeric task failed (pivot breakdown, non-finite sweep, …).
    Solver(SolverError),
    /// A pair was delivered whose retained send buffer is gone — a
    /// protocol-invariant violation (the sender must hold the buffer
    /// until the ack), surfaced as a typed error instead of a panic in
    /// the hot accumulate path.
    PairBufferMissing {
        /// Index into the fan-in pair table.
        pair: usize,
        /// Target panel of the pair.
        target: usize,
    },
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::AllNodesCrashed => write!(f, "all nodes crashed; recovery impossible"),
            DistError::RetransmitExhausted {
                target,
                from_node,
                attempts,
            } => write!(
                f,
                "pair (panel {target} ← node {from_node}) exhausted its \
                 retransmit budget after {attempts} attempts"
            ),
            DistError::Stalled { done, total } => {
                write!(f, "protocol stalled with {done}/{total} panels complete")
            }
            DistError::Solver(e) => write!(f, "numeric failure: {e}"),
            DistError::PairBufferMissing { pair, target } => write!(
                f,
                "pair {pair} (target panel {target}) was delivered without \
                 a retained buffer — protocol invariant violated"
            ),
        }
    }
}

impl std::error::Error for DistError {}

impl From<SolverError> for DistError {
    fn from(e: SolverError) -> DistError {
        DistError::Solver(e)
    }
}

/// What a distributed run did: the simulated makespan plus the protocol
/// counters the chaos sweeps and the traffic cross-check assert on.
#[derive(Debug, Clone, Default)]
pub struct DistReport {
    /// Cluster width.
    pub nnodes: usize,
    /// Virtual completion time of the last panel.
    pub makespan: f64,
    /// 1D task executions, including recovery replays.
    pub tasks_executed: u64,
    /// Distinct fan-in pairs shipped (zero-fault: equals
    /// [`crate::distributed::CommStats::messages`] of the fan-in study).
    pub data_messages: u64,
    /// First-transmission bytes over those pairs, in the study's
    /// `min(accumulated, panel)` convention.
    pub bytes: f64,
    /// Data transmissions, including retransmits and recovery re-ships.
    pub sends: u64,
    /// Transmissions beyond each state's first attempt.
    pub retransmits: u64,
    /// Data/ack messages eaten by injected loss.
    pub messages_lost: u64,
    /// Deliveries duplicated by injection.
    pub duplicates_injected: u64,
    /// Deliveries delayed out of order by injection.
    pub reorders: u64,
    /// Duplicate deliveries absorbed by the apply log.
    pub duplicates_absorbed: u64,
    /// Acks ignored as duplicates or stale epochs.
    pub stale_acks: u64,
    /// Nodes that crashed, in crash order.
    pub crashes: Vec<usize>,
    /// Shard adoptions performed.
    pub recoveries: u64,
    /// Panels reset to their INITIAL checkpoint for lineage replay.
    pub panels_restored: u64,
    /// `true` when the vector-clock replay ran and found no race.
    pub verified: bool,
}

// ---------------------------------------------------------------------
// Pair structure (shared with the static spec and the traffic study)
// ---------------------------------------------------------------------

/// One fan-in pair: everything node `src_node` will ever contribute to
/// remote panel `tgt`, accumulated locally and shipped once.
struct PairInfo {
    tgt: usize,
    src_node: usize,
    /// Contributing panels of `src_node` with their block ids into `tgt`.
    members: Vec<(usize, Vec<usize>)>,
    /// Wire size in the fan-in study's convention.
    bytes: f64,
}

/// Enumerate the fan-in pairs of a mapping, byte-for-byte in the
/// convention of [`crate::distributed::fan_in_study`] so the engine's
/// zero-fault traffic is exactly the study's prediction.
fn build_pairs(
    symbol: &SymbolMatrix,
    node_of: &[usize],
    scalar_bytes: f64,
) -> Vec<PairInfo> {
    let mut index: HashMap<(usize, usize), usize> = HashMap::new();
    let mut pairs: Vec<PairInfo> = Vec::new();
    let mut accumulated: Vec<f64> = Vec::new();
    for c in 0..symbol.ncblk() {
        let src_node = node_of[c];
        let cb = &symbol.cblks[c];
        for (off, b) in symbol.off_blocks(c).iter().enumerate() {
            let tgt = b.facing;
            if node_of[tgt] == src_node {
                continue;
            }
            let bi = cb.block_begin + 1 + off;
            let m = cb.stride - b.local_offset;
            let contrib = (m * b.nrows()) as f64 * scalar_bytes;
            let id = *index.entry((tgt, src_node)).or_insert_with(|| {
                pairs.push(PairInfo {
                    tgt,
                    src_node,
                    members: Vec::new(),
                    bytes: 0.0,
                });
                accumulated.push(0.0);
                pairs.len() - 1
            });
            accumulated[id] += contrib;
            match pairs[id].members.last_mut() {
                Some((panel, blocks)) if *panel == c => blocks.push(bi),
                _ => pairs[id].members.push((c, vec![bi])),
            }
        }
    }
    for (id, pair) in pairs.iter_mut().enumerate() {
        let cb = &symbol.cblks[pair.tgt];
        let panel_bytes = (cb.stride * cb.width()) as f64 * scalar_bytes;
        pair.bytes = accumulated[id].min(panel_bytes);
    }
    pairs
}

// ---------------------------------------------------------------------
// Static graph spec: messages as cross-node edges
// ---------------------------------------------------------------------

/// Build the engine's task graph as a [`GraphSpec`] with the fan-in
/// messages modeled as explicit cross-node send/apply tasks:
///
/// * tasks `0..ncblk` — the fused 1D tasks (`ReadWrite` their own panel,
///   `Accum` same-node targets and their pair buffers);
/// * `ncblk + p` — `send(p)`: reads pair buffer `p`;
/// * `ncblk + npairs + p` — `apply(p)`: reads buffer `p`, `Accum` the
///   target panel.
///
/// Edges: same-node 1D dependency, contributor → send, send → apply
/// (tagged `(src_node << 32) | tgt_node`, the cross-node edge), and
/// apply → target 1D task. [`check_static`] over this spec proves the
/// message protocol orders every conflicting access; dropping an
/// apply → target edge (the negative twin) is flagged as a race.
pub fn dist_graph_spec(analysis: &Analysis, complex: bool, nnodes: usize) -> GraphSpec {
    let symbol = &analysis.symbol;
    let costs = analysis.costs(complex);
    let mapping = proportional_mapping(symbol, &costs, nnodes.max(1));
    let scalar_bytes = if complex { 16.0 } else { 8.0 } * analysis.facto.sides() as f64;
    let pairs = build_pairs(symbol, &mapping.node_of, scalar_bytes);
    let graph = OneDGraph::build(symbol);
    let ncblk = symbol.ncblk();
    let npairs = pairs.len();
    let mut spec = GraphSpec::new(ncblk + 2 * npairs);
    for c in 0..ncblk {
        spec.access(c, c, Mode::ReadWrite);
        for &t in &graph.succs[c] {
            if mapping.node_of[t] == mapping.node_of[c] {
                spec.access(c, t, Mode::Accum);
                spec.edge(c, t);
            }
        }
    }
    for (p, pair) in pairs.iter().enumerate() {
        let send = ncblk + p;
        let apply = ncblk + npairs + p;
        let buf = ncblk + p;
        let tag = ((pair.src_node as u64) << 32) | mapping.node_of[pair.tgt] as u64;
        for (member, _) in &pair.members {
            spec.access(*member, buf, Mode::Accum);
            spec.edge(*member, send);
        }
        spec.access(send, buf, Mode::Read);
        spec.set_tag(send, tag);
        spec.edge(send, apply);
        spec.access(apply, buf, Mode::Read);
        spec.access(apply, pair.tgt, Mode::Accum);
        spec.set_tag(apply, tag);
        spec.edge(apply, pair.tgt);
    }
    spec
}

// ---------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------

/// Supernode-granular durable snapshot: one panel's L (and Uᵀ for LU)
/// storage plus its slice of the LDLᵀ diagonal.
struct Snapshot<T> {
    l: Vec<T>,
    u: Option<Vec<T>>,
    d: Vec<T>,
}

// ---------------------------------------------------------------------
// Events and per-pair protocol state
// ---------------------------------------------------------------------

enum Event {
    /// 1D task `c` finishes on `node` (stale if the epoch moved on).
    TaskDone { node: usize, epoch: u64, c: usize },
    /// A pair transmission reaches the target's current owner.
    Deliver { pair: usize, epoch: u64 },
    /// An ack reaches the pair's host.
    Ack { pair: usize, epoch: u64 },
    /// Retransmit timeout for an unacked pair.
    Retransmit { pair: usize, epoch: u64 },
    /// Periodic liveness beacon from `node`.
    Heartbeat { node: usize, epoch: u64 },
    /// Coordinator sweep: detect silent nodes, watch for stalls.
    Sweep,
    /// Injected crash pinned to virtual time zero (`crash=Nx0`).
    CrashNow { node: usize },
}

struct PairBuf<T> {
    l: Vec<T>,
    u: Option<Vec<T>>,
}

struct PairState<T> {
    buf: Option<PairBuf<T>>,
    /// Member panels not yet accumulated.
    remaining: usize,
    send: SendState,
    /// Bumped on recovery re-requests; stale acks and timers are
    /// ignored by epoch mismatch.
    epoch: u64,
    /// First transmission done (traffic accounting).
    shipped: bool,
    /// Target checkpointed; buffer freed.
    released: bool,
}

/// Ready-queue entry: higher priority first, lower panel id on ties
/// (determinism).
struct Ready {
    prio: f64,
    c: usize,
}

impl PartialEq for Ready {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Ready {}
impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ready {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.prio
            .total_cmp(&other.prio)
            .then_with(|| other.c.cmp(&self.c))
    }
}

// ---------------------------------------------------------------------
// The simulation
// ---------------------------------------------------------------------

struct Sim<'s, 'a, T: Scalar> {
    analysis: &'a Analysis,
    ctx: &'s NumericCtx<'s, T>,
    tab: &'s CoefTab<T>,
    d: &'s SharedSlice<T>,
    cluster: ClusterPlatform,
    plan: Option<Arc<FaultPlan>>,
    max_send_attempts: u32,
    hb_interval: f64,
    hb_timeout: f64,

    graph: OneDGraph,
    node_of: Vec<usize>,
    /// Original node → node currently responsible for its shard.
    alias: Vec<usize>,
    alive: Vec<bool>,
    buried: Vec<bool>,
    node_epoch: Vec<u64>,
    completions: Vec<u32>,
    crash_point: Vec<Option<u32>>,

    done: Vec<bool>,
    queued: Vec<bool>,
    pending: Vec<u32>,
    direct_preds: Vec<Vec<usize>>,
    inbound: Vec<Vec<usize>>,
    member_of: Vec<Vec<usize>>,

    pairs: Vec<PairInfo>,
    pstate: Vec<PairState<T>>,
    log: ApplyLog,

    ready: Vec<BinaryHeap<Ready>>,
    free_cores: Vec<usize>,
    prio: Vec<f64>,
    durations: Vec<f64>,
    queue: EventQueue<Event>,

    initial: Vec<Snapshot<T>>,
    factored: Vec<Option<Snapshot<T>>>,

    last_heard: Vec<f64>,
    last_progress: f64,
    done_count: usize,
    seq: u64,
    report: DistReport,
    checker: Option<RaceChecker>,
}

impl<'s, 'a, T: Scalar> Sim<'s, 'a, T> {
    fn new(
        analysis: &'a Analysis,
        ctx: &'s NumericCtx<'s, T>,
        tab: &'s CoefTab<T>,
        d: &'s SharedSlice<T>,
        opts: &DistOptions,
    ) -> Sim<'s, 'a, T> {
        let symbol = &analysis.symbol;
        let ncblk = symbol.ncblk();
        let nnodes = opts.nnodes.max(1);
        let cluster = ClusterPlatform::homogeneous(nnodes, opts.cores_per_node.max(1), 0);
        let costs = analysis.costs(T::IS_COMPLEX);
        let prio = analysis.priorities(&costs);
        let mapping = proportional_mapping(symbol, &costs, nnodes);
        let scalar_bytes =
            if T::IS_COMPLEX { 16.0 } else { 8.0 } * analysis.facto.sides() as f64;
        let pairs = build_pairs(symbol, &mapping.node_of, scalar_bytes);
        let graph = OneDGraph::build(symbol);

        let mut direct_preds: Vec<Vec<usize>> = vec![Vec::new(); ncblk];
        let mut pending = vec![0u32; ncblk];
        for c in 0..ncblk {
            for &t in &graph.succs[c] {
                if mapping.node_of[t] == mapping.node_of[c] {
                    direct_preds[t].push(c);
                    pending[t] += 1;
                }
            }
        }
        let mut inbound: Vec<Vec<usize>> = vec![Vec::new(); ncblk];
        let mut member_of: Vec<Vec<usize>> = vec![Vec::new(); ncblk];
        for (p, pair) in pairs.iter().enumerate() {
            inbound[pair.tgt].push(p);
            pending[pair.tgt] += 1;
            for (member, _) in &pair.members {
                member_of[*member].push(p);
            }
        }
        let pstate = pairs
            .iter()
            .map(|pair| PairState {
                buf: None,
                remaining: pair.members.len(),
                send: SendState::new(opts.max_send_attempts),
                epoch: 0,
                shipped: false,
                released: false,
            })
            .collect();
        let rate = cluster.nodes[0].cpu.rate(32).max(1e-3) * 1e9;
        let durations = (0..ncblk)
            .map(|c| (costs.task_1d(symbol, c) / rate).max(1e-9))
            .collect();
        let plan = opts.fault_plan.clone();
        let crash_point = (0..nnodes)
            .map(|n| plan.as_ref().and_then(|p| p.node_crash_point(n)))
            .collect();
        let faults_on = plan.as_ref().is_some_and(|p| p.has_dist_faults());
        let npairs = pairs.len();
        let checker = (opts.verify && !faults_on).then(|| {
            RaceChecker::new(
                ncblk + 2 * npairs,
                ncblk + npairs,
                nnodes,
                ClockGranularity::PerTask,
            )
        });

        // Seed the INITIAL checkpoints from the freshly assembled panels.
        let initial = (0..ncblk).map(|c| snapshot(analysis, tab, d, c)).collect();

        Sim {
            analysis,
            ctx,
            tab,
            d,
            cluster,
            plan,
            max_send_attempts: opts.max_send_attempts.max(1),
            hb_interval: opts.heartbeat_interval.max(1e-6),
            hb_timeout: opts.heartbeat_interval.max(1e-6)
                * opts.heartbeat_timeout_beats.max(1) as f64,
            graph,
            node_of: mapping.node_of,
            alias: (0..nnodes).collect(),
            alive: vec![true; nnodes],
            buried: vec![false; nnodes],
            node_epoch: vec![0; nnodes],
            completions: vec![0; nnodes],
            crash_point,
            done: vec![false; ncblk],
            queued: vec![false; ncblk],
            pending,
            direct_preds,
            inbound,
            member_of,
            pairs,
            pstate,
            log: ApplyLog::new(),
            ready: (0..nnodes).map(|_| BinaryHeap::new()).collect(),
            free_cores: vec![opts.cores_per_node.max(1); nnodes],
            prio,
            durations,
            queue: EventQueue::new(),
            initial,
            factored: (0..ncblk).map(|_| None).collect(),
            last_heard: vec![0.0; nnodes],
            last_progress: 0.0,
            done_count: 0,
            seq: 0,
            report: DistReport {
                nnodes,
                ..DistReport::default()
            },
            checker,
        }
    }

    fn ncblk(&self) -> usize {
        self.analysis.symbol.ncblk()
    }

    /// Current owner node of panel `c` (through the adoption chain).
    fn owner(&self, c: usize) -> usize {
        self.alias[self.node_of[c]]
    }

    fn roll_fate(&mut self) -> dagfact_rt::MsgFate {
        let seq = self.seq;
        self.seq += 1;
        self.plan
            .as_ref()
            .map(|p| p.message_fate(seq))
            .unwrap_or_default()
    }

    // -- scheduling ---------------------------------------------------

    fn enqueue_if_ready(&mut self, c: usize) {
        if self.done[c] || self.queued[c] || self.pending[c] != 0 {
            return;
        }
        let node = self.owner(c);
        if !self.alive[node] {
            return;
        }
        self.queued[c] = true;
        self.ready[node].push(Ready {
            prio: self.prio[c],
            c,
        });
        self.kick(node);
    }

    fn kick(&mut self, node: usize) {
        if !self.alive[node] {
            return;
        }
        while self.free_cores[node] > 0 {
            let Some(Ready { c, .. }) = self.ready[node].pop() else {
                break;
            };
            self.free_cores[node] -= 1;
            self.queue.push_after(
                self.durations[c],
                Event::TaskDone {
                    node,
                    epoch: self.node_epoch[node],
                    c,
                },
            );
        }
    }

    // -- main loop ----------------------------------------------------

    fn run(&mut self) -> Result<(), DistError> {
        let nnodes = self.cluster.nnodes();
        for n in 0..nnodes {
            if self.crash_point[n] == Some(0) {
                self.queue.push_at(0.0, Event::CrashNow { node: n });
            }
            self.queue
                .push_at(self.hb_interval, Event::Heartbeat {
                    node: n,
                    epoch: 0,
                });
        }
        self.queue.push_at(self.hb_interval, Event::Sweep);
        for c in 0..self.ncblk() {
            self.enqueue_if_ready(c);
        }
        while self.done_count < self.ncblk() {
            let Some((_, ev)) = self.queue.pop() else {
                return Err(DistError::Stalled {
                    done: self.done_count,
                    total: self.ncblk(),
                });
            };
            self.handle(ev)?;
        }
        self.report.makespan = self.last_progress;
        if let Some(ch) = &self.checker {
            self.report.verified = ch.report().is_clean();
        }
        Ok(())
    }

    fn handle(&mut self, ev: Event) -> Result<(), DistError> {
        match ev {
            Event::TaskDone { node, epoch, c } => self.on_task_done(node, epoch, c),
            Event::Deliver { pair, epoch } => self.on_deliver(pair, epoch),
            Event::Ack { pair, epoch } => {
                let st = &mut self.pstate[pair];
                if epoch != st.epoch || !st.send.mark_acked() {
                    self.report.stale_acks += 1;
                }
                Ok(())
            }
            Event::Retransmit { pair, epoch } => self.on_retransmit(pair, epoch),
            Event::Heartbeat { node, epoch } => {
                if self.alive[node] && epoch == self.node_epoch[node] {
                    self.last_heard[node] = self.queue.now();
                    self.queue
                        .push_after(self.hb_interval, Event::Heartbeat { node, epoch });
                }
                Ok(())
            }
            Event::Sweep => self.on_sweep(),
            Event::CrashNow { node } => {
                self.crash(node);
                Ok(())
            }
        }
    }

    // -- 1D task completion -------------------------------------------

    fn on_task_done(&mut self, node: usize, epoch: u64, c: usize) -> Result<(), DistError> {
        if !self.alive[node] || epoch != self.node_epoch[node] {
            return Ok(());
        }
        // `crash=NxK` (K ≥ 1): the K-th completion is lost mid-flight —
        // the node dies *instead of* committing the task.
        if self.crash_point[node] == Some(self.completions[node] + 1) {
            self.crash(node);
            return Ok(());
        }
        self.run_1d(c, node)?;
        self.completions[node] += 1;
        self.free_cores[node] += 1;
        self.kick(node);
        Ok(())
    }

    /// Execute the fused 1D task: factorize the panel, apply same-node
    /// updates directly, accumulate cross-node contributions into pair
    /// buffers, checkpoint, release inbound retentions, and ship any
    /// pair this panel completed.
    fn run_1d(&mut self, c: usize, node: usize) -> Result<(), DistError> {
        let symbol = &self.analysis.symbol;
        if let Some(ch) = &self.checker {
            ch.task_begin(c, node);
            ch.access(c, Mode::ReadWrite, c, node);
        }
        self.ctx.panel_task(c, node);
        if let Some(e) = self.ctx.take_error() {
            return Err(DistError::Solver(e));
        }
        let cb = &symbol.cblks[c];
        let my_node = self.node_of[c];
        for bi in (cb.block_begin + 1)..cb.block_end {
            let tgt = symbol.blocks[bi].facing;
            if self.node_of[tgt] == my_node {
                if let Some(ch) = &self.checker {
                    ch.access(tgt, Mode::Accum, c, node);
                }
                self.ctx.update_task(c, bi, node, None, false);
            } else {
                let pair = self.pair_of(tgt, my_node);
                if let Some(ch) = &self.checker {
                    ch.access(self.ncblk() + pair, Mode::Accum, c, node);
                }
                self.accumulate(pair, c, bi, node);
            }
        }
        if let Some(e) = self.ctx.take_error() {
            return Err(DistError::Solver(e));
        }
        self.done[c] = true;
        self.done_count += 1;
        self.report.tasks_executed += 1;
        self.last_progress = self.queue.now();
        self.factored[c] = Some(snapshot(self.analysis, self.tab, self.d, c));
        // The panel is checkpointed: senders may free their retained
        // pair buffers (reliable control plane).
        for p in self.inbound[c].clone() {
            let st = &mut self.pstate[p];
            if st.send.mark_released() {
                st.released = true;
                st.buf = None;
            }
        }
        let succs = self.graph.succs[c].clone();
        let mut to_ship = BTreeSet::new();
        for p in self.member_of[c].clone() {
            let st = &mut self.pstate[p];
            st.remaining -= 1;
            if st.remaining == 0 {
                to_ship.insert(p);
            }
        }
        if let Some(ch) = &self.checker {
            let mut rel: Vec<usize> = succs
                .iter()
                .copied()
                .filter(|&t| self.node_of[t] == my_node)
                .collect();
            rel.extend(self.member_of[c].iter().map(|&p| self.ncblk() + p));
            ch.task_end(c, node, &rel);
        }
        for &t in &succs {
            if self.node_of[t] == my_node {
                self.pending[t] -= 1;
                self.enqueue_if_ready(t);
            }
        }
        for p in to_ship {
            self.ship(p)?;
        }
        Ok(())
    }

    fn pair_of(&self, tgt: usize, src_node: usize) -> usize {
        self.inbound[tgt]
            .iter()
            .copied()
            .find(|&p| self.pairs[p].src_node == src_node)
            .expect("cross-node block without a fan-in pair")
    }

    /// Accumulate block `bi` of panel `c` into a pair buffer.
    fn accumulate(&mut self, pair: usize, c: usize, bi: usize, node: usize) {
        let symbol = &self.analysis.symbol;
        let tgt = self.pairs[pair].tgt;
        let tcb = &symbol.cblks[tgt];
        let len = tcb.stride * tcb.width();
        let st = &mut self.pstate[pair];
        let buf = st.buf.get_or_insert_with(|| PairBuf {
            l: vec![T::zero(); len],
            u: self.tab.has_u().then(|| vec![T::zero(); len]),
        });
        self.ctx
            .update_into(c, bi, node, &mut buf.l, buf.u.as_deref_mut());
    }

    // -- messaging ----------------------------------------------------

    /// Transmit a complete pair toward its target's current owner.
    fn ship(&mut self, pair: usize) -> Result<(), DistError> {
        let info = &self.pairs[pair];
        let (tgt, from_node, bytes) = (info.tgt, info.src_node, info.bytes);
        let st = &mut self.pstate[pair];
        if st.released {
            return Ok(());
        }
        let epoch = st.epoch;
        let attempt = match st.send.try_send() {
            Ok(a) => a,
            Err(e) => {
                return Err(DistError::RetransmitExhausted {
                    target: tgt,
                    from_node,
                    attempts: e.attempts,
                })
            }
        };
        if !st.shipped {
            st.shipped = true;
            self.report.data_messages += 1;
            self.report.bytes += bytes;
        }
        self.report.sends += 1;
        if attempt > 1 {
            self.report.retransmits += 1;
        }
        if let Some(ch) = &self.checker {
            // Zero-fault: exactly one transmission per pair — the send
            // task of the spec.
            let send_id = self.ncblk() + pair;
            let host = self.alias[from_node];
            ch.task_begin(send_id, host);
            ch.access(self.ncblk() + pair, Mode::Read, send_id, host);
            ch.task_end(send_id, host, &[self.ncblk() + self.pairs.len() + pair]);
        }
        let transit = self.cluster.net_time(bytes);
        let fate = self.roll_fate();
        if fate.lost {
            self.report.messages_lost += 1;
        } else {
            let delay = if fate.reordered {
                self.report.reorders += 1;
                3.0 * transit
            } else {
                transit
            };
            self.queue.push_after(delay, Event::Deliver { pair, epoch });
            if fate.duplicated {
                self.report.duplicates_injected += 1;
                self.queue
                    .push_after(1.5 * delay, Event::Deliver { pair, epoch });
            }
        }
        // Exponential backoff before the next retransmission attempt.
        let rto_micros = (4.0 * transit * 1e6) as u64 + 1;
        let backoff = SendState::backoff_micros(rto_micros, attempt) as f64 * 1e-6;
        self.queue
            .push_after(backoff, Event::Retransmit { pair, epoch });
        Ok(())
    }

    fn on_retransmit(&mut self, pair: usize, epoch: u64) -> Result<(), DistError> {
        let st = &self.pstate[pair];
        if epoch != st.epoch || st.send.is_acked() || st.released {
            return Ok(());
        }
        let host = self.alias[self.pairs[pair].src_node];
        if !self.alive[host] {
            // The adopter re-ships under a fresh epoch.
            return Ok(());
        }
        if !self.alive[self.owner(self.pairs[pair].tgt)] {
            // The shared failure detector says the receiver is down:
            // hold the message without burning budget and poll until
            // failover re-routes the alias (an adoption that restores
            // the target refreshes the pair's epoch, making this timer
            // stale — either way no attempt is wasted on a dead node).
            self.queue
                .push_after(self.hb_interval, Event::Retransmit { pair, epoch });
            return Ok(());
        }
        self.ship(pair)
    }

    fn on_deliver(&mut self, pair: usize, epoch: u64) -> Result<(), DistError> {
        let tgt = self.pairs[pair].tgt;
        let owner = self.owner(tgt);
        if !self.alive[owner] {
            // Delivered into a dead node: dropped, no ack. The sender's
            // retransmit loop re-routes to the adopter later.
            return Ok(());
        }
        // Idempotent application: the log key is the pair alone — replay
        // is deterministic, so any epoch's payload is the same bytes and
        // exactly one application keeps the sum correct.
        if self.log.apply_if_new(pair as u64, 0) {
            // Detached check: the happens-before replay models the
            // application as its own task reading the pair buffer and
            // accumulating into the target panel. Kept out of
            // `apply_pair` so the hot accumulate stays checker-free.
            if let Some(ch) = &self.checker {
                let apply_id = self.ncblk() + self.pairs.len() + pair;
                ch.task_begin(apply_id, owner);
                ch.access(self.ncblk() + pair, Mode::Read, apply_id, owner);
                ch.access(tgt, Mode::Accum, apply_id, owner);
                ch.task_end(apply_id, owner, &[tgt]);
            }
            self.apply_pair(pair)?;
            self.pending[tgt] -= 1;
            self.last_progress = self.queue.now();
            self.enqueue_if_ready(tgt);
        } else {
            self.report.duplicates_absorbed += 1;
        }
        // Ack through the same lossy channel.
        let fate = self.roll_fate();
        if fate.lost {
            self.report.messages_lost += 1;
        } else {
            let transit = self.cluster.net_time(ACK_BYTES);
            let delay = if fate.reordered {
                self.report.reorders += 1;
                3.0 * transit
            } else {
                transit
            };
            self.queue.push_after(delay, Event::Ack { pair, epoch });
            if fate.duplicated {
                self.report.duplicates_injected += 1;
                self.queue.push_after(1.5 * delay, Event::Ack { pair, epoch });
            }
        }
        Ok(())
    }

    /// Elementwise-add a pair's accumulated (negative) contribution into
    /// the live target panel. A missing retained buffer is a protocol
    /// invariant violation and surfaces as a typed [`DistError`] — never
    /// a panic on the hot accumulate path.
    fn apply_pair(&mut self, pair: usize) -> Result<(), DistError> {
        let symbol = &self.analysis.symbol;
        // BOUNDS: `pair` indexes the fixed pair table it was enumerated
        // from; delivery events carry no other values.
        let tgt = self.pairs[pair].tgt;
        // BOUNDS: same fixed-size table, same index.
        let st = &self.pstate[pair];
        let Some(buf) = st.buf.as_ref() else {
            return Err(DistError::PairBufferMissing { pair, target: tgt });
        };
        let lpin = self
            .tab
            .pin_l_solve(symbol, tgt);
        // SAFETY: the simulation is single-threaded; no other borrow of
        // panel `tgt` is live while a delivery is processed.
        let l = unsafe { lpin.slice_mut() };
        for (dst, src) in l.iter_mut().zip(&buf.l) {
            *dst += *src;
        }
        if let Some(ub) = &buf.u {
            let upin = self.tab.pin_u_solve(symbol, tgt);
            // SAFETY: as above.
            let u = unsafe { upin.slice_mut() };
            for (dst, src) in u.iter_mut().zip(ub) {
                *dst += *src;
            }
        }
        Ok(())
    }

    // -- failure detection and recovery -------------------------------

    fn crash(&mut self, node: usize) {
        if !self.alive[node] {
            return;
        }
        self.alive[node] = false;
        // Invalidate every scheduled event of the dead node (running
        // tasks, heartbeats) by moving its epoch.
        self.node_epoch[node] += 1;
        self.ready[node].clear();
        self.report.crashes.push(node);
    }

    fn on_sweep(&mut self) -> Result<(), DistError> {
        if self.done_count == self.ncblk() {
            return Ok(());
        }
        let now = self.queue.now();
        if now - self.last_progress > STALL_LIMIT {
            return Err(DistError::Stalled {
                done: self.done_count,
                total: self.ncblk(),
            });
        }
        for n in 0..self.cluster.nnodes() {
            if !self.alive[n] && !self.buried[n] && now - self.last_heard[n] > self.hb_timeout {
                self.adopt(n)?;
            }
        }
        self.queue.push_after(self.hb_interval, Event::Sweep);
        Ok(())
    }

    /// Shard adoption with lineage replay: the lowest surviving node
    /// takes over every shard the dead node was responsible for.
    fn adopt(&mut self, dead: usize) -> Result<(), DistError> {
        self.buried[dead] = true;
        self.report.recoveries += 1;
        let Some(adopter) = (0..self.cluster.nnodes()).find(|&n| self.alive[n]) else {
            return Err(DistError::AllNodesCrashed);
        };
        let moved: Vec<usize> = (0..self.alias.len())
            .filter(|&q| self.alias[q] == dead)
            .collect();
        for &q in &moved {
            self.alias[q] = adopter;
        }
        let ncblk = self.ncblk();
        let mut to_ship: BTreeSet<usize> = BTreeSet::new();

        // Rebuild the dead host's outbound pair state first: unreleased
        // buffers were lost with it. A complete pair's members are all
        // FACTORED-checkpointed, so the rebuild reproduces the exact
        // payload; incomplete members re-accumulate when they re-run.
        for p in 0..self.pairs.len() {
            if !moved.contains(&self.pairs[p].src_node) || self.pstate[p].released {
                continue;
            }
            self.pstate[p].buf = None;
            self.pstate[p].send = SendState::new(self.max_send_attempts);
            self.pstate[p].epoch += 1;
            let members = self.pairs[p].members.clone();
            let mut remaining = 0usize;
            for (s, blocks) in &members {
                if self.done[*s] {
                    for &bi in blocks {
                        self.accumulate(p, *s, bi, adopter);
                    }
                } else {
                    remaining += 1;
                }
            }
            self.pstate[p].remaining = remaining;
            if remaining == 0 {
                to_ship.insert(p);
            }
        }

        // Restore the adopted panels: FACTORED checkpoints come back
        // verbatim; unfinished panels reset to INITIAL and replay their
        // lineage (completed shard-mates re-apply; retained remote pairs
        // are re-requested — Pull on the reliable control plane).
        for c in 0..ncblk {
            if !moved.contains(&self.node_of[c]) {
                continue;
            }
            if self.done[c] {
                let snap = self.factored[c]
                    .as_ref()
                    .expect("panel done without a FACTORED checkpoint");
                restore(self.analysis, self.tab, self.d, c, snap);
                continue;
            }
            restore(self.analysis, self.tab, self.d, c, &self.initial[c]);
            self.report.panels_restored += 1;
            self.queued[c] = false;
            for &p in &self.inbound[c] {
                self.log.forget_pair(p as u64);
            }
            self.pending[c] = self.direct_preds[c]
                .iter()
                .filter(|&&s| !self.done[s])
                .count() as u32
                + self.inbound[c].len() as u32;
            // Replay completed same-shard contributors immediately
            // (already excluded from the pending count above).
            let preds: Vec<usize> = self.direct_preds[c]
                .iter()
                .copied()
                .filter(|&s| self.done[s])
                .collect();
            let symbol = &self.analysis.symbol;
            for s in preds {
                let scb = &symbol.cblks[s];
                for bi in (scb.block_begin + 1)..scb.block_end {
                    if symbol.blocks[bi].facing == c {
                        self.ctx.update_task(s, bi, adopter, None, false);
                    }
                }
            }
            // Re-request every retained complete pair under a fresh
            // epoch (the old acked SendState must not suppress the
            // resend).
            for p in self.inbound[c].clone() {
                let st = &mut self.pstate[p];
                if st.remaining == 0 && !to_ship.contains(&p) {
                    st.send = SendState::new(self.max_send_attempts);
                    st.epoch += 1;
                    to_ship.insert(p);
                }
            }
        }
        if let Some(e) = self.ctx.take_error() {
            return Err(DistError::Solver(e));
        }
        for p in to_ship {
            self.ship(p)?;
        }
        for c in 0..ncblk {
            if moved.contains(&self.node_of[c]) {
                self.enqueue_if_ready(c);
            }
        }
        self.last_progress = self.queue.now();
        Ok(())
    }
}

/// Copy panel `c`'s live storage (L, Uᵀ, d-slice) into a snapshot.
fn snapshot<T: Scalar>(
    analysis: &Analysis,
    tab: &CoefTab<T>,
    d: &SharedSlice<T>,
    c: usize,
) -> Snapshot<T> {
    let symbol = &analysis.symbol;
    let cb = &symbol.cblks[c];
    let lpin = tab.pin_l_solve(symbol, c);
    // SAFETY: single-threaded simulation; no concurrent borrow.
    let l = unsafe { lpin.slice() }.to_vec();
    let u = tab.has_u().then(|| {
        let upin = tab.pin_u_solve(symbol, c);
        // SAFETY: as above.
        unsafe { upin.slice() }.to_vec()
    });
    let dr = if analysis.facto == FactoKind::Ldlt {
        // SAFETY: as above.
        unsafe { d.range(cb.fcol..cb.lcol) }.to_vec()
    } else {
        Vec::new()
    };
    Snapshot { l, u, d: dr }
}

/// Copy a snapshot back over panel `c`'s live storage.
fn restore<T: Scalar>(
    analysis: &Analysis,
    tab: &CoefTab<T>,
    d: &SharedSlice<T>,
    c: usize,
    snap: &Snapshot<T>,
) {
    let symbol = &analysis.symbol;
    let cb = &symbol.cblks[c];
    let lpin = tab.pin_l_solve(symbol, c);
    // SAFETY: single-threaded simulation; no concurrent borrow.
    unsafe { lpin.slice_mut() }.copy_from_slice(&snap.l);
    if let Some(us) = &snap.u {
        let upin = tab.pin_u_solve(symbol, c);
        // SAFETY: as above.
        unsafe { upin.slice_mut() }.copy_from_slice(us);
    }
    if analysis.facto == FactoKind::Ldlt {
        // SAFETY: as above.
        unsafe { d.range_mut(cb.fcol..cb.lcol) }.copy_from_slice(&snap.d);
    }
}

/// Distributed factorization of `a` over a simulated cluster: real
/// factors, virtual makespan, fault-tolerant fan-in protocol. A typed
/// [`DistError`] is returned whenever recovery is impossible — the
/// factors are never silently wrong.
pub fn factorize_dist<'a, T: Scalar>(
    analysis: &'a Analysis,
    a: &CscMatrix<T>,
    opts: &DistOptions,
) -> Result<(Factors<'a, T>, DistReport), DistError> {
    let symbol = &analysis.symbol;
    if a.nrows() != symbol.n || a.ncols() != symbol.n {
        return Err(DistError::Solver(SolverError::PatternMismatch(format!(
            "analyzed order {} but matrix is {}x{}",
            symbol.n,
            a.nrows(),
            a.ncols()
        ))));
    }
    let tab = CoefTab::assemble_with(analysis, a, &MemoryOptions::default())
        .map_err(DistError::Solver)?;
    let d: SharedSlice<T> = SharedSlice::from_vec(vec![T::zero(); symbol.n]);
    let epsilon = opts
        .epsilon_override
        .unwrap_or(analysis.options.static_pivot_epsilon);
    let threshold = if analysis.facto == FactoKind::Cholesky {
        0.0
    } else {
        epsilon * a.norm_inf().max(1.0)
    };
    let ctx = NumericCtx::for_dist(analysis, &tab, &d, threshold, opts.nnodes.max(1));
    let mut sim = Sim::new(analysis, &ctx, &tab, &d, opts);
    let outcome = sim.run();
    let mut report = std::mem::take(&mut sim.report);
    drop(sim);
    if let Some(e) = ctx.take_error() {
        return Err(DistError::Solver(e));
    }
    outcome?;
    analysis
        .sweep_non_finite(&tab, &d)
        .map_err(DistError::Solver)?;
    let pivots = ctx.pivots();
    drop(ctx);
    report.makespan = report.makespan.max(0.0);
    Ok((
        Factors {
            analysis,
            tab,
            d: d.into_vec(),
            pivots_repaired: pivots,
            stats: FactorStats {
                epsilon,
                epsilon_history: vec![epsilon],
                attempts: 1,
                run: Default::default(),
            },
            trace: None,
        },
        report,
    ))
}

/// Statically verify the distributed task/message graph of `analysis`
/// over `nnodes` nodes: build [`dist_graph_spec`] and run the
/// happens-before race analysis. Returns the report for assertions.
pub fn check_dist_static(
    analysis: &Analysis,
    complex: bool,
    nnodes: usize,
) -> dagfact_rt::verify::StaticReport {
    check_static(&dist_graph_spec(analysis, complex, nnodes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::SolverOptions;
    use dagfact_sparse::gen::grid_laplacian_2d;

    fn analysis(facto: FactoKind) -> Analysis {
        let a = grid_laplacian_2d(12, 12);
        Analysis::new(a.pattern(), facto, &SolverOptions::default())
    }

    #[test]
    fn pair_enumeration_matches_fan_in_study() {
        let an = analysis(FactoKind::Cholesky);
        for nnodes in [1usize, 2, 4] {
            let study = crate::distributed::fan_in_study(&an, false, nnodes);
            let pairs = build_pairs(&an.symbol, &study.mapping.node_of, 8.0);
            assert_eq!(pairs.len() as u64, study.fan_in.messages);
            let total: f64 = pairs.iter().map(|p| p.bytes).sum();
            assert!((total - study.fan_in.bytes).abs() <= 1e-6 * (1.0 + study.fan_in.bytes));
        }
    }

    #[test]
    fn static_spec_is_clean_for_all_factos() {
        for facto in [FactoKind::Cholesky, FactoKind::Ldlt, FactoKind::Lu] {
            let an = analysis(facto);
            let report = check_dist_static(&an, false, 4);
            assert!(report.is_clean(), "{facto:?}: {report}");
        }
    }

    #[test]
    fn dropping_an_apply_edge_is_flagged_as_a_race() {
        let an = analysis(FactoKind::Cholesky);
        let mut spec = dist_graph_spec(&an, false, 4);
        let ncblk = an.symbol.ncblk();
        let study = crate::distributed::fan_in_study(&an, false, 4);
        let npairs = study.fan_in.messages as usize;
        assert!(npairs > 0, "need at least one cross-node pair");
        // Drop the first apply → target edge: the apply's accumulation
        // into the target panel is no longer ordered before the target's
        // own 1D task.
        let apply = ncblk + npairs;
        let accesses: Vec<_> = spec.accesses_of(apply).to_vec();
        let tgt = accesses
            .iter()
            .find(|(d, m)| *d < ncblk && *m == Mode::Accum)
            .map(|(d, _)| *d)
            .expect("apply task accumulates into its target panel");
        assert!(spec.remove_edge(apply, tgt));
        let report = check_static(&spec);
        assert!(!report.is_clean(), "missing message edge must be a race");
    }
}
