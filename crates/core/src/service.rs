//! Shareable analysis/factor handles for long-lived solver services.
//!
//! The repeated-factorization regime the paper's runtime argument is
//! strongest in (FEM time-stepping, circuit simulation: *same sparsity
//! pattern, new values* and *same factors, new right-hand side*) needs
//! the analysis and the numeric factors to outlive a single
//! [`crate::Solver`] call so a cache can hand them to many requests.
//! [`SharedFactors`] is that handle: it owns an `Arc<Analysis>`, a clone
//! of the factorized matrix (for iterative refinement), and the numeric
//! [`Factors`] borrowing the shared analysis — with the same
//! self-reference discipline as [`crate::Solver`], made sharable by the
//! `Arc` (the analysis heap allocation is stable no matter how many
//! caches and jobs hold the handle).

use crate::analysis::Analysis;
use crate::numeric::{ExecOptions, FactorStats, Factors};
use crate::refine::RefinedSolve;
use crate::SolverError;
use dagfact_kernels::Scalar;
use dagfact_rt::RuntimeKind;
use dagfact_sparse::CscMatrix;
use std::sync::Arc;

/// Numeric factors bound to a shared (`Arc`ed) analysis, self-contained
/// enough to be cached and served across requests: the handle carries
/// everything `solve` / `solve_refined` need.
pub struct SharedFactors<T: Scalar> {
    // Field order is load-bearing: `factors` borrows the Arc'ed analysis
    // below and must drop first (fields drop in declaration order).
    factors: Factors<'static, T>,
    matrix: CscMatrix<T>,
    analysis: Arc<Analysis>,
}

impl<T: Scalar> SharedFactors<T> {
    /// Numerically factorize `a` against the shared `analysis`, with the
    /// same adaptive recovery loop as [`crate::Solver`]: numeric
    /// breakdown retries with an escalated static-pivot threshold,
    /// injected allocation faults retry at the same threshold, both
    /// bounded by [`crate::SolverOptions::max_refactor_attempts`].
    pub fn factorize(
        analysis: Arc<Analysis>,
        a: &CscMatrix<T>,
        runtime: RuntimeKind,
        threads: usize,
        exec: &ExecOptions,
    ) -> Result<SharedFactors<T>, SolverError> {
        // SAFETY: `factors` borrows the analysis through this fake
        // 'static reference. The `Arc` heap allocation is stable for the
        // life of the returned struct (the struct holds a clone of the
        // Arc), the reference is never exposed with the fake lifetime,
        // and the field order drops the borrower first.
        let analysis_ref: &'static Analysis = unsafe { &*Arc::as_ptr(&analysis) };
        let options = &analysis.options;
        let mut epsilon = exec
            .epsilon_override
            .unwrap_or(options.static_pivot_epsilon);
        let mut history: Vec<f64> = Vec::new();
        let mut attempt = 0u32;
        let factors = loop {
            attempt += 1;
            history.push(epsilon);
            let exec_try = ExecOptions {
                run: exec.run.clone(),
                epsilon_override: Some(epsilon),
                spill_dir: exec.spill_dir.clone(),
            };
            match analysis_ref.factorize_with::<T>(a, runtime, threads, &exec_try) {
                Ok(mut f) => {
                    f.stats.attempts = attempt;
                    f.stats.epsilon_history = history;
                    break f;
                }
                Err(e)
                    if attempt < options.max_refactor_attempts
                        && e.is_recoverable_by_pivoting() =>
                {
                    epsilon = crate::solver::escalate_epsilon(epsilon);
                }
                Err(e)
                    if attempt < options.max_refactor_attempts && e.is_transient_alloc() => {}
                Err(e) => return Err(e),
            }
        };
        Ok(SharedFactors {
            factors,
            matrix: a.clone(),
            analysis,
        })
    }

    /// The shared analysis these factors were built against.
    pub fn analysis(&self) -> &Arc<Analysis> {
        &self.analysis
    }

    /// Execution statistics of the factorization.
    pub fn stats(&self) -> &FactorStats {
        &self.factors.stats
    }

    /// Number of pivots bumped by static pivoting.
    pub fn pivots_repaired(&self) -> usize {
        self.factors.pivots_repaired
    }

    /// Solve `A·x = b`.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        self.factors.solve(b)
    }

    /// Solve for `nrhs` column-major right-hand sides in one blocked
    /// sweep.
    pub fn solve_many(&self, b: &[T], nrhs: usize) -> Vec<T> {
        self.factors.solve_many(b, nrhs)
    }

    /// Solve with iterative refinement, reporting divergence as a typed
    /// error (the handle carries the matrix the factors were built from,
    /// so refinement needs no extra arguments).
    pub fn solve_refined_checked(
        &self,
        b: &[T],
        max_iter: usize,
        tol: f64,
    ) -> Result<RefinedSolve<T>, SolverError> {
        self.factors
            .solve_refined_checked(&self.matrix, b, max_iter, tol)
    }

    /// Resident footprint of the handle in bytes (coefficient storage +
    /// LDLᵀ diagonal + the retained matrix) — what a cache should charge
    /// to a [`dagfact_rt::MemoryBudget`] ledger for holding it.
    pub fn resident_bytes(&self) -> usize {
        let elt = core::mem::size_of::<T>();
        let sides = if self.factors.tab.has_u() { 2 } else { 1 };
        let coef = self.factors.tab.layout.len.saturating_mul(elt * sides);
        let diag = self.factors.d.len().saturating_mul(elt);
        // CSC: values + row indices + column pointers.
        let matrix = self
            .matrix
            .nnz()
            .saturating_mul(elt + core::mem::size_of::<usize>())
            .saturating_add((self.matrix.ncols() + 1) * core::mem::size_of::<usize>());
        coef.saturating_add(diag).saturating_add(matrix)
    }
}

impl Analysis {
    /// Resident footprint of the analysis in bytes (permutation + block
    /// symbolic structure) — what a pattern cache should charge to a
    /// [`dagfact_rt::MemoryBudget`] ledger for holding it. An estimate:
    /// the symbol structure dominates and is counted exactly; small
    /// side tables are approximated.
    pub fn resident_bytes(&self) -> usize {
        let usz = core::mem::size_of::<usize>();
        let perm = self.perm.perm().len().saturating_mul(2 * usz);
        let cblks = core::mem::size_of_val(&self.symbol.cblks[..]);
        let blocks = self
            .symbol
            .blocks
            .len()
            .saturating_mul(6 * usz)
            .saturating_add(self.symbol.col_to_cblk.len() * usz);
        perm.saturating_add(cblks).saturating_add(blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::SolverOptions;
    use dagfact_sparse::gen::grid_laplacian_3d;
    use dagfact_symbolic::FactoKind;

    #[test]
    fn shared_factors_solve_multiple_rhs_from_one_analysis() {
        let a = grid_laplacian_3d(6, 6, 6);
        let analysis = Arc::new(Analysis::new(
            a.pattern(),
            FactoKind::Cholesky,
            &SolverOptions::default(),
        ));
        let sf = SharedFactors::factorize(
            analysis.clone(),
            &a,
            RuntimeKind::Native,
            2,
            &ExecOptions::default(),
        )
        .expect("factorize");
        // Same analysis, second factorization with scaled values: the
        // pattern handle is genuinely reusable.
        let scaled = CscMatrix::new(
            a.pattern().clone(),
            a.values().iter().map(|v| v * 2.0).collect(),
        );
        let sf2 = SharedFactors::factorize(
            analysis.clone(),
            &scaled,
            RuntimeKind::Native,
            2,
            &ExecOptions::default(),
        )
        .expect("refactorize");
        let n = a.nrows();
        let mut b = vec![0.0; n];
        a.spmv(&vec![1.0; n], &mut b);
        let r = sf.solve_refined_checked(&b, 2, 1e-12).expect("solve");
        assert!(r.residuals.last().copied().unwrap_or(1.0) < 1e-12);
        // 2A·x = b  →  x = ones/2.
        let x2 = sf2.solve(&b);
        assert!(x2.iter().all(|v| (v - 0.5).abs() < 1e-9), "scaled solve wrong");
        assert!(sf.resident_bytes() > 0);
        assert!(analysis.resident_bytes() > 0);
    }
}
