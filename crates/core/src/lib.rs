//! # dagfact-core
//!
//! A task-based supernodal sparse direct solver — the Rust reproduction of
//! PaStiX as studied in *"Taking advantage of hybrid systems for sparse
//! direct solvers via task-based runtimes"* (Lacoste et al., IPDPS
//! Workshops 2014).
//!
//! The solver factorizes structurally-symmetric sparse systems `A·x = b`
//! with Cholesky (`LLᵀ`), `LDLᵀ` or static-pivoting `LU`, in real or
//! double-complex arithmetic, through three interchangeable task runtimes
//! (the paper's PaStiX-native / StarPU / PaRSEC comparison), and can
//! *simulate* its own factorization on a parameterized hybrid CPU+GPU
//! platform to reproduce the paper's performance studies.
//!
//! ```no_run
//! use dagfact_core::{Analysis, SolverOptions};
//! use dagfact_symbolic::FactoKind;
//! use dagfact_rt::RuntimeKind;
//! use dagfact_sparse::gen::grid_laplacian_3d;
//!
//! let a = grid_laplacian_3d(20, 20, 20);
//! let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
//! let factors = analysis.factorize(&a, RuntimeKind::Ptg, 4).unwrap();
//! let b = vec![1.0; a.nrows()];
//! let x = factors.solve(&b);
//! ```

pub mod analysis;
pub mod coeftab;
pub mod distributed;
pub mod numeric;
pub mod psolve;
pub mod refine;
pub mod simulate;
pub mod solve;
pub mod solver;
pub mod tasks;

pub use analysis::{Analysis, AnalysisStats, SolverOptions};
pub use distributed::{fan_in_study, CommStats, FanInStudy};
pub use numeric::Factors;
pub use solver::Solver;
pub use simulate::{build_sim_dag, simulate_factorization, SimOptions};

pub use dagfact_rt::RuntimeKind;
pub use dagfact_symbolic::FactoKind;

/// Solver errors.
#[derive(Debug)]
pub enum SolverError {
    /// A diagonal-block factorization kernel failed (non-SPD matrix given
    /// to Cholesky, or an exactly-zero pivot with no static-pivot
    /// threshold).
    Kernel(dagfact_kernels::KernelError),
    /// The matrix handed to `factorize` does not match the analyzed
    /// pattern.
    PatternMismatch(String),
}

impl core::fmt::Display for SolverError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SolverError::Kernel(e) => write!(f, "kernel failure: {e}"),
            SolverError::PatternMismatch(msg) => write!(f, "pattern mismatch: {msg}"),
        }
    }
}

impl std::error::Error for SolverError {}

impl From<dagfact_kernels::KernelError> for SolverError {
    fn from(e: dagfact_kernels::KernelError) -> Self {
        SolverError::Kernel(e)
    }
}
