//! # dagfact-core
//!
//! A task-based supernodal sparse direct solver — the Rust reproduction of
//! PaStiX as studied in *"Taking advantage of hybrid systems for sparse
//! direct solvers via task-based runtimes"* (Lacoste et al., IPDPS
//! Workshops 2014).
//!
//! The solver factorizes structurally-symmetric sparse systems `A·x = b`
//! with Cholesky (`LLᵀ`), `LDLᵀ` or static-pivoting `LU`, in real or
//! double-complex arithmetic, through three interchangeable task runtimes
//! (the paper's PaStiX-native / StarPU / PaRSEC comparison), and can
//! *simulate* its own factorization on a parameterized hybrid CPU+GPU
//! platform to reproduce the paper's performance studies.
//!
//! ```no_run
//! use dagfact_core::{Analysis, SolverOptions};
//! use dagfact_symbolic::FactoKind;
//! use dagfact_rt::RuntimeKind;
//! use dagfact_sparse::gen::grid_laplacian_3d;
//!
//! let a = grid_laplacian_3d(20, 20, 20);
//! let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
//! let factors = analysis.factorize(&a, RuntimeKind::Ptg, 4).unwrap();
//! let b = vec![1.0; a.nrows()];
//! let x = factors.solve(&b);
//! ```

pub mod analysis;
pub mod coeftab;
pub mod dist;
pub mod distributed;
pub mod numeric;
pub mod psolve;
pub mod refine;
pub mod service;
pub mod simulate;
pub mod solve;
pub mod solver;
pub mod spill;
pub mod tasks;
pub mod verify;

pub use analysis::{Analysis, AnalysisStats, SolverOptions};
pub use verify::{EngineReport, VerifyOptions, VerifyOutcome};
pub use dist::{check_dist_static, dist_graph_spec, factorize_dist, DistError, DistOptions, DistReport};
pub use distributed::{fan_in_study, CommStats, FanInStudy};
pub use numeric::{ExecOptions, FactorStats, Factors};
pub use refine::RefinedSolve;
pub use service::SharedFactors;
pub use solver::Solver;
pub use simulate::{build_sim_dag, simulate_factorization, SimOptions};

pub use dagfact_rt::RuntimeKind;
pub use dagfact_symbolic::FactoKind;

/// Solver errors.
#[derive(Debug)]
pub enum SolverError {
    /// A diagonal-block factorization kernel failed (non-SPD matrix given
    /// to Cholesky, or an exactly-zero pivot with no static-pivot
    /// threshold).
    Kernel(dagfact_kernels::KernelError),
    /// The matrix handed to `factorize` does not match the analyzed
    /// pattern.
    PatternMismatch(String),
    /// The runtime engine failed: a task panicked, a transient fault
    /// exhausted its retry budget, or the scheduler stalled.
    Engine(dagfact_rt::EngineError),
    /// The post-factorization sweep found NaN/Inf coefficients — numeric
    /// breakdown (or injected corruption) that escaped the pivot checks.
    /// `task` names the storage array (`"L"`, `"U"` or `"D"`), `block` the
    /// panel it sits in.
    NonFinite { task: &'static str, block: usize },
    /// Iterative refinement diverged: the backward error grew over two
    /// consecutive corrections — the factorization is too inaccurate for
    /// refinement to recover (typically after heavy static pivoting).
    RefinementStalled { iterations: usize, last_berr: f64 },
    /// The memory budget's hard cap cannot be met even after workspace
    /// shedding, throttling and spilling — e.g. a single panel larger
    /// than the whole cap. `site` is the budget allocation site
    /// (`dagfact_rt::budget::site`).
    BudgetExceeded {
        requested: usize,
        used: usize,
        cap: usize,
        site: usize,
    },
    /// A fault plan injected an allocation failure (`AllocFail`) at this
    /// budget site. Transient by construction: the plan's per-site
    /// failure budget is consumed, so a retry of the same phase succeeds.
    AllocFault { site: usize },
    /// The disk-backed spill store failed (I/O error writing or faulting
    /// a panel back in).
    Spill(String),
}

impl core::fmt::Display for SolverError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SolverError::Kernel(e) => write!(f, "kernel failure: {e}"),
            SolverError::PatternMismatch(msg) => write!(f, "pattern mismatch: {msg}"),
            SolverError::Engine(e) => write!(f, "engine failure: {e}"),
            SolverError::NonFinite { task, block } => write!(
                f,
                "non-finite coefficients in {task} panel {block} after factorization"
            ),
            SolverError::RefinementStalled { iterations, last_berr } => write!(
                f,
                "iterative refinement diverging after {iterations} step(s) \
                 (backward error {last_berr:.3e})"
            ),
            SolverError::BudgetExceeded {
                requested,
                used,
                cap,
                site,
            } => write!(
                f,
                "memory budget exceeded beyond recovery: requested {requested} B at \
                 site {site} with {used} B of {cap} B charged (even spilling cannot \
                 make progress)"
            ),
            SolverError::AllocFault { site } => {
                write!(f, "injected allocation failure at budget site {site}")
            }
            SolverError::Spill(msg) => write!(f, "spill store failure: {msg}"),
        }
    }
}

impl std::error::Error for SolverError {}

impl From<dagfact_kernels::KernelError> for SolverError {
    fn from(e: dagfact_kernels::KernelError) -> Self {
        SolverError::Kernel(e)
    }
}

impl From<dagfact_rt::EngineError> for SolverError {
    fn from(e: dagfact_rt::EngineError) -> Self {
        SolverError::Engine(e)
    }
}

impl SolverError {
    /// `true` when escalating the static-pivot threshold and
    /// re-factorizing has a chance of succeeding: numeric breakdowns
    /// (zero / non-finite pivots, corrupted coefficients, stalled
    /// refinement) are recoverable, structural and engine failures are
    /// not.
    pub fn is_recoverable_by_pivoting(&self) -> bool {
        matches!(
            self,
            SolverError::Kernel(
                dagfact_kernels::KernelError::ZeroPivot { .. }
                    | dagfact_kernels::KernelError::NonFinitePivot { .. }
            ) | SolverError::NonFinite { .. }
                | SolverError::RefinementStalled { .. }
        )
    }

    /// `true` when the run was cancelled through a
    /// [`dagfact_rt::CancelToken`] (deadline, shutdown): the factors
    /// never materialized, nothing about the problem itself is wrong,
    /// and the same job resubmitted without the deadline would likely
    /// succeed.
    pub fn is_cancelled(&self) -> bool {
        matches!(
            self,
            SolverError::Engine(dagfact_rt::EngineError::Cancelled { .. })
        )
    }

    /// `true` when the failure was an *injected* allocation fault whose
    /// per-site budget is consumed on delivery: retrying the same phase
    /// (same pivot threshold — no escalation needed) will succeed once
    /// the plan runs out of failures.
    pub fn is_transient_alloc(&self) -> bool {
        matches!(self, SolverError::AllocFault { .. })
    }

    /// Map a budget-layer refusal into the solver error space.
    pub fn from_budget(e: dagfact_rt::BudgetError) -> Self {
        match e {
            dagfact_rt::BudgetError::Exceeded {
                requested,
                used,
                cap,
                site,
            } => SolverError::BudgetExceeded {
                requested,
                used,
                cap,
                site,
            },
            dagfact_rt::BudgetError::Injected { site } => SolverError::AllocFault { site },
        }
    }
}
