//! Disk-backed panel store — the last rung of the degradation ladder.
//!
//! When the memory budget is capped and pressure stays high after
//! workspace shedding and throttling, cold factored panels are *spilled*
//! here and faulted back in on the next touch (usually the solve phase).
//! One file per panel under a private directory; the format is the raw
//! little-endian `f64` component stream of the panel (8 bytes per real
//! element, 16 per complex one), so a spill → fault-in round trip is
//! bit-exact and the capped factorization produces the same factors as
//! the unconstrained one.
//!
//! The store cleans up after itself on drop. It is deliberately dumb —
//! no compression, no async IO — because the interesting policy (what
//! to spill, when) lives in the pager inside [`crate::coeftab::CoefTab`]
//! and the ledger in `dagfact_rt::budget`.

use std::collections::HashSet;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use dagfact_kernels::Scalar;

/// Monotonic discriminator so concurrent solvers in one process get
/// distinct spill directories.
static STORE_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A directory of spilled panels, one file per panel key.
#[derive(Debug)]
pub struct SpillStore {
    dir: PathBuf,
    /// Keys with a file on disk (for bookkeeping and cleanup).
    keys: Mutex<HashSet<usize>>,
}

impl SpillStore {
    /// Create a store. With `Some(dir)`, panels land in a fresh
    /// subdirectory of `dir`; with `None`, of the system temp dir.
    pub fn create(base: Option<&Path>) -> std::io::Result<SpillStore> {
        let base = base.map(Path::to_path_buf).unwrap_or_else(std::env::temp_dir);
        // ORDERING: process-unique sequence number; only uniqueness
        // matters, no memory is published.
        let seq = STORE_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = base.join(format!(
            "dagfact-spill-{}-{}",
            std::process::id(),
            seq
        ));
        std::fs::create_dir_all(&dir)?;
        Ok(SpillStore {
            dir,
            keys: Mutex::new(HashSet::new()),
        })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: usize) -> PathBuf {
        self.dir.join(format!("panel-{key}.bin"))
    }

    /// Number of panels currently on disk.
    pub fn len(&self) -> usize {
        self.keys.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Write panel `key`, returning the bytes written. Overwrites any
    /// previous spill of the same key.
    pub fn write<T: Scalar>(&self, key: usize, data: &[T]) -> std::io::Result<usize> {
        let per = if T::IS_COMPLEX { 16 } else { 8 };
        let mut buf: Vec<u8> = Vec::with_capacity(data.len() * per);
        for &v in data {
            buf.extend_from_slice(&v.re().to_le_bytes());
            if T::IS_COMPLEX {
                buf.extend_from_slice(&v.im().to_le_bytes());
            }
        }
        let mut f = std::fs::File::create(self.path_for(key))?;
        f.write_all(&buf)?;
        self.keys
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key);
        Ok(buf.len())
    }

    /// Read panel `key` back (exactly `len` elements, bit-identical to
    /// what was written).
    pub fn read<T: Scalar>(&self, key: usize, len: usize) -> std::io::Result<Box<[T]>> {
        let per = if T::IS_COMPLEX { 16 } else { 8 };
        let mut buf = vec![0u8; len * per];
        let mut f = std::fs::File::open(self.path_for(key))?;
        f.read_exact(&mut buf)?;
        let mut out = Vec::with_capacity(len);
        for chunk in buf.chunks_exact(per) {
            let re = f64::from_le_bytes(
                chunk[..8].try_into().expect("8-byte chunk"),
            );
            let im = if T::IS_COMPLEX {
                f64::from_le_bytes(chunk[8..16].try_into().expect("8-byte chunk"))
            } else {
                0.0
            };
            out.push(T::from_parts(re, im));
        }
        Ok(out.into_boxed_slice())
    }

    /// Drop panel `key`'s file (after a fault-in, the disk copy is stale
    /// the moment anyone writes to the panel again).
    pub fn remove(&self, key: usize) {
        // Release the key-set lock before touching the filesystem: the
        // unlink can stall on IO and nothing below needs the set.
        let present = self
            .keys
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&key);
        if present {
            let _ = std::fs::remove_file(self.path_for(key));
        }
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        let keys: Vec<usize> = self
            .keys
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .copied()
            .collect();
        for key in keys {
            let _ = std::fs::remove_file(self.path_for(key));
        }
        let _ = std::fs::remove_dir(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_bit_exact() {
        let store = SpillStore::create(None).expect("create store");
        let data: Vec<f64> = (0..257)
            .map(|i| (i as f64).sin() * 1e-3 + f64::EPSILON * i as f64)
            .collect();
        let bytes = store.write(3, &data).expect("write");
        assert_eq!(bytes, data.len() * 8);
        assert_eq!(store.len(), 1);
        let back = store.read::<f64>(3, data.len()).expect("read");
        for (a, b) in data.iter().zip(back.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        store.remove(3);
        assert!(store.is_empty());
        assert!(store.read::<f64>(3, 1).is_err(), "removed panel is gone");
    }

    #[test]
    fn complex_roundtrip_preserves_both_parts() {
        use dagfact_kernels::C64;
        let store = SpillStore::create(None).expect("create store");
        let data: Vec<C64> = (0..64)
            .map(|i| C64::new(i as f64 * 0.25, -(i as f64) * 0.5))
            .collect();
        store.write(0, &data).expect("write");
        let back = store.read::<C64>(0, data.len()).expect("read");
        for (a, b) in data.iter().zip(back.iter()) {
            assert_eq!(a.re().to_bits(), b.re().to_bits());
            assert_eq!(a.im().to_bits(), b.im().to_bits());
        }
    }

    #[test]
    fn store_cleans_directory_on_drop() {
        let store = SpillStore::create(None).expect("create store");
        store.write(1, &[1.0f64, 2.0]).expect("write");
        let dir = store.dir().to_path_buf();
        assert!(dir.exists());
        drop(store);
        assert!(!dir.exists(), "spill dir should be removed on drop");
    }
}
