//! Distributed-memory communication study — the paper's second
//! future-work item (§VI): "when a supernode updates another non-local
//! supernode, the update blocks are stored in a local extra-memory space
//! (this is called 'fan-in' approach \[32\]). By locally accumulating the
//! updates until the last updates to the supernode are available, we trade
//! bandwidth for latency."
//!
//! Given a [`proportional_mapping`] of panels onto nodes, this module
//! quantifies that trade: the message count and byte volume of the naive
//! *fan-out* strategy (each cross-node update shipped immediately) versus
//! the *fan-in* strategy (contributions to one remote panel accumulated
//! locally and shipped once).

use crate::analysis::Analysis;
use dagfact_symbolic::mapping::NodeMapping;
use dagfact_symbolic::proportional_mapping;

/// Communication volume of one distribution strategy.
#[derive(Debug, Clone)]
pub struct CommStats {
    /// Total cross-node messages.
    pub messages: u64,
    /// Total bytes on the wire.
    pub bytes: f64,
    /// Bytes sent per node.
    pub sent_per_node: Vec<f64>,
    /// Extra local accumulation memory per node (fan-in buffers; zero for
    /// fan-out).
    pub buffer_bytes_per_node: Vec<f64>,
}

/// Both strategies side by side.
#[derive(Debug, Clone)]
pub struct FanInStudy {
    /// The node mapping used.
    pub mapping: NodeMapping,
    /// Ship-every-update strategy.
    pub fan_out: CommStats,
    /// Accumulate-then-ship strategy.
    pub fan_in: CommStats,
}

/// Analyze the communication of distributing this factorization over
/// `nnodes` nodes (proportional mapping), for real (`complex = false`) or
/// complex scalars.
pub fn fan_in_study(analysis: &Analysis, complex: bool, nnodes: usize) -> FanInStudy {
    let symbol = &analysis.symbol;
    let costs = analysis.costs(complex);
    let mapping = proportional_mapping(symbol, &costs, nnodes);
    let scalar_bytes = if complex { 16.0 } else { 8.0 } * analysis.facto.sides() as f64;

    let mut fan_out = CommStats {
        messages: 0,
        bytes: 0.0,
        sent_per_node: vec![0.0; nnodes],
        buffer_bytes_per_node: vec![0.0; nnodes],
    };
    // Fan-in accumulators: (target panel, source node) → accumulated bytes.
    let mut pair_bytes: std::collections::HashMap<(usize, usize), f64> =
        std::collections::HashMap::new();
    for c in 0..symbol.ncblk() {
        let src_node = mapping.node_of[c];
        let cb = &symbol.cblks[c];
        for b in symbol.off_blocks(c) {
            let tgt = b.facing;
            let tgt_node = mapping.node_of[tgt];
            if tgt_node == src_node {
                continue;
            }
            // Contribution block: (rows at-and-below b) × (rows of b).
            let m = cb.stride - b.local_offset;
            let contrib = (m * b.nrows()) as f64 * scalar_bytes;
            fan_out.messages += 1;
            fan_out.bytes += contrib;
            fan_out.sent_per_node[src_node] += contrib;
            *pair_bytes.entry((tgt, src_node)).or_insert(0.0) += contrib;
        }
    }
    let mut fan_in = CommStats {
        messages: 0,
        bytes: 0.0,
        sent_per_node: vec![0.0; nnodes],
        buffer_bytes_per_node: vec![0.0; nnodes],
    };
    for (&(tgt, src_node), &accumulated) in &pair_bytes {
        // The accumulated contributions overlap inside the target panel;
        // one fan-in buffer (and one message) is at most the panel itself.
        let cb = &symbol.cblks[tgt];
        let panel_bytes = (cb.stride * cb.width()) as f64 * scalar_bytes;
        let shipped = accumulated.min(panel_bytes);
        fan_in.messages += 1;
        fan_in.bytes += shipped;
        fan_in.sent_per_node[src_node] += shipped;
        fan_in.buffer_bytes_per_node[src_node] += shipped;
    }
    FanInStudy {
        mapping,
        fan_out,
        fan_in,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::SolverOptions;
    use dagfact_sparse::gen::grid_laplacian_3d;
    use dagfact_symbolic::FactoKind;

    fn analysis() -> Analysis {
        let a = grid_laplacian_3d(14, 14, 14);
        Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default())
    }

    #[test]
    fn single_node_has_no_communication() {
        let study = fan_in_study(&analysis(), false, 1);
        assert_eq!(study.fan_out.messages, 0);
        assert_eq!(study.fan_in.messages, 0);
        assert_eq!(study.fan_out.bytes, 0.0);
    }

    #[test]
    fn fan_in_never_sends_more_than_fan_out() {
        let an = analysis();
        for nnodes in [2usize, 4, 8] {
            let study = fan_in_study(&an, false, nnodes);
            assert!(study.fan_out.messages > 0, "{nnodes} nodes: no comm at all?");
            assert!(
                study.fan_in.messages < study.fan_out.messages,
                "{nnodes} nodes: fan-in must cut message count"
            );
            assert!(study.fan_in.bytes <= study.fan_out.bytes + 1e-9);
            // Fan-in pays with accumulation buffers.
            let buffers: f64 = study.fan_in.buffer_bytes_per_node.iter().sum();
            assert!(buffers > 0.0);
        }
    }

    #[test]
    fn communication_grows_with_node_count() {
        let an = analysis();
        let s2 = fan_in_study(&an, false, 2);
        let s8 = fan_in_study(&an, false, 8);
        assert!(s8.fan_out.bytes > s2.fan_out.bytes);
    }

    #[test]
    fn complex_lu_doubles_scalar_traffic() {
        let a = dagfact_sparse::gen::convection_diffusion_3d(10, 10, 10, 0.3);
        let an = Analysis::new(a.pattern(), FactoKind::Lu, &SolverOptions::default());
        let d = fan_in_study(&an, false, 4);
        let z = fan_in_study(&an, true, 4);
        // Same message pattern, 2x the bytes (8→16 bytes per scalar).
        assert_eq!(d.fan_out.messages, z.fan_out.messages);
        assert!((z.fan_out.bytes / d.fan_out.bytes - 2.0).abs() < 1e-9);
    }
}
