//! Static analysis of the solver's task graphs.
//!
//! The three engines run the *same* factorization from three different
//! graph descriptions: the native engine's coarse 1D DAG
//! ([`crate::tasks::OneDGraph`]), the dataflow engine's hazard-inferred
//! graph, and the PTG engine's algebraic two-level DAG
//! ([`crate::tasks::TaskGraph`]). Each description carries an implicit
//! safety claim — the dependency edges order every pair of conflicting
//! panel accesses — and the `unsafe` borrows of
//! [`dagfact_rt::SharedSlice`] are sound *only if* that claim holds.
//!
//! This module discharges the claim mechanically, per engine:
//!
//! 1. **Spec extraction** — [`Analysis::task_graph_spec`] rebuilds the
//!    exact graph each engine would submit for this analysis (same
//!    builders, no-op bodies) as a [`GraphSpec`]: tasks, happens-before
//!    edges, and per-panel access modes.
//! 2. **Static verification** — [`dagfact_rt::verify::check_static`]
//!    proves race-freedom (every conflicting access pair is transitively
//!    ordered), deadlock-freedom (no cycles), and structural sanity
//!    (no dangling/self/duplicate edges, no unreachable tasks).
//! 3. **Cross-engine equivalence** — the three graphs differ in
//!    granularity but must induce the *same* order of conflicting panel
//!    writes; [`dagfact_rt::verify::conflict_signature`] canonicalizes
//!    each graph's per-panel writer chains and
//!    [`Analysis::verify_task_graph`] asserts all three agree.
//! 4. **Dynamic oracle** — optionally, [`dagfact_rt::verify::replay`]
//!    drives the real engine (threads, queues, stealing) over the spec
//!    with a vector-clock [`dagfact_rt::verify::RaceChecker`] observing
//!    every declared access — an executable cross-check of the static
//!    pass on actual schedules.
//!
//! The panel-datum model: datum `c` is panel `c`'s coefficient storage
//! (L *and* U halves — they are always touched together). A panel task
//! read-modify-writes its own panel; an update task reads its source
//! panel and read-modify-writes its target; a native 1D task
//! read-modify-writes its own panel and *accumulates*
//! ([`Mode::Accum`]) into every facing target, which is exactly the
//! per-panel-mutex scatter-add the numeric phase performs.

use crate::analysis::Analysis;
use crate::tasks::{OneDGraph, TaskGraph, TaskKind};
use dagfact_rt::verify::{
    check_static, conflict_signature, replay, ClockGranularity, DynamicReport, GraphSpec, Mode,
    StaticReport,
};
use dagfact_rt::{dataflow::DataflowGraph, AccessMode, RuntimeKind};
use std::fmt;

/// Above this task count the dynamic replay switches from exact per-task
/// vector clocks (O(ntasks) per clock — precise but quadratic in memory)
/// to per-worker clocks (scalable, checks the observed schedule).
pub const PER_TASK_CLOCK_LIMIT: usize = 4096;

/// Options for [`Analysis::verify_task_graph`].
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Worker threads for the dynamic replay.
    pub nthreads: usize,
    /// Run the vector-clock replay oracle on each engine (the static
    /// pass and the equivalence check always run).
    pub dynamic: bool,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            nthreads: 4,
            dynamic: true,
        }
    }
}

/// Verification verdict for one engine's graph.
#[derive(Debug)]
pub struct EngineReport {
    /// The engine whose graph was checked.
    pub runtime: RuntimeKind,
    /// Static race/deadlock/structure analysis.
    pub stat: StaticReport,
    /// Dynamic replay verdict, when requested and the engine completed.
    pub dynamic: Option<DynamicReport>,
    /// Engine failure during replay (a stalled scheduler on a cyclic
    /// graph, a panic), kept as text.
    pub dynamic_error: Option<String>,
}

impl EngineReport {
    /// No races, no cycles, no structural defects, and the replay (if
    /// any) agrees.
    pub fn is_clean(&self) -> bool {
        self.stat.is_clean()
            && self.dynamic_error.is_none()
            && self.dynamic.as_ref().is_none_or(|d| d.is_clean())
    }
}

/// Combined verdict over all three engines plus the cross-engine
/// equivalence check.
#[derive(Debug)]
pub struct VerifyOutcome {
    /// Per-engine reports, in [`RuntimeKind::ALL`] order.
    pub engines: Vec<EngineReport>,
    /// Human-readable equivalence violations (empty when the three
    /// graphs induce identical conflicting-access orderings).
    pub equivalence_errors: Vec<String>,
}

impl VerifyOutcome {
    /// Every engine clean and all signatures agree.
    pub fn is_clean(&self) -> bool {
        self.engines.iter().all(EngineReport::is_clean) && self.equivalence_errors.is_empty()
    }

    /// Multi-line report (the `dagfact verify` output).
    pub fn summary(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for VerifyOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.engines {
            writeln!(
                f,
                "{:<13}: {} tasks, {} edges, {} race(s), {} deadlocked, {} pair(s) checked{}",
                e.runtime.label(),
                e.stat.ntasks,
                e.stat.nedges,
                e.stat.races.len(),
                e.stat.deadlocked.len(),
                e.stat.pairs_checked,
                if e.stat.is_clean() { "" } else { "  [FAIL]" },
            )?;
            if !e.stat.is_clean() {
                write!(f, "{}", e.stat)?;
            }
            if let Some(d) = &e.dynamic {
                writeln!(
                    f,
                    "{:<13}  replay: {} access(es) checked, {} race(s){}",
                    "",
                    d.naccesses,
                    d.races.len(),
                    if d.is_clean() { "" } else { "  [FAIL]" },
                )?;
            }
            if let Some(err) = &e.dynamic_error {
                writeln!(f, "{:<13}  replay: engine error: {err}  [FAIL]", "")?;
            }
        }
        if self.equivalence_errors.is_empty() {
            writeln!(
                f,
                "equivalence  : all engines induce identical conflicting-access orderings"
            )?;
        } else {
            for e in &self.equivalence_errors {
                writeln!(f, "equivalence  : {e}  [FAIL]")?;
            }
        }
        Ok(())
    }
}

impl Analysis {
    /// The exact task graph `runtime` would execute for this analysis,
    /// as an engine-independent [`GraphSpec`]: happens-before edges from
    /// the engine's own graph builder, panel-level access modes from the
    /// numeric phase's storage contract, and per-task tags (the source
    /// panel) so [`conflict_signature`] can compare graphs of different
    /// granularity.
    pub fn task_graph_spec(&self, runtime: RuntimeKind) -> GraphSpec {
        match runtime {
            RuntimeKind::Native => self.native_spec(),
            RuntimeKind::Dataflow => self.dataflow_spec(),
            RuntimeKind::Ptg => self.ptg_spec(),
        }
    }

    /// The coarse 1D graph: task `c` factorizes panel `c` (read-modify-
    /// write) and scatter-adds into every facing panel under that
    /// panel's accumulation mutex ([`Mode::Accum`]) — two 1D tasks may
    /// accumulate into a common target unordered, exactly like the
    /// numeric phase.
    fn native_spec(&self) -> GraphSpec {
        let graph = OneDGraph::build(&self.symbol);
        let ncblk = self.symbol.ncblk();
        let mut spec = GraphSpec::new(ncblk);
        for (c, succ) in graph.succs.iter().enumerate() {
            for &s in succ {
                spec.edge(c, s);
            }
            spec.access(c, c, Mode::ReadWrite);
            // succs[c] is already the deduplicated facing-target set.
            for &t in succ {
                spec.access(c, t, Mode::Accum);
            }
        }
        spec
    }

    /// The dataflow graph, obtained by re-running the engine's
    /// sequential submission loop with no-op bodies and letting the
    /// engine's own hazard inference build the edges — the spec checks
    /// the *inference*, not a transcription of it.
    fn dataflow_spec(&self) -> GraphSpec {
        let ncblk = self.symbol.ncblk();
        let mut g = DataflowGraph::new(ncblk);
        let mut tags: Vec<u64> = Vec::new();
        for cblk in 0..ncblk {
            g.submit(&[(cblk, AccessMode::ReadWrite)], 0.0, |_| {});
            tags.push(cblk as u64);
            let cb = &self.symbol.cblks[cblk];
            for block in (cb.block_begin + 1)..cb.block_end {
                let target = self.symbol.blocks[block].facing;
                g.submit(
                    &[(cblk, AccessMode::Read), (target, AccessMode::ReadWrite)],
                    0.0,
                    |_| {},
                );
                tags.push(cblk as u64);
            }
        }
        let mut spec = g.to_spec();
        for (t, &tag) in tags.iter().enumerate() {
            spec.set_tag(t, tag);
        }
        spec
    }

    /// The two-level PTG: panel and per-block update tasks with the
    /// algebraic dependency structure of [`TaskGraph`].
    fn ptg_spec(&self) -> GraphSpec {
        let g = TaskGraph::build(&self.symbol);
        let mut spec = GraphSpec::new(g.len());
        for (t, &task) in g.tasks.iter().enumerate() {
            match task {
                TaskKind::Panel { cblk } => {
                    spec.access(t, cblk, Mode::ReadWrite);
                    spec.set_tag(t, cblk as u64);
                }
                TaskKind::Update { cblk, target, .. } => {
                    spec.access(t, cblk, Mode::Read);
                    spec.access(t, target, Mode::ReadWrite);
                    spec.set_tag(t, cblk as u64);
                }
            }
            for &s in &g.succs[t] {
                spec.edge(t, s);
            }
        }
        spec
    }

    /// Verify the task graphs of all three engines: static
    /// race/deadlock analysis per engine, cross-engine conflict-order
    /// equivalence, and (per [`VerifyOptions::dynamic`]) a vector-clock
    /// replay through each real engine.
    pub fn verify_task_graph(&self, opts: &VerifyOptions) -> VerifyOutcome {
        let mut engines = Vec::with_capacity(RuntimeKind::ALL.len());
        let mut signatures = Vec::new();
        for rt in RuntimeKind::ALL {
            let spec = self.task_graph_spec(rt);
            let stat = check_static(&spec);
            signatures.push((rt, conflict_signature(&spec)));
            let (dynamic, dynamic_error) = if opts.dynamic {
                let granularity = if spec.ntasks() <= PER_TASK_CLOCK_LIMIT {
                    ClockGranularity::PerTask
                } else {
                    ClockGranularity::PerWorker
                };
                match replay(&spec, rt, opts.nthreads.max(1), granularity) {
                    Ok(report) => (Some(report), None),
                    Err(e) => (None, Some(e.to_string())),
                }
            } else {
                (None, None)
            };
            engines.push(EngineReport {
                runtime: rt,
                stat,
                dynamic,
                dynamic_error,
            });
        }
        let equivalence_errors = compare_signatures(&signatures);
        VerifyOutcome {
            engines,
            equivalence_errors,
        }
    }
}

/// Pairwise-compare canonical conflict signatures against the first
/// engine's; differences are reported per panel.
fn compare_signatures(
    signatures: &[(RuntimeKind, Option<Vec<Vec<u64>>>)],
) -> Vec<String> {
    let mut errors = Vec::new();
    for (rt, sig) in signatures {
        if sig.is_none() {
            errors.push(format!(
                "{} graph is cyclic — no conflict signature",
                rt.label()
            ));
        }
    }
    let mut defined = signatures
        .iter()
        .filter_map(|(rt, sig)| sig.as_ref().map(|s| (rt, s)));
    let Some((base_rt, base)) = defined.next() else {
        return errors;
    };
    for (rt, sig) in defined {
        if sig.len() != base.len() {
            errors.push(format!(
                "{} covers {} panels but {} covers {}",
                rt.label(),
                sig.len(),
                base_rt.label(),
                base.len()
            ));
            continue;
        }
        if let Some(d) = (0..base.len()).find(|&d| sig[d] != base[d]) {
            errors.push(format!(
                "panel {d}: {} orders writers {:?} but {} orders {:?}",
                base_rt.label(),
                base[d],
                rt.label(),
                sig[d]
            ));
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::SolverOptions;
    use dagfact_sparse::gen::grid_laplacian_2d;
    use dagfact_symbolic::FactoKind;

    fn analysis() -> Analysis {
        let a = grid_laplacian_2d(10, 10);
        Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default())
    }

    #[test]
    fn spec_task_counts_match_the_engines() {
        let an = analysis();
        let ncblk = an.symbol.ncblk();
        assert_eq!(an.task_graph_spec(RuntimeKind::Native).ntasks(), ncblk);
        let two_level = TaskGraph::build(&an.symbol).len();
        assert_eq!(an.task_graph_spec(RuntimeKind::Dataflow).ntasks(), two_level);
        assert_eq!(an.task_graph_spec(RuntimeKind::Ptg).ntasks(), two_level);
        for rt in RuntimeKind::ALL {
            assert_eq!(an.task_graph_spec(rt).ndata(), ncblk, "{}", rt.label());
        }
    }

    #[test]
    fn all_engine_graphs_verify_clean_statically() {
        let an = analysis();
        for rt in RuntimeKind::ALL {
            let report = check_static(&an.task_graph_spec(rt));
            assert!(report.is_clean(), "{}:\n{report}", rt.label());
        }
    }

    #[test]
    fn signatures_agree_across_granularities() {
        let an = analysis();
        let sigs: Vec<_> = RuntimeKind::ALL
            .iter()
            .map(|&rt| conflict_signature(&an.task_graph_spec(rt)).expect("acyclic"))
            .collect();
        assert_eq!(sigs[0], sigs[1], "native vs dataflow");
        assert_eq!(sigs[1], sigs[2], "dataflow vs ptg");
    }
}
