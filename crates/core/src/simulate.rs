//! Lowering an analyzed factorization onto the platform simulator.
//!
//! The paper's performance studies (Figures 2 and 4) compare schedulers on
//! hardware this reproduction does not have; `simulate_factorization`
//! replays the *exact task DAG* of the solver on the calibrated
//! discrete-event machine of `dagfact-gpusim` instead (see DESIGN.md §2).
//!
//! Faithful to the systems being modeled:
//!
//! * the **native** policy simulates PaStiX's coarse 1D tasks with their
//!   analyze-time static mapping,
//! * the **StarPU/PaRSEC** policies simulate the two-level
//!   panel/update DAG actually handed to those runtimes (§V), with only
//!   update tasks GPU-eligible and panel data as the unit of transfer.

use crate::analysis::Analysis;
use crate::tasks::{TaskGraph, TaskKind};
use dagfact_gpusim::{simulate, Platform, SimDag, SimData, SimPolicy, SimReport, SimTask, TaskShape};

/// Options for a simulated factorization.
#[derive(Debug, Clone, Default)]
pub struct SimOptions {
    /// Double-complex arithmetic? (Z problems transfer 16-byte scalars and
    /// count complex flops.)
    pub complex: bool,
    /// Fuse whole elimination-tree subtrees below this flop threshold into
    /// single tasks — the paper's §VI future-work granularity control
    /// ("merging leaves or subtrees together yields bigger, more
    /// computationally intensive tasks"). `None` disables clustering.
    pub cluster_flops: Option<f64>,
}

/// Simulate this factorization on `platform` under `policy`; returns the
/// simulated schedule metrics (GFlop/s of Figures 2 and 4).
pub fn simulate_factorization(
    analysis: &Analysis,
    options: &SimOptions,
    platform: &Platform,
    policy: SimPolicy,
) -> SimReport {
    let dag = build_sim_dag(analysis, options, platform, policy);
    simulate(&dag, platform, policy)
}

/// Lower the analysis to a [`SimDag`] (exposed for the benches and tests).
pub fn build_sim_dag(
    analysis: &Analysis,
    options: &SimOptions,
    platform: &Platform,
    policy: SimPolicy,
) -> SimDag {
    let symbol = &analysis.symbol;
    let is_ldlt = analysis.facto == dagfact_symbolic::FactoKind::Ldlt;
    // The generic runtimes re-apply D·Lᵀ inside every LDLᵀ update instead
    // of buffering it once per panel like the native scheduler (§V-A);
    // calibrated ≈20% kernel-efficiency loss on those tasks.
    let ldlt_penalty = if is_ldlt && policy != SimPolicy::NativeStatic {
        1.2
    } else {
        1.0
    };
    let costs = analysis.costs(options.complex);
    let prio = analysis.priorities(&costs);
    let scalar_bytes = if options.complex { 16.0 } else { 8.0 };
    let sides = analysis.facto.sides() as f64;
    let data: Vec<SimData> = symbol
        .cblks
        .iter()
        .map(|cb| SimData {
            bytes: cb.stride as f64 * cb.width() as f64 * scalar_bytes * sides,
        })
        .collect();

    let tasks = {
        // All three policies run the two-level panel/update DAG. For the
        // native policy this models PaStiX's fine-grain dynamic scheduler
        // ([1], and §V: "this functionality dynamically splits update
        // tasks, so that the critical path of the algorithm can be
        // reduced"): the 1D cost-model list schedule still provides the
        // static owner, inherited by a panel's update tasks.
        let owners = match policy {
            SimPolicy::NativeStatic => analysis.static_owners(&costs, platform.cores),
            _ => vec![0; symbol.ncblk()],
        };
        {
            // Two-level DAG, exactly what StarPU/PaRSEC receive.
            let graph = TaskGraph::build(symbol);
            graph
                .tasks
                .iter()
                .enumerate()
                .map(|(id, &task)| match task {
                    TaskKind::Panel { cblk } => {
                        let cb = &symbol.cblks[cblk];
                        SimTask {
                            shape: TaskShape::Panel {
                                width: cb.width(),
                                height: cb.stride,
                            },
                            flops: costs.panel[cblk],
                            reads: vec![],
                            writes: cblk,
                            gpu_eligible: false,
                            succs: graph.succs[id].clone(),
                            npred: graph.npred[id],
                            priority: prio[cblk],
                            static_owner: owners[cblk],
                            cpu_multiplier: 1.0,
                        }
                    }
                    TaskKind::Update { cblk, block, target } => {
                        let cb = &symbol.cblks[cblk];
                        let b = &symbol.blocks[block];
                        let m = cb.stride - b.local_offset;
                        SimTask {
                            shape: TaskShape::Update {
                                m,
                                n: b.nrows(),
                                k: cb.width(),
                                target_height: symbol.cblks[target].stride,
                                ldlt: is_ldlt,
                            },
                            flops: costs.update[block],
                            reads: vec![cblk],
                            writes: target,
                            gpu_eligible: true,
                            succs: graph.succs[id].clone(),
                            npred: graph.npred[id],
                            priority: prio[cblk],
                            // Updates into a panel are chained (serial)
                            // anyway; running them on the destination
                            // owner's core keeps the destination panel hot
                            // across the chain and for its panel task —
                            // the locality the PaStiX static mapping is
                            // built around.
                            static_owner: owners[target],
                            cpu_multiplier: ldlt_penalty,
                        }
                    }
                })
                .collect()
        }
    };
    let mut dag = SimDag { tasks, data };
    if let Some(threshold) = options.cluster_flops {
        let clustering = dagfact_symbolic::subtree_clusters(symbol, &costs, threshold);
        // A cluster fuses a subtree's panel tasks and *internal* updates.
        // Updates crossing the cluster boundary stay separate singleton
        // tasks: they sit on the serialization chains into shared ancestor
        // panels, and fusing them would make entire sibling subtrees wait
        // on one another (and would also lose their GPU eligibility).
        let graph = TaskGraph::build(symbol);
        let mut next = clustering.nclusters;
        let cluster_of_task: Vec<usize> = graph
            .tasks
            .iter()
            .map(|&t| match t {
                TaskKind::Panel { cblk } => clustering.cluster_of[cblk],
                TaskKind::Update { cblk, target, .. } => {
                    if clustering.cluster_of[cblk] == clustering.cluster_of[target] {
                        clustering.cluster_of[cblk]
                    } else {
                        let id = next;
                        next += 1;
                        id
                    }
                }
            })
            .collect();
        dag = contract_dag(&dag, &cluster_of_task, next, platform);
    }
    debug_assert_eq!(dag.validate(), Ok(()));
    dag
}

/// Contract a simulation DAG along a task→cluster map: tasks of one
/// cluster fuse into a single super-task with summed work, merged
/// dependencies (internal edges dropped, external deduplicated) and a
/// CPU-time-preserving effective shape.
pub fn contract_dag(
    dag: &SimDag,
    cluster_of_task: &[usize],
    nclusters: usize,
    platform: &Platform,
) -> SimDag {
    assert_eq!(cluster_of_task.len(), dag.tasks.len());
    let block_of = |shape: &TaskShape| -> usize {
        match *shape {
            TaskShape::Panel { width, .. } => width,
            TaskShape::Update { n, k, .. } => n.min(k),
        }
    };
    // Accumulate per-cluster totals.
    let mut flops = vec![0.0f64; nclusters];
    let mut cpu_time = vec![0.0f64; nclusters];
    let mut members = vec![0usize; nclusters];
    let mut priority = vec![f64::NEG_INFINITY; nclusters];
    let mut static_owner = vec![0usize; nclusters];
    let mut writes = vec![usize::MAX; nclusters];
    let mut gpu_eligible = vec![true; nclusters];
    let mut mult = vec![1.0f64; nclusters];
    let mut reads: Vec<std::collections::BTreeSet<usize>> =
        vec![std::collections::BTreeSet::new(); nclusters];
    let mut shape = vec![
        TaskShape::Panel {
            width: 1,
            height: 1
        };
        nclusters
    ];
    for (t, task) in dag.tasks.iter().enumerate() {
        let k = cluster_of_task[t];
        members[k] += 1;
        flops[k] += task.flops;
        let rate = platform.cpu.rate(block_of(&task.shape).max(1)) * 1e9;
        cpu_time[k] += task.flops / rate * task.cpu_multiplier;
        if task.priority > priority[k] {
            priority[k] = task.priority;
            static_owner[k] = task.static_owner;
            shape[k] = task.shape;
            writes[k] = task.writes;
            mult[k] = task.cpu_multiplier;
        }
        // A fused subtree keeps its data CPU-resident; only singleton
        // update tasks stay offloadable.
        gpu_eligible[k] &= task.gpu_eligible;
        reads[k].extend(task.reads.iter().copied());
    }
    // Effective shape: pick a block size whose CPU rate reproduces the
    // exact summed execution time (rate = P·e·b/(b+h) inverted).
    for k in 0..nclusters {
        if members[k] > 1 && cpu_time[k] > 0.0 {
            let eff_rate = flops[k] / cpu_time[k] / 1e9;
            let cpu = &platform.cpu;
            let ceiling = cpu.peak_gflops * cpu.max_efficiency;
            let b = if eff_rate >= ceiling {
                100_000.0
            } else {
                (cpu.half_size * eff_rate / (ceiling - eff_rate)).max(1.0)
            };
            shape[k] = TaskShape::Panel {
                width: b.round() as usize,
                height: b.round() as usize,
            };
            gpu_eligible[k] = false;
        }
    }
    // Contract edges.
    let mut succs: Vec<std::collections::BTreeSet<usize>> =
        vec![std::collections::BTreeSet::new(); nclusters];
    for (t, task) in dag.tasks.iter().enumerate() {
        let from = cluster_of_task[t];
        for &s in &task.succs {
            let to = cluster_of_task[s];
            if from != to {
                succs[from].insert(to);
            }
        }
    }
    let mut npred = vec![0u32; nclusters];
    for s in &succs {
        for &to in s {
            npred[to] += 1;
        }
    }
    let tasks: Vec<SimTask> = (0..nclusters)
        .map(|k| {
            let r: Vec<usize> = reads[k]
                .iter()
                .copied()
                .filter(|&d| d != writes[k])
                .collect();
            SimTask {
                shape: shape[k],
                flops: flops[k],
                reads: r,
                writes: writes[k],
                gpu_eligible: gpu_eligible[k] && members[k] == 1,
                succs: succs[k].iter().copied().collect(),
                npred: npred[k],
                priority: priority[k],
                static_owner: static_owner[k],
                // Singletons keep their kernel-efficiency multiplier; for
                // fused subtrees the exact time is folded into the
                // effective shape above.
                cpu_multiplier: if members[k] == 1 { mult[k] } else { 1.0 },
            }
        })
        .collect();
    SimDag {
        tasks,
        data: dag.data.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::SolverOptions;
    use dagfact_sparse::gen::grid_laplacian_3d;
    use dagfact_symbolic::FactoKind;

    fn analysis() -> Analysis {
        // Big enough that per-task overheads don't dominate (tiny problems
        // are overhead-bound — the paper's afshell10 effect).
        let a = grid_laplacian_3d(20, 20, 20);
        Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default())
    }

    #[test]
    fn sim_dags_validate_and_conserve_flops() {
        let an = analysis();
        let opts = SimOptions::default();
        let platform = Platform::mirage(12, 3);
        let costs = an.costs(false);
        for policy in [
            SimPolicy::NativeStatic,
            SimPolicy::StarPuLike,
            SimPolicy::ParsecLike { streams: 3 },
        ] {
            let dag = build_sim_dag(&an, &opts, &platform, policy);
            dag.validate().unwrap();
            assert!(
                (dag.total_flops() - costs.total).abs() < 1e-6 * costs.total,
                "{policy:?} flops drift"
            );
        }
    }

    #[test]
    fn cpu_scaling_shape_matches_figure2() {
        // More cores → more GFlop/s, sublinear at 12 (Figure 2's shape).
        let an = analysis();
        let opts = SimOptions::default();
        for policy in [
            SimPolicy::NativeStatic,
            SimPolicy::StarPuLike,
            SimPolicy::ParsecLike { streams: 1 },
        ] {
            let g1 = simulate_factorization(&an, &opts, &Platform::mirage(1, 0), policy).gflops();
            let g6 = simulate_factorization(&an, &opts, &Platform::mirage(6, 0), policy).gflops();
            let g12 = simulate_factorization(&an, &opts, &Platform::mirage(12, 0), policy).gflops();
            assert!(g6 > 2.0 * g1, "{policy:?}: g1={g1} g6={g6}");
            // Saturation is allowed at this modest problem size, but no
            // regression when adding cores.
            assert!(g12 >= 0.98 * g6, "{policy:?}: g6={g6} g12={g12}");
            assert!(g12 < 12.5 * g1, "{policy:?}: superlinear scaling?");
        }
    }

    #[test]
    fn subtree_clustering_conserves_flops_and_shrinks_the_dag() {
        let an = analysis();
        let platform = Platform::mirage(12, 0);
        let costs = an.costs(false);
        let base = build_sim_dag(&an, &SimOptions::default(), &platform, SimPolicy::ParsecLike { streams: 1 });
        let clustered = build_sim_dag(
            &an,
            &SimOptions {
                cluster_flops: Some(costs.total / 100.0),
                ..SimOptions::default()
            },
            &platform,
            SimPolicy::ParsecLike { streams: 1 },
        );
        clustered.validate().unwrap();
        // Boundary updates survive as singletons, so the contraction is
        // bounded but must still remove a visible share of the tasks.
        assert!(
            clustered.tasks.len() < base.tasks.len() * 9 / 10,
            "clustering merged too little: {} vs {}",
            clustered.tasks.len(),
            base.tasks.len()
        );
        assert!((clustered.total_flops() - base.total_flops()).abs() < 1e-6 * base.total_flops());
        // The clustered DAG still simulates to a sane schedule.
        let r = simulate(&clustered, &platform, SimPolicy::ParsecLike { streams: 1 });
        assert_eq!(r.tasks_on_cpu + r.tasks_on_gpu, clustered.tasks.len());
    }

    #[test]
    fn clustering_reduces_overhead_on_small_problems() {
        // A small problem is scheduler-overhead-bound (the afshell10
        // effect); fusing leaf subtrees must not hurt and usually helps.
        let a = grid_laplacian_3d(12, 12, 12);
        let an = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
        let costs = an.costs(false);
        let platform = Platform::mirage(12, 0);
        let policy = SimPolicy::StarPuLike; // highest per-task overhead
        let plain = simulate_factorization(&an, &SimOptions::default(), &platform, policy);
        let fused = simulate_factorization(
            &an,
            &SimOptions {
                cluster_flops: Some(costs.total / 200.0),
                ..SimOptions::default()
            },
            &platform,
            policy,
        );
        assert!(
            fused.gflops() > plain.gflops() * 0.95,
            "clustering should not degrade: {} vs {}",
            fused.gflops(),
            plain.gflops()
        );
    }

    #[test]
    fn gpus_speed_up_the_factorization() {
        let an = analysis();
        let opts = SimOptions::default();
        // StarPU gives up 3 CPU workers for the 3 GPUs, so its net gain on
        // a modest problem is smaller (the paper's afshell10 effect).
        for (policy, min_gain) in [
            (SimPolicy::StarPuLike, 1.05),
            (SimPolicy::ParsecLike { streams: 3 }, 1.15),
        ] {
            let cpu = simulate_factorization(&an, &opts, &Platform::mirage(12, 0), policy);
            let gpu = simulate_factorization(&an, &opts, &Platform::mirage(12, 3), policy);
            assert!(
                gpu.gflops() > min_gain * cpu.gflops(),
                "{policy:?}: {} vs {}",
                gpu.gflops(),
                cpu.gflops()
            );
            assert!(gpu.tasks_on_gpu > 0);
        }
    }
}
