//! One-stop convenience API: pick the factorization, analyze, factorize
//! and solve in a single call chain.
//!
//! [`Solver`] wraps the lower-level [`Analysis`]/[`Factors`] pair for
//! users who just want `x = solve(A, b)`:
//!
//! ```
//! use dagfact_core::solver::Solver;
//! use dagfact_sparse::gen::grid_laplacian_3d;
//!
//! let a = grid_laplacian_3d(8, 8, 8);
//! let solver = Solver::auto(&a).unwrap();
//! let b = vec![1.0; a.nrows()];
//! let x = solver.solve(&b);
//! # let mut ax = vec![0.0; a.nrows()];
//! # a.spmv(&x, &mut ax);
//! # assert!(ax.iter().zip(&b).all(|(l, r)| (l - r).abs() < 1e-9));
//! ```

use crate::analysis::{Analysis, SolverOptions};
use crate::numeric::Factors;
use crate::refine::RefinedSolve;
use crate::SolverError;
use dagfact_kernels::Scalar;
use dagfact_rt::RuntimeKind;
use dagfact_sparse::CscMatrix;
use dagfact_symbolic::FactoKind;

/// A factorized linear system ready to solve, owning its analysis.
pub struct Solver<T: Scalar> {
    analysis: Box<Analysis>,
    // SAFETY/layout note: `factors` borrows `analysis`; the Box keeps the
    // borrow stable while both move together. The field order guarantees
    // `factors` drops first.
    factors: Option<Factors<'static, T>>,
    matrix: CscMatrix<T>,
    facto: FactoKind,
}

impl<T: Scalar> Solver<T> {
    /// Analyze + factorize `a`, picking the factorization automatically:
    /// symmetric matrices try Cholesky and fall back to LDLᵀ on
    /// indefiniteness; unsymmetric values get static-pivoting LU.
    pub fn auto(a: &CscMatrix<T>) -> Result<Solver<T>, SolverError> {
        let threads = std::thread::available_parallelism().map_or(1, |v| v.get());
        Self::with_options(a, None, &SolverOptions::default(), RuntimeKind::Ptg, threads)
    }

    /// Full-control constructor. `facto = None` selects automatically.
    pub fn with_options(
        a: &CscMatrix<T>,
        facto: Option<FactoKind>,
        options: &SolverOptions,
        runtime: RuntimeKind,
        threads: usize,
    ) -> Result<Solver<T>, SolverError> {
        let symmetric = a.is_symmetric();
        let plan: Vec<FactoKind> = match facto {
            Some(k) => vec![k],
            None if symmetric && !T::IS_COMPLEX => {
                vec![FactoKind::Cholesky, FactoKind::Ldlt]
            }
            None if symmetric => vec![FactoKind::Ldlt],
            None => vec![FactoKind::Lu],
        };
        let mut last_err = None;
        for kind in plan {
            match Self::build(a, kind, options, runtime, threads) {
                Ok(s) => return Ok(s),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("plan is never empty"))
    }

    fn build(
        a: &CscMatrix<T>,
        facto: FactoKind,
        options: &SolverOptions,
        runtime: RuntimeKind,
        threads: usize,
    ) -> Result<Solver<T>, SolverError> {
        let analysis = Box::new(Analysis::new(a.pattern(), facto, options));
        // SAFETY: `factors` borrows the boxed analysis, whose heap
        // allocation outlives it inside this struct (factors is dropped
        // and never exposed with the fake 'static lifetime).
        let analysis_ref: &'static Analysis =
            unsafe { &*(analysis.as_ref() as *const Analysis) };
        let factors = analysis_ref.factorize::<T>(a, runtime, threads)?;
        Ok(Solver {
            analysis,
            factors: Some(factors),
            matrix: a.clone(),
            facto,
        })
    }

    /// The factorization kind actually used.
    pub fn facto(&self) -> FactoKind {
        self.facto
    }

    /// The underlying analysis (statistics, symbol structure…).
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// Number of pivots repaired by static pivoting.
    pub fn pivots_repaired(&self) -> usize {
        self.factors().pivots_repaired
    }

    fn factors(&self) -> &Factors<'static, T> {
        self.factors.as_ref().expect("factors always present")
    }

    /// Solve `A·x = b`.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        self.factors().solve(b)
    }

    /// Solve for several right-hand sides (column-major).
    pub fn solve_many(&self, b: &[T], nrhs: usize) -> Vec<T> {
        self.factors().solve_many(b, nrhs)
    }

    /// Solve with iterative refinement; recommended whenever static
    /// pivoting repaired pivots.
    pub fn solve_refined(&self, b: &[T], max_iter: usize, tol: f64) -> RefinedSolve<T> {
        self.factors().solve_refined(&self.matrix, b, max_iter, tol)
    }

    /// Backward error `‖b − A·x‖∞ / (‖A‖∞‖x‖∞ + ‖b‖∞)` of a solution.
    pub fn backward_error(&self, x: &[T], b: &[T]) -> f64 {
        let n = b.len();
        let mut r = vec![T::zero(); n];
        self.matrix.spmv(x, &mut r);
        for (ri, &bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        let num = crate::refine::inf_norm(&r);
        let den = self.matrix.norm_inf() * crate::refine::inf_norm(x)
            + crate::refine::inf_norm(b);
        num / den.max(f64::MIN_POSITIVE)
    }
}

impl<T: Scalar> Drop for Solver<T> {
    fn drop(&mut self) {
        // Drop the borrower before the owner (declaration order already
        // guarantees this; made explicit for the unsafe self-reference).
        self.factors = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagfact_kernels::C64;
    use dagfact_sparse::gen::{
        convection_diffusion_3d, grid_laplacian_3d, helmholtz_3d, shifted_laplacian_3d,
    };

    #[test]
    fn auto_picks_cholesky_for_spd() {
        let a = grid_laplacian_3d(6, 6, 6);
        let s = Solver::auto(&a).unwrap();
        assert_eq!(s.facto(), FactoKind::Cholesky);
        let b = vec![1.0; a.nrows()];
        let x = s.solve(&b);
        assert!(s.backward_error(&x, &b) < 1e-12);
    }

    #[test]
    fn auto_falls_back_to_ldlt_for_indefinite() {
        let a = shifted_laplacian_3d(5, 5, 5, 1.0);
        let s = Solver::auto(&a).unwrap();
        assert_eq!(s.facto(), FactoKind::Ldlt);
        let b = vec![1.0; a.nrows()];
        let x = s.solve(&b);
        assert!(s.backward_error(&x, &b) < 1e-12);
    }

    #[test]
    fn auto_picks_lu_for_unsymmetric() {
        let a = convection_diffusion_3d(5, 5, 4, 0.4);
        let s = Solver::auto(&a).unwrap();
        assert_eq!(s.facto(), FactoKind::Lu);
        let b = vec![1.0; a.nrows()];
        let x = s.solve(&b);
        assert!(s.backward_error(&x, &b) < 1e-12);
    }

    #[test]
    fn auto_picks_ldlt_for_complex_symmetric() {
        let a = helmholtz_3d(5, 4, 4, 1.5, 0.5);
        let s = Solver::auto(&a).unwrap();
        assert_eq!(s.facto(), FactoKind::Ldlt);
        let b: Vec<C64> = (0..a.nrows()).map(|i| C64::new(1.0, i as f64 * 0.1)).collect();
        let x = s.solve(&b);
        assert!(s.backward_error(&x, &b) < 1e-12);
    }

    #[test]
    fn refined_solve_through_the_wrapper() {
        let a = convection_diffusion_3d(5, 5, 5, 0.45);
        let s = Solver::auto(&a).unwrap();
        let b = vec![2.0; a.nrows()];
        let r = s.solve_refined(&b, 3, 1e-14);
        assert!(*r.residuals.last().unwrap() < 1e-12);
    }
}
