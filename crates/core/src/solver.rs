//! One-stop convenience API: pick the factorization, analyze, factorize
//! and solve in a single call chain.
//!
//! [`Solver`] wraps the lower-level [`Analysis`]/[`Factors`] pair for
//! users who just want `x = solve(A, b)`:
//!
//! ```
//! use dagfact_core::solver::Solver;
//! use dagfact_sparse::gen::grid_laplacian_3d;
//!
//! let a = grid_laplacian_3d(8, 8, 8);
//! let solver = Solver::auto(&a).unwrap();
//! let b = vec![1.0; a.nrows()];
//! let x = solver.solve(&b);
//! # let mut ax = vec![0.0; a.nrows()];
//! # a.spmv(&x, &mut ax);
//! # assert!(ax.iter().zip(&b).all(|(l, r)| (l - r).abs() < 1e-9));
//! ```

use crate::analysis::{Analysis, SolverOptions};
use crate::numeric::{ExecOptions, FactorStats, Factors};
use crate::refine::RefinedSolve;
use crate::SolverError;
use dagfact_kernels::Scalar;
use dagfact_rt::RuntimeKind;
use dagfact_sparse::CscMatrix;
use dagfact_symbolic::FactoKind;

/// Escalation schedule of the adaptive recovery loop: a disabled
/// threshold restarts at the default, an active one grows geometrically
/// (capped — past 1e-2·‖A‖∞ the "factorization" is no longer meaningful).
pub(crate) fn escalate_epsilon(eps: f64) -> f64 {
    if eps <= 0.0 {
        1e-8
    } else {
        (eps * 100.0).min(1e-2)
    }
}

/// Does this failure indicate the *factorization kind* does not fit the
/// matrix (as opposed to an engine fault or data corruption)? Drives the
/// auto-selection fallback chain in [`Solver::with_exec`].
fn kind_mismatch(e: &SolverError) -> bool {
    matches!(
        e,
        SolverError::Kernel(
            dagfact_kernels::KernelError::NotPositiveDefinite { .. }
                | dagfact_kernels::KernelError::ZeroPivot { .. }
        )
    )
}

/// A factorized linear system ready to solve, owning its analysis.
pub struct Solver<T: Scalar> {
    analysis: Box<Analysis>,
    // SAFETY/layout note: `factors` borrows `analysis`; the Box keeps the
    // borrow stable while both move together. The field order guarantees
    // `factors` drops first.
    factors: Option<Factors<'static, T>>,
    matrix: CscMatrix<T>,
    facto: FactoKind,
    options: SolverOptions,
    exec: ExecOptions,
    runtime: RuntimeKind,
    threads: usize,
}

impl<T: Scalar> Solver<T> {
    /// Analyze + factorize `a`, picking the factorization automatically:
    /// symmetric matrices try Cholesky and fall back to LDLᵀ on
    /// indefiniteness; unsymmetric values get static-pivoting LU.
    pub fn auto(a: &CscMatrix<T>) -> Result<Solver<T>, SolverError> {
        let threads = std::thread::available_parallelism().map_or(1, |v| v.get());
        Self::with_options(a, None, &SolverOptions::default(), RuntimeKind::Ptg, threads)
    }

    /// Full-control constructor. `facto = None` selects automatically.
    pub fn with_options(
        a: &CscMatrix<T>,
        facto: Option<FactoKind>,
        options: &SolverOptions,
        runtime: RuntimeKind,
        threads: usize,
    ) -> Result<Solver<T>, SolverError> {
        Self::with_exec(a, facto, options, runtime, threads, &ExecOptions::default())
    }

    /// [`Solver::with_options`] plus execution options: fault-injection
    /// plan, retry policy and stall watchdog for the runtime engine.
    pub fn with_exec(
        a: &CscMatrix<T>,
        facto: Option<FactoKind>,
        options: &SolverOptions,
        runtime: RuntimeKind,
        threads: usize,
        exec: &ExecOptions,
    ) -> Result<Solver<T>, SolverError> {
        let symmetric = a.is_symmetric();
        let plan: Vec<FactoKind> = match facto {
            Some(k) => vec![k],
            None if symmetric && !T::IS_COMPLEX => {
                vec![FactoKind::Cholesky, FactoKind::Ldlt]
            }
            None if symmetric => vec![FactoKind::Ldlt],
            None => vec![FactoKind::Lu],
        };
        let nkinds = plan.len();
        let mut last_err = None;
        for (i, kind) in plan.into_iter().enumerate() {
            match Self::build(a, kind, options, runtime, threads, exec) {
                Ok(s) => return Ok(s),
                // Only an unsuitable-factorization failure justifies
                // trying the next kind: a non-positive or dead pivot says
                // "not SPD / needs pivoting", but engine faults and
                // corrupted coefficients say nothing about the matrix —
                // falling back there would mask the real failure (and
                // mislabel, e.g., an injected fault as indefiniteness).
                Err(e) if i + 1 < nkinds && kind_mismatch(&e) => last_err = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last_err.expect("plan is never empty"))
    }

    fn build(
        a: &CscMatrix<T>,
        facto: FactoKind,
        options: &SolverOptions,
        runtime: RuntimeKind,
        threads: usize,
        exec: &ExecOptions,
    ) -> Result<Solver<T>, SolverError> {
        let analysis = Box::new(Analysis::new_traced(
            a.pattern(),
            facto,
            options,
            exec.run.trace.as_deref(),
        ));
        // SAFETY: `factors` borrows the boxed analysis, whose heap
        // allocation outlives it inside this struct (factors is dropped
        // and never exposed with the fake 'static lifetime).
        let analysis_ref: &'static Analysis =
            unsafe { &*(analysis.as_ref() as *const Analysis) };
        // Adaptive recovery: numeric breakdown (zero / non-finite pivots,
        // corrupted coefficients) retries with an escalated static-pivot
        // threshold — the symbolic structure is threshold-independent, so
        // only the numeric phase re-runs.
        let mut epsilon = exec
            .epsilon_override
            .unwrap_or(options.static_pivot_epsilon);
        let mut history: Vec<f64> = Vec::new();
        let mut attempt = 0u32;
        let factors = loop {
            attempt += 1;
            history.push(epsilon);
            let exec_try = ExecOptions {
                run: exec.run.clone(),
                epsilon_override: Some(epsilon),
                spill_dir: exec.spill_dir.clone(),
            };
            match analysis_ref.factorize_with::<T>(a, runtime, threads, &exec_try) {
                Ok(mut f) => {
                    f.stats.attempts = attempt;
                    f.stats.epsilon_history = history;
                    break f;
                }
                Err(e)
                    if attempt < options.max_refactor_attempts
                        && e.is_recoverable_by_pivoting() =>
                {
                    // For Cholesky the threshold is unused — the retry
                    // still matters for transient corruption.
                    epsilon = escalate_epsilon(epsilon);
                }
                Err(e)
                    if attempt < options.max_refactor_attempts && e.is_transient_alloc() =>
                {
                    // Injected allocation fault: its per-site failure
                    // budget was consumed on delivery, so the same pivot
                    // threshold will succeed — retry WITHOUT escalating
                    // (the factors must match the unfaulted run exactly).
                }
                Err(e) => return Err(e),
            }
        };
        Ok(Solver {
            analysis,
            factors: Some(factors),
            matrix: a.clone(),
            facto,
            options: options.clone(),
            exec: exec.clone(),
            runtime,
            threads,
        })
    }

    /// Re-factorize with the static-pivot threshold escalated one step
    /// past the current factors' epsilon, extending the recorded
    /// escalation history. Fails if the attempt budget is spent.
    fn refactorize_escalated(&mut self, cause: SolverError) -> Result<(), SolverError> {
        let stats: FactorStats = self.factors().stats.clone();
        if stats.attempts >= self.options.max_refactor_attempts {
            return Err(cause);
        }
        let epsilon = escalate_epsilon(stats.epsilon);
        // SAFETY: same fake-'static discipline as `build` — the new
        // factors borrow the boxed analysis owned by `self`.
        let analysis_ref: &'static Analysis =
            unsafe { &*(self.analysis.as_ref() as *const Analysis) };
        let exec = ExecOptions {
            run: self.exec.run.clone(),
            epsilon_override: Some(epsilon),
            spill_dir: self.exec.spill_dir.clone(),
        };
        self.factors = None; // drop the borrower before replacing it
        // Transient (injected) allocation faults retry at the same
        // threshold — their failure budget is consumed on delivery.
        let mut tries = 0u32;
        let mut f = loop {
            match analysis_ref.factorize_with::<T>(
                &self.matrix,
                self.runtime,
                self.threads,
                &exec,
            ) {
                Ok(f) => break f,
                Err(e)
                    if tries + 1 < self.options.max_refactor_attempts
                        && e.is_transient_alloc() =>
                {
                    tries += 1;
                }
                Err(e) => return Err(e),
            }
        };
        f.stats.attempts = stats.attempts + 1;
        f.stats.epsilon_history = stats.epsilon_history;
        f.stats.epsilon_history.push(epsilon);
        self.factors = Some(f);
        Ok(())
    }

    /// Solve with iterative refinement and adaptive recovery: when
    /// refinement stalls (the factorization is too inaccurate — heavy
    /// static pivoting on an ill-conditioned matrix), re-factorize with a
    /// geometrically escalated pivot threshold and try again, up to
    /// [`SolverOptions::max_refactor_attempts`] total factorizations.
    /// The escalation history ends up in [`Solver::stats`].
    pub fn solve_adaptive(
        &mut self,
        b: &[T],
        max_iter: usize,
        tol: f64,
    ) -> Result<RefinedSolve<T>, SolverError> {
        loop {
            match self
                .factors()
                .solve_refined_checked(&self.matrix, b, max_iter, tol)
            {
                Ok(r) => return Ok(r),
                Err(e) if e.is_recoverable_by_pivoting() => {
                    self.refactorize_escalated(e)?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Execution statistics of the current factorization: engine run
    /// report, pivot-threshold escalation history, attempt count.
    pub fn stats(&self) -> &FactorStats {
        &self.factors().stats
    }

    /// The factorization kind actually used.
    pub fn facto(&self) -> FactoKind {
        self.facto
    }

    /// The underlying analysis (statistics, symbol structure…).
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// Number of pivots repaired by static pivoting.
    pub fn pivots_repaired(&self) -> usize {
        self.factors().pivots_repaired
    }

    fn factors(&self) -> &Factors<'static, T> {
        self.factors.as_ref().expect("factors always present")
    }

    /// Solve `A·x = b`.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        self.factors().solve(b)
    }

    /// Solve for several right-hand sides (column-major).
    pub fn solve_many(&self, b: &[T], nrhs: usize) -> Vec<T> {
        self.factors().solve_many(b, nrhs)
    }

    /// Solve with iterative refinement; recommended whenever static
    /// pivoting repaired pivots.
    pub fn solve_refined(&self, b: &[T], max_iter: usize, tol: f64) -> RefinedSolve<T> {
        self.factors().solve_refined(&self.matrix, b, max_iter, tol)
    }

    /// Backward error `‖b − A·x‖∞ / (‖A‖∞‖x‖∞ + ‖b‖∞)` of a solution.
    pub fn backward_error(&self, x: &[T], b: &[T]) -> f64 {
        let n = b.len();
        let mut r = vec![T::zero(); n];
        self.matrix.spmv(x, &mut r);
        for (ri, &bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        let num = crate::refine::inf_norm(&r);
        let den = self.matrix.norm_inf() * crate::refine::inf_norm(x)
            + crate::refine::inf_norm(b);
        num / den.max(f64::MIN_POSITIVE)
    }
}

impl<T: Scalar> Drop for Solver<T> {
    fn drop(&mut self) {
        // Drop the borrower before the owner (declaration order already
        // guarantees this; made explicit for the unsafe self-reference).
        self.factors = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagfact_kernels::C64;
    use dagfact_sparse::gen::{
        convection_diffusion_3d, grid_laplacian_3d, helmholtz_3d, shifted_laplacian_3d,
    };

    #[test]
    fn auto_picks_cholesky_for_spd() {
        let a = grid_laplacian_3d(6, 6, 6);
        let s = Solver::auto(&a).unwrap();
        assert_eq!(s.facto(), FactoKind::Cholesky);
        let b = vec![1.0; a.nrows()];
        let x = s.solve(&b);
        assert!(s.backward_error(&x, &b) < 1e-12);
    }

    #[test]
    fn auto_falls_back_to_ldlt_for_indefinite() {
        let a = shifted_laplacian_3d(5, 5, 5, 1.0);
        let s = Solver::auto(&a).unwrap();
        assert_eq!(s.facto(), FactoKind::Ldlt);
        let b = vec![1.0; a.nrows()];
        let x = s.solve(&b);
        assert!(s.backward_error(&x, &b) < 1e-12);
    }

    #[test]
    fn auto_picks_lu_for_unsymmetric() {
        let a = convection_diffusion_3d(5, 5, 4, 0.4);
        let s = Solver::auto(&a).unwrap();
        assert_eq!(s.facto(), FactoKind::Lu);
        let b = vec![1.0; a.nrows()];
        let x = s.solve(&b);
        assert!(s.backward_error(&x, &b) < 1e-12);
    }

    #[test]
    fn auto_picks_ldlt_for_complex_symmetric() {
        let a = helmholtz_3d(5, 4, 4, 1.5, 0.5);
        let s = Solver::auto(&a).unwrap();
        assert_eq!(s.facto(), FactoKind::Ldlt);
        let b: Vec<C64> = (0..a.nrows()).map(|i| C64::new(1.0, i as f64 * 0.1)).collect();
        let x = s.solve(&b);
        assert!(s.backward_error(&x, &b) < 1e-12);
    }

    #[test]
    fn refined_solve_through_the_wrapper() {
        let a = convection_diffusion_3d(5, 5, 5, 0.45);
        let s = Solver::auto(&a).unwrap();
        let b = vec![2.0; a.nrows()];
        let r = s.solve_refined(&b, 3, 1e-14);
        assert!(*r.residuals.last().unwrap() < 1e-12);
    }
}
