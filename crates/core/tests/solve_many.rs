//! Blocked multi-right-hand-side solves.

use dagfact_core::{Analysis, RuntimeKind, SolverOptions};
use dagfact_kernels::C64;
use dagfact_sparse::gen::{convection_diffusion_3d, grid_laplacian_3d, helmholtz_3d};
use dagfact_symbolic::FactoKind;

#[test]
fn solve_many_matches_repeated_single_solves() {
    let a = grid_laplacian_3d(8, 8, 8);
    let n = a.nrows();
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let f = analysis.factorize(&a, RuntimeKind::Native, 2).unwrap();
    let nrhs = 5;
    let b: Vec<f64> = (0..n * nrhs)
        .map(|i| ((i * 19 + 3) % 31) as f64 / 7.0 - 2.0)
        .collect();
    let blocked = f.solve_many(&b, nrhs);
    for r in 0..nrhs {
        let single = f.solve(&b[r * n..(r + 1) * n]);
        for (u, v) in blocked[r * n..(r + 1) * n].iter().zip(&single) {
            assert!((u - v).abs() < 1e-12, "column {r}");
        }
    }
}

#[test]
fn solve_many_lu_residuals() {
    let a = convection_diffusion_3d(6, 6, 5, 0.4);
    let n = a.nrows();
    let analysis = Analysis::new(a.pattern(), FactoKind::Lu, &SolverOptions::default());
    let f = analysis.factorize(&a, RuntimeKind::Ptg, 2).unwrap();
    let nrhs = 3;
    let b: Vec<f64> = (0..n * nrhs).map(|i| ((i % 11) as f64) - 5.0).collect();
    let x = f.solve_many(&b, nrhs);
    for r in 0..nrhs {
        let mut ax = vec![0.0; n];
        a.spmv(&x[r * n..(r + 1) * n], &mut ax);
        for (l, rr) in ax.iter().zip(&b[r * n..(r + 1) * n]) {
            assert!((l - rr).abs() < 1e-9);
        }
    }
}

#[test]
fn solve_many_complex_ldlt() {
    let a = helmholtz_3d(6, 5, 4, 1.5, 0.7);
    let n = a.nrows();
    let analysis = Analysis::new(a.pattern(), FactoKind::Ldlt, &SolverOptions::default());
    let f = analysis.factorize(&a, RuntimeKind::Dataflow, 2).unwrap();
    let nrhs = 4;
    let b: Vec<C64> = (0..n * nrhs)
        .map(|i| C64::new((i % 7) as f64 - 3.0, (i % 5) as f64))
        .collect();
    let x = f.solve_many(&b, nrhs);
    for r in 0..nrhs {
        let mut ax = vec![C64::new(0.0, 0.0); n];
        a.spmv(&x[r * n..(r + 1) * n], &mut ax);
        for (l, rr) in ax.iter().zip(&b[r * n..(r + 1) * n]) {
            assert!((*l - *rr).norm_sqr().sqrt() < 1e-9);
        }
    }
}

#[test]
#[should_panic(expected = "nrhs columns")]
fn solve_many_rejects_wrong_length() {
    let a = grid_laplacian_3d(4, 4, 4);
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let f = analysis.factorize(&a, RuntimeKind::Native, 1).unwrap();
    let b = vec![1.0; a.nrows() * 2 - 1];
    let _ = f.solve_many(&b, 2);
}
