//! End-to-end verification of the engine task graphs: static
//! race/deadlock analysis, cross-engine equivalence, and the dynamic
//! vector-clock oracle, over real factorization problems — plus the
//! negative case: a deliberately dropped dependency edge must be caught
//! by BOTH the static pass and the replay checker.

use dagfact_core::tasks::{TaskGraph, TaskKind};
use dagfact_core::{Analysis, SolverOptions, VerifyOptions};
use dagfact_rt::verify::{check_static, replay, ClockGranularity};
use dagfact_rt::RuntimeKind;
use dagfact_sparse::gen::{convection_diffusion_3d, grid_laplacian_2d, grid_laplacian_3d};
use dagfact_symbolic::FactoKind;

fn analysis_of(facto: FactoKind) -> Analysis {
    // An unsymmetric-valued pattern so LU is honest; the pattern is
    // symmetrized by the analysis either way.
    let a = match facto {
        FactoKind::Lu => convection_diffusion_3d(5, 5, 4, 0.4),
        _ => grid_laplacian_3d(5, 5, 4),
    };
    Analysis::new(a.pattern(), facto, &SolverOptions::default())
}

#[test]
fn all_factos_and_engines_verify_clean() {
    for facto in [FactoKind::Cholesky, FactoKind::Ldlt, FactoKind::Lu] {
        let an = analysis_of(facto);
        let outcome = an.verify_task_graph(&VerifyOptions {
            nthreads: 4,
            dynamic: true,
        });
        assert!(
            outcome.is_clean(),
            "{facto:?} failed verification:\n{outcome}"
        );
        assert_eq!(outcome.engines.len(), 3);
        for e in &outcome.engines {
            assert!(e.stat.pairs_checked > 0, "{} checked nothing", e.runtime.label());
            let d = e.dynamic.as_ref().expect("dynamic replay requested");
            assert!(d.naccesses > 0);
        }
    }
}

#[test]
fn static_only_mode_skips_the_replay() {
    let an = analysis_of(FactoKind::Cholesky);
    let outcome = an.verify_task_graph(&VerifyOptions {
        nthreads: 1,
        dynamic: false,
    });
    assert!(outcome.is_clean(), "{outcome}");
    assert!(outcome.engines.iter().all(|e| e.dynamic.is_none()));
}

#[test]
fn summary_reads_like_a_report() {
    let an = analysis_of(FactoKind::Cholesky);
    let outcome = an.verify_task_graph(&VerifyOptions {
        nthreads: 2,
        dynamic: true,
    });
    let text = outcome.summary();
    assert!(text.contains("PaStiX-native"), "{text}");
    assert!(text.contains("StarPU-like"), "{text}");
    assert!(text.contains("PaRSEC-like"), "{text}");
    assert!(text.contains("identical conflicting-access orderings"), "{text}");
    assert!(!text.contains("FAIL"), "{text}");
}

/// The last dependency edge into a panel task orders the final update's
/// write against the panel factorization's read-modify-write of the same
/// panel. Dropping it is the canonical "runtime forgot a dependency" bug;
/// both layers of the verifier must notice.
#[test]
fn dropped_edge_is_flagged_by_static_and_dynamic_checkers() {
    let a = grid_laplacian_2d(8, 8);
    let an = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let g = TaskGraph::build(&an.symbol);
    // Find an update → panel edge (the chain-closing edge of a target).
    let ncblk = an.symbol.ncblk();
    let (pred, panel, target) = g
        .tasks
        .iter()
        .enumerate()
        .skip(ncblk)
        .find_map(|(id, &t)| match t {
            TaskKind::Update { target, .. } if g.succs[id].contains(&target) => {
                Some((id, target, target))
            }
            _ => None,
        })
        .expect("a 2D grid factorization has update tasks");

    let mut spec = an.task_graph_spec(RuntimeKind::Ptg);
    assert!(spec.remove_edge(pred, panel), "edge must exist in the spec");

    // Static pass: the update's write and the panel's RW on `target` are
    // no longer ordered.
    let report = check_static(&spec);
    assert!(!report.is_clean());
    assert!(
        report
            .races
            .iter()
            .any(|r| r.data == target && (r.first == pred || r.second == pred)),
        "expected a race on panel {target} involving task {pred}: {report}"
    );

    // Dynamic oracle: per-task clocks make the missing edge visible on
    // any schedule the engine happens to choose.
    for rt in RuntimeKind::ALL {
        let dyn_report =
            replay(&spec, rt, 4, ClockGranularity::PerTask).expect("replay completes");
        assert!(
            dyn_report.races.iter().any(|r| r.data == target),
            "{}: vector clocks missed the dropped edge: {dyn_report:?}",
            rt.label()
        );
    }
}

/// A broken hazard ordering in one engine must break the cross-engine
/// equivalence signature too (it changes that panel's writer chain).
#[test]
fn equivalence_signature_detects_reordered_writers() {
    use dagfact_rt::verify::conflict_signature;
    let an = analysis_of(FactoKind::Cholesky);
    let base = conflict_signature(&an.task_graph_spec(RuntimeKind::Ptg)).expect("acyclic");
    let native = conflict_signature(&an.task_graph_spec(RuntimeKind::Native)).expect("acyclic");
    assert_eq!(base, native);
    // Retagging one update task simulates an engine applying a different
    // source's update in its place.
    let g = TaskGraph::build(&an.symbol);
    let mut spec = an.task_graph_spec(RuntimeKind::Ptg);
    let update = (0..g.len())
        .find(|&t| matches!(g.tasks[t], TaskKind::Update { .. }))
        .expect("has updates");
    spec.set_tag(update, u64::MAX);
    let perturbed = conflict_signature(&spec).expect("still acyclic");
    assert_ne!(base, perturbed, "retagged writer chain must differ");
}
