//! Distributed fan-in engine, end to end: zero-fault equivalence with
//! the native runtime, traffic cross-check against the analytic fan-in
//! study, seeded chaos sweeps (node crashes + message loss/duplication/
//! reordering) with the never-silently-wrong contract, and the recovery
//! edge cases (root-owner crash, duplicate final acks, heartbeat-timeout
//! vs. completion orderings).

use dagfact_core::dist::{factorize_dist, DistError, DistOptions};
use dagfact_core::{fan_in_study, Analysis, RuntimeKind, SolverOptions};
use dagfact_kernels::Scalar;
use dagfact_rt::FaultPlan;
use dagfact_sparse::gen::{convection_diffusion_3d, grid_laplacian_3d, shifted_laplacian_3d};
use dagfact_sparse::CscMatrix;
use dagfact_symbolic::FactoKind;
use std::sync::Arc;

fn residual<T: Scalar>(a: &CscMatrix<T>, x: &[T], b: &[T]) -> f64 {
    let mut ax = vec![T::zero(); b.len()];
    a.spmv(x, &mut ax);
    let num = ax
        .iter()
        .zip(b)
        .map(|(&l, &r)| (l - r).modulus())
        .fold(0.0f64, f64::max);
    let den = b.iter().map(|v| v.modulus()).fold(0.0f64, f64::max);
    num / den.max(1e-300)
}

fn rhs(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 37 + 11) % 23) as f64 / 7.0 - 1.0).collect()
}

fn rel_diff(x: &[f64], y: &[f64]) -> f64 {
    let num = x
        .iter()
        .zip(y)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    let den = y.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
    num / den.max(1e-300)
}

/// The three Table-I proxy families the chaos sweep runs over, scaled
/// down so 20 seeds × 3 matrices stay fast.
fn proxies() -> Vec<(&'static str, CscMatrix<f64>, FactoKind)> {
    vec![
        ("laplace3d", grid_laplacian_3d(6, 6, 6), FactoKind::Cholesky),
        (
            "shifted3d",
            shifted_laplacian_3d(6, 6, 6, 1.0),
            FactoKind::Ldlt,
        ),
        (
            "convdiff3d",
            convection_diffusion_3d(5, 5, 5, 0.3),
            FactoKind::Lu,
        ),
    ]
}

fn dist_opts(nnodes: usize) -> DistOptions {
    DistOptions {
        nnodes,
        ..DistOptions::default()
    }
}

// ---------------------------------------------------------------------
// Zero-fault equivalence
// ---------------------------------------------------------------------

#[test]
fn zero_fault_matches_native_factors() {
    for (name, a, facto) in proxies() {
        let analysis = Analysis::new(a.pattern(), facto, &SolverOptions::default());
        let native = analysis.factorize(&a, RuntimeKind::Native, 1).unwrap();
        let (dist, report) = factorize_dist(&analysis, &a, &dist_opts(3)).unwrap();
        assert!(report.crashes.is_empty() && report.retransmits == 0, "{name}");
        assert!(report.tasks_executed as usize >= analysis.symbol.ncblk(), "{name}");
        // Same diagonal (LDLᵀ) and the same solution to rounding: the
        // distributed engine runs the very same kernels, only the update
        // application order differs.
        assert!(rel_diff(&dist.d, &native.d) < 1e-10, "{name}: d drifted");
        let b = rhs(a.nrows());
        let xn = native.solve(&b);
        let xd = dist.solve(&b);
        let tol = if facto == FactoKind::Lu { 1e-9 } else { 1e-10 };
        assert!(residual(&a, &xn, &b) < tol, "{name}: native residual");
        assert!(residual(&a, &xd, &b) < tol, "{name}: dist residual");
        assert!(rel_diff(&xd, &xn) < 1e-9, "{name}: solutions diverged");
    }
}

#[test]
fn zero_fault_traffic_matches_fan_in_study() {
    let a = grid_laplacian_3d(8, 8, 8);
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    for nnodes in [2usize, 3, 4] {
        let study = fan_in_study(&analysis, false, nnodes);
        let (_, report) = factorize_dist(&analysis, &a, &dist_opts(nnodes)).unwrap();
        assert_eq!(
            report.data_messages, study.fan_in.messages,
            "{nnodes} nodes: pair-message count must equal the study's prediction"
        );
        let rel = (report.bytes - study.fan_in.bytes).abs() / (1.0 + study.fan_in.bytes);
        assert!(rel < 1e-6, "{nnodes} nodes: byte volume off by {rel:e}");
        assert_eq!(report.sends, report.data_messages, "no retransmits without faults");
        assert_eq!(report.messages_lost, 0);
        assert_eq!(report.recoveries, 0);
    }
}

#[test]
fn zero_fault_run_is_vector_clock_race_free() {
    let a = grid_laplacian_3d(6, 6, 6);
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let opts = DistOptions {
        verify: true,
        ..dist_opts(3)
    };
    let (_, report) = factorize_dist(&analysis, &a, &opts).unwrap();
    assert!(report.verified, "vector-clock replay must come back clean");
}

// ---------------------------------------------------------------------
// Seeded chaos sweep: crashes + loss + duplication + reordering
// ---------------------------------------------------------------------

#[test]
fn chaos_sweep_never_silently_wrong() {
    let mut completed = 0u32;
    let mut typed_failures = 0u32;
    let mut runs_with_faults = 0u32;
    for (name, a, facto) in proxies() {
        let analysis = Analysis::new(a.pattern(), facto, &SolverOptions::default());
        let b = rhs(a.nrows());
        let (clean, _) = factorize_dist(&analysis, &a, &dist_opts(3)).unwrap();
        let xc = clean.solve(&b);
        let tol = if facto == FactoKind::Lu { 1e-9 } else { 1e-10 };
        let rc = residual(&a, &xc, &b);
        assert!(rc < tol, "{name}: fault-free baseline");
        for seed in 0..20u64 {
            let mut plan = FaultPlan::with_seed(seed)
                .message_loss(0.08)
                .message_dup(0.08)
                .message_reorder(0.08)
                .random_crash(0.3, 2 + (seed % 3) as u32);
            if seed % 4 == 0 {
                // Pin a crash on top of the sampled ones.
                plan = plan.crash_node_on((seed as usize / 4) % 3, (seed % 5) as u32);
            }
            let opts = DistOptions {
                fault_plan: Some(Arc::new(plan)),
                ..dist_opts(3)
            };
            match factorize_dist(&analysis, &a, &opts) {
                Ok((f, report)) => {
                    completed += 1;
                    if !report.crashes.is_empty()
                        || report.messages_lost > 0
                        || report.duplicates_injected > 0
                        || report.reorders > 0
                    {
                        runs_with_faults += 1;
                    }
                    let x = f.solve(&b);
                    let r = residual(&a, &x, &b);
                    assert!(r < tol, "{name} seed {seed}: residual {r:e} after {report:?}");
                    assert!(
                        rel_diff(&x, &xc) < 1e-8,
                        "{name} seed {seed}: recovered solution drifted from fault-free"
                    );
                }
                // Typed recovery failure — the allowed alternative to a
                // correct completion. Anything else (panic, hang, silent
                // corruption) fails the test.
                Err(
                    DistError::AllNodesCrashed
                    | DistError::RetransmitExhausted { .. }
                    | DistError::Stalled { .. },
                ) => typed_failures += 1,
                Err(DistError::Solver(e)) => panic!("{name} seed {seed}: numeric failure {e}"),
                Err(e @ DistError::PairBufferMissing { .. }) => {
                    panic!("{name} seed {seed}: protocol invariant violated: {e}")
                }
            }
        }
    }
    assert!(completed >= 30, "chaos sweep: only {completed}/60 runs completed");
    assert!(
        runs_with_faults >= 20,
        "chaos sweep exercised too few faulty runs ({runs_with_faults})"
    );
    // Typed failures are allowed but completion should dominate.
    assert!(completed + typed_failures == 60);
}

// ---------------------------------------------------------------------
// Recovery edge cases
// ---------------------------------------------------------------------

#[test]
fn crash_of_root_supernode_owner_recovers() {
    let a = grid_laplacian_3d(6, 6, 6);
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let nnodes = 3;
    let root = analysis.symbol.ncblk() - 1;
    let root_owner = fan_in_study(&analysis, false, nnodes).mapping.node_of[root];
    let plan = FaultPlan::with_seed(7).crash_node_on(root_owner, 2);
    let opts = DistOptions {
        fault_plan: Some(Arc::new(plan)),
        ..dist_opts(nnodes)
    };
    let (f, report) = factorize_dist(&analysis, &a, &opts).unwrap();
    assert_eq!(report.crashes, vec![root_owner]);
    assert!(report.recoveries >= 1, "root owner's shard must be adopted");
    assert!(report.panels_restored >= 1, "the root panel itself was lost");
    let b = rhs(a.nrows());
    assert!(residual(&a, &f.solve(&b), &b) < 1e-10);
}

#[test]
fn crash_before_any_work_recovers() {
    let a = grid_laplacian_3d(6, 6, 6);
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let plan = FaultPlan::with_seed(1).crash_node_on(1, 0);
    let opts = DistOptions {
        fault_plan: Some(Arc::new(plan)),
        ..dist_opts(3)
    };
    let (f, report) = factorize_dist(&analysis, &a, &opts).unwrap();
    assert_eq!(report.crashes, vec![1]);
    assert!(report.recoveries >= 1);
    let b = rhs(a.nrows());
    assert!(residual(&a, &f.solve(&b), &b) < 1e-10);
}

#[test]
fn all_nodes_crashed_is_a_typed_error() {
    let a = grid_laplacian_3d(5, 5, 5);
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let plan = FaultPlan::with_seed(2).crash_node_on(0, 0).crash_node_on(1, 0);
    let opts = DistOptions {
        fault_plan: Some(Arc::new(plan)),
        ..dist_opts(2)
    };
    match factorize_dist(&analysis, &a, &opts) {
        Err(DistError::AllNodesCrashed) => {}
        Err(other) => panic!("expected AllNodesCrashed, got {other}"),
        Ok(_) => panic!("expected AllNodesCrashed, got a completed factorization"),
    }
}

#[test]
fn duplicate_delivery_of_every_message_and_ack_is_absorbed() {
    let a = grid_laplacian_3d(6, 6, 6);
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let native = analysis.factorize(&a, RuntimeKind::Native, 1).unwrap();
    // mdup=1: every data message AND every ack — including the final
    // ack of every pair — is delivered twice.
    let plan = FaultPlan::with_seed(3).message_dup(1.0);
    let opts = DistOptions {
        fault_plan: Some(Arc::new(plan)),
        ..dist_opts(3)
    };
    let (f, report) = factorize_dist(&analysis, &a, &opts).unwrap();
    assert!(report.duplicates_injected > 0);
    assert!(
        report.duplicates_absorbed + report.stale_acks > 0,
        "duplicate data deliveries / final acks must be absorbed, not re-applied"
    );
    let b = rhs(a.nrows());
    let xd = f.solve(&b);
    assert!(residual(&a, &xd, &b) < 1e-10);
    assert!(rel_diff(&xd, &native.solve(&b)) < 1e-9, "duplicates must not double-apply");
}

#[test]
fn heartbeat_timeout_vs_completion_orderings_agree() {
    let a = grid_laplacian_3d(6, 6, 6);
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let b = rhs(a.nrows());
    // Eager detection: the failure detector fires aggressively, racing
    // the in-flight work of the survivors.
    let eager = DistOptions {
        fault_plan: Some(Arc::new(FaultPlan::with_seed(5).crash_node_on(1, 1))),
        heartbeat_interval: 1e-6,
        heartbeat_timeout_beats: 1,
        ..dist_opts(3)
    };
    // Lazy detection: the survivors drain every task they can and go
    // idle long before the timeout expires.
    let lazy = DistOptions {
        fault_plan: Some(Arc::new(FaultPlan::with_seed(5).crash_node_on(1, 1))),
        heartbeat_interval: 2e-3,
        heartbeat_timeout_beats: 5,
        ..dist_opts(3)
    };
    let mut solutions = Vec::new();
    for (label, opts) in [("eager", eager), ("lazy", lazy)] {
        let (f, report) = factorize_dist(&analysis, &a, &opts).unwrap();
        assert_eq!(report.crashes, vec![1], "{label}");
        assert!(report.recoveries >= 1, "{label}: shard must be adopted");
        let x = f.solve(&b);
        assert!(residual(&a, &x, &b) < 1e-10, "{label}");
        solutions.push(x);
    }
    assert!(
        rel_diff(&solutions[0], &solutions[1]) < 1e-9,
        "detection timing must not change the answer"
    );
}

#[test]
fn heartbeat_churn_without_faults_never_false_positives() {
    let a = grid_laplacian_3d(6, 6, 6);
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let opts = DistOptions {
        heartbeat_interval: 1e-7,
        heartbeat_timeout_beats: 1,
        ..dist_opts(4)
    };
    let (f, report) = factorize_dist(&analysis, &a, &opts).unwrap();
    assert_eq!(report.recoveries, 0, "live nodes must never be declared dead");
    assert!(report.crashes.is_empty());
    let b = rhs(a.nrows());
    assert!(residual(&a, &f.solve(&b), &b) < 1e-10);
}

#[test]
fn heavy_loss_exhausts_the_retransmit_budget_with_a_typed_error() {
    let a = grid_laplacian_3d(6, 6, 6);
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let plan = FaultPlan::with_seed(11).message_loss(1.0);
    let opts = DistOptions {
        fault_plan: Some(Arc::new(plan)),
        max_send_attempts: 3,
        ..dist_opts(3)
    };
    match factorize_dist(&analysis, &a, &opts) {
        Err(DistError::RetransmitExhausted { attempts, .. }) => assert_eq!(attempts, 3),
        Err(DistError::Stalled { .. }) => {} // also a legal typed outcome
        Err(other) => panic!("total loss must surface a transport error, got {other}"),
        Ok(_) => panic!("total loss must not complete"),
    }
}
