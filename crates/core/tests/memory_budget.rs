//! Memory-budgeted execution, end to end: the degradation ladder under a
//! hard cap (workspace shedding, admission throttling, out-of-core panel
//! spilling), injected allocation failures across every runtime engine,
//! and the solve-phase fault-back path — all while the numeric results
//! stay at full accuracy.

use dagfact_core::{Analysis, ExecOptions, RuntimeKind, SolverError, SolverOptions};
use dagfact_rt::budget::site;
use dagfact_rt::{FaultPlan, MemoryBudget, RetryPolicy, RunConfig};
use dagfact_sparse::gen::{convection_diffusion_3d, grid_laplacian_3d, shifted_laplacian_3d};
use dagfact_sparse::CscMatrix;
use dagfact_symbolic::FactoKind;
use std::sync::Arc;
use std::time::Duration;

fn berr(a: &CscMatrix<f64>, x: &[f64], b: &[f64]) -> f64 {
    let mut r = vec![0.0; b.len()];
    a.spmv(x, &mut r);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    let num = r.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let nx = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let nb = b.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    num / (a.norm_inf() * nx + nb).max(f64::MIN_POSITIVE)
}

/// Scratch directory for spilled panels, removed on drop.
struct SpillDir(std::path::PathBuf);

impl SpillDir {
    fn new(tag: &str) -> SpillDir {
        let p = std::env::temp_dir().join(format!(
            "dagfact-membudget-{tag}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&p).expect("create spill scratch dir");
        SpillDir(p)
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn exec(
    budget: Arc<MemoryBudget>,
    spill: Option<&SpillDir>,
    plan: Option<FaultPlan>,
) -> ExecOptions {
    ExecOptions {
        run: RunConfig {
            fault_plan: plan.map(Arc::new),
            retry: RetryPolicy::retrying(),
            watchdog: Some(Duration::from_secs(30)),
            budget: Some(budget),
            trace: None,
            cancel: None,
        },
        epsilon_override: None,
        spill_dir: spill.map(|s| s.0.clone()),
    }
}

/// The Table-I proxy problems exercised here: one per factorization kind.
fn proxies() -> Vec<(&'static str, CscMatrix<f64>, FactoKind)> {
    vec![
        ("audi-proxy", grid_laplacian_3d(8, 8, 8), FactoKind::Cholesky),
        (
            "serena-proxy",
            shifted_laplacian_3d(7, 7, 7, 1.0),
            FactoKind::Ldlt,
        ),
        (
            "mhd-proxy",
            convection_diffusion_3d(7, 7, 7, 0.4),
            FactoKind::Lu,
        ),
    ]
}

// ---------------------------------------------------------------------
// The headline guarantee: a 50%-of-peak hard cap still completes, via
// the degradation ladder, at the same residual as the unconstrained run
// ---------------------------------------------------------------------

#[test]
fn half_peak_cap_completes_at_unconstrained_accuracy_on_table_i_proxies() {
    for (name, a, kind) in proxies() {
        let analysis = Analysis::new(a.pattern(), kind, &SolverOptions::default());
        let b = vec![1.0; a.nrows()];

        // Unconstrained run, with accounting on, to measure the natural
        // high-water mark. Single-threaded native so the baseline and
        // capped runs schedule identically.
        let free = exec(MemoryBudget::unbounded(), None, None);
        let f = analysis
            .factorize_with(&a, RuntimeKind::Native, 1, &free)
            .unwrap_or_else(|e| panic!("{name}: unconstrained run failed: {e}"));
        let mem = f.stats.run.memory.as_ref().expect("accounting was on");
        let peak = mem.peak_bytes;
        assert!(peak > 0, "{name}: ledger saw no allocations");
        let e_free = berr(&a, &f.solve(&b), &b);
        assert!(e_free <= 1e-12, "{name}: baseline backward error {e_free:.3e}");

        // Same problem under half the measured peak: the run must finish
        // by degrading (spill / shed / throttle / overcommit), not fail.
        let dir = SpillDir::new(name);
        let capped = exec(MemoryBudget::with_cap(peak / 2), Some(&dir), None);
        let f = analysis
            .factorize_with(&a, RuntimeKind::Native, 1, &capped)
            .unwrap_or_else(|e| panic!("{name}: 50%-cap run failed: {e}"));
        let mem = f.stats.run.memory.as_ref().expect("accounting was on");
        assert!(
            mem.spill_events + mem.shed_events + mem.throttle_events + mem.overcommit_events > 0,
            "{name}: cap {} vs peak {} triggered no degradation: {mem:?}",
            peak / 2,
            peak
        );
        // Per-phase attribution is part of the report contract.
        let phases: Vec<&str> = mem.phases.iter().map(|p| p.name.as_str()).collect();
        assert!(
            phases.contains(&"assembly") && phases.contains(&"factorization"),
            "{name}: phases {phases:?}"
        );
        let e_cap = berr(&a, &f.solve(&b), &b);
        assert!(e_cap <= 1e-12, "{name}: capped backward error {e_cap:.3e}");
        // Degradation is allowed to cost memory traffic, never accuracy:
        // both residuals sit at measurement precision.
        assert!(
            (e_cap - e_free).abs() <= 1e-12,
            "{name}: residual drifted under the cap: {e_cap:.3e} vs {e_free:.3e}"
        );
    }
}

#[test]
fn capped_runs_are_stable_across_every_engine() {
    let a = grid_laplacian_3d(8, 8, 8);
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let b = vec![1.0; a.nrows()];
    let free = exec(MemoryBudget::unbounded(), None, None);
    let peak = analysis
        .factorize_with(&a, RuntimeKind::Native, 1, &free)
        .expect("unconstrained run")
        .stats
        .run
        .memory
        .as_ref()
        .expect("accounting was on")
        .peak_bytes;
    for rt in RuntimeKind::ALL {
        let dir = SpillDir::new(&format!("engines-{rt:?}"));
        let capped = exec(MemoryBudget::with_cap(peak * 6 / 10), Some(&dir), None);
        let f = analysis
            .factorize_with(&a, rt, 4, &capped)
            .unwrap_or_else(|e| panic!("{rt:?}: capped run failed: {e}"));
        let e = berr(&a, &f.solve(&b), &b);
        assert!(e <= 1e-11, "{rt:?}: backward error {e:.3e}");
    }
}

// ---------------------------------------------------------------------
// Injected allocation failures: pinned and sampled, on every engine
// ---------------------------------------------------------------------

#[test]
fn pinned_alloc_faults_are_retried_transparently_on_every_engine() {
    let a = grid_laplacian_3d(7, 7, 7);
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let b = vec![1.0; a.nrows()];
    for rt in RuntimeKind::ALL {
        // A roomy cap keeps pressure at Green but switches the coeftab to
        // lazy (first-touch) mode, so panel materialization goes through
        // the fallible charge path the faults are injected into.
        let budget = MemoryBudget::with_cap(1 << 40);
        let plan = FaultPlan::new()
            .alloc_fail_on(site::PANEL_BASE, 1)
            .alloc_fail_on(site::PANEL_BASE + 3, 1);
        let opts = exec(budget, None, Some(plan));
        let f = analysis
            .factorize_with(&a, rt, 4, &opts)
            .unwrap_or_else(|e| panic!("{rt:?}: pinned alloc faults must be absorbed, got {e}"));
        let mem = f.stats.run.memory.as_ref().expect("accounting was on");
        assert_eq!(mem.alloc_faults, 2, "{rt:?}: ledger fault count");
        assert_eq!(f.stats.run.faults_injected, 2, "{rt:?}: plan fault count");
        assert!(f.stats.run.retries >= 2, "{rt:?}: {:?}", f.stats.run);
        let e = berr(&a, &f.solve(&b), &b);
        assert!(e <= 1e-12, "{rt:?}: backward error {e:.3e}");
    }
}

#[test]
fn sampled_alloc_fault_sweep_never_aborts_and_accounts_exactly() {
    let a = shifted_laplacian_3d(6, 6, 6, 1.0);
    let analysis = Analysis::new(a.pattern(), FactoKind::Ldlt, &SolverOptions::default());
    let b = vec![1.0; a.nrows()];
    for seed in [11u64, 42, 20260807] {
        for rt in RuntimeKind::ALL {
            let budget = MemoryBudget::with_cap(1 << 40);
            let plan = FaultPlan::with_seed(seed).random_alloc_fail(0.2, 1);
            let opts = exec(budget.clone(), None, Some(plan));
            // Sampled faults can land where no engine retry exists —
            // assembly-phase charges, or pins inside the native engine's
            // coarse 1D tasks — and then surface as a typed transient
            // error. The documented recovery is a solver-level re-run;
            // each delivery consumes that site's failure budget, so the
            // loop is bounded by the number of faulted sites.
            let mut attempts = 0;
            let f = loop {
                attempts += 1;
                match analysis.factorize_with(&a, rt, 4, &opts) {
                    Ok(f) => break f,
                    Err(e) if e.is_transient_alloc() && attempts < 20 => continue,
                    Err(e) => panic!("{rt:?}/seed {seed}: attempt {attempts} failed: {e}"),
                }
            };
            let mem = f.stats.run.memory.as_ref().expect("accounting was on");
            // The plan injects nothing but allocation faults, and each
            // delivery is observed by exactly one ledger: the two tallies
            // must agree even across the engine's retries.
            assert_eq!(
                mem.alloc_faults,
                opts.run.fault_plan.as_ref().unwrap().faults_injected(),
                "{rt:?}/seed {seed}: ledger vs plan disagree"
            );
            let e = berr(&a, &f.solve(&b), &b);
            assert!(e <= 1e-12, "{rt:?}/seed {seed}: backward error {e:.3e}");
        }
    }
}

// ---------------------------------------------------------------------
// Solve-phase fault-back: spilled panels must return through the
// infallible pins even when the readback charge is faulted
// ---------------------------------------------------------------------

#[test]
fn solve_faults_spilled_panels_back_in_through_injected_failures() {
    let a = grid_laplacian_3d(8, 8, 8);
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let b = vec![1.0; a.nrows()];
    let free = exec(MemoryBudget::unbounded(), None, None);
    let clean = analysis
        .factorize_with(&a, RuntimeKind::Native, 1, &free)
        .expect("unconstrained run");
    let peak = clean
        .stats
        .run
        .memory
        .as_ref()
        .expect("accounting was on")
        .peak_bytes;
    let e_clean = berr(&a, &clean.solve(&b), &b);

    let dir = SpillDir::new("faultback");
    let capped = exec(MemoryBudget::with_cap(peak / 2), Some(&dir), None);
    let f = analysis
        .factorize_with(&a, RuntimeKind::Native, 1, &capped)
        .expect("capped factorization");
    let mem = f.stats.run.memory.as_ref().expect("accounting was on");
    assert!(
        mem.spill_events > 0,
        "cap {} of peak {} must spill for this test to bite",
        peak / 2,
        peak
    );
    // Arm the injection only now, so both deliveries are guaranteed to
    // land in the solve's readback charges (during factorization they
    // could be consumed by mid-run evict/fault-back cycles instead).
    let budget = capped.run.budget.as_ref().expect("budget installed");
    let plan = Arc::new(FaultPlan::new().alloc_fail_on(site::SPILL_READBACK, 2));
    budget.set_fault_plan(plan.clone());
    // The solve pins every panel, faulting spilled ones back in; the two
    // injected readback failures are absorbed by the pin retry loop. The
    // factor's report is a factorize-time snapshot, so post-solve counts
    // come from the live ledger and plan.
    let x = f.solve(&b);
    assert_eq!(plan.faults_injected(), 2, "both injected failures delivered");
    let live = budget.stats();
    assert_eq!(live.alloc_faults, 2, "ledger saw the same two deliveries");
    assert!(live.fault_in_events > 0, "spilled panels came back: {live:?}");
    let e = berr(&a, &x, &b);
    assert!(e <= 1e-12, "faulted-back solve backward error {e:.3e}");
    assert!(
        (e - e_clean).abs() <= 1e-12,
        "spill round-trip drifted the residual: {e:.3e} vs {e_clean:.3e}"
    );
}

// ---------------------------------------------------------------------
// Typed refusal: when no ladder rung can make progress, the failure is
// a structured BudgetExceeded, never a panic or a hang
// ---------------------------------------------------------------------

#[test]
fn impossible_cap_is_a_typed_budget_error() {
    let a = grid_laplacian_3d(6, 6, 6);
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    // 1 KiB cannot hold even the assembly entry plan, and no amount of
    // spilling helps a single request larger than the whole cap.
    let opts = exec(MemoryBudget::with_cap(1024), None, None);
    match analysis.factorize_with(&a, RuntimeKind::Native, 2, &opts) {
        Err(SolverError::BudgetExceeded { cap: 1024, .. }) => {}
        Err(other) => panic!("expected BudgetExceeded, got {other:?}"),
        Ok(_) => panic!("a 1 KiB cap must not admit a 216-node factorization"),
    }
}
