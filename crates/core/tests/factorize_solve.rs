//! End-to-end correctness of the factorization and solve across every
//! factorization kind × runtime × arithmetic combination.

use dagfact_core::{Analysis, RuntimeKind, SolverOptions};
use dagfact_kernels::{Scalar, C64};
use dagfact_sparse::gen::{
    convection_diffusion_3d, grid_laplacian_2d, grid_laplacian_3d, helmholtz_3d, random_spd,
    shifted_laplacian_3d,
};
use dagfact_sparse::CscMatrix;
use dagfact_symbolic::FactoKind;

fn residual<T: Scalar>(a: &CscMatrix<T>, x: &[T], b: &[T]) -> f64 {
    let mut ax = vec![T::zero(); b.len()];
    a.spmv(x, &mut ax);
    let num = ax
        .iter()
        .zip(b)
        .map(|(&l, &r)| (l - r).modulus())
        .fold(0.0f64, f64::max);
    let den = b.iter().map(|v| v.modulus()).fold(0.0f64, f64::max);
    num / den.max(1e-300)
}

fn rhs_real(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 37 + 11) % 23) as f64 / 7.0 - 1.0).collect()
}

fn rhs_complex(n: usize) -> Vec<C64> {
    (0..n)
        .map(|i| C64::new(((i * 13 + 3) % 17) as f64 / 5.0 - 1.0, ((i * 7) % 11) as f64 / 5.0))
        .collect()
}

fn check_real(a: &CscMatrix<f64>, facto: FactoKind, tol: f64) {
    let analysis = Analysis::new(a.pattern(), facto, &SolverOptions::default());
    let b = rhs_real(a.nrows());
    for rt in RuntimeKind::ALL {
        for threads in [1usize, 4] {
            let f = analysis
                .factorize(a, rt, threads)
                .unwrap_or_else(|e| panic!("{facto:?}/{rt:?}/{threads}: {e}"));
            let x = f.solve(&b);
            let r = residual(a, &x, &b);
            assert!(
                r < tol,
                "{facto:?} via {rt:?} ({threads} threads): residual {r:e}"
            );
        }
    }
}

#[test]
fn cholesky_on_2d_grid() {
    check_real(&grid_laplacian_2d(15, 13), FactoKind::Cholesky, 1e-10);
}

#[test]
fn cholesky_on_3d_grid() {
    check_real(&grid_laplacian_3d(7, 7, 7), FactoKind::Cholesky, 1e-10);
}

#[test]
fn cholesky_on_random_spd() {
    for seed in [1, 2, 3] {
        check_real(&random_spd(150, 5, seed), FactoKind::Cholesky, 1e-9);
    }
}

#[test]
fn ldlt_on_indefinite_matrix() {
    check_real(&shifted_laplacian_3d(6, 6, 5, 1.0), FactoKind::Ldlt, 1e-9);
}

#[test]
fn ldlt_matches_cholesky_on_spd() {
    // On an SPD matrix LDLᵀ and LLᵀ must produce the same solution.
    let a = grid_laplacian_2d(12, 12);
    let b = rhs_real(a.nrows());
    let chol = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let ldlt = Analysis::new(a.pattern(), FactoKind::Ldlt, &SolverOptions::default());
    let xc = chol.factorize(&a, RuntimeKind::Native, 2).unwrap().solve(&b);
    let xl = ldlt.factorize(&a, RuntimeKind::Ptg, 2).unwrap().solve(&b);
    for (u, v) in xc.iter().zip(&xl) {
        assert!((u - v).abs() < 1e-9, "{u} vs {v}");
    }
}

#[test]
fn lu_on_unsymmetric_values() {
    check_real(&convection_diffusion_3d(6, 5, 5, 0.45), FactoKind::Lu, 1e-9);
}

#[test]
fn lu_handles_symmetric_matrix_too() {
    // LU on a symmetric SPD matrix must agree with Cholesky.
    let a = grid_laplacian_2d(10, 11);
    let b = rhs_real(a.nrows());
    let lua = Analysis::new(a.pattern(), FactoKind::Lu, &SolverOptions::default());
    let x = lua.factorize(&a, RuntimeKind::Dataflow, 3).unwrap().solve(&b);
    assert!(residual(&a, &x, &b) < 1e-10);
}

#[test]
fn complex_symmetric_ldlt() {
    let a = helmholtz_3d(5, 5, 4, 2.0, 0.8);
    let analysis = Analysis::new(a.pattern(), FactoKind::Ldlt, &SolverOptions::default());
    let b = rhs_complex(a.nrows());
    for rt in RuntimeKind::ALL {
        let f = analysis.factorize(&a, rt, 2).unwrap();
        let x = f.solve(&b);
        assert!(residual(&a, &x, &b) < 1e-9, "{rt:?}");
    }
}

#[test]
fn complex_lu() {
    let a = dagfact_sparse::gen::complex_unsym_3d(5, 4, 4);
    let analysis = Analysis::new(a.pattern(), FactoKind::Lu, &SolverOptions::default());
    let b = rhs_complex(a.nrows());
    let f = analysis.factorize(&a, RuntimeKind::Ptg, 4).unwrap();
    let x = f.solve(&b);
    assert!(residual(&a, &x, &b) < 1e-9);
}

#[test]
fn runtimes_agree_bitwise_on_factor_values_single_thread() {
    // With one worker each runtime executes a sequential schedule; the
    // update chains force identical operation order per panel, so the
    // factors must agree to high precision (not necessarily bitwise, as
    // execution order across panels differs; compare solutions instead).
    let a = grid_laplacian_3d(6, 6, 6);
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let b = rhs_real(a.nrows());
    let solutions: Vec<Vec<f64>> = RuntimeKind::ALL
        .iter()
        .map(|&rt| analysis.factorize(&a, rt, 1).unwrap().solve(&b))
        .collect();
    for sol in &solutions[1..] {
        for (u, v) in solutions[0].iter().zip(sol) {
            assert!((u - v).abs() < 1e-12);
        }
    }
}

#[test]
fn cholesky_rejects_indefinite() {
    let a = shifted_laplacian_3d(4, 4, 4, 1.0);
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let err = analysis.factorize(&a, RuntimeKind::Native, 2);
    assert!(err.is_err(), "Cholesky must fail on an indefinite matrix");
}

#[test]
fn refinement_improves_static_pivoting() {
    let a = convection_diffusion_3d(5, 5, 4, 0.49);
    let analysis = Analysis::new(a.pattern(), FactoKind::Lu, &SolverOptions::default());
    let f = analysis.factorize(&a, RuntimeKind::Native, 2).unwrap();
    let b = rhs_real(a.nrows());
    let refined = f.solve_refined(&a, &b, 5, 1e-14);
    assert!(
        refined.residuals.last().unwrap() <= refined.residuals.first().unwrap(),
        "refinement made things worse: {:?}",
        refined.residuals
    );
    assert!(*refined.residuals.last().unwrap() < 1e-12);
}

#[test]
fn wide_and_narrow_split_agree() {
    // Panel splitting must not change the numerical result.
    let a = grid_laplacian_2d(16, 16);
    let b = rhs_real(a.nrows());
    let narrow = Analysis::new(
        a.pattern(),
        FactoKind::Cholesky,
        &SolverOptions {
            split: dagfact_symbolic::structure::SplitOptions { max_width: 8 },
            ..SolverOptions::default()
        },
    );
    let wide = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let xn = narrow.factorize(&a, RuntimeKind::Ptg, 4).unwrap().solve(&b);
    let xw = wide.factorize(&a, RuntimeKind::Ptg, 4).unwrap().solve(&b);
    for (u, v) in xn.iter().zip(&xw) {
        assert!((u - v).abs() < 1e-10);
    }
}

#[test]
fn pattern_mismatch_is_reported() {
    let a = grid_laplacian_2d(5, 5);
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let wrong = grid_laplacian_2d(6, 6);
    assert!(analysis.factorize(&wrong, RuntimeKind::Native, 1).is_err());
}
