//! Parallel triangular-solve correctness: the task-parallel sweeps must
//! match the sequential solve to roundoff for every factorization kind.

use dagfact_core::{Analysis, RuntimeKind, SolverOptions};
use dagfact_kernels::{Scalar, C64};
use dagfact_sparse::gen::{
    convection_diffusion_3d, grid_laplacian_3d, helmholtz_3d, shifted_laplacian_3d,
};
use dagfact_symbolic::FactoKind;

#[test]
fn parallel_matches_sequential_cholesky() {
    let a = grid_laplacian_3d(9, 9, 9);
    let n = a.nrows();
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let f = analysis.factorize(&a, RuntimeKind::Native, 2).unwrap();
    let b: Vec<f64> = (0..n).map(|i| ((i * 7 + 1) % 19) as f64 - 9.0).collect();
    let seq = f.solve(&b);
    for threads in [1usize, 2, 4] {
        let par = f.solve_parallel(&b, threads);
        for (u, v) in seq.iter().zip(&par) {
            assert!((u - v).abs() < 1e-11, "{threads} threads");
        }
    }
}

#[test]
fn parallel_matches_sequential_ldlt() {
    let a = shifted_laplacian_3d(7, 7, 6, 1.0);
    let analysis = Analysis::new(a.pattern(), FactoKind::Ldlt, &SolverOptions::default());
    let f = analysis.factorize(&a, RuntimeKind::Ptg, 2).unwrap();
    let b: Vec<f64> = (0..a.nrows()).map(|i| (i % 9) as f64 - 4.0).collect();
    let seq = f.solve(&b);
    let par = f.solve_parallel(&b, 4);
    for (u, v) in seq.iter().zip(&par) {
        assert!((u - v).abs() < 1e-10);
    }
}

#[test]
fn parallel_matches_sequential_lu() {
    let a = convection_diffusion_3d(6, 6, 5, 0.4);
    let analysis = Analysis::new(a.pattern(), FactoKind::Lu, &SolverOptions::default());
    let f = analysis.factorize(&a, RuntimeKind::Dataflow, 2).unwrap();
    let b: Vec<f64> = (0..a.nrows()).map(|i| (i % 13) as f64 - 6.0).collect();
    let seq = f.solve(&b);
    let par = f.solve_parallel(&b, 4);
    for (u, v) in seq.iter().zip(&par) {
        assert!((u - v).abs() < 1e-10);
    }
}

#[test]
fn parallel_multirhs_complex() {
    let a = helmholtz_3d(6, 5, 5, 1.2, 0.5);
    let n = a.nrows();
    let analysis = Analysis::new(a.pattern(), FactoKind::Ldlt, &SolverOptions::default());
    let f = analysis.factorize(&a, RuntimeKind::Native, 2).unwrap();
    let nrhs = 3;
    let b: Vec<C64> = (0..n * nrhs)
        .map(|i| C64::new((i % 5) as f64 - 2.0, (i % 3) as f64))
        .collect();
    let seq = f.solve_many(&b, nrhs);
    let par = f.solve_parallel_many(&b, nrhs, 4);
    for (u, v) in seq.iter().zip(&par) {
        assert!((*u - *v).modulus() < 1e-10);
    }
}
