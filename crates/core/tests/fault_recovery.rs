//! End-to-end fault tolerance of the solver stack: injected engine
//! faults, NaN output corruption, numeric breakdown and the adaptive
//! pivot-escalation recovery loop, across all three runtime engines.

use dagfact_core::{
    Analysis, ExecOptions, RuntimeKind, Solver, SolverError, SolverOptions,
};
use dagfact_kernels::KernelError;
use dagfact_rt::{EngineError, FaultPlan, RetryPolicy, RunConfig};
use dagfact_sparse::gen::{grid_laplacian_3d, shifted_laplacian_3d};
use dagfact_sparse::{CscMatrix, TripletBuilder};
use dagfact_symbolic::FactoKind;
use std::sync::Arc;
use std::time::Duration;

fn berr(a: &CscMatrix<f64>, x: &[f64], b: &[f64]) -> f64 {
    let mut r = vec![0.0; b.len()];
    a.spmv(x, &mut r);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    let num = r.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let nx = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let nb = b.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    num / (a.norm_inf() * nx + nb).max(f64::MIN_POSITIVE)
}

fn resilient_with(plan: FaultPlan) -> ExecOptions {
    ExecOptions {
        run: RunConfig {
            fault_plan: Some(Arc::new(plan)),
            retry: RetryPolicy::retrying(),
            watchdog: Some(Duration::from_secs(20)),
            ..RunConfig::default()
        },
        epsilon_override: None,
        spill_dir: None,
    }
}

// ---------------------------------------------------------------------
// Transient faults: fail-twice-then-succeed must not cost any accuracy
// ---------------------------------------------------------------------

#[test]
fn transient_faults_retried_to_full_accuracy_on_every_engine() {
    let a = grid_laplacian_3d(8, 8, 8);
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let b = vec![1.0; a.nrows()];
    for rt in RuntimeKind::ALL {
        // Task 1 exists in every engine's numbering and fails twice.
        let exec = resilient_with(FaultPlan::new().transient_on(1, 2));
        let f = analysis
            .factorize_with(&a, rt, 4, &exec)
            .unwrap_or_else(|e| panic!("{rt:?}: transient plan must recover, got {e}"));
        assert!(f.stats.run.retries >= 2, "{rt:?}: {:?}", f.stats.run);
        assert_eq!(f.stats.run.faults_injected, 2, "{rt:?}");
        assert!(
            f.stats.run.task_attempts.iter().any(|&(t, n)| t == 1 && n == 3),
            "{rt:?}: attempts {:?}",
            f.stats.run.task_attempts
        );
        let x = f.solve(&b);
        let e = berr(&a, &x, &b);
        assert!(e <= 1e-12, "{rt:?}: backward error {e:.3e}");
    }
}

// ---------------------------------------------------------------------
// Injected panics: structured Err, no hang, on every engine
// ---------------------------------------------------------------------

#[test]
fn injected_panic_surfaces_as_engine_error_on_every_engine() {
    let a = grid_laplacian_3d(6, 6, 6);
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    for rt in RuntimeKind::ALL {
        let exec = resilient_with(FaultPlan::new().panic_on(0));
        match analysis.factorize_with(&a, rt, 4, &exec) {
            Err(SolverError::Engine(EngineError::TaskPanicked { task: 0, .. })) => {}
            Err(other) => panic!("{rt:?}: expected Engine(TaskPanicked), got {other:?}"),
            Ok(_) => panic!("{rt:?}: factorization must not survive an injected panic"),
        }
    }
}

// ---------------------------------------------------------------------
// NaN corruption: the post-factorization sweep catches what pivot
// checks cannot (the corrupted panel is never consumed downstream)
// ---------------------------------------------------------------------

#[test]
fn nan_corruption_in_last_panel_is_caught_by_the_sweep() {
    let a = grid_laplacian_3d(6, 6, 6);
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let last = analysis.symbol.ncblk() - 1;
    let exec = resilient_with(FaultPlan::new().corrupt_panel(last));
    match analysis.factorize_with(&a, RuntimeKind::Native, 2, &exec) {
        Err(SolverError::NonFinite { task: "L", block }) => assert_eq!(block, last),
        Err(other) => panic!("expected NonFinite in panel {last}, got {other:?}"),
        Ok(_) => panic!("corrupted factorization must be rejected"),
    }
}

#[test]
fn nan_corruption_in_early_panel_is_caught_before_the_solve() {
    // Corrupting panel 0 propagates NaN through the update chain; either
    // a downstream pivot check or the final sweep must reject it — it
    // must never reach the triangular solve silently.
    let a = shifted_laplacian_3d(5, 5, 5, 1.0);
    let analysis = Analysis::new(a.pattern(), FactoKind::Ldlt, &SolverOptions::default());
    let exec = resilient_with(FaultPlan::new().corrupt_panel(0));
    match analysis.factorize_with(&a, RuntimeKind::Ptg, 2, &exec) {
        Err(SolverError::NonFinite { .. })
        | Err(SolverError::Kernel(KernelError::NonFinitePivot { .. })) => {}
        Err(other) => panic!("expected a non-finite rejection, got {other:?}"),
        Ok(_) => panic!("corrupted factorization must be rejected"),
    }
}

/// The solver-level recovery loop: the corruption budget is consumed on
/// the first attempt, so the automatic re-factorization comes out clean.
#[test]
fn solver_recovers_from_transient_output_corruption() {
    let a = grid_laplacian_3d(6, 6, 6);
    let exec = {
        let analysis =
            Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
        resilient_with(FaultPlan::new().corrupt_panel(analysis.symbol.ncblk() - 1))
    };
    let mut s = Solver::with_exec(
        &a,
        Some(FactoKind::Cholesky),
        &SolverOptions::default(),
        RuntimeKind::Native,
        2,
        &exec,
    )
    .expect("one corruption with budget 1 must be absorbed by the retry");
    assert_eq!(s.stats().attempts, 2, "first attempt corrupted, second clean");
    let b = vec![1.0; a.nrows()];
    let r = s.solve_adaptive(&b, 3, 1e-12).unwrap();
    assert!(*r.residuals.last().unwrap() <= 1e-12);
}

// ---------------------------------------------------------------------
// Numeric breakdown: epsilon escalation rescues a zero-pivot matrix
// ---------------------------------------------------------------------

/// Saddle-point matrix `[[0, Bᵀ], [B, 0]]` with explicit structural zero
/// diagonal: every diagonal entry is exactly 0, so LDLᵀ without static
/// pivoting dies on its very first pivot.
fn saddle_point(m: usize) -> CscMatrix<f64> {
    let n = 2 * m;
    let mut t = TripletBuilder::new(n, n);
    for i in 0..n {
        t.push(i, i, 0.0);
    }
    // B = bidiagonal(2, 1): well conditioned, structurally interesting.
    for i in 0..m {
        t.push(m + i, i, 2.0);
        t.push(i, m + i, 2.0);
        if i + 1 < m {
            t.push(m + i + 1, i, 1.0);
            t.push(i, m + i + 1, 1.0);
        }
    }
    t.build()
}

#[test]
fn zero_pivot_fails_without_escalation() {
    let a = saddle_point(24);
    let options = SolverOptions {
        static_pivot_epsilon: 0.0,
        max_refactor_attempts: 1, // recovery disabled
        ..SolverOptions::default()
    };
    match Solver::<f64>::with_options(&a, Some(FactoKind::Ldlt), &options, RuntimeKind::Native, 2)
    {
        Err(SolverError::Kernel(KernelError::ZeroPivot { .. })) => {}
        other => panic!(
            "expected ZeroPivot with pivoting and recovery disabled, got {:?}",
            other.err()
        ),
    }
}

#[test]
fn epsilon_escalation_rescues_the_zero_pivot_matrix() {
    let a = saddle_point(24);
    let options = SolverOptions {
        static_pivot_epsilon: 0.0, // first attempt must break down
        max_refactor_attempts: 4,
        ..SolverOptions::default()
    };
    let mut s =
        Solver::with_options(&a, Some(FactoKind::Ldlt), &options, RuntimeKind::Ptg, 2)
            .expect("escalation must rescue the factorization");
    let stats = s.stats().clone();
    assert!(stats.attempts >= 2, "attempt 1 (ε=0) must have failed");
    assert_eq!(stats.epsilon_history[0], 0.0);
    assert!(
        stats.epsilon_history.windows(2).all(|w| w[1] > w[0]),
        "escalation must be monotone: {:?}",
        stats.epsilon_history
    );
    assert_eq!(stats.epsilon, *stats.epsilon_history.last().unwrap());
    assert!(s.pivots_repaired() > 0, "the zero pivots were bumped");

    let b = vec![1.0; a.nrows()];
    let r = s.solve_adaptive(&b, 10, 1e-12).unwrap();
    let e = berr(&a, &r.x, &b);
    assert!(e <= 1e-12, "refined backward error {e:.3e}");
}

// ---------------------------------------------------------------------
// Refinement divergence detection
// ---------------------------------------------------------------------

#[test]
fn diverging_refinement_is_detected_and_reported() {
    let a = grid_laplacian_3d(5, 5, 5);
    let analysis = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let f = analysis.factorize(&a, RuntimeKind::Native, 2).unwrap();
    // Refine against 3·A with factors of A: each correction overshoots by
    // 2×, so the residual doubles every step — textbook divergence.
    let wrong = CscMatrix::new(
        a.pattern().clone(),
        a.values().iter().map(|v| v * 3.0).collect(),
    );
    let b = vec![1.0; a.nrows()];
    let r = f.solve_refined(&wrong, &b, 10, 1e-14);
    assert!(r.stalled, "residuals {:?}", r.residuals);
    assert!(
        r.iterations < 10,
        "divergence must cut refinement short, ran {}",
        r.iterations
    );
    // The best iterate is restored, not the diverged one.
    let best = r.residuals.iter().copied().fold(f64::INFINITY, f64::min);
    let e = berr(&wrong, &r.x, &b);
    assert!(e <= best * (1.0 + 1e-12), "restored {e:.3e} vs best {best:.3e}");
    match f.solve_refined_checked(&wrong, &b, 10, 1e-14) {
        Err(SolverError::RefinementStalled { last_berr, .. }) => {
            assert!(last_berr.is_finite());
        }
        other => panic!("expected RefinementStalled, got {other:?}"),
    }
}

#[test]
fn healthy_refinement_never_reports_a_stall() {
    let a = shifted_laplacian_3d(6, 6, 6, 1.0);
    let analysis = Analysis::new(a.pattern(), FactoKind::Ldlt, &SolverOptions::default());
    let f = analysis.factorize(&a, RuntimeKind::Dataflow, 4).unwrap();
    let b = vec![1.0; a.nrows()];
    let r = f.solve_refined_checked(&a, &b, 5, 1e-14).unwrap();
    assert!(!r.stalled);
    assert!(*r.residuals.last().unwrap() <= 1e-12);
}
