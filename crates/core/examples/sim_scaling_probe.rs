//! Developer probe: simulated GFlop/s of the three policies while scaling
//! cores and GPUs — a miniature of Figures 2 and 4 used for calibration.

use dagfact_core::{simulate_factorization, Analysis, SimOptions, SolverOptions};
use dagfact_gpusim::{Platform, SimPolicy};
use dagfact_sparse::gen::grid_laplacian_3d;
use dagfact_symbolic::FactoKind;

fn main() {
    let side: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);
    let a = grid_laplacian_3d(side, side, side);
    let an = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let st = an.stats();
    println!(
        "grid {side}^3: n={} nnzL={} flops={:.2} GFlop, {} panels, {} blocks",
        st.n,
        st.nnz_l,
        st.flops_real / 1e9,
        st.ncblk,
        st.nblocks
    );
    let opts = SimOptions::default();
    println!("-- CPU scaling (GFlop/s) --");
    println!("cores  native  starpu  parsec");
    for cores in [1usize, 3, 6, 9, 12] {
        let p = Platform::mirage(cores, 0);
        let g = |pol| simulate_factorization(&an, &opts, &p, pol).gflops();
        println!(
            "{cores:>5}  {:>6.2}  {:>6.2}  {:>6.2}",
            g(SimPolicy::NativeStatic),
            g(SimPolicy::StarPuLike),
            g(SimPolicy::ParsecLike { streams: 1 }),
        );
    }
    println!("-- 12 cores + GPUs (GFlop/s) --");
    println!(" gpus  starpu  parsec1  parsec3");
    for gpus in 0..=3usize {
        let p = Platform::mirage(12, gpus);
        let g = |pol| simulate_factorization(&an, &opts, &p, pol).gflops();
        println!(
            "{gpus:>5}  {:>6.2}  {:>7.2}  {:>7.2}",
            g(SimPolicy::StarPuLike),
            g(SimPolicy::ParsecLike { streams: 1 }),
            g(SimPolicy::ParsecLike { streams: 3 }),
        );
    }
}
