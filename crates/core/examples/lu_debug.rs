//! Developer scratch example: reconstruct L·U from the block storage and
//! locate where it diverges from P·A·Pᵀ.

use dagfact_core::{Analysis, RuntimeKind, SolverOptions};
use dagfact_sparse::gen::convection_diffusion_3d;
use dagfact_symbolic::FactoKind;

fn main() {
    let a = convection_diffusion_3d(3, 2, 1, 0.45);
    let n = a.nrows();
    let analysis = Analysis::new(a.pattern(), FactoKind::Lu, &SolverOptions::default());
    let f = analysis.factorize(&a, RuntimeKind::Native, 1).unwrap();
    let symbol = &analysis.symbol;
    // Dense L (unit lower) and U (upper) from the block storage.
    let mut ld = vec![0.0f64; n * n];
    let mut ud = vec![0.0f64; n * n];
    for i in 0..n {
        ld[i * n + i] = 1.0;
    }
    for c in 0..symbol.ncblk() {
        let cb = &symbol.cblks[c];
        let lpin = f.tab.pin_l_solve(symbol, c);
        let upin = f.tab.pin_u_solve(symbol, c);
        // SAFETY: single-threaded example; factorization finished — no
        // concurrent writer exists.
        let lp = unsafe { lpin.slice() };
        let up = unsafe { upin.slice() };
        for (local_j, j) in (cb.fcol..cb.lcol).enumerate() {
            for b in symbol.panel_blocks(c) {
                for r in b.frow..b.lrow {
                    let off = b.local_offset + (r - b.frow);
                    let lv = lp[local_j * cb.stride + off];
                    let uv = up[local_j * cb.stride + off];
                    if r > j {
                        ld[j * n + r] = lv; // L strict lower
                        if r >= cb.lcol {
                            // U stored transposed: U[j, r]
                            ud[r * n + j] = uv;
                        }
                    }
                    if r <= j {
                        ud[j * n + r] = lv; // U upper incl diag from L panel
                    }
                }
            }
        }
    }
    // P A P^T dense.
    let perm = analysis.perm.perm();
    let mut ap = vec![0.0f64; n * n];
    for j in 0..n {
        for (&i, &v) in a.col_rows(j).iter().zip(a.col_values(j)) {
            ap[perm[j] * n + perm[i]] = v;
        }
    }
    // L·U
    let mut prod = vec![0.0f64; n * n];
    for j in 0..n {
        for i in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += ld[k * n + i] * ud[j * n + k];
            }
            prod[j * n + i] = acc;
        }
    }
    let mut max = (0.0f64, 0, 0);
    for j in 0..n {
        for i in 0..n {
            let d = (prod[j * n + i] - ap[j * n + i]).abs();
            if d > max.0 {
                max = (d, i, j);
            }
        }
    }
    println!("max |LU - PAP'| = {:.3e} at ({}, {})", max.0, max.1, max.2);
    println!("col_to_cblk: {:?}", symbol.col_to_cblk);
    for (label, m) in [("PAP'", &ap), ("LU  ", &prod), ("L   ", &ld), ("U   ", &ud)] {
        println!("{label}:");
        for i in 0..n {
            let row: Vec<String> = (0..n).map(|j| format!("{:7.3}", m[j * n + i])).collect();
            println!("  {}", row.join(" "));
        }
    }
}
