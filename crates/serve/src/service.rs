//! The persistent solve service: bounded queue, isolated workers,
//! deadline enforcement, admission control, graceful degradation.
//!
//! Lifecycle of a job (DESIGN.md §12):
//!
//! 1. **admission** — [`Service::submit`] rejects typed-and-fast when the
//!    service is draining, the queue is full, or memory pressure stays
//!    critical after shedding the factor cache;
//! 2. **execution** — a worker thread runs the job under `catch_unwind`
//!    with a per-job [`CancelToken`] wired into the engine's
//!    [`RunConfig`]; the deadline monitor fires the token when the job's
//!    deadline passes, and the engines abandon remaining tasks at the
//!    next task boundary — a cancelled job answers
//!    [`JobError::Deadline`], never a partial solution;
//! 3. **caching** — the ordering+symbolic analysis is keyed by a content
//!    hash of the sparsity pattern, numeric factors by pattern+values;
//!    both live in [`GenCache`]s whose entries carry a generation and an
//!    integrity state, so a fill that panics poisons only itself;
//! 4. **response** — a typed [`JobResponse`] (with cache provenance) or
//!    a typed [`JobError`]; the daemon survives either.

use crate::cache::{panic_message, CacheStats, GenCache};
use crate::job::{JobError, JobResponse, JobSpec, MatrixSource, ReusePolicy, RhsSource};
use dagfact_core::{Analysis, ExecOptions, SharedFactors, SolverError, SolverOptions};
use dagfact_rt::budget::{MemoryBudget, PressureLevel};
use dagfact_rt::sync::{Condvar, Mutex};
use dagfact_rt::{CancelToken, FaultPlan, RetryPolicy, RunConfig};
use dagfact_sparse::mm::read_matrix_market_file;
use dagfact_sparse::{CscMatrix, TripletBuilder};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service configuration.
#[derive(Clone)]
pub struct ServeConfig {
    /// Worker threads draining the job queue (each job may itself run a
    /// multi-threaded factorization).
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it answer
    /// [`JobError::Overloaded`].
    pub queue_cap: usize,
    /// Shared memory ledger: factorizations charge it while running and
    /// both caches charge resident entries to it.
    pub budget: Arc<MemoryBudget>,
    /// Deadline applied to jobs that do not carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Engine-level retry policy for transient task failures, and the
    /// cap for the service-level refactorization retries.
    pub retry: RetryPolicy,
    /// Stall watchdog handed to every job's engine run.
    pub watchdog: Option<Duration>,
    /// Fault-injection plan (chaos testing) applied to every job.
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_cap: 32,
            budget: MemoryBudget::unbounded(),
            default_deadline_ms: None,
            retry: RetryPolicy {
                max_attempts: 3,
                backoff: Duration::from_millis(1),
                backoff_factor: 2.0,
            },
            watchdog: Some(Duration::from_secs(10)),
            fault_plan: None,
        }
    }
}

/// Monotone service counters (snapshot via [`Service::stats`]).
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Jobs accepted by admission control.
    pub submitted: u64,
    /// Jobs answered with a solution.
    pub completed: u64,
    /// Jobs answered `Deadline`.
    pub deadlines: u64,
    /// Jobs rejected `Overloaded` (queue or pressure).
    pub rejected: u64,
    /// Jobs answered `Panicked`.
    pub panics: u64,
    /// Jobs answered with any other typed error.
    pub failed: u64,
    /// Jobs answered out of a coalesced blocked solve (batch size ≥ 2).
    pub batched: u64,
    /// Coalesced blocked solves executed (each covers ≥ 2 jobs).
    pub batches: u64,
    /// Factor-cache shed events triggered by admission control.
    pub sheds: u64,
    /// Current queue depth.
    pub queue_depth: usize,
    /// Pattern-cache counters.
    pub pattern_cache: CacheStats,
    /// Factor-cache counters.
    pub factor_cache: CacheStats,
}

impl ServiceStats {
    /// Compact JSON rendering for the HTTP `/stats` endpoint.
    pub fn to_json(&self) -> String {
        let cache = |c: &CacheStats| {
            format!(
                "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"poisonings\":{},\
                 \"resident\":{},\"resident_bytes\":{}}}",
                c.hits, c.misses, c.evictions, c.poisonings, c.resident, c.resident_bytes
            )
        };
        format!(
            "{{\"submitted\":{},\"completed\":{},\"deadlines\":{},\"rejected\":{},\
             \"panics\":{},\"failed\":{},\"batched\":{},\"batches\":{},\
             \"sheds\":{},\"queue_depth\":{},\
             \"pattern_cache\":{},\"factor_cache\":{}}}",
            self.submitted,
            self.completed,
            self.deadlines,
            self.rejected,
            self.panics,
            self.failed,
            self.batched,
            self.batches,
            self.sheds,
            self.queue_depth,
            cache(&self.pattern_cache),
            cache(&self.factor_cache),
        )
    }
}

/// Handle to a submitted job; [`JobTicket::wait`] blocks for the typed
/// outcome.
pub struct JobTicket {
    state: Arc<TicketState>,
}

struct TicketState {
    done: Mutex<Option<Result<JobResponse, JobError>>>,
    cond: Condvar,
}

impl JobTicket {
    /// Block until the job finishes (or is rejected post-queue).
    pub fn wait(self) -> Result<JobResponse, JobError> {
        let mut guard = self.state.done.lock();
        loop {
            if let Some(outcome) = guard.take() {
                return outcome;
            }
            guard = self.state.cond.wait(guard);
        }
    }
}

struct QueuedJob {
    spec: JobSpec,
    submitted: Instant,
    ticket: Arc<TicketState>,
}

struct ServiceInner {
    config: ServeConfig,
    queue: Mutex<VecDeque<QueuedJob>>,
    queue_cond: Condvar,
    shutting_down: AtomicBool,
    pattern_cache: GenCache<u64, Analysis>,
    factor_cache: GenCache<(u64, u64, u8), SharedFactors<f64>>,
    deadlines: Mutex<Vec<(Instant, Arc<CancelToken>)>>,
    deadline_cond: Condvar,
    counters: Mutex<ServiceStats>,
    shed_events: AtomicU64,
}

impl ServiceInner {
    /// Latch the drain flag. Lives here — next to the Acquire loads in
    /// `worker_loop` / `deadline_loop` — so both sides of the protocol
    /// share one owner.
    fn begin_shutdown(&self) {
        // ORDERING: Release pairs with submit's (and the loops') Acquire
        // — a submitter that reads `false` enqueues before the workers
        // see the latch.
        self.shutting_down.store(true, Ordering::Release);
    }
}

/// The running daemon. Dropping it drains in-flight jobs and joins the
/// workers.
pub struct Service {
    inner: Arc<ServiceInner>,
    workers: Vec<JoinHandle<()>>,
    monitor: Option<JoinHandle<()>>,
}

impl Service {
    /// Start the worker pool and the deadline monitor.
    pub fn start(config: ServeConfig) -> Service {
        let inner = Arc::new(ServiceInner {
            pattern_cache: GenCache::new(config.budget.clone()),
            factor_cache: GenCache::new(config.budget.clone()),
            config,
            queue: Mutex::new(VecDeque::new()),
            queue_cond: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            deadlines: Mutex::new(Vec::new()),
            deadline_cond: Condvar::new(),
            counters: Mutex::new(ServiceStats::default()),
            shed_events: AtomicU64::new(0),
        });
        let workers = (0..inner.config.workers.max(1))
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        let monitor = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("serve-deadline".into())
                .spawn(move || deadline_loop(&inner))
                .expect("spawn deadline monitor")
        };
        Service {
            inner,
            workers,
            monitor: Some(monitor),
        }
    }

    /// Admission control + enqueue. Fast typed rejections; never blocks
    /// on solver work.
    pub fn submit(&self, spec: JobSpec) -> Result<JobTicket, JobError> {
        let inner = &self.inner;
        // ORDERING: the flag is a monotone drain latch; Acquire pairs
        // with the Release in `shutdown`.
        if inner.shutting_down.load(Ordering::Acquire) {
            return Err(JobError::ShuttingDown);
        }
        // Degradation ladder: at critical memory pressure shed the cached
        // factors (largest reclaimable residents) before giving up; only
        // reject when even that leaves the ledger past the throttle line.
        if inner.config.budget.level() >= PressureLevel::Red {
            let freed = inner.factor_cache.shed() + inner.pattern_cache.shed();
            inner.shed_events.fetch_add(1, Ordering::Relaxed);
            if inner.config.budget.level() >= PressureLevel::Red {
                let mut c = inner.counters.lock();
                c.rejected += 1;
                return Err(JobError::Overloaded(format!(
                    "memory pressure {:.0}% after shedding {freed} cached bytes",
                    inner.config.budget.pressure() * 100.0
                )));
            }
        }
        let ticket = Arc::new(TicketState {
            done: Mutex::new(None),
            cond: Condvar::new(),
        });
        {
            let mut q = inner.queue.lock();
            if q.len() >= inner.config.queue_cap {
                let mut c = inner.counters.lock();
                c.rejected += 1;
                return Err(JobError::Overloaded(format!(
                    "queue full ({} jobs)",
                    q.len()
                )));
            }
            q.push_back(QueuedJob {
                spec,
                submitted: Instant::now(),
                ticket: ticket.clone(),
            });
            let mut c = inner.counters.lock();
            c.submitted += 1;
            c.queue_depth = q.len();
        }
        inner.queue_cond.notify_one();
        Ok(JobTicket { state: ticket })
    }

    /// Submit and wait — the one-call client path.
    pub fn solve_blocking(&self, spec: JobSpec) -> Result<JobResponse, JobError> {
        self.submit(spec)?.wait()
    }

    /// Counter snapshot (queue depth and cache stats included).
    pub fn stats(&self) -> ServiceStats {
        let mut s = self.inner.counters.lock().clone();
        s.queue_depth = self.inner.queue.lock().len();
        // ORDERING: shed counter snapshot; staleness only skews stats.
        s.sheds = self.inner.shed_events.load(Ordering::Relaxed);
        s.pattern_cache = self.inner.pattern_cache.stats();
        s.factor_cache = self.inner.factor_cache.stats();
        s
    }

    /// Stop accepting jobs, drain the queue, join the workers.
    pub fn shutdown(mut self) -> ServiceStats {
        self.drain();
        self.stats()
    }

    fn drain(&mut self) {
        self.inner.begin_shutdown();
        self.inner.queue_cond.notify_all();
        self.inner.deadline_cond.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(m) = self.monitor.take() {
            let _ = m.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.drain();
        }
    }
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

fn worker_loop(inner: &Arc<ServiceInner>) {
    loop {
        let batch = {
            let mut q = inner.queue.lock();
            loop {
                if let Some(job) = q.pop_front() {
                    let mut batch = vec![job];
                    // Coalesce: a batchable lead adopts every queued
                    // follower that resolves to the same factors, so the
                    // whole group is answered by one blocked solve_many
                    // instead of one triangular sweep per job. The queue
                    // cap bounds the batch width.
                    if batchable(inner, &batch[0].spec) {
                        let mut i = 0;
                        while i < q.len() {
                            if batchable(inner, &q[i].spec)
                                && coalescable(&batch[0].spec, &q[i].spec)
                            {
                                let follower =
                                    q.remove(i).expect("index bounded by queue len");
                                batch.push(follower);
                            } else {
                                i += 1;
                            }
                        }
                    }
                    inner.counters.lock().queue_depth = q.len();
                    break Some(batch);
                }
                if inner.shutting_down.load(Ordering::Acquire) {
                    break None;
                }
                q = inner.queue_cond.wait(q);
            }
        };
        let Some(batch) = batch else { return };
        let started = Instant::now();
        // The whole job body is isolated: a panic that escapes the cache
        // fills (solve phase, RHS assembly, response building) downgrades
        // to a typed error and the worker lives on.
        let outcomes: Vec<Result<JobResponse, JobError>> = if batch.len() == 1 {
            vec![catch_unwind(AssertUnwindSafe(|| run_job(inner, &batch[0])))
                .unwrap_or_else(|p| Err(JobError::Panicked(panic_message(&p))))]
        } else {
            catch_unwind(AssertUnwindSafe(|| run_batch(inner, &batch))).unwrap_or_else(|p| {
                let e = JobError::Panicked(panic_message(&p));
                batch.iter().map(|_| Err(e.clone())).collect()
            })
        };
        let elapsed_us = started.elapsed().as_micros() as u64;
        {
            let mut c = inner.counters.lock();
            if batch.len() > 1 {
                c.batches += 1;
            }
            for outcome in &outcomes {
                match outcome {
                    Ok(_) => {
                        c.completed += 1;
                        if batch.len() > 1 {
                            c.batched += 1;
                        }
                    }
                    Err(JobError::Deadline { .. }) => c.deadlines += 1,
                    Err(JobError::Panicked(_)) => c.panics += 1,
                    Err(JobError::Overloaded(_)) => c.rejected += 1,
                    Err(_) => c.failed += 1,
                }
            }
        }
        debug_assert_eq!(outcomes.len(), batch.len());
        for (job, outcome) in batch.iter().zip(outcomes) {
            let outcome = outcome.map(|mut r| {
                r.elapsed_us = elapsed_us;
                r
            });
            let mut done = job.ticket.done.lock();
            *done = Some(outcome);
            job.ticket.cond.notify_all();
        }
    }
}

/// Whether a job may ride in a coalesced blocked solve: nothing about it
/// may be per-job beyond the RHS — cached factors, no iterative
/// refinement (its convergence loop is per-column), and no deadline that
/// would need per-member cancellation inside the shared solve.
fn batchable(inner: &ServiceInner, spec: &JobSpec) -> bool {
    spec.reuse == ReusePolicy::Factors
        && spec.refine == 0
        && spec.deadline_ms.is_none()
        && inner.config.default_deadline_ms.is_none()
}

/// Whether a queued follower resolves to the same factors as the batch
/// lead: same matrix, factorization kind and engine configuration. The
/// RHS (and its width) is exactly what is allowed to differ.
fn coalescable(lead: &JobSpec, follower: &JobSpec) -> bool {
    follower.matrix == lead.matrix
        && follower.facto == lead.facto
        && follower.engine == lead.engine
        && follower.threads == lead.threads
}

/// Run a coalesced batch: one analysis, one (cached) factorization, and
/// one blocked `solve_many` over the concatenated RHS columns, split
/// back per ticket afterwards. Results cannot mix across members
/// because each job's columns occupy a disjoint `n × nrhs` slab of the
/// block, and the solve treats columns independently. Whole-batch
/// failures (matrix load, factorization) replicate to every member; a
/// malformed per-job RHS fails only the offending job.
fn run_batch(inner: &Arc<ServiceInner>, batch: &[QueuedJob]) -> Vec<Result<JobResponse, JobError>> {
    let lead = &batch[0].spec;
    let whole = |e: JobError| batch.iter().map(|_| Err(e.clone())).collect::<Vec<_>>();
    let a = match load_matrix(lead) {
        Ok(a) => a,
        Err(e) => return whole(e),
    };
    let n = a.nrows();
    let rhs: Vec<Result<Vec<f64>, JobError>> =
        batch.iter().map(|j| build_rhs(&j.spec, &a)).collect();
    let mut b = Vec::new();
    let mut total = 0usize;
    for (job, r) in batch.iter().zip(&rhs) {
        if let Ok(col) = r {
            b.extend_from_slice(col);
            total += job.spec.nrhs;
        }
    }
    if total == 0 {
        return rhs
            .into_iter()
            .map(|r| r.map(|_| unreachable!("total == 0 means every rhs failed")))
            .collect();
    }

    let run = RunConfig {
        fault_plan: inner.config.fault_plan.clone(),
        retry: inner.config.retry.clone(),
        watchdog: inner.config.watchdog,
        budget: Some(inner.config.budget.clone()),
        cancel: None, // batch members carry no deadlines by construction
        ..RunConfig::default()
    };
    let exec = ExecOptions {
        run,
        epsilon_override: None,
        spill_dir: None,
    };
    let started = batch[0].submitted;

    // Batch members all have reuse == Factors, so both caches are keyed.
    let phash = pattern_hash(&a);
    let pkey = hash_words(phash, std::iter::once(lead.facto as u64));
    let hit = match inner.pattern_cache.get_or_fill(&pkey, || {
        let an = Analysis::new(a.pattern(), lead.facto, &SolverOptions::default());
        let bytes = an.resident_bytes();
        Ok((an, bytes))
    }) {
        Ok(h) => h,
        Err(e) => return whole(e),
    };
    let pattern_hit = hit.was_hit;
    let analysis = hit.value;

    let vhash = values_hash(&a);
    let fkey = (phash, vhash, lead.facto as u8);
    let hit = match inner.factor_cache.get_or_fill(&fkey, || {
        let sf = SharedFactors::factorize(analysis.clone(), &a, lead.engine, lead.threads, &exec)
            .map_err(|e| map_solver_error(&e, started))?;
        let bytes = sf.resident_bytes();
        Ok((sf, bytes))
    }) {
        Ok(h) => h,
        Err(e) => return whole(e),
    };
    let factor_hit = hit.was_hit;
    let generation = hit.generation;
    let factors = hit.value;

    let x = factors.solve_many(&b, total);
    let attempts = if factor_hit { 0 } else { factors.stats().attempts };
    let mut off = 0usize;
    batch
        .iter()
        .zip(rhs)
        .map(|(job, r)| {
            r.map(|_| {
                let w = job.spec.nrhs;
                let cols = x[off * n..(off + w) * n].to_vec();
                off += w;
                JobResponse {
                    x: cols,
                    n,
                    nrhs: w,
                    iterations: 0,
                    berr: None,
                    pattern_hit,
                    factor_hit,
                    generation,
                    attempts,
                    batched: batch.len(),
                    elapsed_us: 0, // stamped by the worker loop
                    tag: job.spec.tag.clone(),
                }
            })
        })
        .collect()
}

/// Register `token` to fire at `at`; the monitor wakes for the earliest
/// pending deadline.
fn arm_deadline(inner: &ServiceInner, at: Instant, token: Arc<CancelToken>) {
    inner.deadlines.lock().push((at, token));
    inner.deadline_cond.notify_all();
}

fn deadline_loop(inner: &Arc<ServiceInner>) {
    let mut armed = inner.deadlines.lock();
    loop {
        let now = Instant::now();
        armed.retain(|(at, token)| {
            if *at <= now {
                token.cancel("deadline exceeded");
                false
            } else {
                !token.is_cancelled()
            }
        });
        if inner.shutting_down.load(Ordering::Acquire) && armed.is_empty() {
            return;
        }
        let next = armed.iter().map(|(at, _)| *at).min();
        let wait = match next {
            Some(at) => at.saturating_duration_since(now).min(Duration::from_millis(50)),
            None => Duration::from_millis(50),
        };
        armed = inner.deadline_cond.wait_timeout(armed, wait);
    }
}

/// Stable content hash (FNV-1a over words) for patterns and value
/// arrays.
fn hash_words(seed: u64, words: impl Iterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for w in words {
        h ^= w;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn pattern_hash(a: &CscMatrix<f64>) -> u64 {
    let p = a.pattern();
    let h = hash_words(p.nrows() as u64, p.colptr().iter().map(|&v| v as u64));
    hash_words(h, p.rowind().iter().map(|&v| v as u64))
}

fn values_hash(a: &CscMatrix<f64>) -> u64 {
    hash_words(0x5eed, a.values().iter().map(|v| v.to_bits()))
}

fn load_matrix(spec: &JobSpec) -> Result<CscMatrix<f64>, JobError> {
    let a = match &spec.matrix {
        MatrixSource::Path(path) => read_matrix_market_file::<f64>(path)
            .map_err(|e| JobError::BadRequest(format!("read {path}: {e}")))?,
        MatrixSource::Inline { n, triplets } => {
            let mut coo = TripletBuilder::new(*n, *n);
            for &(i, j, v) in triplets {
                coo.try_push(i, j, v)
                    .map_err(|e| JobError::BadRequest(format!("triplet ({i},{j}): {e}")))?;
            }
            coo.try_build()
                .map_err(|e| JobError::BadRequest(format!("inline matrix: {e}")))?
        }
    };
    if a.nrows() != a.ncols() {
        return Err(JobError::BadRequest(format!(
            "matrix is {}x{}, need square",
            a.nrows(),
            a.ncols()
        )));
    }
    Ok(a)
}

fn build_rhs(spec: &JobSpec, a: &CscMatrix<f64>) -> Result<Vec<f64>, JobError> {
    let n = a.nrows();
    match &spec.rhs {
        RhsSource::Ones => Ok(vec![1.0; n * spec.nrhs]),
        RhsSource::AOnes => {
            let mut col = vec![0.0; n];
            a.spmv(&vec![1.0; n], &mut col);
            let mut b = Vec::with_capacity(n * spec.nrhs);
            for _ in 0..spec.nrhs {
                b.extend_from_slice(&col);
            }
            Ok(b)
        }
        RhsSource::Inline(vals) => {
            if vals.len() != n * spec.nrhs {
                return Err(JobError::BadRequest(format!(
                    "rhs has {} values, need n*nrhs = {}",
                    vals.len(),
                    n * spec.nrhs
                )));
            }
            Ok(vals.clone())
        }
    }
}

fn map_solver_error(e: &SolverError, started: Instant) -> JobError {
    if e.is_cancelled() {
        JobError::Deadline {
            elapsed_ms: started.elapsed().as_millis() as u64,
        }
    } else if matches!(e, SolverError::BudgetExceeded { .. }) {
        JobError::BudgetExceeded(e.to_string())
    } else {
        JobError::Failed(e.to_string())
    }
}

fn run_job(inner: &Arc<ServiceInner>, job: &QueuedJob) -> Result<JobResponse, JobError> {
    let spec = &job.spec;
    let started = job.submitted;
    let token = CancelToken::new();
    let deadline_ms = spec.deadline_ms.or(inner.config.default_deadline_ms);
    if let Some(ms) = deadline_ms {
        let at = started + Duration::from_millis(ms);
        if at <= Instant::now() {
            // Spent its whole deadline queueing.
            return Err(JobError::Deadline {
                elapsed_ms: started.elapsed().as_millis() as u64,
            });
        }
        arm_deadline(inner, at, token.clone());
    }
    let deadline_check = || -> Result<(), JobError> {
        if token.is_cancelled() {
            Err(JobError::Deadline {
                elapsed_ms: started.elapsed().as_millis() as u64,
            })
        } else {
            Ok(())
        }
    };

    let a = load_matrix(spec)?;
    let b = build_rhs(spec, &a)?;
    deadline_check()?;

    let run = RunConfig {
        fault_plan: inner.config.fault_plan.clone(),
        retry: inner.config.retry.clone(),
        watchdog: inner.config.watchdog,
        budget: Some(inner.config.budget.clone()),
        cancel: Some(token.clone()),
        ..RunConfig::default()
    };
    let exec = ExecOptions {
        run,
        epsilon_override: None,
        spill_dir: None,
    };

    // --- analysis (pattern cache) -------------------------------------
    let phash = pattern_hash(&a);
    let mut pattern_hit = false;
    let analysis: Arc<Analysis> = if spec.reuse == ReusePolicy::None {
        Arc::new(Analysis::new(a.pattern(), spec.facto, &SolverOptions::default()))
    } else {
        // Facto kind changes the cost model but not the symbolic
        // structure the caches key on panels for; key it anyway so LDLᵀ
        // and Cholesky analyses never mix.
        let key = hash_words(phash, std::iter::once(spec.facto as u64));
        let hit = inner.pattern_cache.get_or_fill(&key, || {
            let an = Analysis::new(a.pattern(), spec.facto, &SolverOptions::default());
            let bytes = an.resident_bytes();
            Ok((an, bytes))
        })?;
        pattern_hit = hit.was_hit;
        hit.value
    };
    deadline_check()?;

    // --- numeric factorization (factor cache) -------------------------
    let vhash = values_hash(&a);
    let fkey = (phash, vhash, spec.facto as u8);
    let mut factor_hit = false;
    let mut generation = 0u64;
    let factors: Arc<SharedFactors<f64>> = if spec.reuse == ReusePolicy::Factors {
        let hit = inner.factor_cache.get_or_fill(&fkey, || {
            let sf = SharedFactors::factorize(
                analysis.clone(),
                &a,
                spec.engine,
                spec.threads,
                &exec,
            )
            .map_err(|e| map_solver_error(&e, started))?;
            let bytes = sf.resident_bytes();
            Ok((sf, bytes))
        })?;
        factor_hit = hit.was_hit;
        generation = hit.generation;
        hit.value
    } else {
        Arc::new(
            SharedFactors::factorize(analysis.clone(), &a, spec.engine, spec.threads, &exec)
                .map_err(|e| map_solver_error(&e, started))?,
        )
    };
    deadline_check()?;

    // --- solve ---------------------------------------------------------
    let n = a.nrows();
    let (x, iterations, berr) = if spec.refine > 0 {
        let mut x = Vec::with_capacity(n * spec.nrhs);
        let mut iters = 0usize;
        let mut worst_berr = 0.0f64;
        for r in 0..spec.nrhs {
            let col = &b[r * n..(r + 1) * n];
            let refined = factors
                .solve_refined_checked(col, spec.refine, spec.tol)
                .map_err(|e| map_solver_error(&e, started))?;
            iters = iters.max(refined.iterations);
            if let Some(&last) = refined.residuals.last() {
                worst_berr = worst_berr.max(last);
            }
            x.extend_from_slice(&refined.x);
        }
        (x, iters, Some(worst_berr))
    } else {
        (factors.solve_many(&b, spec.nrhs), 0, None)
    };
    deadline_check()?;

    let attempts = if factor_hit { 0 } else { factors.stats().attempts };
    Ok(JobResponse {
        x,
        n,
        nrhs: spec.nrhs,
        iterations,
        berr,
        pattern_hit,
        factor_hit,
        generation,
        attempts,
        batched: 1,
        elapsed_us: 0, // stamped by the worker loop
        tag: spec.tag.clone(),
    })
}
