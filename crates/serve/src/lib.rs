//! # dagfact-serve
//!
//! Solver-as-a-service: a persistent daemon that accepts solve jobs,
//! content-hash-caches ordering/symbolic analyses and numeric factors
//! across requests, and survives bad inputs, panicking jobs, deadlines
//! and memory pressure without dying or contaminating its caches.
//!
//! The paper's task-based runtime argument is strongest when the same
//! sparsity pattern is factorized again and again (FEM time-stepping,
//! circuit simulation); this crate turns the runtime substrate built in
//! `dagfact-rt`/`dagfact-core` — supervisor with watchdog/retry, memory
//! budget pressure ladder, cooperative cancellation — into exactly that
//! serving loop. See DESIGN.md §12 for the service model.
//!
//! ```no_run
//! use dagfact_serve::{JobSpec, ServeConfig, Service};
//!
//! let service = Service::start(ServeConfig::default());
//! let spec = JobSpec::parse("inline=2:0,0,4;1,1,4;1,0,1 refine=3").unwrap();
//! let resp = service.solve_blocking(spec).unwrap();
//! assert_eq!(resp.x.len(), 2);
//! ```

pub mod cache;
pub mod http;
pub mod job;
pub mod service;

pub use cache::{CacheHit, CacheStats, GenCache};
pub use http::serve_http;
pub use job::{JobError, JobResponse, JobSpec, MatrixSource, ReusePolicy, RhsSource};
pub use service::{JobTicket, ServeConfig, Service, ServiceStats};
