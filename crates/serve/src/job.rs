//! Job specifications and typed outcomes of the solve service.
//!
//! A job is written as whitespace-separated `key=value` directives — the
//! same mini-language style as [`dagfact_rt::FaultPlan`], chosen so specs
//! travel unescaped through command lines, job files (one job per line)
//! and HTTP bodies alike. [`JobSpec::parse`] and the `Display` impl
//! round-trip: `JobSpec::parse(&spec.to_string())` reproduces `spec`
//! exactly, which the fuzz suite leans on.

use dagfact_rt::RuntimeKind;
use dagfact_symbolic::FactoKind;
use std::fmt;

/// Where the matrix of a job comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixSource {
    /// A Matrix Market file on the server's filesystem.
    Path(String),
    /// Inline COO triplets: order `n`, then `i,j,v` entries (0-based).
    Inline {
        /// Matrix order.
        n: usize,
        /// `(row, col, value)` triplets.
        triplets: Vec<(usize, usize, f64)>,
    },
}

/// Where the right-hand side comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum RhsSource {
    /// All-ones vector (the default; handy for smoke tests).
    Ones,
    /// `A·1` — the RHS whose exact solution is the all-ones vector, so
    /// clients can check answers without knowing the matrix.
    AOnes,
    /// Inline values, `;`-separated, column-major for `nrhs > 1`.
    Inline(Vec<f64>),
}

/// What a job is allowed to reuse from previous requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReusePolicy {
    /// Fully cold: private analysis and factorization.
    None,
    /// Share the cached ordering + symbolic analysis for the sparsity
    /// pattern, but refactorize numerically.
    Pattern,
    /// Share cached numeric factors when the values match too (multi-RHS
    /// / refine-only jobs) — implies pattern reuse.
    Factors,
}

impl ReusePolicy {
    fn as_str(self) -> &'static str {
        match self {
            ReusePolicy::None => "none",
            ReusePolicy::Pattern => "pattern",
            ReusePolicy::Factors => "factors",
        }
    }
}

/// One solve job, as accepted by [`crate::Service::submit`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Matrix source (`matrix=PATH` or `inline=N:i,j,v;i,j,v;…`).
    pub matrix: MatrixSource,
    /// Right-hand side (`rhs=ones|aones|v;v;…` — default `aones`).
    pub rhs: RhsSource,
    /// Factorization kind (`facto=cholesky|ldlt|lu` — default cholesky).
    pub facto: FactoKind,
    /// Runtime engine (`engine=native|dataflow|ptg` — default native).
    pub engine: RuntimeKind,
    /// Worker threads inside the factorization (default 2).
    pub threads: usize,
    /// Iterative-refinement step cap (`refine=K`, 0 = plain solve).
    pub refine: usize,
    /// Refinement tolerance on the backward error.
    pub tol: f64,
    /// Number of right-hand sides (column-major batch).
    pub nrhs: usize,
    /// Per-job deadline in milliseconds; past it the job is cancelled
    /// and answers `JobError::Deadline`.
    pub deadline_ms: Option<u64>,
    /// Cache policy.
    pub reuse: ReusePolicy,
    /// Free-form client tag, echoed in the response.
    pub tag: Option<String>,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            matrix: MatrixSource::Inline { n: 0, triplets: Vec::new() },
            rhs: RhsSource::AOnes,
            facto: FactoKind::Cholesky,
            engine: RuntimeKind::Native,
            threads: 2,
            refine: 0,
            tol: 1e-10,
            nrhs: 1,
            deadline_ms: None,
            reuse: ReusePolicy::Factors,
            tag: None,
        }
    }
}

impl JobSpec {
    /// Parse a job spec from its directive form. Unknown keys, malformed
    /// numbers and missing matrices are rejected (the parser is the
    /// service's first line of defense — it must never panic, which the
    /// mutation fuzzer in `tests/jobspec_fuzz.rs` enforces).
    pub fn parse(s: &str) -> Result<JobSpec, String> {
        let mut spec = JobSpec::default();
        let mut have_matrix = false;
        for tok in s.split_whitespace() {
            let (key, val) = tok
                .split_once('=')
                .ok_or_else(|| format!("directive `{tok}` is not key=value"))?;
            match key {
                "matrix" => {
                    if val.is_empty() {
                        return Err("matrix= needs a path".into());
                    }
                    spec.matrix = MatrixSource::Path(val.to_string());
                    have_matrix = true;
                }
                "inline" => {
                    spec.matrix = parse_inline(val)?;
                    have_matrix = true;
                }
                "rhs" => {
                    spec.rhs = match val {
                        "ones" => RhsSource::Ones,
                        "aones" => RhsSource::AOnes,
                        _ => RhsSource::Inline(parse_floats(val)?),
                    }
                }
                "facto" => {
                    spec.facto = match val {
                        "cholesky" => FactoKind::Cholesky,
                        "ldlt" => FactoKind::Ldlt,
                        "lu" => FactoKind::Lu,
                        _ => return Err(format!("unknown facto `{val}`")),
                    }
                }
                "engine" => {
                    spec.engine = match val {
                        "native" => RuntimeKind::Native,
                        "dataflow" => RuntimeKind::Dataflow,
                        "ptg" => RuntimeKind::Ptg,
                        _ => return Err(format!("unknown engine `{val}`")),
                    }
                }
                "threads" => spec.threads = parse_num(key, val)?,
                "refine" => spec.refine = parse_num(key, val)?,
                "nrhs" => spec.nrhs = parse_num(key, val)?,
                "tol" => {
                    spec.tol = val
                        .parse::<f64>()
                        .ok()
                        .filter(|t| t.is_finite() && *t > 0.0)
                        .ok_or_else(|| format!("bad tol `{val}`"))?
                }
                "deadline_ms" => spec.deadline_ms = Some(parse_num(key, val)? as u64),
                "reuse" => {
                    spec.reuse = match val {
                        "none" => ReusePolicy::None,
                        "pattern" => ReusePolicy::Pattern,
                        "factors" => ReusePolicy::Factors,
                        _ => return Err(format!("unknown reuse policy `{val}`")),
                    }
                }
                "tag" => spec.tag = Some(val.to_string()),
                _ => return Err(format!("unknown directive `{key}`")),
            }
        }
        if !have_matrix {
            return Err("job needs matrix= or inline=".into());
        }
        if spec.threads == 0 || spec.threads > 256 {
            return Err(format!("threads={} out of range 1..=256", spec.threads));
        }
        if spec.nrhs == 0 {
            return Err("nrhs=0".into());
        }
        Ok(spec)
    }
}

fn parse_num(key: &str, val: &str) -> Result<usize, String> {
    val.parse::<usize>().map_err(|_| format!("bad {key} `{val}`"))
}

fn parse_floats(s: &str) -> Result<Vec<f64>, String> {
    s.split(';')
        .filter(|t| !t.is_empty())
        .map(|t| {
            t.parse::<f64>()
                .ok()
                .filter(|v| v.is_finite())
                .ok_or_else(|| format!("bad rhs value `{t}`"))
        })
        .collect()
}

/// `inline=N:i,j,v;i,j,v;…`
fn parse_inline(val: &str) -> Result<MatrixSource, String> {
    let (n_str, rest) = val
        .split_once(':')
        .ok_or_else(|| "inline= needs N:triplets".to_string())?;
    let n: usize = n_str.parse().map_err(|_| format!("bad inline order `{n_str}`"))?;
    if n == 0 || n > 1 << 20 {
        return Err(format!("inline order {n} out of range"));
    }
    let mut triplets = Vec::new();
    for t in rest.split(';').filter(|t| !t.is_empty()) {
        let mut parts = t.split(',');
        let (i, j, v) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(i), Some(j), Some(v), None) => (i, j, v),
            _ => return Err(format!("triplet `{t}` is not i,j,v")),
        };
        let i: usize = i.parse().map_err(|_| format!("bad row in `{t}`"))?;
        let j: usize = j.parse().map_err(|_| format!("bad col in `{t}`"))?;
        let v: f64 = v
            .parse()
            .ok()
            .filter(|v: &f64| v.is_finite())
            .ok_or_else(|| format!("bad value in `{t}`"))?;
        if i >= n || j >= n {
            return Err(format!("triplet `{t}` outside {n}x{n}"));
        }
        triplets.push((i, j, v));
    }
    if triplets.is_empty() {
        return Err("inline matrix has no entries".into());
    }
    Ok(MatrixSource::Inline { n, triplets })
}

impl fmt::Display for JobSpec {
    /// Canonical directive form; `JobSpec::parse` round-trips it.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.matrix {
            MatrixSource::Path(p) => write!(f, "matrix={p}")?,
            MatrixSource::Inline { n, triplets } => {
                write!(f, "inline={n}:")?;
                for (k, (i, j, v)) in triplets.iter().enumerate() {
                    if k > 0 {
                        write!(f, ";")?;
                    }
                    write!(f, "{i},{j},{v}")?;
                }
            }
        }
        match &self.rhs {
            RhsSource::AOnes => {}
            RhsSource::Ones => write!(f, " rhs=ones")?,
            RhsSource::Inline(vals) => {
                write!(f, " rhs=")?;
                for (k, v) in vals.iter().enumerate() {
                    if k > 0 {
                        write!(f, ";")?;
                    }
                    write!(f, "{v}")?;
                }
            }
        }
        let d = JobSpec::default();
        if self.facto != d.facto {
            let name = match self.facto {
                FactoKind::Cholesky => "cholesky",
                FactoKind::Ldlt => "ldlt",
                FactoKind::Lu => "lu",
            };
            write!(f, " facto={name}")?;
        }
        if self.engine != d.engine {
            let name = match self.engine {
                RuntimeKind::Native => "native",
                RuntimeKind::Dataflow => "dataflow",
                RuntimeKind::Ptg => "ptg",
            };
            write!(f, " engine={name}")?;
        }
        if self.threads != d.threads {
            write!(f, " threads={}", self.threads)?;
        }
        if self.refine != d.refine {
            write!(f, " refine={}", self.refine)?;
        }
        if self.tol != d.tol {
            write!(f, " tol={}", self.tol)?;
        }
        if self.nrhs != d.nrhs {
            write!(f, " nrhs={}", self.nrhs)?;
        }
        if let Some(ms) = self.deadline_ms {
            write!(f, " deadline_ms={ms}")?;
        }
        if self.reuse != d.reuse {
            write!(f, " reuse={}", self.reuse.as_str())?;
        }
        if let Some(tag) = &self.tag {
            write!(f, " tag={tag}")?;
        }
        Ok(())
    }
}

/// Typed job failures — the contract of the robustness core: a client
/// always gets one of these or a complete answer, never a partial one.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The spec, matrix or RHS is malformed; resubmitting unchanged will
    /// fail again.
    BadRequest(String),
    /// The job exceeded its deadline and was cancelled at a task
    /// boundary.
    Deadline { elapsed_ms: u64 },
    /// Admission control refused the job (queue full or memory pressure
    /// critical even after shedding caches). Transient: retry later.
    Overloaded(String),
    /// The factorization cannot fit the memory budget even with
    /// degradation. Resubmitting needs a smaller problem or bigger cap.
    BudgetExceeded(String),
    /// The job's worker caught a panic; only this job's cache fill (if
    /// any) was poisoned, the daemon and other entries are unaffected.
    Panicked(String),
    /// The solver failed with a typed error (numeric breakdown past
    /// recovery, refinement stall, spill I/O…).
    Failed(String),
    /// The service is draining; no new jobs are accepted.
    ShuttingDown,
}

impl JobError {
    /// Stable lowercase kind tag (JSON `error.kind`, stats keys).
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::BadRequest(_) => "bad_request",
            JobError::Deadline { .. } => "deadline",
            JobError::Overloaded(_) => "overloaded",
            JobError::BudgetExceeded(_) => "budget_exceeded",
            JobError::Panicked(_) => "panicked",
            JobError::Failed(_) => "failed",
            JobError::ShuttingDown => "shutting_down",
        }
    }

    /// HTTP status the front end maps this error to.
    pub fn http_status(&self) -> u16 {
        match self {
            JobError::BadRequest(_) => 400,
            JobError::Deadline { .. } => 408,
            JobError::Overloaded(_) => 429,
            JobError::BudgetExceeded(_) => 413,
            JobError::Panicked(_) | JobError::Failed(_) => 500,
            JobError::ShuttingDown => 503,
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::BadRequest(m) => write!(f, "bad request: {m}"),
            JobError::Deadline { elapsed_ms } => {
                write!(f, "deadline exceeded after {elapsed_ms} ms")
            }
            JobError::Overloaded(m) => write!(f, "overloaded: {m}"),
            JobError::BudgetExceeded(m) => write!(f, "budget exceeded: {m}"),
            JobError::Panicked(m) => write!(f, "job panicked: {m}"),
            JobError::Failed(m) => write!(f, "solve failed: {m}"),
            JobError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for JobError {}

/// A completed solve, with enough provenance to audit cache behavior.
#[derive(Debug, Clone)]
pub struct JobResponse {
    /// Solution vector(s), column-major `n × nrhs`.
    pub x: Vec<f64>,
    /// Matrix order.
    pub n: usize,
    /// Number of right-hand sides solved.
    pub nrhs: usize,
    /// Refinement iterations actually performed (0 for plain solves).
    pub iterations: usize,
    /// Final backward error when refinement ran.
    pub berr: Option<f64>,
    /// Whether the ordering+symbolic analysis came from the pattern
    /// cache.
    pub pattern_hit: bool,
    /// Whether the numeric factors came from the factor cache.
    pub factor_hit: bool,
    /// Generation of the factor-cache entry that produced the answer
    /// (0 when factors were not cached). Soak tests assert it matches a
    /// never-poisoned generation.
    pub generation: u64,
    /// Factorization attempts by the adaptive recovery loop (0 on a pure
    /// factor-cache hit).
    pub attempts: u32,
    /// Size of the coalesced blocked solve this answer rode in: queued
    /// same-factor jobs are batched into one `solve_many` call, so a
    /// value ≥ 2 means this job shared its triangular sweeps with that
    /// many peers. 1 = solved alone.
    pub batched: usize,
    /// Wall-clock job latency in microseconds.
    pub elapsed_us: u64,
    /// Client tag, echoed back.
    pub tag: Option<String>,
}

impl JobResponse {
    /// Serialize as a compact JSON object. `with_x` controls whether the
    /// (possibly large) solution vector is included.
    pub fn to_json(&self, with_x: bool) -> String {
        let mut s = String::from("{\"status\":\"ok\"");
        push_kv(&mut s, "n", &self.n.to_string());
        push_kv(&mut s, "nrhs", &self.nrhs.to_string());
        push_kv(&mut s, "iterations", &self.iterations.to_string());
        match self.berr {
            Some(b) => push_kv(&mut s, "berr", &format_f64(b)),
            None => push_kv(&mut s, "berr", "null"),
        }
        push_kv(&mut s, "pattern_hit", if self.pattern_hit { "true" } else { "false" });
        push_kv(&mut s, "factor_hit", if self.factor_hit { "true" } else { "false" });
        push_kv(&mut s, "generation", &self.generation.to_string());
        push_kv(&mut s, "attempts", &self.attempts.to_string());
        push_kv(&mut s, "batched", &self.batched.to_string());
        push_kv(&mut s, "elapsed_us", &self.elapsed_us.to_string());
        if let Some(tag) = &self.tag {
            s.push_str(",\"tag\":");
            push_json_string(&mut s, tag);
        }
        if with_x {
            s.push_str(",\"x\":[");
            for (i, v) in self.x.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format_f64(*v));
            }
            s.push(']');
        }
        s.push('}');
        s
    }
}

impl JobError {
    /// Serialize as a JSON error object.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"status\":\"error\",\"kind\":");
        push_json_string(&mut s, self.kind());
        s.push_str(",\"message\":");
        push_json_string(&mut s, &self.to_string());
        s.push('}');
        s
    }
}

fn push_kv(s: &mut String, key: &str, raw: &str) {
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":");
    s.push_str(raw);
}

fn format_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub(crate) fn push_json_string(s: &mut String, raw: &str) {
    s.push('"');
    for c in raw.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                s.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_spec_parses_with_defaults() {
        let spec = JobSpec::parse("matrix=/tmp/a.mtx").expect("parse");
        assert_eq!(spec.matrix, MatrixSource::Path("/tmp/a.mtx".into()));
        assert_eq!(spec.rhs, RhsSource::AOnes);
        assert_eq!(spec.reuse, ReusePolicy::Factors);
        assert_eq!(spec.threads, 2);
    }

    #[test]
    fn inline_matrix_and_rhs_round_trip() {
        let text = "inline=2:0,0,4;1,1,4;1,0,1 rhs=1;2 facto=lu engine=ptg \
                    threads=3 refine=5 tol=0.000001 nrhs=1 deadline_ms=250 \
                    reuse=pattern tag=job-7";
        let spec = JobSpec::parse(text).expect("parse");
        let printed = spec.to_string();
        let again = JobSpec::parse(&printed).expect("reparse");
        assert_eq!(spec, again, "display must round-trip: `{printed}`");
    }

    #[test]
    fn default_fields_are_omitted_from_display() {
        let spec = JobSpec::parse("matrix=a.mtx").expect("parse");
        assert_eq!(spec.to_string(), "matrix=a.mtx");
    }

    #[test]
    fn bad_specs_are_rejected_not_panicked() {
        for bad in [
            "",
            "matrix=",
            "inline=0:",
            "inline=2:9,9,1",
            "inline=2:0,0,nan",
            "matrix=a.mtx threads=0",
            "matrix=a.mtx threads=9999",
            "matrix=a.mtx nrhs=0",
            "matrix=a.mtx tol=-1",
            "matrix=a.mtx tol=abc",
            "matrix=a.mtx facto=qr",
            "matrix=a.mtx engine=cuda",
            "matrix=a.mtx reuse=always",
            "matrix=a.mtx bogus=1",
            "matrix=a.mtx deadline_ms=abc",
            "inline=2",
            "inline=2:0,0",
            "noequals",
        ] {
            assert!(JobSpec::parse(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn job_error_json_escapes_messages() {
        let e = JobError::BadRequest("quote \" and \\ and\nnewline".into());
        let j = e.to_json();
        assert!(j.contains("\\\""), "{j}");
        assert!(j.contains("\\\\"), "{j}");
        assert!(j.contains("\\n"), "{j}");
        assert_eq!(e.http_status(), 400);
    }
}
