//! Generation-tracked, budget-charged cache for analyses and factors.
//!
//! The integrity contract of the service's caches (DESIGN.md §12): every
//! entry is in one of three states — **Filling** (one job is computing
//! it, others wait), **Ready** (safe to serve) or **Poisoned** (the
//! filling job panicked or was cancelled mid-fill). A poisoned entry is
//! *never* served; the next job that wants the key refills it under a
//! **bumped generation**, so a response's generation number proves which
//! fill produced its answer. Resident bytes are charged to the service's
//! [`MemoryBudget`] ledger at [`site::CACHE`]; when a charge is refused,
//! least-recently-used Ready entries are evicted first, and the admission
//! controller may shed the whole cache under pressure.

use crate::job::JobError;
use dagfact_rt::budget::{site, MemoryBudget};
use dagfact_rt::sync::{Condvar, Mutex};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache observability counters (monotone; snapshot via
/// [`GenCache::stats`]).
#[derive(Debug, Clone, Default)]
pub struct CacheStats {
    /// Lookups answered from a Ready entry.
    pub hits: u64,
    /// Lookups that had to fill.
    pub misses: u64,
    /// Lookups that waited for a concurrent fill and got its result.
    pub shared_fills: u64,
    /// Entries evicted to make room (LRU) or shed under pressure.
    pub evictions: u64,
    /// Fills that poisoned their entry (panic or error mid-fill).
    pub poisonings: u64,
    /// Entries currently resident.
    pub resident: usize,
    /// Bytes currently charged to the ledger.
    pub resident_bytes: usize,
}

enum Slot<V> {
    /// A job is computing the value; waiters sleep on the condvar.
    Filling,
    /// Safe to serve.
    Ready {
        value: Arc<V>,
        bytes: usize,
        gen: u64,
        last_used: u64,
    },
    /// The fill died; never served, refilled under `gen + 1`.
    Poisoned { gen: u64 },
}

struct Inner<K, V> {
    map: HashMap<K, Slot<V>>,
    stats: CacheStats,
}

/// See the module docs. `K` is a content hash (pattern hash, or
/// pattern+values hash), `V` the cached artifact (`Analysis`,
/// `SharedFactors`).
pub struct GenCache<K, V> {
    inner: Mutex<Inner<K, V>>,
    cond: Condvar,
    /// LRU clock: bumped on every touch.
    clock: AtomicU64,
    budget: Arc<MemoryBudget>,
}

/// A successful lookup: the value plus the generation that produced it.
#[derive(Debug)]
pub struct CacheHit<V> {
    /// The cached artifact.
    pub value: Arc<V>,
    /// Generation of the fill that produced it (≥ 1; poisoned fills
    /// never yield a hit, so a response can cite this as integrity
    /// proof).
    pub generation: u64,
    /// `false` when this call performed the fill itself.
    pub was_hit: bool,
}

impl<K: std::hash::Hash + Eq + Clone, V> GenCache<K, V> {
    /// A cache charging to `budget` (use
    /// [`MemoryBudget::unbounded`] for accounting without caps).
    pub fn new(budget: Arc<MemoryBudget>) -> Self {
        GenCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                stats: CacheStats::default(),
            }),
            cond: Condvar::new(),
            clock: AtomicU64::new(1),
            budget,
        }
    }

    fn tick(&self) -> u64 {
        // ORDERING: pure LRU clock; only monotonicity matters.
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Look up `key`, filling it with `fill` on miss. Concurrent
    /// requests for the same key deduplicate: one computes, the rest
    /// wait. A `fill` that panics (or errors) poisons the entry for
    /// itself only — waiters get a typed error, the *next* request
    /// refills under a bumped generation, and no later request can ever
    /// observe the poisoned artifact.
    pub fn get_or_fill<F>(&self, key: &K, fill: F) -> Result<CacheHit<V>, JobError>
    where
        F: FnOnce() -> Result<(V, usize), JobError>,
    {
        enum Action<V> {
            Hit(Arc<V>, u64),
            Wait,
            Fill(u64),
        }
        let gen = {
            let mut inner = self.inner.lock();
            loop {
                let action = match inner.map.get_mut(key) {
                    Some(Slot::Ready {
                        value,
                        gen,
                        last_used,
                        ..
                    }) => {
                        *last_used = self.tick();
                        Action::Hit(value.clone(), *gen)
                    }
                    Some(Slot::Filling) => Action::Wait,
                    // Take over a poisoned slot's refill under a fresh
                    // generation.
                    Some(Slot::Poisoned { gen }) => Action::Fill(*gen + 1),
                    None => Action::Fill(1),
                };
                match action {
                    Action::Hit(value, generation) => {
                        inner.stats.hits += 1;
                        return Ok(CacheHit {
                            value,
                            generation,
                            was_hit: true,
                        });
                    }
                    Action::Wait => {
                        // The fill may succeed (Ready), die (Poisoned —
                        // taken over next iteration) or be evicted (None).
                        inner.stats.shared_fills += 1;
                        inner = self.cond.wait(inner);
                    }
                    Action::Fill(next) => {
                        inner.map.insert(key.clone(), Slot::Filling);
                        inner.stats.misses += 1;
                        break next;
                    }
                }
            }
        };
        // Fill outside the lock; a panic must poison only this entry.
        let outcome = catch_unwind(AssertUnwindSafe(fill));
        let mut inner = self.inner.lock();
        match outcome {
            Ok(Ok((value, bytes))) => {
                let bytes = self.make_room(&mut inner, bytes, key);
                match bytes {
                    Some(bytes) => {
                        let value = Arc::new(value);
                        inner.map.insert(
                            key.clone(),
                            Slot::Ready {
                                value: value.clone(),
                                bytes,
                                gen,
                                last_used: self.tick(),
                            },
                        );
                        inner.stats.resident = inner.map.len();
                        inner.stats.resident_bytes += bytes;
                        self.cond.notify_all();
                        Ok(CacheHit {
                            value,
                            generation: gen,
                            was_hit: false,
                        })
                    }
                    None => {
                        // Could not charge even after evicting everything:
                        // hand the value to this caller uncached.
                        inner.map.remove(key);
                        inner.stats.resident = inner.map.len();
                        self.cond.notify_all();
                        Ok(CacheHit {
                            value: Arc::new(value),
                            generation: gen,
                            was_hit: false,
                        })
                    }
                }
            }
            Ok(Err(e)) => {
                inner.map.insert(key.clone(), Slot::Poisoned { gen });
                inner.stats.poisonings += 1;
                inner.stats.resident = inner.map.len();
                self.cond.notify_all();
                Err(e)
            }
            Err(panic) => {
                inner.map.insert(key.clone(), Slot::Poisoned { gen });
                inner.stats.poisonings += 1;
                inner.stats.resident = inner.map.len();
                self.cond.notify_all();
                // Waiters are already unblocked; format the panic payload
                // (which allocates) outside the critical section.
                drop(inner);
                Err(JobError::Panicked(panic_message(&panic)))
            }
        }
    }

    /// Charge `bytes` for `key`, evicting LRU Ready entries until the
    /// ledger accepts. `None` when the charge cannot fit even with the
    /// cache empty (the value is then returned uncached).
    fn make_room(&self, inner: &mut Inner<K, V>, bytes: usize, key: &K) -> Option<usize> {
        loop {
            match self.budget.try_charge(bytes, site::CACHE) {
                Ok(()) => return Some(bytes),
                Err(_) => {
                    let victim = inner
                        .map
                        .iter()
                        .filter_map(|(k, slot)| match slot {
                            Slot::Ready { last_used, .. } if k != key => {
                                Some((last_used, k))
                            }
                            _ => None,
                        })
                        .min_by_key(|(lu, _)| **lu)
                        .map(|(_, k)| k.clone());
                    match victim {
                        Some(k) => {
                            if let Some(Slot::Ready { bytes: b, .. }) = inner.map.remove(&k) {
                                self.budget.release(b);
                                inner.stats.resident_bytes -= b;
                                inner.stats.evictions += 1;
                            }
                        }
                        None => return None,
                    }
                }
            }
        }
    }

    /// Shed every Ready entry (admission controller under pressure).
    /// In-flight fills and poison markers stay; returns bytes released.
    pub fn shed(&self) -> usize {
        let mut inner = self.inner.lock();
        let keys: Vec<K> = inner
            .map
            .iter()
            .filter_map(|(k, slot)| match slot {
                Slot::Ready { .. } => Some(k.clone()),
                _ => None,
            })
            .collect();
        let mut freed = 0usize;
        for k in keys {
            if let Some(Slot::Ready { bytes, .. }) = inner.map.remove(&k) {
                self.budget.release(bytes);
                inner.stats.resident_bytes -= bytes;
                inner.stats.evictions += 1;
                freed += bytes;
            }
        }
        inner.stats.resident = inner.map.len();
        freed
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats.clone()
    }
}

/// Best-effort panic payload extraction (mirrors the engine's).
pub(crate) fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> GenCache<u64, String> {
        GenCache::new(MemoryBudget::unbounded())
    }

    #[test]
    fn fill_then_hit_with_same_generation() {
        let c = cache();
        let a = c.get_or_fill(&7, || Ok(("seven".to_string(), 100))).unwrap();
        assert!(!a.was_hit);
        assert_eq!(a.generation, 1);
        let b = c.get_or_fill(&7, || panic!("must not refill")).unwrap();
        assert!(b.was_hit);
        assert_eq!(b.generation, 1);
        assert_eq!(*b.value, "seven");
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn panicked_fill_poisons_only_its_generation() {
        let c = cache();
        let err = c
            .get_or_fill(&1, || -> Result<(String, usize), JobError> {
                panic!("boom in fill")
            })
            .unwrap_err();
        assert!(matches!(err, JobError::Panicked(_)), "{err:?}");
        // The refill must run (not serve the poisoned slot) and must
        // carry a bumped generation.
        let again = c
            .get_or_fill(&1, || Ok(("recovered".to_string(), 10)))
            .unwrap();
        assert!(!again.was_hit);
        assert_eq!(again.generation, 2, "refill must bump the generation");
        assert_eq!(*again.value, "recovered");
        assert_eq!(c.stats().poisonings, 1);
    }

    #[test]
    fn lru_eviction_respects_budget_cap() {
        let budget = MemoryBudget::with_cap(250);
        let c: GenCache<u64, String> = GenCache::new(budget.clone());
        c.get_or_fill(&1, || Ok(("a".into(), 100))).unwrap();
        c.get_or_fill(&2, || Ok(("b".into(), 100))).unwrap();
        // Touch 1 so 2 is the LRU victim.
        c.get_or_fill(&1, || unreachable!()).unwrap();
        c.get_or_fill(&3, || Ok(("c".into(), 100))).unwrap();
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        // 2 was evicted; 1 survived.
        assert!(c.get_or_fill(&1, || unreachable!()).unwrap().was_hit);
        let refilled = c.get_or_fill(&2, || Ok(("b2".into(), 100))).unwrap();
        assert!(!refilled.was_hit, "evicted entry must refill");
        assert!(budget.used() <= 250);
    }

    #[test]
    fn oversized_value_is_served_uncached() {
        let budget = MemoryBudget::with_cap(50);
        let c: GenCache<u64, String> = GenCache::new(budget.clone());
        let hit = c.get_or_fill(&1, || Ok(("big".into(), 1000))).unwrap();
        assert_eq!(*hit.value, "big");
        assert_eq!(budget.used(), 0, "uncachable value must not leak charge");
        // Next lookup refills (nothing was cached).
        let again = c.get_or_fill(&1, || Ok(("big2".into(), 1000))).unwrap();
        assert!(!again.was_hit);
    }

    #[test]
    fn concurrent_fills_deduplicate() {
        let c = Arc::new(cache());
        let fills = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = c.clone();
            let fills = fills.clone();
            handles.push(std::thread::spawn(move || {
                let hit = c
                    .get_or_fill(&42, || {
                        fills.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        Ok(("shared".to_string(), 10))
                    })
                    .unwrap();
                assert_eq!(*hit.value, "shared");
                assert_eq!(hit.generation, 1);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(fills.load(Ordering::SeqCst), 1, "exactly one fill");
    }

    #[test]
    fn shed_empties_ready_entries_and_releases_budget() {
        let budget = MemoryBudget::with_cap(1000);
        let c: GenCache<u64, String> = GenCache::new(budget.clone());
        c.get_or_fill(&1, || Ok(("a".into(), 100))).unwrap();
        c.get_or_fill(&2, || Ok(("b".into(), 200))).unwrap();
        assert_eq!(c.shed(), 300);
        assert_eq!(budget.used(), 0);
        assert!(!c.get_or_fill(&1, || Ok(("a2".into(), 100))).unwrap().was_hit);
    }
}
