//! Minimal HTTP/1.1 front end over [`crate::Service`] — std `TcpListener`
//! only, no external dependencies.
//!
//! Routes:
//!
//! * `GET /health` → `200 {"status":"ok"}` (liveness; answers even under
//!   full queues — admission control only gates `/solve`);
//! * `GET /stats`  → `200` with the [`crate::ServiceStats`] JSON;
//! * `POST /solve` → body is one [`crate::JobSpec`] directive line;
//!   `200` with the [`crate::JobResponse`] JSON, or the typed error
//!   status ([`crate::JobError::http_status`]).
//!
//! The parser is deliberately defensive: header section capped at 8 KiB,
//! body at 1 MiB, unknown methods/paths answer 404/405, and a
//! malformed request never takes the acceptor down.

use crate::job::JobSpec;
use crate::service::Service;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD: usize = 8 * 1024;
/// Upper bound on a `/solve` body.
const MAX_BODY: usize = 1024 * 1024;

/// Serve requests on `listener` until `max_requests` have been handled
/// (`None`: forever). Connections are handled serially — concurrency
/// lives in the service's worker pool, and the solve path blocks only
/// the requesting connection.
pub fn serve_http(
    listener: TcpListener,
    service: &Service,
    max_requests: Option<usize>,
) -> std::io::Result<usize> {
    let mut handled = 0usize;
    for stream in listener.incoming() {
        match stream {
            Ok(s) => {
                // A slow or stuck client must not wedge the acceptor.
                let _ = s.set_read_timeout(Some(Duration::from_secs(10)));
                let _ = s.set_write_timeout(Some(Duration::from_secs(10)));
                if handle_connection(s, service).is_ok() {
                    handled += 1;
                }
            }
            Err(_) => continue,
        }
        if let Some(cap) = max_requests {
            if handled >= cap {
                break;
            }
        }
    }
    Ok(handled)
}

fn handle_connection(stream: TcpStream, service: &Service) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    {
        let mut limited = (&mut reader).take(MAX_HEAD as u64);
        if limited.read_line(&mut request_line)? == 0 {
            return Ok(());
        }
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => {
            let mut s = reader.into_inner();
            return respond(&mut s, 400, "{\"status\":\"error\",\"kind\":\"bad_request\",\"message\":\"malformed request line\"}");
        }
    };
    // Headers: we only need Content-Length; cap the section size.
    let mut content_length = 0usize;
    let mut head_bytes = request_line.len();
    loop {
        let mut line = String::new();
        let n = {
            let mut limited = (&mut reader).take(MAX_HEAD as u64);
            limited.read_line(&mut line)?
        };
        head_bytes += n;
        if n == 0 || line == "\r\n" || line == "\n" {
            break;
        }
        if head_bytes > MAX_HEAD {
            let mut s = reader.into_inner();
            return respond(&mut s, 431, "{\"status\":\"error\",\"kind\":\"bad_request\",\"message\":\"headers too large\"}");
        }
        if let Some((key, val)) = line.split_once(':') {
            if key.eq_ignore_ascii_case("content-length") {
                content_length = val.trim().parse::<usize>().unwrap_or(usize::MAX);
            }
        }
    }
    match (method.as_str(), path.as_str()) {
        ("GET", "/health") => {
            let mut s = reader.into_inner();
            respond(&mut s, 200, "{\"status\":\"ok\"}")
        }
        ("GET", "/stats") => {
            let body = service.stats().to_json();
            let mut s = reader.into_inner();
            respond(&mut s, 200, &body)
        }
        ("POST", "/solve") => {
            if content_length > MAX_BODY {
                let mut s = reader.into_inner();
                return respond(&mut s, 413, "{\"status\":\"error\",\"kind\":\"bad_request\",\"message\":\"body too large\"}");
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body)?;
            let mut s = reader.into_inner();
            let text = match String::from_utf8(body) {
                Ok(t) => t,
                Err(_) => {
                    return respond(&mut s, 400, "{\"status\":\"error\",\"kind\":\"bad_request\",\"message\":\"body is not UTF-8\"}");
                }
            };
            match JobSpec::parse(text.trim()) {
                Err(e) => {
                    let msg = crate::job::JobError::BadRequest(e).to_json();
                    respond(&mut s, 400, &msg)
                }
                Ok(spec) => match service.solve_blocking(spec) {
                    Ok(resp) => respond(&mut s, 200, &resp.to_json(true)),
                    Err(e) => respond(&mut s, e.http_status(), &e.to_json()),
                },
            }
        }
        ("POST" | "GET", _) => {
            let mut s = reader.into_inner();
            respond(&mut s, 404, "{\"status\":\"error\",\"kind\":\"bad_request\",\"message\":\"no such route\"}")
        }
        _ => {
            let mut s = reader.into_inner();
            respond(&mut s, 405, "{\"status\":\"error\",\"kind\":\"bad_request\",\"message\":\"method not allowed\"}")
        }
    }
}

fn respond(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{ServeConfig, Service};
    use std::net::TcpListener;

    fn roundtrip(addr: &str, request: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(request.as_bytes()).expect("write");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn health_stats_and_solve_over_tcp() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let service = Service::start(ServeConfig::default());
        let handle = std::thread::spawn(move || {
            serve_http(listener, &service, Some(4)).expect("serve");
            service.shutdown()
        });
        let health = roundtrip(&addr, "GET /health HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        assert!(health.contains("\"status\":\"ok\""), "{health}");
        let body = "inline=2:0,0,4;1,1,4;1,0,1 refine=2";
        let req = format!(
            "POST /solve HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let solve = roundtrip(&addr, &req);
        assert!(solve.starts_with("HTTP/1.1 200"), "{solve}");
        assert!(solve.contains("\"factor_hit\":false"), "{solve}");
        let bad = roundtrip(
            &addr,
            "POST /solve HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\nnonsens",
        );
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        let missing = roundtrip(&addr, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let stats = handle.join().expect("join");
        assert_eq!(stats.completed, 1);
    }
}
