//! Mutation-fuzz and property tests for the job-spec mini-language: on
//! *any* input line [`JobSpec::parse`] must return `Ok` or a typed
//! error string — never panic — and every successful parse must
//! round-trip through [`core::fmt::Display`] to an identical spec.
//! Cases are driven by a deterministic SplitMix64 sweep (the repo's
//! no-external-framework property idiom), so failures reproduce exactly
//! from the printed case number.

use dagfact_serve::JobSpec;

/// Deterministic parameter source (SplitMix64).
struct Params {
    state: u64,
}

impl Params {
    fn new(case: u64) -> Params {
        Params {
            state: 0x10B5_9EC0 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `lo..hi`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo).max(1) as u64) as usize
    }
}

// ---------------------------------------------------------------------
// Seed corpus: valid exemplars exercising every directive
// ---------------------------------------------------------------------

const CORPUS: &[&str] = &[
    "matrix=/data/audi.mtx",
    "matrix=a.mtx facto=lu engine=dataflow threads=8 refine=3 tol=1e-12",
    "inline=2:0,0,4;1,0,1;1,1,4 refine=2",
    "inline=3:0,0,2;1,1,2;2,2,2;1,0,-1;2,1,-1 facto=ldlt rhs=aones",
    "matrix=m.mtx rhs=1,2,3,4 nrhs=1 reuse=pattern tag=fuzz",
    "matrix=m.mtx deadline_ms=250 reuse=none engine=ptg",
    "inline=1:0,0,1 facto=cholesky threads=1 nrhs=4 tag=tiny",
];

/// Tokens a fuzzer loves: overflow bait, signs, NaN, empties, and
/// directive fragments that tempt the splitter.
const EVIL_TOKENS: &[&str] = &[
    "18446744073709551615",
    "99999999999999999999999999",
    "-1",
    "0",
    "1e308",
    "NaN",
    "inf",
    "",
    "=",
    "inline=",
    "inline=0:",
    "inline=1048577:0,0,1",
    "matrix=",
    "rhs=",
    "tol=0",
    "tol=-1",
    "threads=0",
    "threads=9999",
    "nrhs=0",
    "reuse=maybe",
    "facto=qr",
    "deadline_ms=",
    "tag==x",
    "0,0,1;1,1",
];

/// Apply one random mutation to the line.
fn mutate(p: &mut Params, text: &mut Vec<u8>) {
    if text.is_empty() {
        text.extend_from_slice(b"matrix=x");
        return;
    }
    match p.next_u64() % 6 {
        // Flip a random byte to a random printable (or separator).
        0 => {
            let pos = p.range(0, text.len());
            text[pos] = match p.next_u64() % 5 {
                0 => b' ',
                1 => b'=',
                2 => b',',
                3 => b'0' + (p.next_u64() % 10) as u8,
                _ => 0x21 + (p.next_u64() % 94) as u8,
            };
        }
        // Truncate at a random point.
        1 => {
            let pos = p.range(0, text.len());
            text.truncate(pos);
        }
        // Delete a random whitespace-delimited directive.
        2 => {
            let s = String::from_utf8_lossy(text).into_owned();
            let toks: Vec<&str> = s.split_whitespace().collect();
            if toks.len() > 1 {
                let skip = p.range(0, toks.len());
                let kept: Vec<&str> = toks
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != skip)
                    .map(|(_, t)| *t)
                    .collect();
                *text = kept.join(" ").into_bytes();
            }
        }
        // Duplicate a random directive (last-wins semantics must hold).
        3 => {
            let s = String::from_utf8_lossy(text).into_owned();
            let toks: Vec<&str> = s.split_whitespace().collect();
            if !toks.is_empty() {
                let dup = toks[p.range(0, toks.len())];
                let mut out = s.clone();
                out.push(' ');
                out.push_str(dup);
                *text = out.into_bytes();
            }
        }
        // Replace a token with an evil one.
        4 => {
            let s = String::from_utf8_lossy(text).into_owned();
            let toks: Vec<&str> = s.split_whitespace().collect();
            if !toks.is_empty() {
                let idx = p.range(0, toks.len());
                let mut out: Vec<String> = toks.iter().map(|t| t.to_string()).collect();
                out[idx] = EVIL_TOKENS[p.range(0, EVIL_TOKENS.len())].to_string();
                *text = out.join(" ").into_bytes();
            }
        }
        // Insert random bytes (possibly invalid UTF-8 — parse takes
        // &str, so exercise the lossy-decoded junk instead).
        _ => {
            let pos = p.range(0, text.len());
            let n = p.range(1, 8);
            let junk: Vec<u8> = (0..n).map(|_| (p.next_u64() & 0xFF) as u8).collect();
            text.splice(pos..pos, junk);
        }
    }
}

#[test]
fn jobspec_parse_never_panics_on_mutated_input() {
    for case in 0..6000u64 {
        let mut p = Params::new(case);
        let mut text = CORPUS[p.range(0, CORPUS.len())].as_bytes().to_vec();
        for _ in 0..p.range(1, 5) {
            mutate(&mut p, &mut text);
        }
        let line = String::from_utf8_lossy(&text).into_owned();
        let shown = line.clone();
        if std::panic::catch_unwind(move || {
            let _ = JobSpec::parse(&line);
        })
        .is_err()
        {
            panic!("JobSpec::parse panicked on fuzz case {case}; input: {shown:?}");
        }
    }
}

#[test]
fn successful_parses_round_trip_through_display() {
    // Display is the canonical form: parse(display(spec)) == spec, and
    // the canonical form is a fixed point of the round trip.
    let mut parsed = 0usize;
    for case in 0..6000u64 {
        let mut p = Params::new(case ^ 0x524F_554E);
        let mut text = CORPUS[p.range(0, CORPUS.len())].as_bytes().to_vec();
        mutate(&mut p, &mut text);
        let line = String::from_utf8_lossy(&text).into_owned();
        if let Ok(spec) = JobSpec::parse(&line) {
            parsed += 1;
            let canon = spec.to_string();
            let again = JobSpec::parse(&canon).unwrap_or_else(|e| {
                panic!("case {case}: canonical form {canon:?} failed to re-parse: {e}")
            });
            assert_eq!(spec, again, "case {case}: round trip changed the spec");
            assert_eq!(
                canon,
                again.to_string(),
                "case {case}: canonical form is not a fixed point"
            );
        }
    }
    // Single mutations often land in paths/tags or leave the line valid,
    // so a healthy fraction must still parse.
    assert!(parsed > 500, "only {parsed} cases parsed — corpus or mutator broken");
}

#[test]
fn duplicate_directives_are_last_wins() {
    let spec = JobSpec::parse("matrix=a.mtx threads=2 threads=7 facto=lu facto=ldlt")
        .expect("duplicates are allowed");
    assert_eq!(spec.threads, 7);
    assert_eq!(spec.to_string(), "matrix=a.mtx facto=ldlt threads=7");
}
