//! Fault-injected soak of the solve service: concurrent clients, random
//! panics, allocation faults and deadlines — the daemon must never die,
//! never serve a poisoned cache entry, and reject overload with typed
//! errors (ISSUE 6 acceptance criteria).

use dagfact_rt::{FaultPlan, MemoryBudget, RetryPolicy};
use dagfact_serve::{JobError, JobSpec, ServeConfig, Service};
use dagfact_sparse::gen::{grid_laplacian_2d, grid_laplacian_3d, shifted_laplacian_3d};
use dagfact_sparse::CscMatrix;
use std::sync::Arc;
use std::time::Duration;

/// Render a matrix as an inline job-spec source (small matrices only).
fn inline_of(a: &CscMatrix<f64>) -> String {
    let p = a.pattern();
    let mut s = format!("inline={}:", a.nrows());
    let mut first = true;
    for j in 0..a.ncols() {
        for (k, &i) in p.col(j).iter().enumerate() {
            let v = a.values()[p.colptr()[j] + k];
            if !first {
                s.push(';');
            }
            first = false;
            s.push_str(&format!("{i},{j},{v}"));
        }
    }
    s
}

/// Correctness oracle: `x` must solve `A·x = A·1` to refinement
/// accuracy, i.e. be the all-ones vector. A contaminated cache entry
/// (wrong matrix's factors, partially-filled factors) cannot pass this.
fn assert_ones(x: &[f64], label: &str) {
    for (i, v) in x.iter().enumerate() {
        assert!(
            (v - 1.0).abs() < 1e-6,
            "{label}: x[{i}] = {v}, expected 1.0 — cross-request contamination?"
        );
    }
}

#[test]
fn soak_concurrent_chaos_no_contamination() {
    // Three distinct problems so cache keys interleave; all SPD so the
    // only legitimate failures are the injected ones.
    let problems: Vec<(String, usize)> = vec![
        (inline_of(&grid_laplacian_2d(12, 12)), 144),
        (inline_of(&grid_laplacian_3d(5, 5, 5)), 125),
        (inline_of(&shifted_laplacian_3d(4, 4, 4, 1.0)), 64),
    ];
    // Transient faults + alloc faults are mostly absorbed by retries;
    // the unlucky fills that exhaust their retry budget poison their
    // cache entry. Probabilistic faults are seeded → reproducible.
    let plan = FaultPlan::parse("seed=42,tprob=0.02x40,aprob=0.01x20")
        .expect("valid plan");
    let service = Arc::new(Service::start(ServeConfig {
        workers: 3,
        queue_cap: 64,
        budget: MemoryBudget::unbounded(),
        default_deadline_ms: None,
        retry: RetryPolicy {
            max_attempts: 4,
            backoff: Duration::from_micros(200),
            backoff_factor: 2.0,
        },
        watchdog: Some(Duration::from_secs(20)),
        fault_plan: Some(Arc::new(plan)),
    }));

    let mut clients = Vec::new();
    for c in 0..6 {
        let service = service.clone();
        let problems = problems.clone();
        clients.push(std::thread::spawn(move || {
            let mut outcomes = (0u32, 0u32, 0u32); // ok, deadline, other
            for round in 0..10 {
                let (src, n) = &problems[(c + round) % problems.len()];
                // Every few jobs, a hostile one: a panicking fill (via a
                // non-square... no — use a deadline so short it cancels).
                let deadline = if round % 4 == 3 { " deadline_ms=1" } else { "" };
                let spec = JobSpec::parse(&format!("{src} refine=3 tag=c{c}r{round}{deadline}"))
                    .expect("spec");
                match service.solve_blocking(spec) {
                    Ok(resp) => {
                        assert_eq!(resp.x.len(), *n);
                        assert_ones(&resp.x, &format!("client {c} round {round}"));
                        if resp.factor_hit {
                            assert!(
                                resp.generation >= 1,
                                "factor hits must cite a live generation"
                            );
                        }
                        outcomes.0 += 1;
                    }
                    Err(JobError::Deadline { .. }) => outcomes.1 += 1,
                    Err(JobError::Overloaded(_)) | Err(JobError::ShuttingDown) => {
                        panic!("admission rejected under an uncapped budget")
                    }
                    // Injected faults that exhausted the retry budget
                    // surface typed; the daemon must keep serving.
                    Err(JobError::Panicked(_)) | Err(JobError::Failed(_)) => outcomes.2 += 1,
                    Err(e) => panic!("unexpected error class: {e:?}"),
                }
            }
            outcomes
        }));
    }
    let mut total = (0u32, 0u32, 0u32);
    for cl in clients {
        let (ok, dl, other) = cl.join().expect("client thread must not die");
        total = (total.0 + ok, total.1 + dl, total.2 + other);
    }
    // The daemon survived 60 jobs of chaos; most non-deadline jobs
    // succeeded (retries absorb the transient faults).
    assert!(total.0 >= 30, "too few successes: {total:?}");
    let stats = Arc::try_unwrap(service)
        .unwrap_or_else(|_| panic!("clients still hold the service"))
        .shutdown();
    assert_eq!(stats.completed as u32, total.0);
    assert_eq!(stats.deadlines as u32, total.1);
    assert!(
        stats.factor_cache.hits > 0,
        "soak never hit the factor cache: {stats:?}"
    );
}

#[test]
fn poisoned_fill_is_never_served_and_refills_with_bumped_generation() {
    // A pinned allocation fault consumes its per-site failure budget on
    // delivery: `alloc=1x4` (site COEFTAB_L, 4 failures) kills all four
    // solver-level retries of the first job's fill — poisoning the cache
    // entry — and is then spent, so the second identical job refills.
    let plan = FaultPlan::parse("seed=7,alloc=1x4").expect("plan");
    let service = Service::start(ServeConfig {
        workers: 1,
        queue_cap: 8,
        fault_plan: Some(Arc::new(plan)),
        retry: RetryPolicy {
            max_attempts: 1,
            backoff: Duration::from_micros(100),
            backoff_factor: 2.0,
        },
        ..ServeConfig::default()
    });
    let src = inline_of(&grid_laplacian_2d(8, 8));
    let spec = JobSpec::parse(&format!("{src} refine=2")).expect("spec");
    // First job: the injected faults exhaust the fill's retry budget
    // (their per-site budget is consumed, so later jobs run clean).
    let first = service.solve_blocking(spec.clone());
    let second = service.solve_blocking(spec.clone());
    let third = service.solve_blocking(spec);
    match first {
        Err(JobError::Failed(msg)) => {
            assert!(msg.contains("injected"), "first job should report the fault: {msg}")
        }
        other => panic!("first job should fail from the injected fault, got {other:?}"),
    }
    let second = second.expect("second job refills the poisoned entry");
    assert!(!second.factor_hit, "poisoned entry must not be served as a hit");
    assert_eq!(
        second.generation, 2,
        "refill after poisoning must bump the generation"
    );
    assert_ones(&second.x, "second");
    let third = third.expect("third job hits the refilled entry");
    assert!(third.factor_hit);
    assert_eq!(third.generation, 2);
    assert_ones(&third.x, "third");
    let stats = service.shutdown();
    assert_eq!(stats.factor_cache.poisonings, 1);
}

#[test]
fn overload_rejects_typed_while_inflight_complete() {
    // Tiny queue, one slow worker: flood and observe typed Overloaded.
    let service = Service::start(ServeConfig {
        workers: 1,
        queue_cap: 2,
        ..ServeConfig::default()
    });
    let src = inline_of(&grid_laplacian_3d(6, 6, 6));
    let mut tickets = Vec::new();
    let mut rejected = 0u32;
    for i in 0..12 {
        let spec = JobSpec::parse(&format!("{src} refine=2 tag=flood{i}")).expect("spec");
        match service.submit(spec) {
            Ok(t) => tickets.push(t),
            Err(JobError::Overloaded(msg)) => {
                assert!(msg.contains("queue full"), "{msg}");
                rejected += 1;
            }
            Err(e) => panic!("unexpected rejection {e:?}"),
        }
    }
    assert!(rejected > 0, "flooding a 2-deep queue must reject");
    for t in tickets {
        let resp = t.wait().expect("admitted jobs complete");
        assert_ones(&resp.x, "flood");
    }
    let stats = service.shutdown();
    assert!(stats.rejected as u32 >= rejected);
}

#[test]
fn deadline_job_returns_typed_error_not_partial_answer() {
    let service = Service::start(ServeConfig::default());
    let src = inline_of(&grid_laplacian_3d(6, 6, 6));
    // deadline_ms=0 is the degenerate "already expired" case.
    let spec = JobSpec::parse(&format!("{src} deadline_ms=0")).expect("spec");
    match service.solve_blocking(spec) {
        Err(JobError::Deadline { .. }) => {}
        other => panic!("expected Deadline, got {other:?}"),
    }
    // And a sane job on the same service still works (deadline machinery
    // did not wedge the workers).
    let ok = service
        .solve_blocking(JobSpec::parse(&format!("{src} refine=2")).expect("spec"))
        .expect("normal job after a deadline");
    assert_ones(&ok.x, "post-deadline");
    let stats = service.shutdown();
    assert_eq!(stats.deadlines, 1);
}

#[test]
fn batched_same_factor_jobs_never_mix_results() {
    // One worker so the followers provably queue: the warmup job is
    // refine-heavy (refinement makes it non-batchable) and holds the
    // worker while the batchable same-factor jobs pile up behind it.
    // When the worker frees up it must coalesce them into one blocked
    // solve_many — and each ticket must still get exactly its own
    // columns back.
    let service = Service::start(ServeConfig {
        workers: 1,
        queue_cap: 32,
        ..ServeConfig::default()
    });
    let a = grid_laplacian_3d(6, 6, 6);
    let n = a.nrows();
    let src = inline_of(&a);
    let warm = JobSpec::parse(&format!("{src} refine=3 tag=warmup")).expect("spec");
    let warm_ticket = service.submit(warm).expect("warmup admitted");

    // Job k carries the RHS k·(A·1), so its solution is exactly k·1 —
    // any cross-member leakage in the blocked solve shows up as a wrong
    // scale somewhere in x.
    let mut a1 = vec![0.0; n];
    a.spmv(&vec![1.0; n], &mut a1);
    let mut tickets = Vec::new();
    for k in 1..=6usize {
        let rhs: Vec<String> = a1.iter().map(|v| format!("{}", v * k as f64)).collect();
        let spec = JobSpec::parse(&format!("{src} rhs={} tag=k{k}", rhs.join(";")))
            .expect("spec");
        tickets.push((k, service.submit(spec).expect("follower admitted")));
    }

    warm_ticket.wait().expect("warmup solves");
    let mut coalesced = 0u32;
    for (k, t) in tickets {
        let resp = t.wait().expect("batched job solves");
        assert_eq!(resp.nrhs, 1);
        assert_eq!(resp.x.len(), n);
        for (i, v) in resp.x.iter().enumerate() {
            assert!(
                (v - k as f64).abs() < 1e-6 * k as f64,
                "job k={k}: x[{i}] = {v}, expected {k} — batch mixed member columns?"
            );
        }
        if resp.batched >= 2 {
            coalesced += 1;
        }
    }
    assert!(
        coalesced >= 2,
        "queued same-factor jobs never coalesced (coalesced={coalesced})"
    );
    let stats = service.shutdown();
    assert_eq!(stats.completed, 7);
    assert!(stats.batches >= 1, "no blocked solve recorded: {stats:?}");
    assert_eq!(stats.batched as u32, coalesced);
}

#[test]
fn budget_pressure_sheds_caches_before_rejecting() {
    // Cap sized so one set of factors fits but pressure rises past the
    // shed threshold as entries accumulate; admission must shed instead
    // of failing jobs, and the ledger must never exceed the cap.
    let budget = MemoryBudget::with_cap(8 << 20);
    let service = Service::start(ServeConfig {
        workers: 2,
        queue_cap: 16,
        budget: budget.clone(),
        ..ServeConfig::default()
    });
    let problems = [
        inline_of(&grid_laplacian_2d(16, 16)),
        inline_of(&grid_laplacian_2d(17, 17)),
        inline_of(&grid_laplacian_2d(18, 18)),
        inline_of(&grid_laplacian_3d(6, 6, 6)),
    ];
    for round in 0..3 {
        for (i, src) in problems.iter().enumerate() {
            let spec =
                JobSpec::parse(&format!("{src} refine=2 tag=p{i}r{round}")).expect("spec");
            match service.solve_blocking(spec) {
                Ok(resp) => assert_ones(&resp.x, "pressure"),
                Err(JobError::Overloaded(_)) | Err(JobError::BudgetExceeded(_)) => {
                    // Typed degradation is acceptable under a hard cap —
                    // a poisoned answer or a dead worker is not.
                }
                Err(e) => panic!("unexpected failure under pressure: {e:?}"),
            }
        }
    }
    assert!(budget.peak() <= (8 << 20), "ledger exceeded its cap");
    let stats = service.shutdown();
    assert!(stats.completed > 0);
}
