//! Nested dissection ordering (the SCOTCH substitute).
//!
//! Recursive algorithm on the connectivity graph of `A + Aᵀ`:
//!
//! 1. split each connected component with a *vertex separator* found from a
//!    BFS level structure rooted at a pseudo-peripheral vertex (George-Liu
//!    style), picking the level that balances the two halves;
//! 2. refine the separator by dropping vertices with neighbors on only one
//!    side (a cheap Fiduccia-Mattheyses-flavoured pass);
//! 3. recurse on the halves, then number the separator *last* — separators
//!    become the top supernodes of the elimination tree, exactly the large
//!    panels the paper's GPU offload feeds on (§V-B);
//! 4. order leaf subgraphs (≤ `leaf_size`) with minimum degree.

use crate::md::minimum_degree_subset;
use crate::perm::Permutation;
use dagfact_sparse::graph::Graph;

/// Tuning knobs for nested dissection.
#[derive(Debug, Clone)]
pub struct NdOptions {
    /// Subgraphs at or below this size are ordered with minimum degree
    /// instead of being dissected further.
    pub leaf_size: usize,
    /// Number of separator-refinement sweeps.
    pub refine_passes: usize,
}

impl Default for NdOptions {
    fn default() -> Self {
        NdOptions {
            leaf_size: 96,
            refine_passes: 3,
        }
    }
}

/// Compute a nested-dissection ordering of the whole graph.
pub fn nested_dissection(graph: &Graph, options: &NdOptions) -> Permutation {
    let n = graph.nvertices();
    let mut order = Vec::with_capacity(n);
    let vertices: Vec<usize> = (0..n).collect();
    dissect(graph, vertices, options, &mut order);
    debug_assert_eq!(order.len(), n);
    Permutation::from_iperm(order)
}

/// Recursively dissect `vertices`, appending them to `order` in elimination
/// order.
fn dissect(graph: &Graph, vertices: Vec<usize>, options: &NdOptions, order: &mut Vec<usize>) {
    if vertices.len() <= options.leaf_size {
        order.extend(minimum_degree_subset(graph, &vertices));
        return;
    }
    // Split into connected components first: dissect each independently
    // (their elimination subtrees are siblings).
    let mut mask = vec![false; graph.nvertices()];
    for &v in &vertices {
        mask[v] = true;
    }
    let (comp, ncomp) = graph.components(&mask);
    if ncomp > 1 {
        let mut parts: Vec<Vec<usize>> = vec![Vec::new(); ncomp];
        for &v in &vertices {
            parts[comp[v]].push(v);
        }
        for part in parts {
            dissect(graph, part, options, order);
        }
        return;
    }

    match find_separator(graph, &vertices, &mask, options) {
        Some((part_a, part_b, separator)) => {
            dissect(graph, part_a, options, order);
            dissect(graph, part_b, options, order);
            // The separator is numbered last; order it internally by
            // minimum degree for a little extra fill reduction inside the
            // dense-ish separator clique.
            order.extend(minimum_degree_subset(graph, &separator));
        }
        None => {
            // Degenerate split (e.g. a clique): fall back to minimum degree.
            order.extend(minimum_degree_subset(graph, &vertices));
        }
    }
}

/// Find a vertex separator of the (connected) masked subgraph. Returns
/// `(A, B, S)` with `A ∪ B ∪ S = vertices`, no edges between `A` and `B`.
fn find_separator(
    graph: &Graph,
    vertices: &[usize],
    mask: &[bool],
    options: &NdOptions,
) -> Option<(Vec<usize>, Vec<usize>, Vec<usize>)> {
    let root = graph.pseudo_peripheral(vertices[0], mask);
    let (levels, depth) = graph.bfs_levels(root, mask);
    if depth < 3 {
        // Diameter too small to cut (clique-like); give up.
        return None;
    }
    // Choose the level whose prefix holds ~half the vertices.
    let mut level_count = vec![0usize; depth];
    for &v in vertices {
        level_count[levels[v]] += 1;
    }
    let half = vertices.len() / 2;
    let mut acc = 0usize;
    let mut cut_level = 1usize;
    for (l, &c) in level_count.iter().enumerate() {
        acc += c;
        if acc >= half {
            cut_level = l.max(1).min(depth - 2);
            break;
        }
    }

    // side: 0 = A (levels < cut), 1 = B (levels > cut), 2 = S.
    let mut side = vec![u8::MAX; graph.nvertices()];
    for &v in vertices {
        side[v] = match levels[v].cmp(&cut_level) {
            core::cmp::Ordering::Less => 0,
            core::cmp::Ordering::Equal => 2,
            core::cmp::Ordering::Greater => 1,
        };
    }

    // Refinement: move separator vertices that touch only one side into
    // the other side; this thins level-set separators considerably on grid
    // graphs.
    for _ in 0..options.refine_passes {
        let mut moved = false;
        for &v in vertices {
            if side[v] != 2 {
                continue;
            }
            let mut touches_a = false;
            let mut touches_b = false;
            for &w in graph.neighbors(v) {
                if !mask[w] {
                    continue;
                }
                match side[w] {
                    0 => touches_a = true,
                    1 => touches_b = true,
                    _ => {}
                }
            }
            match (touches_a, touches_b) {
                (true, false) | (false, false) => {
                    side[v] = 0;
                    moved = true;
                }
                (false, true) => {
                    side[v] = 1;
                    moved = true;
                }
                (true, true) => {}
            }
        }
        if !moved {
            break;
        }
    }

    let mut part_a = Vec::new();
    let mut part_b = Vec::new();
    let mut separator = Vec::new();
    for &v in vertices {
        match side[v] {
            0 => part_a.push(v),
            1 => part_b.push(v),
            _ => separator.push(v),
        }
    }
    if part_a.is_empty() || part_b.is_empty() {
        return None;
    }
    debug_assert!(no_cross_edges(graph, &side, mask), "separator leaks edges");
    Some((part_a, part_b, separator))
}

fn no_cross_edges(graph: &Graph, side: &[u8], mask: &[bool]) -> bool {
    for v in 0..graph.nvertices() {
        if !mask[v] || side[v] != 0 {
            continue;
        }
        for &w in graph.neighbors(v) {
            if mask[w] && side[w] == 1 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagfact_sparse::gen::{grid_laplacian_2d, grid_laplacian_3d, random_spd};

    #[test]
    fn produces_valid_permutation() {
        let a = grid_laplacian_2d(20, 20);
        let g = Graph::from_pattern(a.pattern());
        let p = nested_dissection(&g, &NdOptions::default());
        assert_eq!(p.len(), 400);
        // Validity enforced by Permutation::from_iperm. The ordering must
        // also be deterministic.
        let p2 = nested_dissection(&g, &NdOptions::default());
        assert_eq!(p, p2);
    }

    #[test]
    fn separator_vertices_numbered_after_halves() {
        // On a 1D path the top separator is a single middle vertex and must
        // receive the final number.
        let n = 65;
        let mut xadj = vec![0usize];
        let mut adj = Vec::new();
        for v in 0..n {
            if v > 0 {
                adj.push(v - 1);
            }
            if v + 1 < n {
                adj.push(v + 1);
            }
            xadj.push(adj.len());
        }
        let g = Graph::from_adjacency(xadj, adj);
        let p = nested_dissection(
            &g,
            &NdOptions {
                leaf_size: 8,
                refine_passes: 2,
            },
        );
        let last = p.old_of(n - 1);
        assert!(
            (n / 4..3 * n / 4).contains(&last),
            "top separator {last} not near the middle"
        );
    }

    #[test]
    fn reduces_fill_versus_natural_on_grid() {
        // Coarse proxy for fill: sum over columns of (max row - col) of the
        // permuted pattern underestimates fill for natural band ordering
        // and is drastically cut by dissection on 3D problems only after
        // full symbolic factorization; here we simply sanity-check that
        // dissection does not *increase* the profile beyond natural.
        let a = grid_laplacian_3d(8, 8, 8);
        let g = Graph::from_pattern(a.pattern());
        let p = nested_dissection(&g, &NdOptions::default());
        assert_eq!(p.len(), 512);
    }

    #[test]
    fn disconnected_graph_is_ordered_per_component() {
        let a = random_spd(30, 2, 7);
        let b = random_spd(20, 2, 8);
        // Block-diagonal union.
        let mut xadj = vec![0usize];
        let mut adj = Vec::new();
        let ga = Graph::from_pattern(a.pattern());
        let gb = Graph::from_pattern(b.pattern());
        for v in 0..30 {
            adj.extend(ga.neighbors(v));
            xadj.push(adj.len());
        }
        for v in 0..20 {
            adj.extend(gb.neighbors(v).iter().map(|&w| w + 30));
            xadj.push(adj.len());
        }
        let g = Graph::from_adjacency(xadj, adj);
        let p = nested_dissection(&g, &NdOptions { leaf_size: 8, refine_passes: 2 });
        assert_eq!(p.len(), 50);
    }

    #[test]
    fn clique_falls_back_gracefully() {
        // Complete graph has no useful separator.
        let n = 12;
        let mut xadj = vec![0usize];
        let mut adj = Vec::new();
        for v in 0..n {
            for w in 0..n {
                if v != w {
                    adj.push(w);
                }
            }
            xadj.push(adj.len());
        }
        let g = Graph::from_adjacency(xadj, adj);
        let p = nested_dissection(&g, &NdOptions { leaf_size: 4, refine_passes: 1 });
        assert_eq!(p.len(), n);
    }
}
