//! Validated permutations.
//!
//! Convention throughout `dagfact`: `perm[old] = new` (scatter form) and
//! `iperm[new] = old` (gather form), matching
//! [`SparsityPattern::permute_symmetric`](dagfact_sparse::SparsityPattern::permute_symmetric).

/// A permutation of `0..n` kept simultaneously in scatter (`perm[old] =
/// new`) and gather (`iperm[new] = old`) form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<usize>,
    iperm: Vec<usize>,
}

impl Permutation {
    /// Identity permutation of size `n`.
    pub fn identity(n: usize) -> Self {
        let perm: Vec<usize> = (0..n).collect();
        Permutation {
            iperm: perm.clone(),
            perm,
        }
    }

    /// Build from scatter form `perm[old] = new`. Panics if `perm` is not a
    /// permutation of `0..n`.
    pub fn from_perm(perm: Vec<usize>) -> Self {
        let n = perm.len();
        let mut iperm = vec![usize::MAX; n];
        for (old, &new) in perm.iter().enumerate() {
            assert!(new < n, "perm value {new} out of range");
            assert!(iperm[new] == usize::MAX, "perm maps two indices to {new}");
            iperm[new] = old;
        }
        Permutation { perm, iperm }
    }

    /// Build from gather form `iperm[new] = old` (i.e. the elimination
    /// order: `iperm[k]` is eliminated `k`-th).
    pub fn from_iperm(iperm: Vec<usize>) -> Self {
        let n = iperm.len();
        let mut perm = vec![usize::MAX; n];
        for (new, &old) in iperm.iter().enumerate() {
            assert!(old < n, "iperm value {old} out of range");
            assert!(perm[old] == usize::MAX, "iperm lists {old} twice");
            perm[old] = new;
        }
        Permutation { perm, iperm }
    }

    /// Size of the permuted index set.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// `true` for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Scatter form: `perm()[old] = new`.
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// Gather form: `iperm()[new] = old`.
    pub fn iperm(&self) -> &[usize] {
        &self.iperm
    }

    /// New position of `old`.
    pub fn new_of(&self, old: usize) -> usize {
        self.perm[old]
    }

    /// Old position of `new`.
    pub fn old_of(&self, new: usize) -> usize {
        self.iperm[new]
    }

    /// Compose with another permutation applied *after* this one:
    /// `(self.then(next))[old] = next[self[old]]`.
    pub fn then(&self, next: &Permutation) -> Permutation {
        assert_eq!(self.len(), next.len());
        let perm: Vec<usize> = self.perm.iter().map(|&mid| next.perm[mid]).collect();
        Permutation::from_perm(perm)
    }

    /// Permute a dense vector from old to new numbering:
    /// `out[perm[i]] = v[i]`.
    pub fn apply_vec<T: Copy>(&self, v: &[T]) -> Vec<T> {
        assert_eq!(v.len(), self.len());
        let mut out: Vec<T> = v.to_vec();
        for (old, &x) in v.iter().enumerate() {
            out[self.perm[old]] = x;
        }
        out
    }

    /// Inverse-permute a dense vector (new → old numbering):
    /// `out[i] = v[perm[i]]`.
    pub fn apply_inverse_vec<T: Copy>(&self, v: &[T]) -> Vec<T> {
        assert_eq!(v.len(), self.len());
        let mut out: Vec<T> = v.to_vec();
        for (old, o) in out.iter_mut().enumerate() {
            *o = v[self.perm[old]];
        }
        out
    }

    /// The inverse permutation as its own object.
    pub fn inverse(&self) -> Permutation {
        Permutation {
            perm: self.iperm.clone(),
            iperm: self.perm.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_gather_consistency() {
        let p = Permutation::from_perm(vec![2, 0, 3, 1]);
        assert_eq!(p.iperm(), &[1, 3, 0, 2]);
        assert_eq!(p.new_of(0), 2);
        assert_eq!(p.old_of(2), 0);
        assert_eq!(Permutation::from_iperm(vec![1, 3, 0, 2]), p);
    }

    #[test]
    fn apply_and_inverse_roundtrip() {
        let p = Permutation::from_perm(vec![2, 0, 3, 1]);
        let v = vec![10, 20, 30, 40];
        let w = p.apply_vec(&v);
        assert_eq!(w, vec![20, 40, 10, 30]);
        assert_eq!(p.apply_inverse_vec(&w), v);
        assert_eq!(p.inverse().apply_vec(&w), v);
    }

    #[test]
    fn composition_order() {
        let p = Permutation::from_perm(vec![1, 2, 0]);
        let q = Permutation::from_perm(vec![0, 2, 1]);
        let pq = p.then(&q);
        for old in 0..3 {
            assert_eq!(pq.new_of(old), q.new_of(p.new_of(old)));
        }
    }

    #[test]
    #[should_panic(expected = "maps two indices")]
    fn rejects_non_bijection() {
        Permutation::from_perm(vec![0, 0, 1]);
    }

    #[test]
    fn identity_is_noop() {
        let p = Permutation::identity(5);
        let v = vec![1, 2, 3, 4, 5];
        assert_eq!(p.apply_vec(&v), v);
        assert_eq!(p.then(&p), p);
    }
}
