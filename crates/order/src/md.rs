//! Minimum-degree ordering on the elimination graph.
//!
//! A deliberately simple (no quotient graph, no supervariables) exact
//! minimum-degree: at each step the lowest-degree vertex is eliminated and
//! its neighborhood turned into a clique. Complexity is fine for the two
//! places it is used — ordering nested-dissection leaves (≤ a few hundred
//! vertices) and small standalone problems — and the simplicity keeps it
//! obviously correct, which matters more here than AMD-grade speed.

use crate::perm::Permutation;
use dagfact_sparse::graph::Graph;

/// Order all vertices of `graph` by minimum degree. Ties break toward the
/// smallest vertex id, making the ordering deterministic.
pub fn minimum_degree(graph: &Graph) -> Permutation {
    let n = graph.nvertices();
    let order = minimum_degree_subset(graph, &(0..n).collect::<Vec<_>>());
    Permutation::from_iperm(order)
}

/// Order the given vertex subset (which must be closed: edges leaving the
/// subset are ignored) by minimum degree; returns vertex ids in elimination
/// order.
pub fn minimum_degree_subset(graph: &Graph, vertices: &[usize]) -> Vec<usize> {
    let k = vertices.len();
    if k == 0 {
        return Vec::new();
    }
    // Local adjacency as sorted vectors over local indices.
    let mut local_of = std::collections::HashMap::with_capacity(k);
    for (li, &v) in vertices.iter().enumerate() {
        local_of.insert(v, li);
    }
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (li, &v) in vertices.iter().enumerate() {
        for &w in graph.neighbors(v) {
            if let Some(&lw) = local_of.get(&w) {
                adj[li].push(lw);
            }
        }
        adj[li].sort_unstable();
        adj[li].dedup();
    }
    let mut eliminated = vec![false; k];
    let mut order = Vec::with_capacity(k);
    for _ in 0..k {
        // Pick the minimum-degree live vertex.
        let mut best = usize::MAX;
        let mut best_deg = usize::MAX;
        for li in 0..k {
            if !eliminated[li] {
                let deg = adj[li].len();
                if deg < best_deg {
                    best_deg = deg;
                    best = li;
                }
            }
        }
        let v = best;
        eliminated[v] = true;
        order.push(vertices[v]);
        // Form the clique among v's live neighbors and detach v.
        let nbrs: Vec<usize> = adj[v].iter().copied().filter(|&w| !eliminated[w]).collect();
        for &w in &nbrs {
            // Remove v, add all other clique members.
            let aw = &mut adj[w];
            if let Ok(pos) = aw.binary_search(&v) {
                aw.remove(pos);
            }
            for &u in &nbrs {
                if u != w {
                    if let Err(pos) = aw.binary_search(&u) {
                        aw.insert(pos, u);
                    }
                }
            }
        }
        adj[v] = Vec::new();
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagfact_sparse::gen::{grid_laplacian_2d, random_spd};
    use dagfact_sparse::graph::Graph;

    #[test]
    fn star_graph_center_last() {
        // Star: center 0 connected to 1..=4. MD must eliminate leaves first.
        let mut xadj = vec![0usize];
        let mut adjncy = vec![1, 2, 3, 4];
        xadj.push(4);
        for _ in 1..=4 {
            adjncy.push(0);
            xadj.push(adjncy.len());
        }
        let g = Graph::from_adjacency(xadj, adjncy);
        let p = minimum_degree(&g);
        // The hub may legally tie with the final leaf (eliminating it then
        // causes no fill), but it must never go while ≥ 2 leaves remain.
        assert!(p.new_of(0) >= 3, "hub eliminated too early: {}", p.new_of(0));
    }

    #[test]
    fn ordering_is_a_valid_permutation() {
        let a = random_spd(80, 4, 3);
        let g = Graph::from_pattern(a.pattern());
        let p = minimum_degree(&g);
        let mut seen = [false; 80];
        for new in 0..80 {
            let old = p.old_of(new);
            assert!(!seen[old]);
            seen[old] = true;
        }
    }

    #[test]
    fn subset_ordering_only_touches_subset() {
        let a = grid_laplacian_2d(5, 5);
        let g = Graph::from_pattern(a.pattern());
        let subset = vec![0, 1, 2, 5, 6, 7];
        let order = minimum_degree_subset(&g, &subset);
        assert_eq!(order.len(), subset.len());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        let mut expect = subset.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn path_graph_avoids_fill() {
        // On a path, MD produces zero fill; a correct implementation will
        // never eliminate an interior vertex while endpoints remain.
        let n = 7;
        let mut xadj = vec![0usize];
        let mut adj = Vec::new();
        for v in 0..n {
            if v > 0 {
                adj.push(v - 1);
            }
            if v + 1 < n {
                adj.push(v + 1);
            }
            xadj.push(adj.len());
        }
        let g = Graph::from_adjacency(xadj, adj);
        let p = minimum_degree(&g);
        // First eliminated vertex must be an endpoint (degree 1).
        let first = p.old_of(0);
        assert!(first == 0 || first == n - 1);
    }
}
