//! Reverse Cuthill-McKee ordering (bandwidth reduction).
//!
//! Kept as a baseline ordering: it produces long thin elimination trees
//! with little task parallelism, which the ablation benches contrast
//! against nested dissection to show why the paper's DAG shape depends on
//! the ordering.

use crate::perm::Permutation;
use dagfact_sparse::graph::Graph;

/// Compute the reverse Cuthill-McKee ordering. Each connected component is
/// traversed from a pseudo-peripheral vertex, visiting neighbors by
/// increasing degree; the concatenated visit order is then reversed.
pub fn reverse_cuthill_mckee(graph: &Graph) -> Permutation {
    let n = graph.nvertices();
    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mask = vec![true; n];
    for start in 0..n {
        if visited[start] {
            continue;
        }
        // Mask for pseudo-peripheral: restrict to unvisited vertices.
        let comp_mask: Vec<bool> = (0..n).map(|v| !visited[v] && mask[v]).collect();
        let root = graph.pseudo_peripheral(start, &comp_mask);
        let mut queue = std::collections::VecDeque::new();
        visited[root] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut nbrs: Vec<usize> = graph
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&w| !visited[w])
                .collect();
            nbrs.sort_unstable_by_key(|&w| (graph.degree(w), w));
            for w in nbrs {
                if !visited[w] {
                    visited[w] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    order.reverse();
    Permutation::from_iperm(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagfact_sparse::gen::grid_laplacian_2d;
    use dagfact_sparse::graph::Graph;

    fn bandwidth(graph: &Graph, perm: &Permutation) -> usize {
        let mut bw = 0usize;
        for v in 0..graph.nvertices() {
            for &w in graph.neighbors(v) {
                bw = bw.max(perm.new_of(v).abs_diff(perm.new_of(w)));
            }
        }
        bw
    }

    #[test]
    fn reduces_bandwidth_of_shuffled_grid() {
        let a = grid_laplacian_2d(10, 10);
        // Shuffle the grid with a deterministic stride permutation so the
        // natural bandwidth is destroyed.
        let n = a.ncols();
        let shuffle: Vec<usize> = (0..n).map(|i| (i * 37) % n).collect();
        let shuffled = a.pattern().permute_symmetric(&shuffle);
        let g = Graph::from_pattern(&shuffled);
        let ident = Permutation::identity(n);
        let rcm = reverse_cuthill_mckee(&g);
        assert!(
            bandwidth(&g, &rcm) < bandwidth(&g, &ident) / 2,
            "rcm {} vs natural {}",
            bandwidth(&g, &rcm),
            bandwidth(&g, &ident)
        );
    }

    #[test]
    fn handles_disconnected_graphs() {
        // Two disjoint triangles.
        let mut xadj = vec![0usize];
        let mut adj = Vec::new();
        for base in [0usize, 3] {
            for v in 0..3 {
                for w in 0..3 {
                    if v != w {
                        adj.push(base + w);
                    }
                }
                let _ = v;
                xadj.push(adj.len());
            }
        }
        let g = Graph::from_adjacency(xadj, adj);
        let p = reverse_cuthill_mckee(&g);
        assert_eq!(p.len(), 6);
        // Valid permutation check is implicit in construction.
    }
}
