//! # dagfact-order
//!
//! Fill-reducing orderings — the from-scratch substitute for the SCOTCH
//! library the paper links PaStiX against ("SCOTCH 5.1.12b", §V).
//!
//! * [`nd::nested_dissection`] — recursive vertex-separator ordering with
//!   BFS level-set separators, boundary refinement and minimum-degree
//!   ordered leaves; the default for the solver, and the source of the
//!   separator tree whose top supernodes become the big GPU-friendly
//!   panels of the paper.
//! * [`md::minimum_degree`] — classic minimum-degree on the elimination
//!   graph, used for the ND leaves and usable standalone on small
//!   problems.
//! * [`rcm::reverse_cuthill_mckee`] — bandwidth-reducing ordering, kept as
//!   a baseline to show (in the benches) how much nested dissection
//!   matters for the paper's task DAG.
//! * [`Permutation`] — validated `old → new` relabeling shared with the
//!   symbolic phase.

pub mod md;
pub mod nd;
pub mod perm;
pub mod rcm;

pub use nd::{nested_dissection, NdOptions};
pub use perm::Permutation;

use dagfact_sparse::graph::Graph;
use dagfact_sparse::SparsityPattern;

/// Ordering algorithm selector for the solver's analysis phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderingKind {
    /// Keep the input ordering.
    Natural,
    /// Reverse Cuthill-McKee (bandwidth reduction; baseline only).
    ReverseCuthillMcKee,
    /// Minimum degree on the elimination graph.
    MinimumDegree,
    /// Nested dissection with minimum-degree leaves (default).
    #[default]
    NestedDissection,
}

/// Compute a fill-reducing ordering of a square, structurally symmetric
/// pattern (callers should symmetrize first; see
/// [`SparsityPattern::symmetrize`]).
pub fn compute_ordering(pattern: &SparsityPattern, kind: OrderingKind) -> Permutation {
    let graph = Graph::from_pattern(pattern);
    match kind {
        OrderingKind::Natural => Permutation::identity(pattern.ncols()),
        OrderingKind::ReverseCuthillMcKee => rcm::reverse_cuthill_mckee(&graph),
        OrderingKind::MinimumDegree => md::minimum_degree(&graph),
        OrderingKind::NestedDissection => nested_dissection(&graph, &NdOptions::default()),
    }
}
