//! Subtree clustering — the paper's first future-work item (§VI):
//! "in order to minimize the scheduler overhead, we plan to increase the
//! granularity of the tasks at the bottom of the elimination tree. Merging
//! leaves or subtrees together yields bigger, more computationally
//! intensive tasks."
//!
//! A cluster is a maximal subtree of the panel tree whose total 1D work
//! stays below a flop threshold; all tasks originating in the subtree fuse
//! into one super-task. The panels at the bottom of a nested-dissection
//! tree are numerous and tiny, so modest thresholds fold thousands of
//! sub-microsecond tasks into a few substantial ones.

use crate::cost::TaskCosts;
use crate::structure::SymbolMatrix;

/// Result of subtree clustering.
#[derive(Debug, Clone)]
pub struct SubtreeClustering {
    /// Cluster root of each panel (panels outside any small subtree are
    /// their own singleton root).
    pub root_of: Vec<usize>,
    /// Number of distinct clusters.
    pub nclusters: usize,
    /// Dense cluster index of each panel (0..nclusters).
    pub cluster_of: Vec<usize>,
}

/// Cluster panels whose whole subtree costs at most `threshold_flops`.
///
/// The panel tree is the elimination tree contracted to panels: the parent
/// of panel `c` is the facing panel of its first off-diagonal block.
pub fn subtree_clusters(
    symbol: &SymbolMatrix,
    costs: &TaskCosts,
    threshold_flops: f64,
) -> SubtreeClustering {
    let ncblk = symbol.ncblk();
    let parent: Vec<Option<usize>> = (0..ncblk)
        .map(|c| symbol.off_blocks(c).first().map(|b| b.facing))
        .collect();
    // Subtree work, ascending sweep (children have smaller indices).
    let mut subtree = vec![0.0f64; ncblk];
    for c in 0..ncblk {
        subtree[c] += costs.task_1d(symbol, c);
        if let Some(p) = parent[c] {
            let w = subtree[c];
            subtree[p] += w;
        }
    }
    // Roots, descending sweep (parents first).
    let mut root_of = vec![usize::MAX; ncblk];
    for c in (0..ncblk).rev() {
        if subtree[c] > threshold_flops {
            root_of[c] = c; // too big: singleton
        } else {
            match parent[c] {
                Some(p) if subtree[p] <= threshold_flops => {
                    // Parent is itself inside a cluster: inherit its root.
                    root_of[c] = root_of[p];
                }
                _ => {
                    root_of[c] = c; // top of a small subtree: cluster root
                }
            }
        }
    }
    // Dense renumbering.
    let mut cluster_of = vec![usize::MAX; ncblk];
    let mut next = 0usize;
    let mut index_of_root = vec![usize::MAX; ncblk];
    for c in 0..ncblk {
        let r = root_of[c];
        if index_of_root[r] == usize::MAX {
            index_of_root[r] = next;
            next += 1;
        }
        cluster_of[c] = index_of_root[r];
    }
    SubtreeClustering {
        root_of,
        nclusters: next,
        cluster_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::counts::column_counts;
    use crate::etree::{elimination_tree, postorder, relabel_parent};
    use crate::structure::{SplitOptions, SymbolMatrix};
    use crate::supernode::{amalgamate, build_partition, detect_supernodes, AmalgamationOptions};
    use crate::FactoKind;
    use dagfact_sparse::gen::grid_laplacian_2d;

    fn symbol() -> SymbolMatrix {
        let a = grid_laplacian_2d(20, 20);
        let nd = dagfact_order::compute_ordering(
            a.pattern(),
            dagfact_order::OrderingKind::NestedDissection,
        );
        let sym = a.pattern().symmetrize().permute_symmetric(nd.perm());
        let parent = elimination_tree(&sym);
        let post = postorder(&parent);
        let mut perm = vec![0usize; post.len()];
        for (new, &old) in post.iter().enumerate() {
            perm[old] = new;
        }
        let permuted = sym.permute_symmetric(perm.as_slice());
        let parent = relabel_parent(&parent, &post);
        let (cc, _) = column_counts(&permuted, &parent);
        let first = detect_supernodes(&parent, &cc);
        let part = build_partition(&permuted, &parent, first);
        let part = amalgamate(part, &AmalgamationOptions::default());
        SymbolMatrix::from_partition(&part, &SplitOptions { max_width: 16 })
    }

    #[test]
    fn zero_threshold_gives_singletons() {
        let s = symbol();
        let costs = TaskCosts::compute(&s, &CostModel::real(FactoKind::Cholesky));
        let cl = subtree_clusters(&s, &costs, 0.0);
        assert_eq!(cl.nclusters, s.ncblk());
        for c in 0..s.ncblk() {
            assert_eq!(cl.root_of[c], c);
        }
    }

    #[test]
    fn huge_threshold_gives_one_cluster_per_root() {
        let s = symbol();
        let costs = TaskCosts::compute(&s, &CostModel::real(FactoKind::Cholesky));
        let cl = subtree_clusters(&s, &costs, f64::INFINITY);
        // Everything collapses into one cluster per tree root; a connected
        // grid has a single root.
        assert_eq!(cl.nclusters, 1);
    }

    #[test]
    fn clusters_are_connected_subtrees() {
        let s = symbol();
        let costs = TaskCosts::compute(&s, &CostModel::real(FactoKind::Cholesky));
        let total = costs.total;
        let cl = subtree_clusters(&s, &costs, total / 20.0);
        assert!(cl.nclusters < s.ncblk(), "threshold merged nothing");
        // Every non-root member's parent belongs to the same cluster.
        for c in 0..s.ncblk() {
            let r = cl.root_of[c];
            if r != c {
                let p = s.off_blocks(c).first().map(|b| b.facing).unwrap();
                assert_eq!(cl.root_of[p], r, "cluster of {c} is not a subtree");
            }
        }
        // Roots are numbered consistently.
        for c in 0..s.ncblk() {
            assert_eq!(cl.cluster_of[c], cl.cluster_of[cl.root_of[c]]);
        }
    }

    #[test]
    fn cluster_work_respects_threshold() {
        let s = symbol();
        let costs = TaskCosts::compute(&s, &CostModel::real(FactoKind::Cholesky));
        let threshold = costs.total / 10.0;
        let cl = subtree_clusters(&s, &costs, threshold);
        let mut work = vec![0.0f64; cl.nclusters];
        for c in 0..s.ncblk() {
            work[cl.cluster_of[c]] += costs.task_1d(&s, c);
        }
        for (k, &w) in work.iter().enumerate() {
            // Multi-member clusters must respect the threshold; singletons
            // may exceed it (a single huge panel cannot be split here).
            let members = (0..s.ncblk()).filter(|&c| cl.cluster_of[c] == k).count();
            if members > 1 {
                assert!(w <= threshold * 1.0001, "cluster {k} too heavy: {w}");
            }
        }
    }
}
