//! Proportional mapping of the panel tree onto distributed nodes.
//!
//! PaStiX's distributed layer assigns each subtree of the elimination tree
//! to a group of nodes in proportion to its workload (the classic
//! proportional-mapping strategy behind its "two-level approach using …
//! MPI between different nodes", §I). This module implements that mapping
//! for the *panel* tree; `dagfact-core` uses it for the fan-in
//! communication study of the paper's future work ("this is called
//! 'fan-in' approach \[32\]", §VI).

use crate::cost::TaskCosts;
use crate::structure::SymbolMatrix;

/// Assignment of panels to `nnodes` distributed nodes.
#[derive(Debug, Clone)]
pub struct NodeMapping {
    /// Owning node of each panel.
    pub node_of: Vec<usize>,
    /// Number of nodes.
    pub nnodes: usize,
    /// Total 1D work assigned to each node.
    pub work: Vec<f64>,
}

/// Proportionally map the panel tree onto `nnodes` nodes: starting from
/// the roots with the full node set, each subtree recursively receives a
/// contiguous node range sized by its share of the work; once a subtree's
/// range narrows to one node, the whole subtree lands there. Panels above
/// the split points (the top separators) go to the first node of their
/// range, mirroring PaStiX's candidate-set narrowing.
pub fn proportional_mapping(
    symbol: &SymbolMatrix,
    costs: &TaskCosts,
    nnodes: usize,
) -> NodeMapping {
    assert!(nnodes >= 1);
    let ncblk = symbol.ncblk();
    // Children lists of the panel tree.
    let parent: Vec<Option<usize>> = (0..ncblk)
        .map(|c| symbol.off_blocks(c).first().map(|b| b.facing))
        .collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); ncblk];
    let mut roots: Vec<usize> = Vec::new();
    for (c, &par) in parent.iter().enumerate() {
        match par {
            Some(p) => children[p].push(c),
            None => roots.push(c),
        }
    }
    // Subtree work (ascending sweep: children first).
    let mut subtree = vec![0.0f64; ncblk];
    for c in 0..ncblk {
        subtree[c] += costs.task_1d(symbol, c);
        if let Some(p) = parent[c] {
            let w = subtree[c];
            subtree[p] += w;
        }
    }
    let mut node_of = vec![0usize; ncblk];
    let mut work = vec![0.0f64; nnodes];
    // Descend with explicit stack of (panel, node range).
    let mut stack: Vec<(usize, usize, usize)> = Vec::new(); // (panel, first, last_excl)
    {
        // Distribute the forest roots over the full range by work share.
        let total: f64 = roots.iter().map(|&r| subtree[r]).sum();
        let mut cursor = 0.0f64;
        for &r in &roots {
            let lo = ((cursor / total.max(f64::MIN_POSITIVE)) * nnodes as f64) as usize;
            cursor += subtree[r];
            let hi = (((cursor / total.max(f64::MIN_POSITIVE)) * nnodes as f64).ceil() as usize)
                .clamp(lo + 1, nnodes);
            stack.push((r, lo.min(nnodes - 1), hi));
        }
    }
    while let Some((c, lo, hi)) = stack.pop() {
        debug_assert!(lo < hi);
        // A panel whose candidate range spans several nodes (a top
        // separator) goes to the currently least-loaded candidate — the
        // greedy balance PaStiX applies within candidate sets.
        let target = (lo..hi)
            .min_by(|&a, &b| work[a].partial_cmp(&work[b]).unwrap())
            .unwrap();
        node_of[c] = target;
        work[target] += costs.task_1d(symbol, c);
        if hi - lo == 1 {
            // Whole subtree on one node: flood-fill without recursion depth
            // issues.
            let mut sub = children[c].clone();
            while let Some(d) = sub.pop() {
                node_of[d] = target;
                work[target] += costs.task_1d(symbol, d);
                sub.extend_from_slice(&children[d]);
            }
            continue;
        }
        // Split the node range among the children by work share.
        let total: f64 = children[c].iter().map(|&d| subtree[d]).sum();
        if total <= 0.0 {
            continue;
        }
        let span = (hi - lo) as f64;
        let mut cursor = 0.0f64;
        for &d in &children[c] {
            let start = lo + ((cursor / total) * span) as usize;
            cursor += subtree[d];
            let end = (lo + ((cursor / total) * span).ceil() as usize).clamp(start + 1, hi);
            stack.push((d, start.min(hi - 1), end));
        }
    }
    NodeMapping {
        node_of,
        nnodes,
        work,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::counts::column_counts;
    use crate::etree::{elimination_tree, postorder, relabel_parent};
    use crate::structure::{SplitOptions, SymbolMatrix};
    use crate::supernode::{amalgamate, build_partition, detect_supernodes, AmalgamationOptions};
    use crate::FactoKind;
    use dagfact_sparse::gen::grid_laplacian_3d;

    fn symbol() -> SymbolMatrix {
        let a = grid_laplacian_3d(12, 12, 12);
        let nd = dagfact_order::compute_ordering(
            a.pattern(),
            dagfact_order::OrderingKind::NestedDissection,
        );
        let sym = a.pattern().symmetrize().permute_symmetric(nd.perm());
        let parent = elimination_tree(&sym);
        let post = postorder(&parent);
        let mut perm = vec![0usize; post.len()];
        for (new, &old) in post.iter().enumerate() {
            perm[old] = new;
        }
        let permuted = sym.permute_symmetric(&perm);
        let parent = relabel_parent(&parent, &post);
        let (cc, _) = column_counts(&permuted, &parent);
        let first = detect_supernodes(&parent, &cc);
        let part = build_partition(&permuted, &parent, first);
        let part = amalgamate(part, &AmalgamationOptions::default());
        SymbolMatrix::from_partition(&part, &SplitOptions::default())
    }

    #[test]
    fn single_node_owns_everything() {
        let s = symbol();
        let costs = TaskCosts::compute(&s, &CostModel::real(FactoKind::Cholesky));
        let map = proportional_mapping(&s, &costs, 1);
        assert!(map.node_of.iter().all(|&n| n == 0));
        assert!((map.work[0] - (0..s.ncblk()).map(|c| costs.task_1d(&s, c)).sum::<f64>()).abs() < 1e-6);
    }

    #[test]
    fn work_is_roughly_balanced() {
        let s = symbol();
        let costs = TaskCosts::compute(&s, &CostModel::real(FactoKind::Cholesky));
        for nnodes in [2usize, 4, 8] {
            let map = proportional_mapping(&s, &costs, nnodes);
            let total: f64 = map.work.iter().sum();
            let mean = total / nnodes as f64;
            for (node, &w) in map.work.iter().enumerate() {
                assert!(
                    w > 0.05 * mean && w < 4.0 * mean,
                    "{nnodes} nodes: node {node} has work {w} vs mean {mean}"
                );
            }
        }
    }

    #[test]
    fn subtrees_stay_together_once_range_narrows() {
        let s = symbol();
        let costs = TaskCosts::compute(&s, &CostModel::real(FactoKind::Cholesky));
        let map = proportional_mapping(&s, &costs, 4);
        // Every panel's owner must be a valid node.
        assert!(map.node_of.iter().all(|&n| n < 4));
        // Locality proxy: most tree edges stay on one node (subtree
        // assignment), far more than a random mapping would give (~75%
        // cross-node at 4 nodes).
        let mut same = 0usize;
        let mut cross = 0usize;
        for c in 0..s.ncblk() {
            if let Some(b) = s.off_blocks(c).first() {
                if map.node_of[c] == map.node_of[b.facing] {
                    same += 1;
                } else {
                    cross += 1;
                }
            }
        }
        assert!(
            same > 3 * cross,
            "mapping fragments the tree: {same} same vs {cross} cross"
        );
    }
}
