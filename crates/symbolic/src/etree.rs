//! Elimination tree construction and postordering.
//!
//! The elimination tree (Liu \[19\] in the paper) is the backbone of every
//! later analysis step: `parent[j] = min{ i > j : L[i, j] ≠ 0 }`, computed
//! without forming `L` via union-find path compression over the upper
//! triangle of the symmetrized pattern.

use dagfact_sparse::SparsityPattern;

/// Sentinel parent value for roots.
pub const NO_PARENT: usize = usize::MAX;

/// Compute the elimination tree of a square, structurally symmetric
/// pattern. Returns `parent[j]` (`NO_PARENT` for roots). Liu's algorithm
/// with path halving: O(nnz·α(n)).
pub fn elimination_tree(pattern: &SparsityPattern) -> Vec<usize> {
    let n = pattern.ncols();
    let mut parent = vec![NO_PARENT; n];
    // ancestor[j]: partially compressed path toward the current root of
    // j's subtree.
    let mut ancestor = vec![NO_PARENT; n];
    for j in 0..n {
        // Upper-triangle entries of column j (i.e. rows i < j) state that
        // vertex i reaches j in the filled graph.
        for &i in pattern.col(j) {
            if i >= j {
                break; // rows are sorted; the rest is the lower triangle
            }
            let mut r = i;
            while ancestor[r] != NO_PARENT && ancestor[r] != j {
                let next = ancestor[r];
                ancestor[r] = j; // path compression
                r = next;
            }
            if ancestor[r] == NO_PARENT {
                ancestor[r] = j;
                parent[r] = j;
            }
        }
    }
    parent
}

/// Children lists of a forest given `parent[]`; children appear in
/// ascending order.
pub fn children_lists(parent: &[usize]) -> Vec<Vec<usize>> {
    let n = parent.len();
    let mut children = vec![Vec::new(); n];
    for (c, &p) in parent.iter().enumerate() {
        if p != NO_PARENT {
            children[p].push(c);
        }
    }
    children
}

/// Depth-first postorder of the forest: returns `post` with
/// `post[k] = old index of the k-th postordered vertex`. Children are
/// visited in ascending order, giving a deterministic result.
pub fn postorder(parent: &[usize]) -> Vec<usize> {
    let n = parent.len();
    let children = children_lists(parent);
    let mut post = Vec::with_capacity(n);
    // Iterative DFS to survive deep trees (band matrices give chains).
    let mut stack: Vec<(usize, usize)> = Vec::new(); // (vertex, child cursor)
    for (root, &par) in parent.iter().enumerate() {
        if par != NO_PARENT {
            continue;
        }
        stack.push((root, 0));
        while let Some(&mut (v, ref mut cursor)) = stack.last_mut() {
            if *cursor < children[v].len() {
                let c = children[v][*cursor];
                *cursor += 1;
                stack.push((c, 0));
            } else {
                post.push(v);
                stack.pop();
            }
        }
    }
    debug_assert_eq!(post.len(), n);
    post
}

/// Relabel a parent array under a postorder: returns `new_parent` where
/// `new_parent[new_j]` is the new label of `parent[post[new_j]]`.
pub fn relabel_parent(parent: &[usize], post: &[usize]) -> Vec<usize> {
    let n = parent.len();
    let mut inv = vec![0usize; n];
    for (new, &old) in post.iter().enumerate() {
        inv[old] = new;
    }
    let mut out = vec![NO_PARENT; n];
    for new_j in 0..n {
        let old_p = parent[post[new_j]];
        out[new_j] = if old_p == NO_PARENT {
            NO_PARENT
        } else {
            inv[old_p]
        };
    }
    out
}

/// `true` when `parent` is topologically labeled (`parent[j] > j` for every
/// non-root) — guaranteed after postordering.
pub fn is_topological(parent: &[usize]) -> bool {
    parent
        .iter()
        .enumerate()
        .all(|(j, &p)| p == NO_PARENT || p > j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagfact_sparse::gen::{grid_laplacian_2d, random_spd};

    /// Reference elimination tree via dense symbolic factorization.
    fn naive_etree(pattern: &SparsityPattern) -> Vec<usize> {
        let n = pattern.ncols();
        // Dense boolean fill: struct(j) starts as A's lower column, then
        // for each k < j with L[j,k] != 0 merge struct(k) \ {k}.
        let mut cols: Vec<Vec<bool>> = vec![vec![false; n]; n];
        for j in 0..n {
            for &i in pattern.col(j) {
                if i >= j {
                    cols[j][i] = true;
                }
            }
            for k in 0..j {
                if cols[k][j] {
                    let (head, tail) = cols.split_at_mut(j);
                    for (s, d) in head[k].iter().zip(tail[0].iter_mut()).skip(j + 1) {
                        if *s {
                            *d = true;
                        }
                    }
                }
            }
        }
        (0..n)
            .map(|j| {
                ((j + 1)..n)
                    .find(|&i| cols[j][i])
                    .unwrap_or(NO_PARENT)
            })
            .collect()
    }

    #[test]
    fn matches_naive_on_grid() {
        let a = grid_laplacian_2d(4, 4);
        let p = a.pattern().symmetrize();
        assert_eq!(elimination_tree(&p), naive_etree(&p));
    }

    #[test]
    fn matches_naive_on_random() {
        for seed in 0..5 {
            let a = random_spd(40, 3, seed);
            let p = a.pattern().symmetrize();
            assert_eq!(elimination_tree(&p), naive_etree(&p), "seed {seed}");
        }
    }

    #[test]
    fn tridiagonal_gives_chain() {
        let a = grid_laplacian_2d(6, 1);
        let parent = elimination_tree(&a.pattern().symmetrize());
        for (j, &pj) in parent.iter().enumerate().take(5) {
            assert_eq!(pj, j + 1);
        }
        assert_eq!(parent[5], NO_PARENT);
    }

    #[test]
    fn postorder_is_topological_relabel() {
        let a = random_spd(60, 3, 11);
        let p = a.pattern().symmetrize();
        let parent = elimination_tree(&p);
        let post = postorder(&parent);
        // post is a permutation.
        let mut seen = [false; 60];
        for &v in &post {
            assert!(!seen[v]);
            seen[v] = true;
        }
        let relabeled = relabel_parent(&parent, &post);
        assert!(is_topological(&relabeled));
        // Relabeling preserves the tree shape: the parent of post[k] maps
        // to the relabeled parent of k.
        let mut inv = vec![0usize; 60];
        for (new, &old) in post.iter().enumerate() {
            inv[old] = new;
        }
        for new_j in 0..60 {
            let old_j = post[new_j];
            if parent[old_j] == NO_PARENT {
                assert_eq!(relabeled[new_j], NO_PARENT);
            } else {
                assert_eq!(relabeled[new_j], inv[parent[old_j]]);
            }
        }
    }

    #[test]
    fn postorder_handles_forest() {
        // Two independent chains (block-diagonal pattern).
        let entries = vec![(0usize, 0usize), (1, 0), (1, 1), (2, 2), (3, 2), (3, 3)];
        let p = SparsityPattern::from_entries(4, 4, entries).symmetrize();
        let parent = elimination_tree(&p);
        assert_eq!(parent, vec![1, NO_PARENT, 3, NO_PARENT]);
        let post = postorder(&parent);
        assert_eq!(post.len(), 4);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 50_000-vertex path: recursion would blow the stack.
        let n = 50_000;
        let entries: Vec<(usize, usize)> = (0..n - 1).map(|i| (i + 1, i)).collect();
        let p = SparsityPattern::from_entries(n, n, entries).symmetrize();
        let parent = elimination_tree(&p);
        let post = postorder(&parent);
        assert_eq!(post.len(), n);
        assert!(is_topological(&relabel_parent(&parent, &post)));
    }
}
