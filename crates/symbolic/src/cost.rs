//! Flop cost model, critical-path priorities and the static list schedule.
//!
//! PaStiX "relies on a cost model of this 1D task to compute a static
//! scheduling \[that\] associates ready tasks with the first available
//! resources" (§III). This module computes:
//!
//! * per-panel and per-update flop counts (whose sum is the Flop column of
//!   Table I and the denominator of every GFlop/s figure),
//! * critical-path priorities used by all three runtimes to order ready
//!   queues,
//! * the greedy list schedule over a homogeneous worker set that the
//!   native engine replays at run time.

use crate::structure::SymbolMatrix;
use crate::FactoKind;

/// Arithmetic cost weights: how many "flops" a multiply and an add count
/// for; complex arithmetic uses (6, 2) per the conventional accounting.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Flops charged per scalar multiplication.
    pub mul: f64,
    /// Flops charged per scalar addition.
    pub add: f64,
    /// Factorization kind (LU doubles the panel-solve and update work).
    pub facto: FactoKind,
}

impl CostModel {
    /// Cost model for real ("D") arithmetic.
    pub fn real(facto: FactoKind) -> Self {
        CostModel {
            mul: 1.0,
            add: 1.0,
            facto,
        }
    }

    /// Cost model for double-complex ("Z") arithmetic.
    pub fn complex(facto: FactoKind) -> Self {
        CostModel {
            mul: 6.0,
            add: 2.0,
            facto,
        }
    }

    #[inline]
    fn muladd(&self, pairs: f64) -> f64 {
        pairs * (self.mul + self.add)
    }

    /// Flops of the diagonal-block factorization of a `w×w` block.
    pub fn facto_flops(&self, w: usize) -> f64 {
        let w3 = (w as f64).powi(3);
        match self.facto {
            FactoKind::Cholesky | FactoKind::Ldlt => self.muladd(w3 / 6.0),
            FactoKind::Lu => self.muladd(w3 / 3.0),
        }
    }

    /// Flops of the panel triangular solve: `h` off-diagonal rows against a
    /// `w×w` triangle (both factors for LU).
    pub fn trsm_flops(&self, w: usize, h: usize) -> f64 {
        let pairs = (h as f64) * (w as f64) * (w as f64) / 2.0;
        self.muladd(pairs) * self.facto.sides() as f64
    }

    /// Flops of one update task: `C -= A₁·A₂ᵀ` with `m` rows, `n` target
    /// columns, `k` panel width (both sides for LU).
    pub fn update_flops(&self, m: usize, n: usize, k: usize) -> f64 {
        let pairs = (m as f64) * (n as f64) * (k as f64);
        self.muladd(pairs) * self.facto.sides() as f64
    }
}

/// Per-task costs derived from a [`SymbolMatrix`].
#[derive(Debug, Clone)]
pub struct TaskCosts {
    /// Cost of each `panel(k)` task (diagonal factorization + panel TRSM).
    pub panel: Vec<f64>,
    /// Cost of each `update(k, b)` task, indexed like
    /// [`SymbolMatrix::blocks`] (entries for diagonal blocks are 0).
    pub update: Vec<f64>,
    /// Total factorization flops (Table I's Flop column).
    pub total: f64,
}

impl TaskCosts {
    /// Compute every task's flop count.
    pub fn compute(symbol: &SymbolMatrix, model: &CostModel) -> TaskCosts {
        let ncblk = symbol.ncblk();
        let mut panel = vec![0.0; ncblk];
        let mut update = vec![0.0; symbol.blocks.len()];
        let mut total = 0.0;
        for (c, pc) in panel.iter_mut().enumerate() {
            let cb = &symbol.cblks[c];
            let w = cb.width();
            let cost = model.facto_flops(w) + model.trsm_flops(w, cb.height_below());
            let blocks = symbol.panel_blocks(c);
            // Update tasks: block b (≥1) with everything at-and-below it.
            let mut below: usize = blocks.iter().skip(1).map(|b| b.nrows()).sum();
            for (local, b) in blocks.iter().enumerate().skip(1) {
                let m = below;
                let n = b.nrows();
                let u = model.update_flops(m, n, w);
                update[cb.block_begin + local] = u;
                total += u;
                below -= n;
            }
            *pc = cost;
            total += cost;
        }
        TaskCosts {
            panel,
            update,
            total,
        }
    }

    /// Cost of the original PaStiX 1D task for panel `c` (panel +
    /// all its updates) given the symbol: used by the native scheduler.
    pub fn task_1d(&self, symbol: &SymbolMatrix, c: usize) -> f64 {
        let cb = &symbol.cblks[c];
        self.panel[c] + self.update[cb.block_begin..cb.block_end].iter().sum::<f64>()
    }
}

/// Critical-path priority of each panel: cost of the panel's 1D task plus
/// the priority of the facing panel of its first off-diagonal block (its
/// elimination-tree parent). Higher = more urgent.
pub fn critical_path_priorities(symbol: &SymbolMatrix, costs: &TaskCosts) -> Vec<f64> {
    let ncblk = symbol.ncblk();
    let mut prio = vec![0.0f64; ncblk];
    // Descending sweep: parents (larger indices) first.
    for c in (0..ncblk).rev() {
        let own = costs.task_1d(symbol, c);
        let parent_prio = symbol
            .off_blocks(c)
            .first()
            .map(|b| prio[b.facing])
            .unwrap_or(0.0);
        prio[c] = own + parent_prio;
    }
    prio
}

/// Static list schedule of the 1D tasks over `nworkers` homogeneous
/// workers: the PaStiX analyze-time mapping. Returns `(owner, start_time)`
/// per panel and the simulated makespan.
///
/// Dependencies: panel `k` may start once every panel contributing an
/// update *into* `k` has completed (1D tasks bundle a panel with all its
/// outgoing updates).
pub fn static_schedule(
    symbol: &SymbolMatrix,
    costs: &TaskCosts,
    nworkers: usize,
) -> StaticSchedule {
    assert!(nworkers >= 1);
    let ncblk = symbol.ncblk();
    // Predecessor counts: contributors to each panel.
    let mut npred = vec![0usize; ncblk];
    for c in 0..ncblk {
        for b in symbol.off_blocks(c) {
            npred[b.facing] += 1;
        }
    }
    let prio = critical_path_priorities(symbol, costs);
    // Ready pool ordered by priority (then index for determinism).
    let mut ready: std::collections::BinaryHeap<(ordered_f64, core::cmp::Reverse<usize>)> =
        std::collections::BinaryHeap::new();
    for c in 0..ncblk {
        if npred[c] == 0 {
            ready.push((ordered_f64(prio[c]), core::cmp::Reverse(c)));
        }
    }
    let mut worker_time = vec![0.0f64; nworkers];
    let mut owner = vec![0usize; ncblk];
    let mut start = vec![0.0f64; ncblk];
    let mut finish = vec![0.0f64; ncblk];
    let mut done = 0usize;
    // Earliest-ready-time tracking: a task's data is ready when all its
    // contributors finished.
    let mut data_ready = vec![0.0f64; ncblk];
    while let Some((_, core::cmp::Reverse(c))) = ready.pop() {
        // Pick the worker that can start it earliest.
        let (w, _) = worker_time
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let t0 = worker_time[w].max(data_ready[c]);
        let t1 = t0 + costs.task_1d(symbol, c);
        owner[c] = w;
        start[c] = t0;
        finish[c] = t1;
        worker_time[w] = t1;
        done += 1;
        for b in symbol.off_blocks(c) {
            let f = b.facing;
            data_ready[f] = data_ready[f].max(t1);
            npred[f] -= 1;
            if npred[f] == 0 {
                ready.push((ordered_f64(prio[f]), core::cmp::Reverse(f)));
            }
        }
    }
    assert_eq!(done, ncblk, "schedule did not cover the DAG (cycle?)");
    let makespan = finish.iter().copied().fold(0.0, f64::max);
    StaticSchedule {
        owner,
        start,
        finish,
        makespan,
    }
}

/// Result of the analyze-time list scheduling.
#[derive(Debug, Clone)]
pub struct StaticSchedule {
    /// Worker assigned to each panel's 1D task.
    pub owner: Vec<usize>,
    /// Simulated start time per panel.
    pub start: Vec<f64>,
    /// Simulated finish time per panel.
    pub finish: Vec<f64>,
    /// Simulated makespan.
    pub makespan: f64,
}

/// Total-order wrapper for f64 priorities (NaN-free by construction).
#[derive(PartialEq, PartialOrd)]
#[allow(non_camel_case_types)]
struct ordered_f64(f64);
impl Eq for ordered_f64 {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for ordered_f64 {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.partial_cmp(other).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::column_counts;
    use crate::etree::{elimination_tree, postorder, relabel_parent};
    use crate::structure::SplitOptions;
    use crate::supernode::{amalgamate, build_partition, detect_supernodes, AmalgamationOptions};
    use dagfact_sparse::gen::grid_laplacian_2d;

    fn symbol(nx: usize, ny: usize) -> SymbolMatrix {
        let a = grid_laplacian_2d(nx, ny);
        // Nested dissection first: the natural band ordering yields a
        // chain-shaped DAG with no task parallelism at all.
        let nd = dagfact_order::compute_ordering(
            a.pattern(),
            dagfact_order::OrderingKind::NestedDissection,
        );
        let sym = a.pattern().symmetrize().permute_symmetric(nd.perm());
        let parent = elimination_tree(&sym);
        let post = postorder(&parent);
        let mut perm = vec![0usize; post.len()];
        for (new, &old) in post.iter().enumerate() {
            perm[old] = new;
        }
        let permuted = sym.permute_symmetric(&perm);
        let parent = relabel_parent(&parent, &post);
        let (cc, _) = column_counts(&permuted, &parent);
        let first = detect_supernodes(&parent, &cc);
        let part = build_partition(&permuted, &parent, first);
        let part = amalgamate(part, &AmalgamationOptions::default());
        SymbolMatrix::from_partition(&part, &SplitOptions { max_width: 16 })
    }

    #[test]
    fn dense_block_flop_formulas() {
        let m = CostModel::real(FactoKind::Cholesky);
        // n³/3 flops for Cholesky of an n×n block (muladd pairs = n³/6).
        assert!((m.facto_flops(30) - 9000.0).abs() < 1e-9);
        let lu = CostModel::real(FactoKind::Lu);
        assert!((lu.facto_flops(30) - 18000.0).abs() < 1e-9);
        // Complex GEMM charges 8 flops per pair.
        let z = CostModel::complex(FactoKind::Cholesky);
        assert_eq!(z.update_flops(2, 3, 4), 8.0 * 24.0);
        // LU updates both factors.
        assert_eq!(lu.update_flops(2, 3, 4), 2.0 * 2.0 * 24.0);
    }

    #[test]
    fn total_flops_are_positive_and_scale_with_problem() {
        let small = TaskCosts::compute(&symbol(8, 8), &CostModel::real(FactoKind::Cholesky));
        let large = TaskCosts::compute(&symbol(16, 16), &CostModel::real(FactoKind::Cholesky));
        assert!(small.total > 0.0);
        assert!(large.total > 4.0 * small.total, "flops must grow superlinearly");
    }

    #[test]
    fn priorities_decrease_toward_root() {
        let s = symbol(12, 12);
        let costs = TaskCosts::compute(&s, &CostModel::real(FactoKind::Cholesky));
        let prio = critical_path_priorities(&s, &costs);
        // Every panel has strictly higher priority than the panel its
        // first update feeds (it lies on the same root path).
        for c in 0..s.ncblk() {
            if let Some(b) = s.off_blocks(c).first() {
                assert!(prio[c] > prio[b.facing]);
            }
        }
    }

    #[test]
    fn schedule_respects_dependencies_and_workers() {
        let s = symbol(14, 14);
        let costs = TaskCosts::compute(&s, &CostModel::real(FactoKind::Cholesky));
        for nworkers in [1, 3, 7] {
            let sched = static_schedule(&s, &costs, nworkers);
            // Dependencies: contributor finishes before target starts.
            for c in 0..s.ncblk() {
                for b in s.off_blocks(c) {
                    assert!(
                        sched.finish[c] <= sched.start[b.facing] + 1e-9,
                        "panel {} starts before contributor {}",
                        b.facing,
                        c
                    );
                }
            }
            // No worker overlap: tasks on one worker are disjoint in time.
            let mut per_worker: Vec<Vec<(f64, f64)>> = vec![Vec::new(); nworkers];
            for c in 0..s.ncblk() {
                per_worker[sched.owner[c]].push((sched.start[c], sched.finish[c]));
            }
            for spans in &mut per_worker {
                spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                for w in spans.windows(2) {
                    assert!(w[0].1 <= w[1].0 + 1e-9, "overlap on a worker");
                }
            }
        }
    }

    #[test]
    fn more_workers_never_slower_and_eventually_faster() {
        let s = symbol(20, 20);
        let costs = TaskCosts::compute(&s, &CostModel::real(FactoKind::Cholesky));
        let t1 = static_schedule(&s, &costs, 1).makespan;
        let t4 = static_schedule(&s, &costs, 4).makespan;
        let t8 = static_schedule(&s, &costs, 8).makespan;
        assert!(t4 <= t1 * 1.000001);
        assert!(t8 <= t4 * 1.000001);
        assert!(t4 < 0.9 * t1, "no speedup from 4 workers: {t1} -> {t4}");
        // Serial time equals total 1D work.
        let total_1d: f64 = (0..s.ncblk()).map(|c| costs.task_1d(&s, c)).sum();
        assert!((t1 - total_1d).abs() < 1e-6 * total_1d);
    }
}
