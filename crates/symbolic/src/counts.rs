//! Factor column counts via row-subtree traversal.
//!
//! `cc[j] = |{ i ≥ j : L[i, j] ≠ 0 }|` (diagonal included). The classic
//! characterization says `L[i, j] ≠ 0` iff `j` belongs to the *row subtree*
//! of `i`: the union of etree paths from each `k` with `A[i, k] ≠ 0, k < i`
//! up toward `i`. Walking those paths with a per-row visit mark touches
//! every nonzero of `L` exactly once — O(nnz(L)) time, O(n) extra space,
//! and no structure is ever materialized.

use crate::etree::NO_PARENT;
use dagfact_sparse::SparsityPattern;

/// Column counts of the Cholesky factor of a symmetric pattern, given its
/// elimination tree. Also returns `nnz(L) = Σ cc[j]`.
pub fn column_counts(pattern: &SparsityPattern, parent: &[usize]) -> (Vec<usize>, usize) {
    let n = pattern.ncols();
    assert_eq!(parent.len(), n);
    let mut cc = vec![1usize; n]; // diagonal
    let mut mark = vec![usize::MAX; n];
    for i in 0..n {
        mark[i] = i;
        // Entries k < i of row i == entries k < i of column i (symmetry).
        for &k in pattern.col(i) {
            if k >= i {
                break;
            }
            let mut j = k;
            while mark[j] != i {
                cc[j] += 1; // L[i, j] is a nonzero
                mark[j] = i;
                match parent[j] {
                    NO_PARENT => break,
                    p => j = p,
                }
            }
        }
    }
    let nnz = cc.iter().sum();
    (cc, nnz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::elimination_tree;
    use dagfact_sparse::gen::{grid_laplacian_2d, grid_laplacian_3d, random_spd};

    /// Reference counts via dense symbolic factorization.
    fn naive_counts(pattern: &SparsityPattern) -> Vec<usize> {
        let n = pattern.ncols();
        let mut cols: Vec<Vec<bool>> = vec![vec![false; n]; n];
        for j in 0..n {
            cols[j][j] = true;
            for &i in pattern.col(j) {
                if i >= j {
                    cols[j][i] = true;
                }
            }
            for k in 0..j {
                if cols[k][j] {
                    let (head, tail) = cols.split_at_mut(j);
                    for (s, d) in head[k].iter().zip(tail[0].iter_mut()).skip(j) {
                        if *s {
                            *d = true;
                        }
                    }
                }
            }
        }
        cols.iter().map(|c| c.iter().filter(|&&b| b).count()).collect()
    }

    #[test]
    fn matches_naive_on_grid() {
        let a = grid_laplacian_2d(5, 4);
        let p = a.pattern().symmetrize();
        let parent = elimination_tree(&p);
        let (cc, nnz) = column_counts(&p, &parent);
        let reference = naive_counts(&p);
        assert_eq!(cc, reference);
        assert_eq!(nnz, reference.iter().sum::<usize>());
    }

    #[test]
    fn matches_naive_on_random_patterns() {
        for seed in 0..6 {
            let a = random_spd(35, 3, 100 + seed);
            let p = a.pattern().symmetrize();
            let parent = elimination_tree(&p);
            let (cc, _) = column_counts(&p, &parent);
            assert_eq!(cc, naive_counts(&p), "seed {seed}");
        }
    }

    #[test]
    fn dense_matrix_counts_are_triangular() {
        // Fully dense 6x6: cc[j] = n - j.
        let n = 6;
        let mut entries = Vec::new();
        for i in 0..n {
            for j in 0..n {
                entries.push((i, j));
            }
        }
        let p = SparsityPattern::from_entries(n, n, entries);
        let parent = elimination_tree(&p);
        let (cc, nnz) = column_counts(&p, &parent);
        assert_eq!(cc, vec![6, 5, 4, 3, 2, 1]);
        assert_eq!(nnz, 21);
    }

    #[test]
    fn diagonal_matrix_counts_are_ones() {
        let p = SparsityPattern::from_entries(5, 5, (0..5).map(|i| (i, i)));
        let parent = elimination_tree(&p);
        let (cc, nnz) = column_counts(&p, &parent);
        assert_eq!(cc, vec![1; 5]);
        assert_eq!(nnz, 5);
    }

    #[test]
    fn counts_monotone_along_chain_for_band() {
        // 3D grids exercise nontrivial fill; nnz(L) must be at least
        // nnz(lower(A)).
        let a = grid_laplacian_3d(5, 5, 5);
        let p = a.pattern().symmetrize();
        let parent = elimination_tree(&p);
        let (_, nnz) = column_counts(&p, &parent);
        let lower_a = (p.nnz() - 125) / 2 + 125;
        assert!(nnz >= lower_a, "nnzL {nnz} < nnz(lower A) {lower_a}");
    }

    use dagfact_sparse::SparsityPattern;
}
