//! Supernode detection, supernodal row structures, and amalgamation.
//!
//! A supernode is a maximal range of consecutive columns sharing the same
//! below-diagonal structure; each becomes a *panel* (tall skinny dense
//! block) of the factor. The amalgamation step (He´non-Ramet-Roman \[25\] in
//! the paper) merges small supernodes into their parent, accepting bounded
//! extra fill-in: "the default parameter for amalgamation has been slightly
//! increased to allow up to 12% more fill-in to build larger blocks" (§V).

use crate::etree::NO_PARENT;
use dagfact_sparse::SparsityPattern;

/// Options controlling supernode amalgamation.
#[derive(Debug, Clone)]
pub struct AmalgamationOptions {
    /// Global extra-fill budget, as a fraction of the un-amalgamated
    /// factor nnz. The paper raises the default "to allow up to 12% more
    /// fill-in to build larger blocks" for the GPUs (§V).
    pub fill_ratio: f64,
    /// Merges producing a panel at most this wide are free (don't draw
    /// from the budget): panels below this width make tasks too small for
    /// any scheduler, so they are coalesced unconditionally.
    pub min_width: usize,
}

impl Default for AmalgamationOptions {
    fn default() -> Self {
        AmalgamationOptions {
            fill_ratio: 0.12,
            min_width: 8,
        }
    }
}

/// A supernode partition of the columns `0..n`, with per-supernode row
/// structures: `rows[s]` lists the factor rows *below* the supernode's own
/// columns (sorted, global indices).
#[derive(Debug, Clone)]
pub struct SupernodePartition {
    /// First column of each supernode, ascending; an extra terminal entry
    /// equals `n` so `cols(s) = first[s]..first[s+1]`.
    pub first: Vec<usize>,
    /// `snode_of[j]`: supernode containing column `j`.
    pub snode_of: Vec<usize>,
    /// Below-diagonal row structure of each supernode.
    pub rows: Vec<Vec<usize>>,
    /// Supernode-tree parent (the supernode of the parent of the last
    /// column), `NO_PARENT` for roots.
    pub parent: Vec<usize>,
}

impl SupernodePartition {
    /// Number of supernodes.
    pub fn len(&self) -> usize {
        self.first.len() - 1
    }

    /// `true` when the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Column range of supernode `s`.
    pub fn cols(&self, s: usize) -> core::ops::Range<usize> {
        self.first[s]..self.first[s + 1]
    }

    /// Width (number of columns) of supernode `s`.
    pub fn width(&self, s: usize) -> usize {
        self.first[s + 1] - self.first[s]
    }

    /// nnz(L) under this partition (panels are dense: width·(width+1)/2
    /// diagonal entries plus width·|rows| below). Saturates instead of
    /// wrapping on degenerate partitions.
    pub fn nnz_factor(&self) -> usize {
        (0..self.len()).fold(0usize, |acc, s| {
            let w = self.width(s);
            let tri = w
                .checked_add(1)
                .and_then(|w1| w.checked_mul(w1))
                .map(|x| x / 2);
            let panel = tri
                .and_then(|t| w.checked_mul(self.rows[s].len()).and_then(|wr| t.checked_add(wr)))
                .unwrap_or(usize::MAX);
            acc.saturating_add(panel)
        })
    }
}

/// Detect *fundamental-style* supernodes from the elimination tree and
/// column counts: columns `j` and `j+1` share a supernode iff
/// `parent[j] == j+1` and `cc[j+1] == cc[j] - 1` (then
/// `struct(j+1) = struct(j) ∖ {j}`). Requires a topologically-labeled
/// (postordered) tree.
pub fn detect_supernodes(parent: &[usize], cc: &[usize]) -> Vec<usize> {
    let n = parent.len();
    let mut first = vec![0usize];
    for j in 1..n {
        let fused = parent[j - 1] == j && cc[j] + 1 == cc[j - 1];
        if !fused {
            first.push(j);
        }
    }
    first.push(n);
    first
}

/// Build the full partition: row structures via bottom-up merging (children
/// structures minus own columns, union the original pattern columns), and
/// the supernode tree.
pub fn build_partition(
    pattern: &SparsityPattern,
    parent: &[usize],
    first: Vec<usize>,
) -> SupernodePartition {
    let n = pattern.ncols();
    let nsup = first.len() - 1;
    let mut snode_of = vec![0usize; n];
    for s in 0..nsup {
        snode_of[first[s]..first[s + 1]].fill(s);
    }
    // Supernode-tree parent: parent of the last column.
    let mut sparent = vec![NO_PARENT; nsup];
    for s in 0..nsup {
        let last = first[s + 1] - 1;
        if parent[last] != NO_PARENT {
            sparent[s] = snode_of[parent[last]];
        }
    }
    // Row structures bottom-up. The tree is topologically labeled, so a
    // simple ascending sweep visits children before parents.
    let mut rows: Vec<Vec<usize>> = vec![Vec::new(); nsup];
    let mut merge_buf: Vec<usize> = Vec::new();
    for s in 0..nsup {
        let (fc, lc) = (first[s], first[s + 1]);
        merge_buf.clear();
        // Original pattern entries below the supernode.
        for j in fc..lc {
            for &i in pattern.col(j) {
                if i >= lc {
                    merge_buf.push(i);
                }
            }
        }
        // Children contributions were stashed into rows[s] as the children
        // were finalized (ascending sweep visits children first).
        merge_buf.extend(rows[s].iter().copied());
        merge_buf.sort_unstable();
        merge_buf.dedup();
        // Everything below lc stays (contributions to ancestors).
        rows[s] = merge_buf.iter().copied().filter(|&i| i >= lc).collect();
        // Push this supernode's rows up to the parent (rows beyond the
        // parent's own columns). The parent's buffer accumulates them
        // before its own pass.
        if sparent[s] != NO_PARENT {
            let p = sparent[s];
            let plc = first[p + 1];
            // Rows of s that lie beyond the parent's columns flow into the
            // parent's structure; rows inside the parent's columns are
            // absorbed by the parent's diagonal block.
            let inherited: Vec<usize> = rows[s].iter().copied().filter(|&i| i >= plc).collect();
            rows[p].extend(inherited);
        }
    }
    SupernodePartition {
        first,
        snode_of,
        rows,
        parent: sparent,
    }
}

/// Amalgamation following Hénon-Ramet-Roman \[25\]: repeatedly apply the
/// *cheapest* child→parent merge (smallest extra fill) while the total
/// extra fill stays within `fill_ratio` of the original factor nnz. A
/// merge requires the parent's columns to start right after the child's so
/// the merged panel stays contiguous.
///
/// Cheapest-first with a global budget concentrates the allowance on the
/// tiny supernodes at the bottom of the tree (the ones whose tasks would
/// otherwise be too small for any runtime — and far too small for a GPU,
/// §V), which is exactly how PaStiX uses it.
pub fn amalgamate(
    partition: SupernodePartition,
    options: &AmalgamationOptions,
) -> SupernodePartition {
    let nsup = partition.len();
    let n = partition.snode_of.len();
    // Group state, indexed by the group's *root* supernode id.
    let mut live_first: Vec<usize> = (0..nsup).map(|s| partition.first[s]).collect();
    let live_last: Vec<usize> = (0..nsup).map(|s| partition.first[s + 1]).collect();
    let mut rows: Vec<Vec<usize>> = partition.rows.clone();
    let parent: Vec<usize> = partition.parent.clone();
    let mut alive: Vec<bool> = vec![true; nsup];
    let mut merged_into: Vec<usize> = (0..nsup).collect();
    // Checked arithmetic throughout the cost model: a pathological
    // partition (widths near the usize range) must price a merge as
    // "infinitely expensive" instead of wrapping and looking cheap.
    let group_nnz = |w: usize, r: usize| -> usize {
        let tri = w
            .checked_add(1)
            .and_then(|w1| w.checked_mul(w1))
            .map(|x| x / 2);
        tri.and_then(|t| w.checked_mul(r).and_then(|wr| t.checked_add(wr)))
            .unwrap_or(usize::MAX)
    };
    let mut cur_nnz: Vec<usize> = (0..nsup)
        .map(|s| group_nnz(partition.width(s), partition.rows[s].len()))
        .collect();
    let total_orig: usize = cur_nnz.iter().fold(0usize, |a, &x| a.saturating_add(x));
    let mut budget = (options.fill_ratio * total_orig as f64) as i64;
    // A generation stamp per group invalidates stale heap entries after a
    // group takes part in a merge.
    let mut generation: Vec<u32> = vec![0; nsup];

    fn find(merged_into: &[usize], mut s: usize) -> usize {
        while merged_into[s] != s {
            s = merged_into[s];
        }
        s
    }

    // Candidate merge of child-group `c` into parent-group `p`: extra fill
    // and the merged row structure.
    let evaluate = |c: usize,
                    p: usize,
                    live_first: &[usize],
                    rows: &[Vec<usize>],
                    cur_nnz: &[usize]|
     -> (i64, Vec<usize>) {
        let wc = live_last[c] - live_first[c];
        let wp = live_last[p] - live_first[p];
        let mut merged: Vec<usize> = rows[c]
            .iter()
            .copied()
            .filter(|&i| i >= live_last[p])
            .chain(rows[p].iter().copied())
            .collect();
        merged.sort_unstable();
        merged.dedup();
        let new_nnz = group_nnz(wc.saturating_add(wp), merged.len());
        let old_nnz = cur_nnz[c].saturating_add(cur_nnz[p]);
        let fill = i64::try_from(new_nnz)
            .unwrap_or(i64::MAX)
            .saturating_sub(i64::try_from(old_nnz).unwrap_or(i64::MAX));
        (fill, merged)
    };

    // Min-heap of candidate merges keyed by extra fill; entries carry the
    // generation stamps they were computed under.
    use std::cmp::Reverse;
    let mut heap: std::collections::BinaryHeap<Reverse<(i64, usize, u32, u32)>> =
        std::collections::BinaryHeap::new();
    let push_candidate = |heap: &mut std::collections::BinaryHeap<Reverse<(i64, usize, u32, u32)>>,
                              s: usize,
                              live_first: &[usize],
                              rows: &[Vec<usize>],
                              cur_nnz: &[usize],
                              merged_into: &[usize],
                              generation: &[u32]| {
        let p0 = parent[s];
        if p0 == NO_PARENT {
            return;
        }
        let p = find(merged_into, p0);
        if p == s || live_first[p] != live_last[s] {
            return;
        }
        let (fill, _) = evaluate(s, p, live_first, rows, cur_nnz);
        heap.push(Reverse((fill, s, generation[s], generation[p])));
    };
    for s in 0..nsup {
        push_candidate(&mut heap, s, &live_first, &rows, &cur_nnz, &merged_into, &generation);
    }
    // Live group ending at a given column (live_last never changes for a
    // live group): used to discover children whose contiguity with a
    // grown parent group only becomes true after a merge.
    let mut end_map: std::collections::HashMap<usize, usize> =
        (0..nsup).map(|s| (live_last[s], s)).collect();

    while let Some(Reverse((fill, s, gen_s, _gen_p))) = heap.pop() {
        if !alive[s] || generation[s] != gen_s {
            continue;
        }
        let p = find(&merged_into, parent[s]);
        if p == s || !alive[p] || live_first[p] != live_last[s] {
            continue;
        }
        // Re-evaluate: the parent group may have changed since this entry
        // was pushed (its generation moved on).
        let (fill_now, merged_rows) = evaluate(s, p, &live_first, &rows, &cur_nnz);
        if fill_now > fill {
            // Stale optimistic entry: reinsert with the fresh cost.
            heap.push(Reverse((fill_now, s, generation[s], generation[p])));
            continue;
        }
        // Tiny groups may always merge (their absolute fill is small and
        // the resulting task would otherwise be un-schedulable); larger
        // merges draw from the global budget.
        let w = live_last[p] - live_first[s];
        let tiny = w <= options.min_width;
        if !tiny && fill_now > budget {
            continue; // too expensive now; cheaper candidates also popped
        }
        if !tiny {
            budget -= fill_now.max(0);
        }
        // Commit the merge: p absorbs s.
        live_first[p] = live_first[s];
        cur_nnz[p] = group_nnz(w, merged_rows.len());
        rows[p] = merged_rows;
        alive[s] = false;
        merged_into[s] = p;
        generation[p] += 1;
        end_map.remove(&live_last[s]);
        // New candidates: the merged group into *its* parent, and the
        // group that now abuts p from below (if its tree parent resolves
        // to p, push_candidate accepts it).
        push_candidate(&mut heap, p, &live_first, &rows, &cur_nnz, &merged_into, &generation);
        if let Some(&g) = end_map.get(&live_first[p]) {
            if alive[g] {
                push_candidate(&mut heap, g, &live_first, &rows, &cur_nnz, &merged_into, &generation);
            }
        }
    }

    // Rebuild a compact partition.
    let mut order: Vec<usize> = (0..nsup).filter(|&s| alive[s]).collect();
    order.sort_by_key(|&s| live_first[s]);
    let mut first = Vec::with_capacity(order.len() + 1);
    let mut new_rows = Vec::with_capacity(order.len());
    for &s in &order {
        first.push(live_first[s]);
        new_rows.push(std::mem::take(&mut rows[s]));
    }
    first.push(n);
    let mut snode_of = vec![0usize; n];
    for (new_s, w) in first.windows(2).enumerate() {
        snode_of[w[0]..w[1]].fill(new_s);
    }
    // Recompute the supernode tree from the merged structures: parent =
    // supernode of the smallest row (first ancestor receiving an update),
    // falling back to NO_PARENT for top supernodes.
    let nlive = order.len();
    let mut sparent = vec![NO_PARENT; nlive];
    for s in 0..nlive {
        if let Some(&r) = new_rows[s].first() {
            sparent[s] = snode_of[r];
        }
    }
    SupernodePartition {
        first,
        snode_of,
        rows: new_rows,
        parent: sparent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::column_counts;
    use crate::etree::{elimination_tree, is_topological, postorder, relabel_parent};
    use dagfact_sparse::gen::{grid_laplacian_2d, random_spd};

    fn prepared(pattern: &SparsityPattern) -> (SparsityPattern, Vec<usize>, Vec<usize>) {
        let sym = pattern.symmetrize();
        let parent = elimination_tree(&sym);
        let post = postorder(&parent);
        let mut perm = vec![0usize; post.len()];
        for (new, &old) in post.iter().enumerate() {
            perm[old] = new;
        }
        let permuted = sym.permute_symmetric(&perm);
        let parent2 = relabel_parent(&parent, &post);
        assert!(is_topological(&parent2));
        let (cc, _) = column_counts(&permuted, &parent2);
        (permuted, parent2, cc)
    }

    /// struct(L[:, j]) from dense symbolic factorization (diag excluded).
    fn naive_struct_below(pattern: &SparsityPattern) -> Vec<Vec<usize>> {
        let n = pattern.ncols();
        let mut cols: Vec<Vec<bool>> = vec![vec![false; n]; n];
        for j in 0..n {
            for &i in pattern.col(j) {
                if i > j {
                    cols[j][i] = true;
                }
            }
            for k in 0..j {
                if cols[k][j] {
                    let (head, tail) = cols.split_at_mut(j);
                    for (s, d) in head[k].iter().zip(tail[0].iter_mut()).skip(j + 1) {
                        if *s {
                            *d = true;
                        }
                    }
                }
            }
        }
        cols.into_iter()
            .map(|c| c.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect())
            .collect()
    }

    #[test]
    fn partition_covers_columns_contiguously() {
        let a = grid_laplacian_2d(7, 7);
        let (p, parent, cc) = prepared(a.pattern());
        let first = detect_supernodes(&parent, &cc);
        let part = build_partition(&p, &parent, first);
        assert_eq!(*part.first.first().unwrap(), 0);
        assert_eq!(*part.first.last().unwrap(), 49);
        for s in 0..part.len() {
            assert!(part.width(s) >= 1);
            for j in part.cols(s) {
                assert_eq!(part.snode_of[j], s);
            }
        }
    }

    #[test]
    fn supernode_structures_match_naive_symbolic() {
        for seed in [1u64, 9, 23] {
            let a = random_spd(30, 3, seed);
            let (p, parent, cc) = prepared(a.pattern());
            let first = detect_supernodes(&parent, &cc);
            let part = build_partition(&p, &parent, first);
            let naive = naive_struct_below(&p);
            for s in 0..part.len() {
                let fc = part.cols(s).start;
                let lc = part.cols(s).end;
                // struct of the FIRST column below the supernode's columns
                // must equal the supernode's row list.
                let expect: Vec<usize> =
                    naive[fc].iter().copied().filter(|&i| i >= lc).collect();
                assert_eq!(part.rows[s], expect, "seed {seed} snode {s}");
            }
        }
    }

    #[test]
    fn nnz_factor_matches_column_counts() {
        let a = grid_laplacian_2d(8, 6);
        let (p, parent, cc) = prepared(a.pattern());
        let nnz_cc: usize = cc.iter().sum();
        let first = detect_supernodes(&parent, &cc);
        let part = build_partition(&p, &parent, first);
        assert_eq!(part.nnz_factor(), nnz_cc);
    }

    #[test]
    fn amalgamation_reduces_supernode_count_with_bounded_fill() {
        let a = grid_laplacian_2d(12, 12);
        let (p, parent, cc) = prepared(a.pattern());
        let first = detect_supernodes(&parent, &cc);
        let part = build_partition(&p, &parent, first);
        let nnz0 = part.nnz_factor();
        let count0 = part.len();
        let opts = AmalgamationOptions {
            fill_ratio: 0.12,
            min_width: 4,
        };
        let merged = amalgamate(part, &opts);
        assert!(merged.len() < count0, "no merge happened");
        // Every column still covered, tree still topological on snodes.
        assert_eq!(*merged.first.last().unwrap(), 144);
        for s in 0..merged.len() {
            if merged.parent[s] != NO_PARENT {
                assert!(merged.parent[s] > s, "snode tree not topological");
            }
        }
        // Fill growth respects a loose global bound (per-merge bound is
        // 12%, but min-width merges may add a bit more).
        let nnz1 = merged.nnz_factor();
        assert!(nnz1 >= nnz0);
        assert!(
            (nnz1 as f64) < 2.0 * nnz0 as f64,
            "unreasonable fill growth: {nnz0} -> {nnz1}"
        );
    }

    #[test]
    fn zero_ratio_amalgamation_only_merges_tiny_snodes() {
        let a = random_spd(40, 3, 5);
        let (p, parent, cc) = prepared(a.pattern());
        let first = detect_supernodes(&parent, &cc);
        let part = build_partition(&p, &parent, first);
        let nnz0 = part.nnz_factor();
        let merged = amalgamate(
            part,
            &AmalgamationOptions {
                fill_ratio: 0.0,
                min_width: 1,
            },
        );
        // ratio 0 + min_width 1 accepts only zero-fill merges.
        assert_eq!(merged.nnz_factor(), nnz0);
    }

    use dagfact_sparse::SparsityPattern;
}
