//! # dagfact-symbolic
//!
//! The analysis half of the supernodal solver (§III of the paper): given a
//! permuted, symmetrized sparsity pattern, predict the structure of the
//! factor and carve it into the panels and blocks that become tasks.
//!
//! Pipeline (all value-free — static pivoting means the DAG depends only on
//! structure):
//!
//! 1. [`etree::elimination_tree`] — Liu's algorithm with path compression;
//! 2. [`etree::postorder`] — relabeling that makes supernodes contiguous;
//! 3. [`counts::column_counts`] — `|struct(L₍:,j₎)|` via row-subtree
//!    traversal (O(nnz(L)) time, O(n) space);
//! 4. [`supernode`] — fundamental supernode detection, supernodal row
//!    structures, and the amalgamation step the paper tunes to "allow up to
//!    12% more fill-in to build larger blocks" for the GPUs (§V);
//! 5. [`structure`] — vertical splitting of wide panels and the final
//!    [`structure::SymbolMatrix`]: column blocks (panels) × row blocks,
//!    PaStiX's compressed symbolic structure;
//! 6. [`cost`] — flop counts per task (Table I's TFlop column), critical-
//!    path priorities, and the list-scheduling cost simulation behind the
//!    native scheduler's static mapping.

pub mod cluster;
pub mod cost;
pub mod counts;
pub mod mapping;
pub mod etree;
pub mod structure;
pub mod supernode;

pub use cluster::{subtree_clusters, SubtreeClustering};
pub use cost::{CostModel, TaskCosts};
pub use mapping::{proportional_mapping, NodeMapping};
pub use structure::{Block, CBlk, SymbolMatrix};
pub use supernode::{AmalgamationOptions, SupernodePartition};

/// Which factorization the solver will run; drives flop counts and, in the
/// numeric phase, kernel selection. Names follow Table I of the paper
/// (`LLᵀ`, `LDLᵀ`, `LU`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FactoKind {
    /// Cholesky `A = L·Lᵀ` for symmetric positive definite problems.
    Cholesky,
    /// `A = L·D·Lᵀ` without pivoting for symmetric indefinite problems.
    Ldlt,
    /// `A = L·U` with static pivoting for structurally-symmetric
    /// unsymmetric problems.
    Lu,
}

impl FactoKind {
    /// Short paper-style label.
    pub fn label(self) -> &'static str {
        match self {
            FactoKind::Cholesky => "LLt",
            FactoKind::Ldlt => "LDLt",
            FactoKind::Lu => "LU",
        }
    }

    /// LU stores and updates both an L and a U panel: twice the data and
    /// twice the update work of the symmetric factorizations.
    pub fn sides(self) -> usize {
        match self {
            FactoKind::Lu => 2,
            _ => 1,
        }
    }
}
