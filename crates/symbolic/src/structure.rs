//! Block symbolic structure: panels (column blocks) × row blocks.
//!
//! This is PaStiX's compressed symbol matrix. Each supernode — possibly
//! split vertically "prior to the factorization to limit the task
//! granularity and create more parallelism" (§III) — becomes a [`CBlk`]
//! whose coefficients are stored as one dense column-major panel. The
//! panel's rows are grouped into [`Block`]s, each facing the column block
//! that owns those rows; `update(k → facing)` tasks are generated per
//! (panel, off-diagonal block) pair, exactly the paper's extended task set
//! (§V: "the number of tasks is bound by the number of blocks in the
//! symbolic structure").

use crate::supernode::SupernodePartition;

/// A column block (panel): a contiguous column range plus the list of its
/// row blocks. `stride` is the panel height (Σ block heights), i.e. the
/// leading dimension of the dense panel storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CBlk {
    /// First column (inclusive).
    pub fcol: usize,
    /// Last column (exclusive).
    pub lcol: usize,
    /// Range of this panel's blocks in [`SymbolMatrix::blocks`]; block 0 of
    /// the range is always the diagonal block.
    pub block_begin: usize,
    /// End (exclusive) of the block range.
    pub block_end: usize,
    /// Total stored rows of the panel (leading dimension of its storage).
    pub stride: usize,
}

impl CBlk {
    /// Panel width in columns.
    pub fn width(&self) -> usize {
        self.lcol - self.fcol
    }

    /// Rows strictly below the diagonal block.
    pub fn height_below(&self) -> usize {
        self.stride - self.width()
    }
}

/// A row block inside a panel: a contiguous global row range whose rows all
/// belong to the columns of one facing panel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// First row (inclusive, global index).
    pub frow: usize,
    /// Last row (exclusive).
    pub lrow: usize,
    /// Column block owning rows `frow..lrow` (for the diagonal block this
    /// is the panel itself).
    pub facing: usize,
    /// Row offset of this block inside its panel's dense storage.
    pub local_offset: usize,
}

impl Block {
    /// Number of rows in the block.
    pub fn nrows(&self) -> usize {
        self.lrow - self.frow
    }
}

/// Options for panel splitting.
#[derive(Debug, Clone)]
pub struct SplitOptions {
    /// Panels wider than this are split into chunks of at most this many
    /// columns ("supernodes of the higher levels are split vertically",
    /// §III).
    pub max_width: usize,
}

impl Default for SplitOptions {
    fn default() -> Self {
        SplitOptions { max_width: 128 }
    }
}

/// The complete block symbolic structure of the factor.
#[derive(Debug, Clone)]
pub struct SymbolMatrix {
    /// Matrix order.
    pub n: usize,
    /// Column blocks, ascending by `fcol`.
    pub cblks: Vec<CBlk>,
    /// All row blocks, grouped per column block.
    pub blocks: Vec<Block>,
    /// Map from column to its column block.
    pub col_to_cblk: Vec<usize>,
}

impl SymbolMatrix {
    /// Build the block structure from an (amalgamated) supernode
    /// partition, splitting wide panels.
    pub fn from_partition(partition: &SupernodePartition, split: &SplitOptions) -> SymbolMatrix {
        let n = partition.snode_of.len();
        assert!(split.max_width >= 1);
        // 1) Final column partition: chunks of each supernode.
        //    chunk_cols[c] = (fcol, lcol, owning supernode)
        let mut chunks: Vec<(usize, usize, usize)> = Vec::new();
        for s in 0..partition.len() {
            let cols = partition.cols(s);
            let w = cols.len();
            let nchunk = w.div_ceil(split.max_width);
            // Spread columns evenly so chunks differ by at most one column
            // (better balance than one ragged tail chunk).
            let base = w / nchunk;
            let extra = w % nchunk;
            let mut fc = cols.start;
            for c in 0..nchunk {
                let width = base + usize::from(c < extra);
                chunks.push((fc, fc + width, s));
                fc += width;
            }
            debug_assert_eq!(fc, cols.end);
        }
        let ncblk = chunks.len();
        let mut col_to_cblk = vec![0usize; n];
        for (ci, &(fc, lc, _)) in chunks.iter().enumerate() {
            col_to_cblk[fc..lc].fill(ci);
        }
        // 2) Per-chunk row set: the columns of later chunks of the same
        //    supernode, then the supernode's below rows. Group consecutive
        //    runs into blocks, splitting at facing-cblk boundaries.
        let mut cblks = Vec::with_capacity(ncblk);
        let mut blocks: Vec<Block> = Vec::new();
        let mut rowbuf: Vec<usize> = Vec::new();
        for &(fc, lc, s) in &chunks {
            let block_begin = blocks.len();
            // Diagonal block first.
            blocks.push(Block {
                frow: fc,
                lrow: lc,
                facing: col_to_cblk[fc],
                local_offset: 0,
            });
            let mut offset = lc - fc;
            rowbuf.clear();
            // Remaining columns of the parent supernode (dense below the
            // diagonal within a supernode).
            rowbuf.extend(lc..partition.cols(s).end);
            rowbuf.extend(partition.rows[s].iter().copied());
            // rows are sorted: cols(s).end <= rows[s][0].
            let mut i = 0;
            while i < rowbuf.len() {
                let frow = rowbuf[i];
                let facing = col_to_cblk[frow];
                let mut lrow = frow + 1;
                let mut next = i + 1;
                while next < rowbuf.len()
                    && rowbuf[next] == lrow
                    && col_to_cblk[rowbuf[next]] == facing
                {
                    lrow += 1;
                    next += 1;
                }
                blocks.push(Block {
                    frow,
                    lrow,
                    facing,
                    local_offset: offset,
                });
                offset += lrow - frow;
                i = next;
            }
            cblks.push(CBlk {
                fcol: fc,
                lcol: lc,
                block_begin,
                block_end: blocks.len(),
                stride: offset,
            });
        }
        SymbolMatrix {
            n,
            cblks,
            blocks,
            col_to_cblk,
        }
    }

    /// Number of column blocks (panels).
    pub fn ncblk(&self) -> usize {
        self.cblks.len()
    }

    /// Blocks of panel `c` (first entry is the diagonal block).
    pub fn panel_blocks(&self, c: usize) -> &[Block] {
        &self.blocks[self.cblks[c].block_begin..self.cblks[c].block_end]
    }

    /// Off-diagonal blocks of panel `c`.
    pub fn off_blocks(&self, c: usize) -> &[Block] {
        &self.blocks[self.cblks[c].block_begin + 1..self.cblks[c].block_end]
    }

    /// Stored entries of the factor (one triangle; double it for LU's two
    /// factors minus the shared diagonal).
    pub fn nnz_factor(&self) -> usize {
        self.cblks
            .iter()
            .map(|cb| {
                let w = cb.width();
                // Diagonal block counted as a full triangle, off-diagonal
                // blocks fully.
                w * (w + 1) / 2 + cb.height_below() * w
            })
            .sum()
    }

    /// Locate the storage row of global row `row` inside panel `c`
    /// (panics if the row is not part of the panel's structure — symbolic
    /// closure guarantees it for legal updates).
    pub fn row_offset_in_panel(&self, c: usize, row: usize) -> usize {
        for b in self.panel_blocks(c) {
            if row >= b.frow && row < b.lrow {
                return b.local_offset + (row - b.frow);
            }
        }
        panic!("row {row} absent from panel {c} structure");
    }

    /// Total update tasks (couples of panels): one per off-diagonal block.
    pub fn n_update_tasks(&self) -> usize {
        self.blocks.len() - self.cblks.len()
    }

    /// Structural sanity check used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        let mut expected_col = 0usize;
        for (ci, cb) in self.cblks.iter().enumerate() {
            if cb.fcol != expected_col {
                return Err(format!("cblk {ci} starts at {} != {expected_col}", cb.fcol));
            }
            if cb.lcol <= cb.fcol {
                return Err(format!("cblk {ci} empty"));
            }
            expected_col = cb.lcol;
            let blocks = self.panel_blocks(ci);
            if blocks.is_empty() {
                return Err(format!("cblk {ci} has no diagonal block"));
            }
            let diag = &blocks[0];
            if diag.frow != cb.fcol || diag.lrow != cb.lcol || diag.facing != ci {
                return Err(format!("cblk {ci} diagonal block malformed: {diag:?}"));
            }
            let mut offset = 0usize;
            let mut prev_end = 0usize;
            for (bi, b) in blocks.iter().enumerate() {
                if b.local_offset != offset {
                    return Err(format!("cblk {ci} block {bi} offset {} != {offset}", b.local_offset));
                }
                offset += b.nrows();
                if bi > 0 {
                    if b.frow < prev_end {
                        return Err(format!("cblk {ci} blocks overlap/unsorted at {bi}"));
                    }
                    if b.frow < cb.lcol {
                        return Err(format!("cblk {ci} off-block {bi} above diagonal"));
                    }
                    let fb = &self.cblks[b.facing];
                    if b.frow < fb.fcol || b.lrow > fb.lcol {
                        return Err(format!(
                            "cblk {ci} block {bi} rows {}..{} spill facing cblk {}",
                            b.frow, b.lrow, b.facing
                        ));
                    }
                }
                prev_end = b.lrow;
            }
            if offset != cb.stride {
                return Err(format!("cblk {ci} stride {} != {offset}", cb.stride));
            }
        }
        if expected_col != self.n {
            return Err(format!("columns covered {expected_col} != {}", self.n));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::column_counts;
    use crate::etree::{elimination_tree, postorder, relabel_parent};
    use crate::supernode::{amalgamate, build_partition, detect_supernodes, AmalgamationOptions};
    use dagfact_sparse::gen::{grid_laplacian_2d, grid_laplacian_3d, random_spd};
    use dagfact_sparse::SparsityPattern;

    fn symbol_for(pattern: &SparsityPattern, max_width: usize) -> SymbolMatrix {
        let sym = pattern.symmetrize();
        let parent = elimination_tree(&sym);
        let post = postorder(&parent);
        let mut perm = vec![0usize; post.len()];
        for (new, &old) in post.iter().enumerate() {
            perm[old] = new;
        }
        let permuted = sym.permute_symmetric(&perm);
        let parent = relabel_parent(&parent, &post);
        let (cc, _) = column_counts(&permuted, &parent);
        let first = detect_supernodes(&parent, &cc);
        let part = build_partition(&permuted, &parent, first);
        let part = amalgamate(part, &AmalgamationOptions::default());
        SymbolMatrix::from_partition(&part, &SplitOptions { max_width })
    }

    #[test]
    fn structure_validates_on_grids() {
        for (nx, ny) in [(6, 6), (10, 8), (13, 5)] {
            let a = grid_laplacian_2d(nx, ny);
            let sym = symbol_for(a.pattern(), 16);
            sym.validate().unwrap();
        }
        let a3 = grid_laplacian_3d(6, 6, 6);
        symbol_for(a3.pattern(), 24).validate().unwrap();
    }

    #[test]
    fn structure_validates_on_random() {
        for seed in 0..4 {
            let a = random_spd(60, 4, seed);
            symbol_for(a.pattern(), 8).validate().unwrap();
        }
    }

    #[test]
    fn splitting_respects_max_width() {
        let a = grid_laplacian_2d(16, 16);
        let sym = symbol_for(a.pattern(), 8);
        for cb in &sym.cblks {
            assert!(cb.width() <= 8, "panel wider than split limit");
        }
        // The top separator of a 16x16 grid is ≥ 16 wide: splitting must
        // produce more panels than the unsplit structure.
        let unsplit = symbol_for(a.pattern(), usize::MAX >> 1);
        assert!(sym.ncblk() > unsplit.ncblk());
        // Splitting is exact: the factor nnz (lower-triangle accounting)
        // is invariant.
        assert_eq!(sym.nnz_factor(), unsplit.nnz_factor());
    }

    #[test]
    fn row_offset_lookup_is_consistent() {
        let a = grid_laplacian_2d(9, 9);
        let sym = symbol_for(a.pattern(), 12);
        for ci in 0..sym.ncblk() {
            for b in sym.panel_blocks(ci) {
                for row in b.frow..b.lrow {
                    let off = sym.row_offset_in_panel(ci, row);
                    assert_eq!(off, b.local_offset + (row - b.frow));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "absent from panel")]
    fn row_offset_panics_outside_structure() {
        // Two disconnected 2-vertex components: no panel of the first
        // component can contain a row of the second.
        let entries = vec![(0usize, 0usize), (1, 0), (1, 1), (2, 2), (3, 2), (3, 3)];
        let p = SparsityPattern::from_entries(4, 4, entries);
        let sym = symbol_for(&p, 64);
        let _ = sym.row_offset_in_panel(0, 3);
    }

    #[test]
    fn update_task_count_matches_off_blocks() {
        let a = grid_laplacian_2d(10, 10);
        let sym = symbol_for(a.pattern(), 8);
        let total_off: usize = (0..sym.ncblk()).map(|c| sym.off_blocks(c).len()).sum();
        assert_eq!(sym.n_update_tasks(), total_off);
        assert!(total_off > 0);
    }
}
