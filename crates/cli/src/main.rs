//! `dagfact` — command-line sparse direct solver.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dagfact_cli::run(&args) {
        Ok(report) => print!("{report}"),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
