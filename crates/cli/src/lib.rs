//! # dagfact-cli
//!
//! Command-line front end to the `dagfact` solver stack:
//!
//! ```text
//! dagfact analyze  <matrix.mtx> [--facto auto|chol|ldlt|lu]
//! dagfact solve    <matrix.mtx> [--facto …] [--runtime native|starpu|parsec]
//!                  [--threads N] [--rhs <file>] [--refine N] [--output <file>]
//!                  [--fault-plan <spec>] [--max-refactor-attempts N]
//!                  [--mem-budget <bytes>] [--spill-dir <path>]
//!                  [--trace <file>] [--metrics]
//! dagfact simulate <matrix.mtx> [--facto …] [--cores N] [--gpus N]
//!                  [--policy pastix|starpu|parsec] [--streams N]
//!                  [--trace <file>]
//! dagfact verify   <matrix.mtx> [--facto …] [--threads N] [--no-dynamic]
//! ```
//!
//! `verify` runs the static-analysis layer over the task graphs all
//! three engines would execute for the matrix: race and deadlock
//! detection, structural checks, cross-engine equivalence of the
//! conflicting-access order, and (unless `--no-dynamic`) a vector-clock
//! replay through each real engine. The command fails (non-zero exit)
//! when any check does.
//!
//! `--trace` writes the recorded task/phase timeline as a Chrome-trace
//! JSON file (load in Perfetto or `chrome://tracing`); `--metrics`
//! appends the per-kernel / per-worker / critical-path report to the
//! solve output. Both observe the run through `dagfact_rt::TraceRecorder`
//! and cost nothing when absent.
//!
//! Matrices are Matrix Market coordinate files (real or complex,
//! general or symmetric). Without `--rhs`, the right-hand side is `A·1`
//! so the exact solution is the all-ones vector — handy for smoke tests.
//!
//! The logic lives in [`run`] (argument vector in, report text out) so the
//! whole CLI is unit-testable without spawning processes.

use dagfact_core::{
    simulate_factorization, Analysis, ExecOptions, RuntimeKind, SimOptions, Solver,
    SolverOptions, VerifyOptions,
};
use dagfact_rt::{FaultPlan, MemoryBudget, RunConfig};
use dagfact_gpusim::{Platform, SimPolicy};
use dagfact_kernels::{Scalar, C64};
use dagfact_sparse::mm::read_matrix_market_file;
use dagfact_sparse::CscMatrix;
use dagfact_symbolic::FactoKind;
use std::fmt::Write as _;

/// Parsed command-line options.
#[derive(Debug, Clone)]
struct Opts {
    command: String,
    matrix: String,
    facto: Option<FactoKind>,
    runtime: RuntimeKind,
    threads: usize,
    rhs: Option<String>,
    refine: usize,
    output: Option<String>,
    fault_plan: Option<String>,
    max_refactor_attempts: Option<u32>,
    mem_budget: Option<usize>,
    spill_dir: Option<String>,
    trace: Option<String>,
    metrics: bool,
    cores: usize,
    gpus: usize,
    policy: SimPolicy,
    no_dynamic: bool,
    serve: ServeOpts,
    /// Cluster width for the `dist` subcommand.
    nodes: usize,
    /// `dist --study`: also write the fan-in communication study to
    /// `results/comm.json` (shared emitter with the `comm` bench bin).
    study: bool,
}

/// Options specific to the `serve` subcommand.
#[derive(Debug, Clone, Default)]
struct ServeOpts {
    workers: usize,
    queue_cap: usize,
    deadline_ms: Option<u64>,
    /// Job-spec file (one job per line, `-` = stdin) for batch mode.
    jobs: Option<String>,
    /// TCP listen address for HTTP mode.
    listen: Option<String>,
    /// Stop the HTTP loop after this many requests (tests, soaks).
    max_requests: Option<usize>,
}

/// Entry point: parse `args` (without the program name), execute, return
/// the report text.
pub fn run(args: &[String]) -> Result<String, String> {
    let opts = parse(args)?;
    if opts.command == "serve" {
        return serve_cmd(&opts);
    }
    let complex = matrix_is_complex(&opts.matrix)?;
    if complex {
        dispatch::<C64>(&opts, true)
    } else {
        dispatch::<f64>(&opts, false)
    }
}

/// Usage text.
pub fn usage() -> &'static str {
    "usage:\n  dagfact analyze  <matrix.mtx> [--facto auto|chol|ldlt|lu]\n  dagfact solve    <matrix.mtx> [--facto …] [--runtime native|starpu|parsec]\n                   [--threads N] [--rhs file] [--refine N] [--output file]\n                   [--fault-plan spec] [--max-refactor-attempts N]\n                   [--mem-budget bytes[K|M|G]] [--spill-dir path]\n                   [--trace file.json] [--metrics]\n  dagfact simulate <matrix.mtx> [--facto …] [--cores N] [--gpus N]\n                   [--policy pastix|starpu|parsec] [--streams N]\n                   [--trace file.json]\n  dagfact verify   <matrix.mtx> [--facto …] [--threads N] [--no-dynamic]\n  dagfact serve    (--jobs file|- | --listen addr:port) [--workers N]\n                   [--queue-cap N] [--deadline-ms N] [--max-requests N]\n                   [--mem-budget bytes[K|M|G]] [--fault-plan spec]\n  dagfact dist     <matrix.mtx> [--facto …] [--nodes N] [--cores N]\n                   [--fault-plan spec] [--study]"
}

fn parse(args: &[String]) -> Result<Opts, String> {
    let mut it = args.iter();
    let command = it.next().ok_or_else(|| usage().to_string())?.clone();
    if !["analyze", "solve", "simulate", "verify", "serve", "dist"].contains(&command.as_str()) {
        return Err(format!("unknown command {command:?}\n{}", usage()));
    }
    // `serve` is a daemon: jobs carry their own matrices, so there is no
    // matrix positional.
    let matrix = if command == "serve" {
        String::new()
    } else {
        it.next()
            .ok_or_else(|| format!("{command}: missing matrix file\n{}", usage()))?
            .clone()
    };
    let mut opts = Opts {
        command,
        matrix,
        facto: None,
        runtime: RuntimeKind::Ptg,
        threads: std::thread::available_parallelism().map_or(1, |v| v.get()),
        rhs: None,
        refine: 2,
        output: None,
        fault_plan: None,
        max_refactor_attempts: None,
        mem_budget: None,
        spill_dir: None,
        trace: None,
        metrics: false,
        cores: 12,
        gpus: 0,
        policy: SimPolicy::ParsecLike { streams: 3 },
        no_dynamic: false,
        serve: ServeOpts {
            workers: 2,
            queue_cap: 32,
            ..ServeOpts::default()
        },
        nodes: 2,
        study: false,
    };
    let mut streams = 3usize;
    let mut policy_name = String::from("parsec");
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--facto" => {
                opts.facto = match value()?.as_str() {
                    "auto" => None,
                    "chol" | "cholesky" | "llt" => Some(FactoKind::Cholesky),
                    "ldlt" => Some(FactoKind::Ldlt),
                    "lu" => Some(FactoKind::Lu),
                    other => return Err(format!("unknown facto {other:?}")),
                }
            }
            "--runtime" => {
                opts.runtime = match value()?.as_str() {
                    "native" | "pastix" => RuntimeKind::Native,
                    "starpu" | "dataflow" => RuntimeKind::Dataflow,
                    "parsec" | "ptg" => RuntimeKind::Ptg,
                    other => return Err(format!("unknown runtime {other:?}")),
                }
            }
            "--threads" => opts.threads = parse_num(&value()?)?,
            "--rhs" => opts.rhs = Some(value()?),
            "--refine" => opts.refine = parse_num(&value()?)?,
            "--output" | "-o" => opts.output = Some(value()?),
            "--fault-plan" => {
                let spec = value()?;
                // Validate eagerly so bad specs fail before the solve.
                FaultPlan::parse(&spec).map_err(|e| format!("--fault-plan: {e}"))?;
                opts.fault_plan = Some(spec);
            }
            "--max-refactor-attempts" => {
                opts.max_refactor_attempts =
                    Some(parse_num(&value()?)?.min(u32::MAX as usize) as u32)
            }
            "--mem-budget" => opts.mem_budget = Some(parse_bytes(&value()?)?),
            "--spill-dir" => opts.spill_dir = Some(value()?),
            "--trace" => opts.trace = Some(value()?),
            "--metrics" => opts.metrics = true,
            "--cores" => opts.cores = parse_num(&value()?)?,
            "--nodes" => opts.nodes = parse_num(&value()?)?.max(1),
            "--study" => opts.study = true,
            "--gpus" => opts.gpus = parse_num(&value()?)?,
            "--streams" => streams = parse_num(&value()?)?,
            "--no-dynamic" => opts.no_dynamic = true,
            "--policy" => policy_name = value()?,
            "--workers" => opts.serve.workers = parse_num(&value()?)?.max(1),
            "--queue-cap" => opts.serve.queue_cap = parse_num(&value()?)?.max(1),
            "--deadline-ms" => opts.serve.deadline_ms = Some(parse_num(&value()?)? as u64),
            "--jobs" => opts.serve.jobs = Some(value()?),
            "--listen" => opts.serve.listen = Some(value()?),
            "--max-requests" => opts.serve.max_requests = Some(parse_num(&value()?)?),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    opts.policy = match policy_name.as_str() {
        "pastix" | "native" => SimPolicy::NativeStatic,
        "starpu" => SimPolicy::StarPuLike,
        "parsec" => SimPolicy::ParsecLike { streams },
        other => return Err(format!("unknown policy {other:?}")),
    };
    Ok(opts)
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse::<usize>().map_err(|e| format!("bad number {s:?}: {e}"))
}

/// Parse a byte size with an optional `K`/`M`/`G` suffix (powers of 1024).
fn parse_bytes(s: &str) -> Result<usize, String> {
    let (digits, mult) = match s.as_bytes().last() {
        Some(b'K' | b'k') => (&s[..s.len() - 1], 1usize << 10),
        Some(b'M' | b'm') => (&s[..s.len() - 1], 1usize << 20),
        Some(b'G' | b'g') => (&s[..s.len() - 1], 1usize << 30),
        _ => (s, 1),
    };
    let n = digits
        .parse::<usize>()
        .map_err(|e| format!("bad byte size {s:?}: {e}"))?;
    n.checked_mul(mult)
        .ok_or_else(|| format!("byte size {s:?} overflows"))
}

/// The `serve` subcommand: start the solve daemon, feed it jobs from a
/// file/stdin (batch mode) or over HTTP (`--listen`), and report the
/// final service counters. One JSON object per answered job, one final
/// `stats` line — machine-readable end to end.
fn serve_cmd(opts: &Opts) -> Result<String, String> {
    use dagfact_serve::{JobSpec, ServeConfig, Service};
    let budget = match opts.mem_budget {
        Some(cap) => MemoryBudget::with_cap(cap),
        None => MemoryBudget::unbounded(),
    };
    let fault_plan = match &opts.fault_plan {
        Some(spec) => Some(std::sync::Arc::new(
            FaultPlan::parse(spec).map_err(|e| format!("--fault-plan: {e}"))?,
        )),
        None => None,
    };
    let config = ServeConfig {
        workers: opts.serve.workers,
        queue_cap: opts.serve.queue_cap,
        budget,
        default_deadline_ms: opts.serve.deadline_ms,
        fault_plan,
        ..ServeConfig::default()
    };
    let service = Service::start(config);
    let mut out = String::new();
    match (&opts.serve.jobs, &opts.serve.listen) {
        (Some(jobs), None) => {
            let text = if jobs == "-" {
                use std::io::Read as _;
                let mut buf = String::new();
                std::io::stdin()
                    .read_to_string(&mut buf)
                    .map_err(|e| format!("reading stdin: {e}"))?;
                buf
            } else {
                std::fs::read_to_string(jobs).map_err(|e| format!("cannot read {jobs}: {e}"))?
            };
            // Submit everything first so the pool works the batch
            // concurrently, then collect in order.
            let mut pending = Vec::new();
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let ticket = JobSpec::parse(line)
                    .map_err(dagfact_serve::JobError::BadRequest)
                    .and_then(|spec| service.submit(spec));
                pending.push(ticket);
            }
            for entry in pending {
                let line = match entry.and_then(|ticket| ticket.wait()) {
                    Ok(resp) => resp.to_json(false),
                    Err(e) => e.to_json(),
                };
                let _ = writeln!(out, "{line}");
            }
        }
        (None, Some(addr)) => {
            let listener = std::net::TcpListener::bind(addr)
                .map_err(|e| format!("cannot bind {addr}: {e}"))?;
            let local = listener
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| addr.clone());
            let _ = writeln!(out, "listening on {local}");
            let handled = dagfact_serve::serve_http(listener, &service, opts.serve.max_requests)
                .map_err(|e| format!("serve loop: {e}"))?;
            let _ = writeln!(out, "handled {handled} request(s)");
        }
        _ => return Err(format!("serve needs exactly one of --jobs or --listen\n{}", usage())),
    }
    let stats = service.shutdown();
    let _ = writeln!(out, "stats {}", stats.to_json());
    Ok(out)
}

/// The `dist` subcommand: factorize on the simulated cluster with the
/// fault-tolerant fan-in protocol, verify the answer against `A·1`, and
/// report the protocol counters. `--study` additionally writes the
/// analytic communication study to `results/comm.json` through the same
/// emitter the `comm` bench binary uses.
fn dist_cmd<T: Scalar>(opts: &Opts, a: &CscMatrix<T>, complex: bool) -> Result<String, String> {
    use dagfact_core::dist::{factorize_dist, DistOptions};
    let facto = pick_facto(opts, a);
    let analysis = Analysis::new(a.pattern(), facto, &SolverOptions::default());
    let fault_plan = match &opts.fault_plan {
        Some(spec) => Some(std::sync::Arc::new(
            FaultPlan::parse(spec).map_err(|e| format!("--fault-plan: {e}"))?,
        )),
        None => None,
    };
    let dopts = DistOptions {
        nnodes: opts.nodes,
        cores_per_node: opts.cores,
        fault_plan,
        ..DistOptions::default()
    };
    let (factors, report) =
        factorize_dist(&analysis, a, &dopts).map_err(|e| format!("dist factorization: {e}"))?;
    // b = A·1: the residual check proves the recovered factors are the
    // real ones, not a lucky partial result.
    let n = a.nrows();
    let ones = vec![T::one(); n];
    let mut b = vec![T::zero(); n];
    a.spmv(&ones, &mut b);
    let x = factors.solve(&b);
    let mut ax = vec![T::zero(); n];
    a.spmv(&x, &mut ax);
    let resid = ax
        .iter()
        .zip(&b)
        .map(|(&l, &r)| (l - r).modulus())
        .fold(0.0f64, f64::max)
        / b.iter().map(|v| v.modulus()).fold(0.0f64, f64::max).max(1e-300);
    let mut out = String::new();
    let _ = writeln!(out, "factorization: {} over {} nodes", facto.label(), report.nnodes);
    let _ = writeln!(out, "makespan     : {:.6} s (virtual)", report.makespan);
    let _ = writeln!(out, "tasks        : {}", report.tasks_executed);
    let _ = writeln!(
        out,
        "fan-in pairs : {} messages, {:.1} KB",
        report.data_messages,
        report.bytes / 1024.0
    );
    let _ = writeln!(
        out,
        "transport    : {} send(s), {} retransmit(s), {} lost, {} dup injected, {} reordered",
        report.sends,
        report.retransmits,
        report.messages_lost,
        report.duplicates_injected,
        report.reorders
    );
    let _ = writeln!(
        out,
        "protocol     : {} duplicate(s) absorbed, {} stale ack(s)",
        report.duplicates_absorbed, report.stale_acks
    );
    if !report.crashes.is_empty() {
        let _ = writeln!(
            out,
            "failures     : crashed nodes {:?}, {} adoption(s), {} panel(s) replayed",
            report.crashes, report.recoveries, report.panels_restored
        );
    }
    let _ = writeln!(out, "residual     : {resid:.3e} (b = A·1)");
    if opts.study {
        let widths: Vec<usize> = [1usize, 2, 4, 8]
            .into_iter()
            .filter(|&w| w != opts.nodes)
            .chain(std::iter::once(opts.nodes))
            .collect();
        let record = dagfact_bench::comm_study_json(&opts.matrix, &analysis, complex, &widths);
        let doc = dagfact_bench::Json::obj().field("records", vec![record]);
        let path = dagfact_bench::write_results("comm", &doc)
            .map_err(|e| format!("writing results/comm.json: {e}"))?;
        let _ = writeln!(out, "study        : {}", path.display());
    }
    Ok(out)
}

/// Sniff the Matrix Market header for the `complex` field.
fn matrix_is_complex(path: &str) -> Result<bool, String> {
    let content = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {path}: {e}"))?;
    let header = content.lines().next().unwrap_or("");
    Ok(header.to_ascii_lowercase().contains("complex"))
}

fn dispatch<T: Scalar>(opts: &Opts, complex: bool) -> Result<String, String> {
    let a: CscMatrix<T> =
        read_matrix_market_file(&opts.matrix).map_err(|e| format!("read {}: {e}", opts.matrix))?;
    if a.nrows() != a.ncols() {
        return Err(format!("matrix is {}x{}, need square", a.nrows(), a.ncols()));
    }
    match opts.command.as_str() {
        "analyze" => analyze(opts, &a, complex),
        "solve" => solve(opts, &a),
        "simulate" => simulate_cmd(opts, &a, complex),
        "verify" => verify_cmd(opts, &a),
        "dist" => dist_cmd(opts, &a, complex),
        _ => unreachable!(),
    }
}

fn pick_facto<T: Scalar>(opts: &Opts, a: &CscMatrix<T>) -> FactoKind {
    opts.facto.unwrap_or_else(|| {
        if a.is_symmetric() {
            if T::IS_COMPLEX {
                FactoKind::Ldlt
            } else {
                FactoKind::Cholesky
            }
        } else {
            FactoKind::Lu
        }
    })
}

fn analyze<T: Scalar>(opts: &Opts, a: &CscMatrix<T>, complex: bool) -> Result<String, String> {
    let facto = pick_facto(opts, a);
    let analysis = Analysis::new(a.pattern(), facto, &SolverOptions::default());
    let st = analysis.stats();
    let flops = if complex { st.flops_complex } else { st.flops_real };
    let mut out = String::new();
    let _ = writeln!(out, "matrix      : {}", opts.matrix);
    let _ = writeln!(out, "order       : {}", st.n);
    let _ = writeln!(out, "nnz(A)      : {} (symmetrized)", st.nnz_a);
    let _ = writeln!(out, "factorization: {}", facto.label());
    let _ = writeln!(out, "nnz(L)      : {}", st.nnz_l);
    let _ = writeln!(out, "fill factor : {:.1}x", st.nnz_l as f64 / (st.nnz_a as f64 / 2.0));
    let _ = writeln!(out, "flops       : {:.3} GFlop", flops / 1e9);
    let _ = writeln!(out, "panels      : {}", st.ncblk);
    let _ = writeln!(out, "blocks      : {}", st.nblocks);
    Ok(out)
}

fn solve<T: Scalar>(opts: &Opts, a: &CscMatrix<T>) -> Result<String, String> {
    let mut options = SolverOptions::default();
    if let Some(n) = opts.max_refactor_attempts {
        options.max_refactor_attempts = n.max(1);
    }
    // Production solves run under the fault-tolerant layer: retries,
    // stall watchdog, and (for chaos testing) an injection plan.
    let mut run = RunConfig::resilient();
    if let Some(spec) = &opts.fault_plan {
        let plan = FaultPlan::parse(spec).map_err(|e| format!("--fault-plan: {e}"))?;
        run.fault_plan = Some(std::sync::Arc::new(plan));
    }
    if let Some(cap) = opts.mem_budget {
        run.budget = Some(MemoryBudget::with_cap(cap));
    }
    // Observability: a span recorder is attached only when a trace export
    // or a metrics report was requested; otherwise the engines skip all
    // timestamping (DESIGN.md §10).
    let recorder = (opts.trace.is_some() || opts.metrics)
        .then(dagfact_rt::TraceRecorder::shared);
    run.trace = recorder.clone();
    let exec = ExecOptions {
        run,
        epsilon_override: None,
        spill_dir: opts.spill_dir.as_ref().map(std::path::PathBuf::from),
    };
    let t0 = std::time::Instant::now();
    let mut solver = Solver::with_exec(a, opts.facto, &options, opts.runtime, opts.threads, &exec)
        .map_err(|e| format!("factorization failed: {e}"))?;
    let t_facto = t0.elapsed().as_secs_f64();
    let n = a.nrows();
    let b: Vec<T> = match &opts.rhs {
        Some(path) => read_vector(path, n)?,
        None => {
            // b = A·1 so the expected solution is the ones vector.
            let ones = vec![T::one(); n];
            let mut b = vec![T::zero(); n];
            a.spmv(&ones, &mut b);
            b
        }
    };
    let t1 = std::time::Instant::now();
    let refined = solver
        .solve_adaptive(&b, opts.refine, 1e-14)
        .map_err(|e| format!("solve failed: {e}"))?;
    let t_solve = t1.elapsed().as_secs_f64();
    let mut out = String::new();
    let _ = writeln!(out, "factorization: {}", solver.facto().label());
    let _ = writeln!(
        out,
        "factorize    : {t_facto:.3} s on {} threads ({})",
        opts.threads,
        opts.runtime.label()
    );
    let _ = writeln!(out, "pivots fixed : {}", solver.pivots_repaired());
    let stats = solver.stats();
    if stats.attempts > 1 {
        let _ = writeln!(
            out,
            "recovery     : {} attempt(s), pivot threshold history {:?}",
            stats.attempts, stats.epsilon_history
        );
    }
    if stats.run.retries > 0 || stats.run.faults_injected > 0 {
        let _ = writeln!(
            out,
            "engine       : {} task retr{}, {} fault(s) injected",
            stats.run.retries,
            if stats.run.retries == 1 { "y" } else { "ies" },
            stats.run.faults_injected
        );
    }
    if let Some(mem) = &stats.run.memory {
        let _ = writeln!(
            out,
            "memory       : peak {:.1} MB{}",
            mem.peak_bytes as f64 / (1 << 20) as f64,
            match mem.cap {
                Some(c) => format!(" (budget {:.1} MB)", c as f64 / (1 << 20) as f64),
                None => String::new(),
            }
        );
        if mem.spill_events > 0 || mem.shed_events > 0 || mem.throttle_events > 0 {
            let _ = writeln!(
                out,
                "degradation  : {} panel(s) spilled ({:.1} MB), {} faulted back, {} shed update(s), {} throttle(s), {} overcommit(s)",
                mem.spill_events,
                mem.spill_bytes as f64 / (1 << 20) as f64,
                mem.fault_in_events,
                mem.shed_events,
                mem.throttle_events,
                mem.overcommit_events
            );
        }
    }
    let _ = writeln!(
        out,
        "solve        : {t_solve:.3} s ({} refinement step(s))",
        refined.iterations
    );
    let _ = writeln!(
        out,
        "backward err : {:.3e}",
        refined.residuals.last().copied().unwrap_or(f64::NAN)
    );
    if let Some(rec) = &recorder {
        let trace = rec.snapshot();
        if let Some(path) = &opts.trace {
            let doc = dagfact_bench::chrome_trace(&trace);
            std::fs::write(path, doc.to_string() + "\n")
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            let _ = writeln!(
                out,
                "trace        : {} event(s) written to {path} (Chrome-trace JSON)",
                trace.spans.len()
            );
        }
        if opts.metrics {
            out.push_str(&trace.render_report());
            out.push_str(&trace.render_gantt(72));
        }
    }
    if let Some(path) = &opts.output {
        write_vector(path, &refined.x)?;
        let _ = writeln!(out, "solution     : written to {path}");
    }
    Ok(out)
}

fn simulate_cmd<T: Scalar>(opts: &Opts, a: &CscMatrix<T>, complex: bool) -> Result<String, String> {
    let facto = pick_facto(opts, a);
    let analysis = Analysis::new(a.pattern(), facto, &SolverOptions::default());
    let platform = Platform::mirage(opts.cores, opts.gpus);
    let sim_opts = SimOptions {
        complex,
        ..SimOptions::default()
    };
    let report = simulate_factorization(&analysis, &sim_opts, &platform, opts.policy);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "platform   : {} cores + {} GPUs (simulated Mirage node)",
        opts.cores, opts.gpus
    );
    let _ = writeln!(out, "policy     : {:?}", opts.policy);
    let _ = writeln!(out, "makespan   : {:.4} s", report.makespan);
    let _ = writeln!(out, "performance: {:.2} GFlop/s", report.gflops());
    let _ = writeln!(
        out,
        "tasks      : {} on CPU, {} on GPU",
        report.tasks_on_cpu, report.tasks_on_gpu
    );
    let _ = writeln!(
        out,
        "transfers  : {:.1} MB to GPUs, {:.1} MB back",
        report.bytes_h2d / 1e6,
        report.bytes_d2h / 1e6
    );
    if let Some(path) = &opts.trace {
        let doc = dagfact_bench::sim_chrome_trace(&report);
        std::fs::write(path, doc.to_string() + "\n")
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(
            out,
            "trace      : {} event(s) written to {path} (Chrome-trace JSON)",
            report.spans.len()
        );
    }
    Ok(out)
}

fn verify_cmd<T: Scalar>(opts: &Opts, a: &CscMatrix<T>) -> Result<String, String> {
    let facto = pick_facto(opts, a);
    let analysis = Analysis::new(a.pattern(), facto, &SolverOptions::default());
    let outcome = analysis.verify_task_graph(&VerifyOptions {
        nthreads: opts.threads,
        dynamic: !opts.no_dynamic,
    });
    let mut out = String::new();
    let _ = writeln!(out, "matrix       : {}", opts.matrix);
    let _ = writeln!(out, "factorization: {}", facto.label());
    out.push_str(&outcome.summary());
    if outcome.is_clean() {
        let _ = writeln!(out, "verdict      : task graphs are race-free and deadlock-free");
        Ok(out)
    } else {
        Err(format!("verification FAILED\n{out}"))
    }
}

fn read_vector<T: Scalar>(path: &str, n: usize) -> Result<Vec<T>, String> {
    let content =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut v = Vec::with_capacity(n);
    for (lineno, line) in content.lines().enumerate() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') || t.starts_with('#') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let re: f64 = parts
            .next()
            .unwrap()
            .parse()
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let im: f64 = parts
            .next()
            .map(|s| s.parse())
            .transpose()
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?
            .unwrap_or(0.0);
        v.push(T::from_parts(re, im));
    }
    if v.len() != n {
        return Err(format!("rhs has {} entries, matrix order is {n}", v.len()));
    }
    Ok(v)
}

fn write_vector<T: Scalar>(path: &str, v: &[T]) -> Result<(), String> {
    let mut out = String::with_capacity(v.len() * 24);
    for x in v {
        if T::IS_COMPLEX {
            let _ = writeln!(out, "{:.17e} {:.17e}", x.re(), x.im());
        } else {
            let _ = writeln!(out, "{:.17e}", x.re());
        }
    }
    std::fs::write(path, out).map_err(|e| format!("cannot write {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagfact_sparse::gen::{convection_diffusion_3d, grid_laplacian_3d, helmholtz_3d};
    use dagfact_sparse::mm::write_matrix_market_file;

    fn write_temp(name: &str, m: &CscMatrix<f64>) -> String {
        let path = std::env::temp_dir().join(format!("dagfact-cli-test-{name}.mtx"));
        write_matrix_market_file(m, &path).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn analyze_reports_table1_columns() {
        let path = write_temp("analyze", &grid_laplacian_3d(6, 6, 6));
        let out = run(&args(&["analyze", &path])).unwrap();
        assert!(out.contains("order       : 216"));
        assert!(out.contains("factorization: LLt"));
        assert!(out.contains("nnz(L)"));
        assert!(out.contains("GFlop"));
    }

    #[test]
    fn solve_default_rhs_reaches_machine_precision() {
        let path = write_temp("solve", &grid_laplacian_3d(7, 7, 7));
        let out = run(&args(&["solve", &path, "--runtime", "native", "--threads", "2"])).unwrap();
        let err_line = out.lines().find(|l| l.starts_with("backward err")).unwrap();
        let val: f64 = err_line.split(':').nth(1).unwrap().trim().parse().unwrap();
        assert!(val < 1e-13, "{out}");
    }

    #[test]
    fn solve_unsymmetric_picks_lu_and_writes_solution() {
        let a = convection_diffusion_3d(5, 5, 4, 0.4);
        let path = write_temp("lu", &a);
        let sol = std::env::temp_dir().join("dagfact-cli-test-x.txt");
        let out = run(&args(&[
            "solve",
            &path,
            "--output",
            sol.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("factorization: LU"));
        let written = std::fs::read_to_string(&sol).unwrap();
        assert_eq!(written.lines().count(), a.nrows());
        // Default RHS is A·1: every entry of x is 1.
        for line in written.lines() {
            let v: f64 = line.trim().parse().unwrap();
            assert!((v - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn simulate_reports_gflops() {
        let path = write_temp("sim", &grid_laplacian_3d(8, 8, 8));
        let out = run(&args(&[
            "simulate", &path, "--cores", "12", "--gpus", "2", "--policy", "parsec",
            "--streams", "3",
        ]))
        .unwrap();
        assert!(out.contains("12 cores + 2 GPUs"));
        assert!(out.contains("GFlop/s"));
    }

    #[test]
    fn complex_matrices_are_detected_from_the_header() {
        let a = helmholtz_3d(4, 4, 3, 1.0, 0.4);
        let path = std::env::temp_dir().join("dagfact-cli-test-z.mtx");
        write_matrix_market_file(&a, &path).unwrap();
        let out = run(&args(&["analyze", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("LDLt"), "{out}");
    }

    #[test]
    fn fault_plan_transient_faults_are_absorbed() {
        let path = write_temp("faultplan", &grid_laplacian_3d(6, 6, 6));
        // Task 1 fails twice then succeeds: the solve must still reach
        // machine precision and report the retries.
        let out = run(&args(&[
            "solve", &path, "--runtime", "parsec", "--threads", "2", "--fault-plan",
            "transient=1x2",
        ]))
        .unwrap();
        assert!(out.contains("2 task retries"), "{out}");
        assert!(out.contains("2 fault(s) injected"), "{out}");
        let err_line = out.lines().find(|l| l.starts_with("backward err")).unwrap();
        let val: f64 = err_line.split(':').nth(1).unwrap().trim().parse().unwrap();
        assert!(val < 1e-12, "{out}");
    }

    #[test]
    fn fault_plan_panic_fails_the_solve_cleanly() {
        let path = write_temp("faultpanic", &grid_laplacian_3d(5, 5, 5));
        let err = run(&args(&[
            "solve", &path, "--runtime", "native", "--fault-plan", "panic=0",
        ]))
        .unwrap_err();
        assert!(err.contains("panicked"), "{err}");
    }

    #[test]
    fn bad_fault_plan_spec_is_rejected() {
        let path = write_temp("badplan", &grid_laplacian_3d(3, 3, 3));
        let err =
            run(&args(&["solve", &path, "--fault-plan", "frobnicate=yes"])).unwrap_err();
        assert!(err.contains("--fault-plan"), "{err}");
    }

    #[test]
    fn max_refactor_attempts_flag_is_accepted() {
        let path = write_temp("refactor", &grid_laplacian_3d(4, 4, 4));
        let out = run(&args(&[
            "solve", &path, "--max-refactor-attempts", "2", "--threads", "1",
        ]))
        .unwrap();
        assert!(out.contains("backward err"), "{out}");
    }

    #[test]
    fn parse_bytes_rejects_overflowing_suffix() {
        // Regression: the suffix multiplier must use checked_mul, so an
        // absurd --mem-budget value parses to an error, not a wrapped
        // (tiny) cap.
        let err = parse_bytes("99999999999999999G").unwrap_err();
        assert!(err.contains("overflow"), "{err}");
        assert_eq!(parse_bytes("4G").unwrap(), 4 << 30);
        assert_eq!(parse_bytes("512").unwrap(), 512);
    }

    #[test]
    fn serve_runs_a_job_batch_with_cache_reuse() {
        let path = write_temp("servebatch", &grid_laplacian_3d(5, 5, 5));
        let jobs = std::env::temp_dir().join("dagfact-cli-test-jobs.txt");
        let text = format!(
            "# two identical jobs: the second must hit the factor cache\n\
             matrix={path} refine=2 tag=first\n\
             matrix={path} refine=2 tag=second\n\
             inline=2:0,0,1;1,1,-1 facto=cholesky tag=bad\n"
        );
        std::fs::write(&jobs, text).unwrap();
        let out = run(&args(&[
            "serve", "--jobs", jobs.to_str().unwrap(), "--workers", "1",
        ]))
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("\"factor_hit\":false"), "{out}");
        assert!(lines[0].contains("\"tag\":\"first\""), "{out}");
        assert!(lines[1].contains("\"factor_hit\":true"), "{out}");
        assert!(lines[1].contains("\"generation\":1"), "{out}");
        // The indefinite matrix fails typed; the daemon kept serving.
        assert!(lines[2].contains("\"status\":\"error\""), "{out}");
        assert!(out.contains("\"completed\":2"), "{out}");
    }

    #[test]
    fn serve_rejects_conflicting_modes() {
        let err = run(&args(&["serve"])).unwrap_err();
        assert!(err.contains("--jobs or --listen"), "{err}");
        let err = run(&args(&[
            "serve", "--jobs", "x", "--listen", "127.0.0.1:0",
        ]))
        .unwrap_err();
        assert!(err.contains("--jobs or --listen"), "{err}");
    }

    #[test]
    fn verify_reports_clean_graphs_for_every_engine() {
        let path = write_temp("verify", &grid_laplacian_3d(5, 5, 4));
        let out = run(&args(&["verify", &path, "--threads", "2"])).unwrap();
        assert!(out.contains("PaStiX-native"), "{out}");
        assert!(out.contains("StarPU-like"), "{out}");
        assert!(out.contains("PaRSEC-like"), "{out}");
        assert!(out.contains("0 race(s), 0 deadlocked"), "{out}");
        assert!(out.contains("replay"), "{out}");
        assert!(out.contains("race-free and deadlock-free"), "{out}");
    }

    #[test]
    fn verify_no_dynamic_skips_the_replay() {
        let path = write_temp("verifystatic", &grid_laplacian_3d(4, 4, 3));
        let out = run(&args(&["verify", &path, "--no-dynamic", "--facto", "lu"])).unwrap();
        assert!(out.contains("factorization: LU"), "{out}");
        assert!(!out.contains("replay"), "{out}");
        assert!(out.contains("identical conflicting-access orderings"), "{out}");
    }

    #[test]
    fn mem_budget_flag_constrains_and_reports_memory() {
        let path = write_temp("membudget", &grid_laplacian_3d(7, 7, 7));
        // Unconstrained run first, to learn the natural peak.
        let free = run(&args(&["solve", &path, "--threads", "2", "--mem-budget", "4G"])).unwrap();
        let mem_line = free.lines().find(|l| l.starts_with("memory")).unwrap();
        assert!(mem_line.contains("budget 4096.0 MB"), "{free}");
        let peak_mb: f64 = mem_line
            .split("peak ")
            .nth(1)
            .unwrap()
            .split(" MB")
            .next()
            .unwrap()
            .parse()
            .unwrap();
        // Now squeeze: half the measured peak forces the degradation
        // ladder, yet the solve still reaches machine precision.
        let cap = format!("{}", ((peak_mb / 2.0) * (1 << 20) as f64) as usize);
        let spill = std::env::temp_dir().join("dagfact-cli-test-spill");
        let tight = run(&args(&[
            "solve", &path, "--threads", "2", "--mem-budget", &cap, "--spill-dir",
            spill.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(tight.contains("memory"), "{tight}");
        let err_line = tight.lines().find(|l| l.starts_with("backward err")).unwrap();
        let val: f64 = err_line.split(':').nth(1).unwrap().trim().parse().unwrap();
        assert!(val < 1e-12, "{tight}");
    }

    /// The `--trace`/`--metrics` pair must work on every runtime: the
    /// trace file is valid Chrome-trace JSON (complete events with
    /// ph/ts/dur/pid/tid), and the metrics report carries the per-kernel
    /// table, phase lines and critical-path / efficiency summary.
    #[test]
    fn solve_trace_and_metrics_cover_all_runtimes() {
        let path = write_temp("traceflags", &grid_laplacian_3d(6, 6, 6));
        for rt in ["native", "starpu", "parsec"] {
            let tr = std::env::temp_dir().join(format!("dagfact-cli-test-trace-{rt}.json"));
            let out = run(&args(&[
                "solve", &path, "--runtime", rt, "--threads", "2", "--trace",
                tr.to_str().unwrap(), "--metrics",
            ]))
            .unwrap();
            assert!(out.contains("critical path:"), "{rt}: {out}");
            assert!(out.contains("parallel efficiency:"), "{rt}: {out}");
            assert!(out.contains("phase numeric"), "{rt}: {out}");
            assert!(out.contains("phase solve"), "{rt}: {out}");
            // At least one per-worker share line (tiny problems may leave
            // some workers without a single span).
            assert!(
                out.lines().any(|l| l.starts_with("worker ") && l.contains("idle")),
                "{rt}: {out}"
            );
            assert!(out.contains("event(s) written to"), "{rt}: {out}");
            let json = std::fs::read_to_string(&tr).unwrap();
            assert!(json.starts_with("{\"traceEvents\":["), "{rt}");
            for key in ["\"ph\":\"X\"", "\"ts\":", "\"dur\":", "\"pid\":", "\"tid\":"] {
                assert!(json.contains(key), "{rt}: missing {key}");
            }
        }
    }

    #[test]
    fn metrics_without_trace_file_reports_kernels() {
        let path = write_temp("metricsonly", &grid_laplacian_3d(6, 6, 6));
        let out = run(&args(&["solve", &path, "--threads", "2", "--metrics"])).unwrap();
        // Per-kernel rows from the symbolic flop model (GFLOP/s column).
        assert!(out.contains("panel"), "{out}");
        assert!(out.contains("GFlop/s"), "{out}");
        assert!(out.contains("backward err"), "{out}");
    }

    #[test]
    fn simulate_trace_exports_device_lanes() {
        let path = write_temp("simtrace", &grid_laplacian_3d(14, 14, 14));
        let tr = std::env::temp_dir().join("dagfact-cli-test-simtrace.json");
        let out = run(&args(&[
            "simulate", &path, "--cores", "4", "--gpus", "1", "--trace",
            tr.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("event(s) written to"), "{out}");
        let json = std::fs::read_to_string(&tr).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"resource\":\"gpu\""), "no gpu lane in {json}");
        assert!(json.contains("\"resource\":\"h2d\""), "no h2d lane");
    }

    #[test]
    fn byte_suffixes_parse() {
        assert_eq!(parse_bytes("123").unwrap(), 123);
        assert_eq!(parse_bytes("4K").unwrap(), 4096);
        assert_eq!(parse_bytes("2m").unwrap(), 2 << 20);
        assert_eq!(parse_bytes("1G").unwrap(), 1 << 30);
        assert!(parse_bytes("lots").is_err());
    }

    #[test]
    fn bad_usage_is_reported() {
        assert!(run(&args(&[])).is_err());
        assert!(run(&args(&["frobnicate", "x.mtx"])).is_err());
        assert!(run(&args(&["solve"])).is_err());
        let path = write_temp("badflag", &grid_laplacian_3d(3, 3, 3));
        assert!(run(&args(&["solve", &path, "--bogus"])).is_err());
    }

    fn dist_residual(out: &str) -> f64 {
        out.lines()
            .find(|l| l.starts_with("residual"))
            .unwrap_or_else(|| panic!("no residual line in {out}"))
            .split(':')
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap()
    }

    #[test]
    fn dist_zero_fault_reports_traffic_and_solves() {
        let path = write_temp("dist", &grid_laplacian_3d(6, 6, 6));
        let out = run(&args(&["dist", &path, "--nodes", "3"])).unwrap();
        assert!(out.contains("over 3 nodes"), "{out}");
        assert!(out.contains("fan-in pairs"), "{out}");
        assert!(!out.contains("failures"), "{out}");
        assert!(dist_residual(&out) < 1e-10, "{out}");
    }

    #[test]
    fn dist_with_node_crash_recovers_and_reports_it() {
        let path = write_temp("distcrash", &grid_laplacian_3d(6, 6, 6));
        let out = run(&args(&[
            "dist", &path, "--nodes", "3", "--fault-plan", "crash=1x1,mloss=0.05,seed=9",
        ]))
        .unwrap();
        assert!(out.contains("failures"), "{out}");
        assert!(out.contains("adoption"), "{out}");
        assert!(dist_residual(&out) < 1e-10, "{out}");
    }

    #[test]
    fn dist_study_writes_the_shared_comm_json() {
        let path = write_temp("diststudy", &grid_laplacian_3d(5, 5, 5));
        let out = run(&args(&["dist", &path, "--nodes", "2", "--study"])).unwrap();
        assert!(out.contains("study"), "{out}");
        let json = std::fs::read_to_string("results/comm.json").unwrap();
        assert!(json.contains("\"fan_in\""), "{json}");
        assert!(json.contains("\"messages\""), "{json}");
        assert!(json.contains("\"nnodes\": 2"), "{json}");
        // Don't leave test artifacts in the crate directory.
        let _ = std::fs::remove_file("results/comm.json");
        let _ = std::fs::remove_dir("results");
    }
}
