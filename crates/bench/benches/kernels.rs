//! Micro-benchmarks of the dense kernels (the real-execution counterpart
//! of the paper's kernel study): GEMM across the block sizes a supernodal
//! factorization produces, the three diagonal-block factorizations, and
//! the two sparse-update strategies of §V-B.

use dagfact_bench::Bench;
use dagfact_kernels::gemm::{gemm, Trans};
use dagfact_kernels::trsm::{trsm, Diag, Side, Uplo};
use dagfact_kernels::update::{update_scatter_direct, update_via_buffer, Scatter};
use dagfact_kernels::{getrf, ldlt, potrf};
use std::hint::black_box;

fn filled(n: usize, seed: u64) -> Vec<f64> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 2000) as f64 / 1000.0 - 1.0
        })
        .collect()
}

fn spd(n: usize) -> Vec<f64> {
    let mut a = filled(n * n, 42);
    for j in 0..n {
        a[j * n + j] = 2.0 * n as f64;
        for i in 0..j {
            let v = a[j * n + i];
            a[i * n + j] = v;
        }
    }
    a
}

fn bench_gemm(bench: &Bench) {
    let mut group = bench.group("gemm_nt_t");
    for &(m, n, k) in &[
        (64usize, 64usize, 64usize),
        (256, 64, 64),
        (512, 128, 128),
        (1024, 128, 128),
    ] {
        let a = filled(m * k, 1);
        let b = filled(n * k, 2);
        let mut out = vec![0.0f64; m * n];
        group.throughput((2 * m * n * k) as u64).bench(&format!("{m}x{n}x{k}"), || {
            gemm(
                Trans::NoTrans,
                Trans::Trans,
                m,
                n,
                k,
                -1.0,
                black_box(&a),
                m,
                black_box(&b),
                n,
                1.0,
                &mut out,
                m,
            )
        });
    }
}

fn bench_diag_factorizations(bench: &Bench) {
    let mut group = bench.group("diag_block");
    for &n in &[64usize, 128, 256] {
        let a = spd(n);
        group.bench_batched(
            &format!("potrf/{n}"),
            || a.clone(),
            |mut m| potrf(n, &mut m, n).unwrap(),
        );
        group.bench_batched(
            &format!("ldlt/{n}"),
            || (a.clone(), vec![0.0; n]),
            |(mut m, mut d)| ldlt(n, &mut m, n, &mut d, 0.0).unwrap(),
        );
        group.bench_batched(
            &format!("getrf/{n}"),
            || a.clone(),
            |mut m| getrf(n, &mut m, n, 0.0).unwrap(),
        );
    }
}

fn bench_trsm(bench: &Bench) {
    let mut group = bench.group("panel_trsm");
    for &(h, w) in &[(512usize, 64usize), (2048, 128)] {
        let t = spd(w);
        let mut b = filled(h * w, 7);
        group.throughput((h * w * w) as u64).bench(&format!("{h}x{w}"), || {
            trsm(
                Side::Right,
                Uplo::Lower,
                Trans::Trans,
                Diag::NonUnit,
                h,
                w,
                black_box(&t),
                w,
                &mut b,
                h,
            )
        });
    }
}

/// The §V-B comparison on CPU: buffer-then-scatter vs. direct scatter, on
/// a gappy destination twice as tall as the contribution.
fn bench_update_variants(bench: &Bench) {
    let mut group = bench.group("sparse_update");
    for &(m, n, k) in &[(256usize, 64usize, 64usize), (1024, 128, 128)] {
        let a1 = filled(m * k, 3);
        let a2 = filled(n * k, 4);
        let ldc = 2 * m + n;
        let mut cdst = vec![0.0f64; ldc * (n + 8)];
        // Every other row of the destination: worst-case gaps.
        let row_map: Vec<usize> = (0..m).map(|i| 2 * i).collect();
        let scatter = Scatter {
            row_map: &row_map,
            col_offset: 2,
        };
        group.throughput((2 * m * n * k) as u64);
        {
            let mut work = Vec::new();
            group.bench(&format!("via_buffer/{m}x{n}x{k}"), || {
                update_via_buffer(
                    m, n, k, -1.0, &a1, m, &a2, n, None, &mut work, &mut cdst, ldc, scatter,
                )
            });
        }
        group.bench(&format!("scatter_direct/{m}x{n}x{k}"), || {
            update_scatter_direct(m, n, k, -1.0, &a1, m, &a2, n, None, &mut cdst, ldc, scatter)
        });
    }
}

fn main() {
    let bench = Bench::from_args();
    bench_gemm(&bench);
    bench_diag_factorizations(&bench);
    bench_trsm(&bench);
    bench_update_variants(&bench);
}
