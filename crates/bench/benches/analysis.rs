//! Analysis-phase benchmarks: ordering, elimination tree, symbolic
//! factorization and the static schedule — the cost PaStiX pays once per
//! structure (§III notes the 1D coarsening exists to keep this cheap).

use dagfact_bench::Bench;
use dagfact_core::{Analysis, SolverOptions};
use dagfact_order::{compute_ordering, OrderingKind};
use dagfact_sparse::gen::grid_laplacian_3d;
use dagfact_symbolic::cost::{static_schedule, CostModel, TaskCosts};
use dagfact_symbolic::counts::column_counts;
use dagfact_symbolic::etree::elimination_tree;
use dagfact_symbolic::FactoKind;
use std::hint::black_box;

fn bench_ordering(bench: &Bench) {
    let mut group = bench.group("ordering");
    for side in [16usize, 24] {
        let a = grid_laplacian_3d(side, side, side);
        let sym = a.pattern().symmetrize();
        group.bench(&format!("nested_dissection/{}", side * side * side), || {
            black_box(compute_ordering(&sym, OrderingKind::NestedDissection));
        });
    }
}

fn bench_symbolic(bench: &Bench) {
    let mut group = bench.group("symbolic");
    for side in [16usize, 24] {
        let a = grid_laplacian_3d(side, side, side);
        let sym = a.pattern().symmetrize();
        let perm = compute_ordering(&sym, OrderingKind::NestedDissection);
        let permuted = sym.permute_symmetric(perm.perm());
        group.bench(&format!("etree_and_counts/{}", side * side * side), || {
            let parent = elimination_tree(&permuted);
            black_box(column_counts(&permuted, &parent));
        });
        group.bench(&format!("full_analysis/{}", side * side * side), || {
            black_box(Analysis::new(
                a.pattern(),
                FactoKind::Cholesky,
                &SolverOptions::default(),
            ));
        });
    }
}

fn bench_static_schedule(bench: &Bench) {
    let mut group = bench.group("static_schedule");
    let a = grid_laplacian_3d(24, 24, 24);
    let an = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let costs = TaskCosts::compute(&an.symbol, &CostModel::real(FactoKind::Cholesky));
    for workers in [4usize, 12] {
        group.bench(&format!("{workers}"), || {
            black_box(static_schedule(&an.symbol, &costs, workers));
        });
    }
}

fn main() {
    let bench = Bench::from_args();
    bench_ordering(&bench);
    bench_symbolic(&bench);
    bench_static_schedule(&bench);
}
