//! Analysis-phase benchmarks: ordering, elimination tree, symbolic
//! factorization and the static schedule — the cost PaStiX pays once per
//! structure (§III notes the 1D coarsening exists to keep this cheap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dagfact_core::{Analysis, SolverOptions};
use dagfact_order::{compute_ordering, OrderingKind};
use dagfact_sparse::gen::grid_laplacian_3d;
use dagfact_symbolic::cost::{static_schedule, CostModel, TaskCosts};
use dagfact_symbolic::counts::column_counts;
use dagfact_symbolic::etree::elimination_tree;
use dagfact_symbolic::FactoKind;

fn bench_ordering(c: &mut Criterion) {
    let mut group = c.benchmark_group("ordering");
    group.sample_size(10);
    for side in [16usize, 24] {
        let a = grid_laplacian_3d(side, side, side);
        let sym = a.pattern().symmetrize();
        group.bench_with_input(
            BenchmarkId::new("nested_dissection", side * side * side),
            &sym,
            |bench, sym| {
                bench.iter(|| compute_ordering(sym, OrderingKind::NestedDissection));
            },
        );
    }
    group.finish();
}

fn bench_symbolic(c: &mut Criterion) {
    let mut group = c.benchmark_group("symbolic");
    group.sample_size(10);
    for side in [16usize, 24] {
        let a = grid_laplacian_3d(side, side, side);
        let sym = a.pattern().symmetrize();
        let perm = compute_ordering(&sym, OrderingKind::NestedDissection);
        let permuted = sym.permute_symmetric(perm.perm());
        group.bench_with_input(
            BenchmarkId::new("etree_and_counts", side * side * side),
            &permuted,
            |bench, p| {
                bench.iter(|| {
                    let parent = elimination_tree(p);
                    column_counts(p, &parent)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full_analysis", side * side * side),
            &a,
            |bench, a| {
                bench.iter(|| {
                    Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default())
                });
            },
        );
    }
    group.finish();
}

fn bench_static_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_schedule");
    group.sample_size(10);
    let a = grid_laplacian_3d(24, 24, 24);
    let an = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let costs = TaskCosts::compute(&an.symbol, &CostModel::real(FactoKind::Cholesky));
    for workers in [4usize, 12] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |bench, &w| {
                bench.iter(|| static_schedule(&an.symbol, &costs, w));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ordering, bench_symbolic, bench_static_schedule);
criterion_main!(benches);
