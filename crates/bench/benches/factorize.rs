//! End-to-end *real* factorization benchmarks: the three runtime engines
//! executing the actual numeric kernels on real threads. On a single-core
//! host this measures per-engine overhead rather than scaling (the scaling
//! study lives in the `fig2`/`fig4` simulator harness); on a multi-core
//! host it doubles as a genuine scheduler comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dagfact_core::{Analysis, RuntimeKind, SolverOptions};
use dagfact_sparse::gen::{convection_diffusion_3d, grid_laplacian_3d, shifted_laplacian_3d};
use dagfact_symbolic::FactoKind;

fn bench_factorize(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut group = c.benchmark_group("factorize_real");
    group.sample_size(10);

    let spd = grid_laplacian_3d(14, 14, 14);
    let chol = Analysis::new(spd.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let flops = chol.stats().flops_real;
    group.throughput(Throughput::Elements(flops as u64));
    for rt in RuntimeKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("cholesky_14cube", rt.label()),
            &rt,
            |bench, &rt| {
                bench.iter(|| chol.factorize(&spd, rt, threads).unwrap());
            },
        );
    }

    let indef = shifted_laplacian_3d(12, 12, 12, 1.0);
    let ldlt = Analysis::new(indef.pattern(), FactoKind::Ldlt, &SolverOptions::default());
    for rt in [RuntimeKind::Native, RuntimeKind::Ptg] {
        group.bench_with_input(
            BenchmarkId::new("ldlt_12cube", rt.label()),
            &rt,
            |bench, &rt| {
                bench.iter(|| ldlt.factorize(&indef, rt, threads).unwrap());
            },
        );
    }

    let unsym = convection_diffusion_3d(11, 11, 11, 0.4);
    let lu = Analysis::new(unsym.pattern(), FactoKind::Lu, &SolverOptions::default());
    for rt in [RuntimeKind::Native, RuntimeKind::Dataflow] {
        group.bench_with_input(
            BenchmarkId::new("lu_11cube", rt.label()),
            &rt,
            |bench, &rt| {
                bench.iter(|| lu.factorize(&unsym, rt, threads).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_real");
    group.sample_size(20);
    let spd = grid_laplacian_3d(14, 14, 14);
    let chol = Analysis::new(spd.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let f = chol.factorize(&spd, RuntimeKind::Native, 1).unwrap();
    let b = vec![1.0f64; spd.nrows()];
    group.bench_function("triangular_solve_14cube", |bench| {
        bench.iter(|| f.solve(&b));
    });
    group.finish();
}

criterion_group!(benches, bench_factorize, bench_solve);
criterion_main!(benches);
