//! End-to-end *real* factorization benchmarks: the three runtime engines
//! executing the actual numeric kernels on real threads. On a single-core
//! host this measures per-engine overhead rather than scaling (the scaling
//! study lives in the `fig2`/`fig4` simulator harness); on a multi-core
//! host it doubles as a genuine scheduler comparison.

use dagfact_bench::Bench;
use dagfact_core::{Analysis, RuntimeKind, SolverOptions};
use dagfact_sparse::gen::{convection_diffusion_3d, grid_laplacian_3d, shifted_laplacian_3d};
use dagfact_symbolic::FactoKind;

fn bench_factorize(bench: &Bench) {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut group = bench.group("factorize_real");

    let spd = grid_laplacian_3d(14, 14, 14);
    let chol = Analysis::new(spd.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let flops = chol.stats().flops_real;
    group.throughput(flops as u64);
    for rt in RuntimeKind::ALL {
        group.bench(&format!("cholesky_14cube/{}", rt.label()), || {
            chol.factorize(&spd, rt, threads).unwrap();
        });
    }

    let indef = shifted_laplacian_3d(12, 12, 12, 1.0);
    let ldlt = Analysis::new(indef.pattern(), FactoKind::Ldlt, &SolverOptions::default());
    for rt in [RuntimeKind::Native, RuntimeKind::Ptg] {
        group.bench(&format!("ldlt_12cube/{}", rt.label()), || {
            ldlt.factorize(&indef, rt, threads).unwrap();
        });
    }

    let unsym = convection_diffusion_3d(11, 11, 11, 0.4);
    let lu = Analysis::new(unsym.pattern(), FactoKind::Lu, &SolverOptions::default());
    for rt in [RuntimeKind::Native, RuntimeKind::Dataflow] {
        group.bench(&format!("lu_11cube/{}", rt.label()), || {
            lu.factorize(&unsym, rt, threads).unwrap();
        });
    }
}

fn bench_solve(bench: &Bench) {
    let mut group = bench.group("solve_real");
    let spd = grid_laplacian_3d(14, 14, 14);
    let chol = Analysis::new(spd.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let f = chol.factorize(&spd, RuntimeKind::Native, 1).unwrap();
    let b = vec![1.0f64; spd.nrows()];
    group.bench("triangular_solve_14cube", || {
        f.solve(&b);
    });
}

fn main() {
    let bench = Bench::from_args();
    bench_factorize(&bench);
    bench_solve(&bench);
}
