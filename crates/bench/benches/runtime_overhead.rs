//! Per-task overhead of the three runtime engines on a no-op workload —
//! the real-execution counterpart of the per-policy scheduler costs the
//! simulator charges (PaRSEC targets tasks "order of magnitude under ten
//! microseconds", §IV; this measures how close the Rust engines get).

use dagfact_bench::Bench;
use dagfact_rt::dataflow::DataflowGraph;
use dagfact_rt::native::{run_native, NativeTask};
use dagfact_rt::ptg::{run_ptg, PtgProgram};
use dagfact_rt::AccessMode;
use std::sync::atomic::{AtomicUsize, Ordering};

const NTASKS: usize = 10_000;

fn bench_engines(bench: &Bench) {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut group = bench.group("engine_overhead");
    group.throughput(NTASKS as u64);

    // Independent no-op tasks.
    let tasks: Vec<NativeTask> = (0..NTASKS)
        .map(|i| NativeTask {
            owner: i % threads,
            npred: 0,
            succs: vec![],
            priority: (i % 97) as f64,
        })
        .collect();
    group.bench(&format!("native/{NTASKS}"), || {
        let count = AtomicUsize::new(0);
        run_native(&tasks, threads, |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), NTASKS);
    });

    group.bench(&format!("dataflow/{NTASKS}"), || {
        let count = AtomicUsize::new(0);
        let mut g = DataflowGraph::new(64);
        for i in 0..NTASKS {
            let count = &count;
            // Rotating data accesses: chains of length NTASKS/64.
            g.submit(&[(i % 64, AccessMode::ReadWrite)], 0.0, move |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        g.execute(threads);
        assert_eq!(count.load(Ordering::Relaxed), NTASKS);
    });

    struct Flat<'a> {
        count: &'a AtomicUsize,
    }
    impl PtgProgram for Flat<'_> {
        fn num_tasks(&self) -> usize {
            NTASKS
        }
        fn num_predecessors(&self, _t: usize) -> u32 {
            0
        }
        fn successors(&self, _t: usize, _out: &mut Vec<usize>) {}
        fn execute(&self, _t: usize, _w: usize) {
            self.count.fetch_add(1, Ordering::Relaxed);
        }
    }
    group.bench(&format!("ptg/{NTASKS}"), || {
        let count = AtomicUsize::new(0);
        run_ptg(&Flat { count: &count }, threads);
        assert_eq!(count.load(Ordering::Relaxed), NTASKS);
    });
}

fn main() {
    let bench = Bench::from_args();
    bench_engines(&bench);
}
