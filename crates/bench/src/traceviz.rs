//! Chrome-trace (Perfetto) export of recorded timelines.
//!
//! Serializes [`dagfact_rt::Trace`] snapshots and
//! [`dagfact_gpusim::SimReport`] span logs into the Trace Event Format
//! consumed by `chrome://tracing` and <https://ui.perfetto.dev>: an object
//! with a `traceEvents` array of complete events (`"ph": "X"`) carrying
//! microsecond `ts`/`dur` plus `pid`/`tid` lane coordinates.
//!
//! Lane layout for engine traces: phases on `pid` [`PHASE_PID`], workers
//! on `pid` [`WORKER_PID`] with `tid` = worker index. Simulator traces
//! put CPU workers, GPU streams and the two PCIe directions on their own
//! `pid` groups so Perfetto renders each resource class as a track group.

use crate::json::Json;
use dagfact_gpusim::{SimReport, SimResource};
use dagfact_rt::trace::{units, SpanKind};
use dagfact_rt::Trace;

/// `pid` of the run-phase lane (order/symbolic/assembly/numeric/…).
pub const PHASE_PID: usize = 0;
/// `pid` of the per-worker engine lanes.
pub const WORKER_PID: usize = 1;

/// One complete event (`ph:"X"`) in Trace Event Format.
fn complete_event(
    name: String,
    cat: &str,
    pid: usize,
    tid: usize,
    start_ns: u64,
    dur_ns: u64,
    args: Json,
) -> Json {
    Json::obj()
        .field("name", name)
        .field("cat", cat)
        .field("ph", "X")
        .field("ts", units::ns_to_micros(start_ns))
        .field("dur", units::ns_to_micros(dur_ns))
        .field("pid", pid)
        .field("tid", tid)
        .field("args", args)
}

/// Serialize an engine/solver trace snapshot to a Chrome-trace document.
/// Load the rendered JSON in Perfetto or `chrome://tracing` as-is.
pub fn chrome_trace(trace: &Trace) -> Json {
    let mut events: Vec<Json> = Vec::with_capacity(trace.spans.len());
    for s in &trace.spans {
        let (pid, tid, name, cat) = if s.kind == SpanKind::Phase {
            (PHASE_PID, 0, s.label.to_string(), "phase")
        } else {
            let name = match s.task {
                Some(t) => {
                    let kernel = trace.meta.get(&t).map_or("task", |m| m.kernel);
                    if s.kind == SpanKind::Execute {
                        format!("{kernel} #{t}")
                    } else {
                        format!("{} #{t}", s.label)
                    }
                }
                None => s.label.to_string(),
            };
            (WORKER_PID, s.worker, name, s.kind.label())
        };
        let mut args = Json::obj();
        if let Some(t) = s.task {
            args = args.field("task", t);
            if let Some(m) = trace.meta.get(&t) {
                args = args
                    .field("kernel", m.kernel)
                    .field("panel", m.panel)
                    .field("flops", m.flops);
            }
        }
        events.push(complete_event(name, cat, pid, tid, s.start_ns, s.dur_ns(), args));
    }
    Json::obj()
        .field("traceEvents", Json::Arr(events))
        .field("displayTimeUnit", "ms")
}

/// Serialize a simulator run's span log to a Chrome-trace document.
/// Simulated seconds are mapped onto the microsecond `ts` axis.
pub fn sim_chrome_trace(report: &SimReport) -> Json {
    let mut events: Vec<Json> = Vec::with_capacity(report.spans.len());
    for s in &report.spans {
        // Simulated seconds → ns, saturating on absurd horizons.
        let to_ns = |secs: f64| -> u64 {
            let ns = secs * units::NS_PER_SEC;
            if ns >= u64::MAX as f64 {
                u64::MAX
            } else {
                ns.max(0.0) as u64
            }
        };
        let (pid, tid, group) = match s.resource {
            SimResource::Cpu(w) => (1usize, w, "cpu"),
            SimResource::Gpu(g) => (2, g, "gpu"),
            SimResource::H2d(g) => (3, g, "h2d"),
            SimResource::D2h(g) => (4, g, "d2h"),
        };
        let name = match s.task {
            Some(t) => format!("{} #{t}", s.label),
            None => s.label.to_string(),
        };
        let start = to_ns(s.start);
        let end = to_ns(s.end).max(start);
        let mut args = Json::obj().field("resource", group);
        if let Some(t) = s.task {
            args = args.field("task", t);
        }
        events.push(complete_event(name, s.label, pid, tid, start, end - start, args));
    }
    Json::obj()
        .field("traceEvents", Json::Arr(events))
        .field("displayTimeUnit", "ms")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagfact_rt::{Span, TraceRecorder};

    fn field<'a>(j: &'a Json, key: &str) -> &'a Json {
        match j {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("missing field {key}")),
            other => panic!("field {key} on non-object {other:?}"),
        }
    }

    /// Span schema round-trip: everything recorded reappears as a valid
    /// complete event with the required ph/ts/dur/pid/tid fields.
    #[test]
    fn chrome_trace_schema_round_trip() {
        let rec = TraceRecorder::new();
        rec.set_task_meta(0, "panel", 3, 2.0e6);
        rec.record(Span {
            kind: SpanKind::Execute,
            task: Some(0),
            worker: 1,
            start_ns: 1_000,
            end_ns: 4_500,
            label: SpanKind::Execute.label(),
        });
        rec.record(Span {
            kind: SpanKind::QueueWait,
            task: Some(0),
            worker: 1,
            start_ns: 0,
            end_ns: 1_000,
            label: SpanKind::QueueWait.label(),
        });
        rec.phase_from("numeric", 0);
        let doc = chrome_trace(&rec.snapshot());
        let Json::Arr(events) = field(&doc, "traceEvents") else {
            panic!("traceEvents is not an array");
        };
        assert_eq!(events.len(), 3);
        for ev in events {
            assert_eq!(field(ev, "ph"), &Json::Str("X".into()));
            assert!(matches!(field(ev, "ts"), Json::Num(x) if *x >= 0.0));
            assert!(matches!(field(ev, "dur"), Json::Num(x) if *x >= 0.0));
            assert!(matches!(field(ev, "pid"), Json::Int(_)));
            assert!(matches!(field(ev, "tid"), Json::Int(_)));
        }
        // The execute event carries the registered kernel metadata and
        // microsecond-converted timestamps.
        let exec = events
            .iter()
            .find(|e| matches!(field(e, "cat"), Json::Str(s) if s == "execute"))
            .unwrap();
        assert_eq!(field(exec, "name"), &Json::Str("panel #0".into()));
        assert_eq!(field(exec, "ts"), &Json::Num(1.0));
        assert_eq!(field(exec, "dur"), &Json::Num(3.5));
        assert_eq!(field(exec, "pid"), &Json::Int(WORKER_PID as i128));
        assert_eq!(field(exec, "tid"), &Json::Int(1));
        let args = field(exec, "args");
        assert_eq!(field(args, "kernel"), &Json::Str("panel".into()));
        assert_eq!(field(args, "panel"), &Json::Int(3));
        // The phase event lands on the phase pid.
        let phase = events
            .iter()
            .find(|e| matches!(field(e, "cat"), Json::Str(s) if s == "phase"))
            .unwrap();
        assert_eq!(field(phase, "pid"), &Json::Int(PHASE_PID as i128));
        // The document renders to parseable-looking JSON text.
        let text = doc.to_string();
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.contains("\"ph\":\"X\""));
    }

    #[test]
    fn sim_trace_groups_resources_by_pid() {
        use dagfact_gpusim::{simulate, Platform, SimDag, SimData, SimPolicy, SimTask, TaskShape};
        let dag = SimDag {
            tasks: (0..8)
                .map(|i| SimTask {
                    shape: TaskShape::Update {
                        m: 4096,
                        n: 128,
                        k: 128,
                        target_height: 4096,
                        ldlt: false,
                    },
                    flops: 4e8,
                    reads: vec![0],
                    writes: 1 + i,
                    gpu_eligible: true,
                    succs: vec![],
                    npred: 0,
                    priority: 1.0,
                    static_owner: i,
                    cpu_multiplier: 1.0,
                })
                .collect(),
            data: (0..9).map(|_| SimData { bytes: 1e6 }).collect(),
        };
        let report = simulate(
            &dag,
            &Platform::mirage(4, 1),
            SimPolicy::ParsecLike { streams: 1 },
        );
        assert!(!report.spans.is_empty());
        let doc = sim_chrome_trace(&report);
        let Json::Arr(events) = field(&doc, "traceEvents") else {
            panic!("traceEvents is not an array");
        };
        assert_eq!(events.len(), report.spans.len());
        // GPU offload happened, so both kernel and transfer lanes exist.
        let pids: Vec<i128> = events
            .iter()
            .map(|e| match field(e, "pid") {
                Json::Int(p) => *p,
                other => panic!("pid {other:?}"),
            })
            .collect();
        assert!(pids.contains(&2), "no gpu-kernel events");
        assert!(pids.contains(&3), "no h2d events");
        for ev in events {
            assert_eq!(field(ev, "ph"), &Json::Str("X".into()));
            assert!(matches!(field(ev, "ts"), Json::Num(x) if *x >= 0.0));
        }
    }
}
