//! # dagfact-bench
//!
//! The evaluation harness: everything needed to regenerate the paper's
//! Table I and Figures 2-4 with the `dagfact` stack. See `EXPERIMENTS.md`
//! at the repository root for the recorded paper-vs-measured comparison.
//!
//! Binaries (run with `--release`):
//!
//! * `table1` — matrix inventory: size, nnz(A), nnz(L), flops;
//! * `fig2`   — CPU strong scaling of the three schedulers (simulated
//!   Mirage node, 1→12 cores);
//! * `fig3`   — multi-stream GPU GEMM kernel study (cuBLAS-like /
//!   ASTRA-like / sparse kernels × 1-3 streams);
//! * `fig4`   — hybrid scaling, 12 cores + 0-3 GPUs;
//! * `ablation` — design-choice studies beyond the paper (amalgamation
//!   ratio sweep, 1D vs 2D task split, data-reuse on/off);
//! * `memsweep` — memory-budget sweep: proxy factorizations under
//!   descending caps, per-phase peak/spill accounting recorded as JSON
//!   (`results/memsweep.json`).
//!
//! The library half hosts the proxy-matrix registry substituting for the
//! University of Florida set (DESIGN.md §2).

pub mod comm;
pub mod json;
pub mod matrices;
pub mod microbench;
pub mod traceviz;

pub use comm::comm_study_json;
pub use json::{write_results, Json};
pub use matrices::{proxies, MatrixProxy};
pub use microbench::Bench;
pub use traceviz::{chrome_trace, sim_chrome_trace};
