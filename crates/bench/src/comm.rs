//! Shared JSON shape for the fan-in communication study
//! (`results/comm.json`): one record per matrix with the predicted
//! message/byte traffic at each cluster width, written identically by
//! `dagfact dist --study` and the `comm` bench binary so downstream
//! tooling parses one format.

use crate::json::Json;
use dagfact_core::{fan_in_study, Analysis, CommStats};

fn stats_json(s: &CommStats) -> Json {
    Json::obj()
        .field("messages", s.messages)
        .field("bytes", s.bytes)
        .field(
            "sent_per_node",
            Json::Arr(s.sent_per_node.iter().map(|&b| Json::Num(b)).collect()),
        )
        .field(
            "buffer_bytes_per_node",
            Json::Arr(
                s.buffer_bytes_per_node
                    .iter()
                    .map(|&b| Json::Num(b))
                    .collect(),
            ),
        )
}

/// The study record for one matrix: fan-out vs fan-in traffic predicted
/// by [`fan_in_study`] at each width in `nodes`.
pub fn comm_study_json(name: &str, analysis: &Analysis, complex: bool, nodes: &[usize]) -> Json {
    let mut widths = Vec::new();
    for &nnodes in nodes {
        let study = fan_in_study(analysis, complex, nnodes);
        widths.push(
            Json::obj()
                .field("nnodes", nnodes)
                .field(
                    "work_per_node",
                    Json::Arr(study.mapping.work.iter().map(|&w| Json::Num(w)).collect()),
                )
                .field("fan_out", stats_json(&study.fan_out))
                .field("fan_in", stats_json(&study.fan_in)),
        );
    }
    Json::obj()
        .field("matrix", name)
        .field("facto", analysis.facto.label())
        .field("panels", analysis.symbol.ncblk())
        .field("widths", Json::Arr(widths))
}
