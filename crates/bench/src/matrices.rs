//! The nine proxy problems standing in for the paper's Table I matrices.
//!
//! The University of Florida files are not redistributable here, so each
//! paper matrix is replaced by a synthetic generator with the same
//! *character* — dimensionality, stencil density, arithmetic and
//! factorization kind — scaled down ≈300× in flops so a full analysis and
//! simulation sweep runs in minutes on a laptop. The flop *ordering* of
//! Table I (afshell10 ≪ … ≪ Serena) is preserved; `table1` prints the
//! actual numbers next to the paper's.

use dagfact_core::{Analysis, SolverOptions};
use dagfact_sparse::gen;
use dagfact_sparse::SparsityPattern;
use dagfact_symbolic::FactoKind;

/// One Table-I row: a proxy generator plus the paper's reference figures.
pub struct MatrixProxy {
    /// Paper matrix name.
    pub name: &'static str,
    /// `"D"` (real double) or `"Z"` (double complex).
    pub prec: &'static str,
    /// Factorization the paper uses for it.
    pub facto: FactoKind,
    /// Paper's Table I columns (size, nnz(A) of the input, nnz(L), TFlop).
    pub paper: PaperRow,
    /// How the proxy is generated (documentation string for reports).
    pub proxy_desc: &'static str,
    generator: fn() -> SparsityPattern,
}

/// The reference numbers from the paper's Table I.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Matrix order.
    pub n: f64,
    /// Input nonzeros.
    pub nnz_a: f64,
    /// Factor nonzeros.
    pub nnz_l: f64,
    /// Factorization TFlop.
    pub tflop: f64,
}

impl MatrixProxy {
    /// Generate the proxy pattern.
    pub fn pattern(&self) -> SparsityPattern {
        (self.generator)()
    }

    /// `true` for double-complex arithmetic.
    pub fn is_complex(&self) -> bool {
        self.prec == "Z"
    }

    /// Run the analysis phase on the proxy.
    pub fn analyze(&self) -> Analysis {
        Analysis::new(&self.pattern(), self.facto, &SolverOptions::default())
    }
}

macro_rules! pattern_of {
    ($e:expr) => {{
        fn gen_pattern() -> SparsityPattern {
            $e.pattern().clone()
        }
        gen_pattern
    }};
}

/// The nine proxies, in Table I order (ascending paper flops).
pub fn proxies() -> Vec<MatrixProxy> {
    vec![
        MatrixProxy {
            name: "afshell10",
            prec: "D",
            facto: FactoKind::Lu,
            paper: PaperRow {
                n: 1.5e6,
                nnz_a: 27e6,
                nnz_l: 610e6,
                tflop: 0.12,
            },
            proxy_desc: "thin quasi-2D shell: 150x150x3 grid, 7-pt, unsymmetric values",
            generator: pattern_of!(gen::convection_diffusion_3d(150, 150, 3, 0.3)),
        },
        MatrixProxy {
            name: "FilterV2",
            prec: "Z",
            facto: FactoKind::Lu,
            paper: PaperRow {
                n: 0.6e6,
                nnz_a: 12e6,
                nnz_l: 536e6,
                tflop: 3.6,
            },
            proxy_desc: "3D optical-filter stand-in: 28^3 grid, 7-pt, complex unsymmetric",
            generator: pattern_of!(gen::complex_unsym_3d(28, 28, 28)),
        },
        MatrixProxy {
            name: "Flan",
            prec: "D",
            facto: FactoKind::Cholesky,
            paper: PaperRow {
                n: 1.6e6,
                nnz_a: 59e6,
                nnz_l: 1712e6,
                tflop: 5.3,
            },
            proxy_desc: "3D mechanical SPD: 44^3 grid, 7-pt",
            generator: pattern_of!(gen::grid_laplacian_3d(44, 44, 44)),
        },
        MatrixProxy {
            name: "audi",
            prec: "D",
            facto: FactoKind::Cholesky,
            paper: PaperRow {
                n: 0.9e6,
                nnz_a: 39e6,
                nnz_l: 1325e6,
                tflop: 6.5,
            },
            proxy_desc: "crankshaft SPD with dense coupling: 32^3 grid, 27-pt",
            generator: pattern_of!(gen::grid_laplacian_3d_box(32, 32, 32)),
        },
        MatrixProxy {
            name: "MHD",
            prec: "D",
            facto: FactoKind::Lu,
            paper: PaperRow {
                n: 0.5e6,
                nnz_a: 24e6,
                nnz_l: 1133e6,
                tflop: 6.6,
            },
            proxy_desc: "magnetohydrodynamics: 29^3 grid, 27-pt, unsymmetric values",
            generator: pattern_of!(gen::grid_operator_3d(
                29,
                29,
                29,
                gen::Stencil::Box,
                |i, j| if j > i { -0.8 } else { -1.2 },
                |_, deg| deg as f64 + 2.0,
            )),
        },
        MatrixProxy {
            name: "Geo1438",
            prec: "D",
            facto: FactoKind::Cholesky,
            paper: PaperRow {
                n: 1.4e6,
                nnz_a: 32e6,
                nnz_l: 2768e6,
                tflop: 23.0,
            },
            proxy_desc: "geomechanical SPD: 54^3 grid, 7-pt",
            generator: pattern_of!(gen::grid_laplacian_3d(54, 54, 54)),
        },
        MatrixProxy {
            name: "pmlDF",
            prec: "Z",
            facto: FactoKind::Ldlt,
            paper: PaperRow {
                n: 1.0e6,
                nnz_a: 8e6,
                nnz_l: 1105e6,
                tflop: 28.0,
            },
            proxy_desc: "PML electromagnetics: 44^3 grid, 7-pt, complex symmetric",
            generator: pattern_of!(gen::helmholtz_3d(44, 44, 44, 2.0, 0.5)),
        },
        MatrixProxy {
            name: "HOOK",
            prec: "D",
            facto: FactoKind::Lu,
            paper: PaperRow {
                n: 1.5e6,
                nnz_a: 31e6,
                nnz_l: 4168e6,
                tflop: 35.0,
            },
            proxy_desc: "3D structural LU: 52^3 grid, 7-pt, unsymmetric values",
            generator: pattern_of!(gen::convection_diffusion_3d(52, 52, 52, 0.4)),
        },
        MatrixProxy {
            name: "Serena",
            prec: "D",
            facto: FactoKind::Ldlt,
            paper: PaperRow {
                n: 1.4e6,
                nnz_a: 32e6,
                nnz_l: 3365e6,
                tflop: 47.0,
            },
            proxy_desc: "gas-reservoir symmetric indefinite: 61^3 grid, 7-pt",
            generator: pattern_of!(gen::shifted_laplacian_3d(61, 61, 61, 1.0)),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_nine_table1_rows() {
        let p = proxies();
        assert_eq!(p.len(), 9);
        // Paper flop ordering is ascending by construction of Table I.
        for w in p.windows(2) {
            assert!(w[0].paper.tflop <= w[1].paper.tflop);
        }
        // Arithmetic/facto kinds match the paper.
        assert_eq!(p[1].prec, "Z");
        assert_eq!(p[6].facto, FactoKind::Ldlt);
        assert_eq!(p[8].facto, FactoKind::Ldlt);
    }

    #[test]
    fn smallest_proxy_analyzes_quickly_and_nontrivially() {
        let p = proxies();
        let an = p[0].analyze();
        let st = an.stats();
        assert!(st.n > 10_000);
        assert!(st.flops_real > 1e8);
    }
}
