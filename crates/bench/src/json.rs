//! Minimal JSON emitter for machine-readable benchmark records.
//!
//! The workspace takes no external dependencies, so this is the smallest
//! thing that can serialize the bench binaries' result records: a value
//! tree with correct string escaping and `null` for non-finite floats
//! (JSON has no NaN/Infinity). Compact output by default; [`Json::pretty`]
//! indents for humans.

use std::fmt;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integral number (covers `usize` byte counts exactly).
    Int(i128),
    /// Floating number; non-finite values serialize as `null`.
    Num(f64),
    /// String (escaped on output).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Empty object, to be filled with [`Json::field`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a field to an object (panics on non-objects: a bench
    /// binary wiring bug, not a data error).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Indented rendering for humans; same data as `Display`.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        const INDENT: &str = "  ";
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&INDENT.repeat(depth + 1));
                    item.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&INDENT.repeat(depth));
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&INDENT.repeat(depth + 1));
                    out.push_str(&format!("{}: ", Json::Str(k.clone())));
                    v.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&INDENT.repeat(depth));
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }
}

/// Write `doc` to `results/<name>.json` (pretty-printed with a trailing
/// newline), creating the directory if needed. Returns the written path —
/// the shared sink for every bench binary's machine-readable output.
pub fn write_results(name: &str, doc: &Json) -> std::io::Result<std::path::PathBuf> {
    let out = std::path::Path::new("results").join(format!("{name}.json"));
    std::fs::create_dir_all("results")?;
    std::fs::write(&out, doc.pretty() + "\n")?;
    Ok(out)
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Num(x) if x.is_finite() => write!(f, "{x}"),
            Json::Num(_) => write!(f, "null"),
            Json::Str(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        '\r' => write!(f, "\\r")?,
                        '\t' => write!(f, "\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<usize> for Json {
    fn from(i: usize) -> Json {
        Json::Int(i as i128)
    }
}

impl From<u64> for Json {
    fn from(i: u64) -> Json {
        Json::Int(i128::from(i))
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i128::from(i))
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Json> + Clone> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering_is_valid_json() {
        let j = Json::obj()
            .field("name", "audi\n\"proxy\"")
            .field("peak_bytes", 123_456_789usize)
            .field("ratio", 0.5)
            .field("bad", f64::NAN)
            .field("phases", vec![Json::obj().field("n", 1usize)])
            .field("missing", Option::<usize>::None);
        assert_eq!(
            j.to_string(),
            "{\"name\":\"audi\\n\\\"proxy\\\"\",\"peak_bytes\":123456789,\
             \"ratio\":0.5,\"bad\":null,\"phases\":[{\"n\":1}],\"missing\":null}"
        );
    }

    #[test]
    fn pretty_rendering_round_trips_the_same_data() {
        let j = Json::obj()
            .field("a", vec![1usize, 2, 3])
            .field("b", Json::obj().field("c", true));
        let pretty = j.pretty();
        assert!(pretty.contains("\n  \"a\": [\n"));
        // Stripping all structural whitespace recovers the compact form.
        let stripped: String = {
            let mut out = String::new();
            let mut in_str = false;
            let mut esc = false;
            for c in pretty.chars() {
                if in_str {
                    out.push(c);
                    if esc {
                        esc = false;
                    } else if c == '\\' {
                        esc = true;
                    } else if c == '"' {
                        in_str = false;
                    }
                } else if c == '"' {
                    in_str = true;
                    out.push(c);
                } else if !c.is_whitespace() {
                    out.push(c);
                }
            }
            out
        };
        assert_eq!(stripped, j.to_string());
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(Json::from("\u{1}").to_string(), "\"\\u0001\"");
    }
}
