//! Kernel study: SIMD (AVX2/FMA) vs portable GFLOP/s on the dense
//! kernels, cache-blocking autotune, and an end-to-end factorization
//! proxy with trace-attributed per-kernel rates.
//!
//! ```text
//! cargo run -p dagfact-bench --bin kernels_bench --release
//! ```
//!
//! Sections:
//!
//! 1. **GEMM microkernels** — the dispatched [`gemm`] against
//!    [`gemm_portable`] across the update shapes a supernodal
//!    factorization produces (tall-skinny `m × 32..128`). On an AVX2
//!    host the run **gates** on a ≥[`MIN_SPEEDUP`]× geometric-mean
//!    speedup over the tall-skinny update shapes; without AVX2 the gate
//!    is skipped loudly and only portable rates are recorded.
//! 2. **Update kernels** — the packed pipeline (`pack_b` once +
//!    `update_scatter_packed` per target) against the unpacked
//!    buffer-then-scatter baseline on a gappy scatter map.
//! 3. **Blocking autotune** — sweep `mc/kc/nc` candidates on a large
//!    update GEMM, apply the winner via [`simd::set_blocking`], and
//!    persist the choice as a `DAGFACT_KERNELS_BLOCK=mc,kc,nc` line
//!    (printed and recorded in the JSON for the caller to export).
//! 4. **End-to-end proxies** — two Table-I proxy factorizations run
//!    twice (forced-scalar, then the detected ISA) with span recording:
//!    wall time, per-kernel GFLOP/s from the trace attribution, and the
//!    relative residual of a solve. Both runs must reach the same
//!    residual quality — the SIMD kernels change association, not
//!    accuracy.
//!
//! Output: a table on stdout plus `results/BENCH_kernels.json`. Exits
//! non-zero on a failed gate (AVX2 host only) or a residual mismatch.

use dagfact_bench::{write_results, Json};
use dagfact_core::{Analysis, ExecOptions, RuntimeKind, SolverOptions};
use dagfact_kernels::update::{update_via_buffer, Scatter};
use dagfact_kernels::{
    force_isa, gemm, gemm_portable, isa, pack_b, simd, update_scatter_packed, Blocking, Isa, Trans,
};
use dagfact_rt::{RunConfig, TraceRecorder};
use dagfact_sparse::{gen, CscMatrix};
use dagfact_symbolic::FactoKind;
use std::hint::black_box;
use std::time::Instant;

/// Required geometric-mean speedup of the dispatched GEMM over the
/// portable one across the tall-skinny update shapes (AVX2 hosts only).
const MIN_SPEEDUP: f64 = 1.5;
/// Residuals of the scalar and SIMD runs must both sit below this
/// relative bound and within [`RESIDUAL_RATIO`]× of each other.
const MAX_RESIDUAL: f64 = 1e-10;
const RESIDUAL_RATIO: f64 = 10.0;

/// Tall-skinny update shapes (`m × n × k`): the compressed-1D update
/// GEMMs the factorization spends its time in. These drive the gate.
const UPDATE_SHAPES: &[(usize, usize, usize)] =
    &[(256, 32, 32), (512, 32, 64), (1024, 32, 64), (512, 64, 64)];
/// Squarer shapes reported for context (no gate).
const WIDE_SHAPES: &[(usize, usize, usize)] = &[(256, 128, 128), (512, 128, 128)];

fn filled(n: usize, seed: u64) -> Vec<f64> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 2000) as f64 / 1000.0 - 1.0
        })
        .collect()
}

/// Median seconds per call over adaptive batches (same shape as the
/// `microbench` harness, but returning the figure for the JSON record).
fn time_median<F: FnMut()>(mut f: F) -> f64 {
    const SAMPLES: usize = 9;
    const TARGET: f64 = 4e-3;
    // Warmup + batch sizing.
    let t0 = Instant::now();
    let mut iters = 0u64;
    while t0.elapsed().as_secs_f64() < 10e-3 {
        f();
        iters += 1;
    }
    let per = t0.elapsed().as_secs_f64() / iters as f64;
    let batch = (TARGET / per).ceil().max(1.0) as u64;
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        samples.push(t.elapsed().as_secs_f64() / batch as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[SAMPLES / 2]
}

/// GFLOP/s of one `m×n×k` GEMM (`2mnk` flops) given seconds per call.
fn gflops(m: usize, n: usize, k: usize, secs: f64) -> f64 {
    (2 * m * n * k) as f64 / secs / 1e9
}

/// Time the NT×T update-style GEMM `C ← C − A·Bᵀ` for one kernel tier.
fn time_gemm(m: usize, n: usize, k: usize, portable: bool) -> f64 {
    let a = filled(m * k, 1);
    let b = filled(n * k, 2);
    let mut c = filled(m * n, 3);
    time_median(|| {
        let (a, b) = (black_box(&a), black_box(&b));
        if portable {
            gemm_portable(Trans::NoTrans, Trans::Trans, m, n, k, -1.0, a, m, b, n, 1.0, &mut c, m);
        } else {
            gemm(Trans::NoTrans, Trans::Trans, m, n, k, -1.0, a, m, b, n, 1.0, &mut c, m);
        }
    })
}

fn shape_record(m: usize, n: usize, k: usize, portable: f64, simd_t: Option<f64>) -> Json {
    let mut rec = Json::obj()
        .field("m", m as i64)
        .field("n", n as i64)
        .field("k", k as i64)
        .field("portable_gflops", gflops(m, n, k, portable));
    if let Some(t) = simd_t {
        rec = rec
            .field("simd_gflops", gflops(m, n, k, t))
            .field("speedup", portable / t);
    }
    rec
}

/// A gappy, strictly increasing scatter map (every other target row).
fn gappy_rows(m: usize) -> Vec<usize> {
    (0..m).map(|i| 2 * i).collect()
}

fn exec_with(rec: std::sync::Arc<TraceRecorder>) -> ExecOptions {
    ExecOptions {
        run: RunConfig {
            trace: Some(rec),
            ..RunConfig::resilient()
        },
        epsilon_override: None,
        spill_dir: None,
    }
}

/// ‖Ax − b‖∞ / ‖b‖∞ for the solved system.
fn rel_residual(a: &CscMatrix<f64>, x: &[f64], b: &[f64]) -> f64 {
    let mut ax = vec![0.0; b.len()];
    a.spmv(x, &mut ax);
    let num = ax
        .iter()
        .zip(b)
        .map(|(y, r)| (y - r).abs())
        .fold(0.0f64, f64::max);
    let den = b.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
    num / den.max(f64::MIN_POSITIVE)
}

/// One traced proxy factorization + solve under the current ISA.
fn run_proxy(a: &CscMatrix<f64>, analysis: &Analysis, nthreads: usize) -> (f64, f64, Json) {
    let rec = TraceRecorder::shared();
    let t0 = Instant::now();
    let factors = analysis
        .factorize_with(a, RuntimeKind::Native, nthreads, &exec_with(rec.clone()))
        .expect("proxy factorization");
    let wall = t0.elapsed().as_secs_f64();
    let b = vec![1.0; a.nrows()];
    let x = factors.solve(&b);
    let resid = rel_residual(a, &x, &b);
    let trace = rec.snapshot();
    let kernels = trace
        .kernel_breakdown()
        .iter()
        .map(|ks| {
            Json::obj()
                .field("kernel", ks.kernel)
                .field("tasks", ks.count as i64)
                .field("time_ms", ks.total_ns as f64 / 1e6)
                .field("gflops", ks.gflops)
        })
        .collect::<Vec<_>>();
    (wall, resid, Json::Arr(kernels))
}

fn main() {
    let detected = isa();
    let avx2 = detected == Isa::Avx2;
    println!("kernel study: detected ISA = {}", detected.name());
    let mut failures = 0usize;

    // --- 1. GEMM microkernels -----------------------------------------
    println!(
        "\n{:<14} | {:>10} {:>10} {:>8}",
        "gemm NTxT", "scalar", "simd", "speedup"
    );
    let mut gemm_records = Vec::new();
    let mut gate_speedups = Vec::new();
    for (shapes, gated) in [(UPDATE_SHAPES, true), (WIDE_SHAPES, false)] {
        for &(m, n, k) in shapes {
            let tp = time_gemm(m, n, k, true);
            let ts = avx2.then(|| time_gemm(m, n, k, false));
            if let Some(ts) = ts {
                if gated {
                    gate_speedups.push(tp / ts);
                }
                println!(
                    "{m:>5}x{n:<3}x{k:<4} | {:>10.2} {:>10.2} {:>7.2}x",
                    gflops(m, n, k, tp),
                    gflops(m, n, k, ts),
                    tp / ts
                );
            } else {
                println!("{m:>5}x{n:<3}x{k:<4} | {:>10.2} {:>10} {:>8}", gflops(m, n, k, tp), "-", "-");
            }
            gemm_records.push(shape_record(m, n, k, tp, ts).field("gated", gated));
        }
    }

    // --- 2. Packed update pipeline ------------------------------------
    let (m, n, k) = (512usize, 32usize, 64usize);
    let a1 = filled(m * k, 11);
    let a2t = filled(n * k, 12); // k rows × n cols, row-major ld = n
    let rows = gappy_rows(m);
    let ldc = 2 * m;
    let mut c = filled(ldc * n, 13);
    let scatter = Scatter {
        row_map: &rows,
        col_offset: 0,
    };
    let mut work = Vec::new();
    let t_unpacked = time_median(|| {
        update_via_buffer(
            m, n, k, -1.0,
            black_box(&a1), m,
            black_box(&a2t), n,
            None, &mut work, &mut c, ldc, scatter,
        );
    });
    let mut pack = vec![0.0; k * n];
    let t_packed = time_median(|| {
        pack_b(n, k, None, black_box(&a2t), n, &mut pack);
        update_scatter_packed(m, n, k, -1.0, black_box(&a1), m, &pack, &mut c, ldc, scatter);
    });
    println!(
        "\nupdate {m}x{n}x{k} (gappy scatter): buffer {:.2} GF/s, packed {:.2} GF/s ({:.2}x)",
        gflops(m, n, k, t_unpacked),
        gflops(m, n, k, t_packed),
        t_unpacked / t_packed
    );
    let update_record = Json::obj()
        .field("m", m as i64)
        .field("n", n as i64)
        .field("k", k as i64)
        .field("buffer_gflops", gflops(m, n, k, t_unpacked))
        .field("packed_gflops", gflops(m, n, k, t_packed))
        .field("speedup", t_unpacked / t_packed);

    // --- 3. Blocking autotune -----------------------------------------
    let mut autotune_trials = Vec::new();
    let default_blocking = simd::blocking();
    let mut best = (default_blocking, f64::INFINITY);
    if avx2 {
        let (am, an, ak) = (1024usize, 128usize, 128usize);
        for &mc in &[64usize, 128, 256] {
            for &kc in &[128usize, 256, 512] {
                for &nc in &[256usize, 512] {
                    let cand = Blocking { mc, kc, nc };
                    simd::set_blocking(cand);
                    let t = time_gemm(am, an, ak, false);
                    autotune_trials.push(
                        Json::obj()
                            .field("mc", mc as i64)
                            .field("kc", kc as i64)
                            .field("nc", nc as i64)
                            .field("gflops", gflops(am, an, ak, t)),
                    );
                    if t < best.1 {
                        best = (cand, t);
                    }
                }
            }
        }
        simd::set_blocking(best.0);
        println!(
            "\nautotune ({am}x{an}x{ak}): best mc={} kc={} nc={} at {:.2} GF/s",
            best.0.mc,
            best.0.kc,
            best.0.nc,
            gflops(am, an, ak, best.1)
        );
        println!(
            "persist with: export DAGFACT_KERNELS_BLOCK={},{},{}",
            best.0.mc, best.0.kc, best.0.nc
        );
    } else {
        println!("\nautotune: SKIPPED (no AVX2 — blocking only affects the SIMD tier)");
    }
    let autotune_record = Json::obj()
        .field("ran", avx2)
        .field(
            "chosen",
            Json::obj()
                .field("mc", best.0.mc as i64)
                .field("kc", best.0.kc as i64)
                .field("nc", best.0.nc as i64),
        )
        .field(
            "env",
            format!("DAGFACT_KERNELS_BLOCK={},{},{}", best.0.mc, best.0.kc, best.0.nc),
        )
        .field("trials", autotune_trials);

    // --- Gate: geometric-mean speedup over the update shapes ----------
    let gate_record = if avx2 {
        let gm = (gate_speedups.iter().map(|s| s.ln()).sum::<f64>()
            / gate_speedups.len() as f64)
            .exp();
        let pass = gm >= MIN_SPEEDUP;
        if !pass {
            eprintln!(
                "GATE FAILED: geometric-mean update-GEMM speedup {gm:.2}x < {MIN_SPEEDUP}x"
            );
            failures += 1;
        } else {
            println!("\ngate: update-GEMM speedup {gm:.2}x >= {MIN_SPEEDUP}x  PASS");
        }
        Json::obj()
            .field("required", MIN_SPEEDUP)
            .field("measured", gm)
            .field("pass", pass)
    } else {
        println!("\ngate: SKIPPED — host has no AVX2; SIMD speedup not measurable here");
        Json::obj()
            .field("required", MIN_SPEEDUP)
            .field("skipped", "host has no AVX2")
    };

    // --- 4. End-to-end proxies, scalar vs detected ISA ----------------
    let nthreads = std::thread::available_parallelism().map_or(4, |v| v.get().min(8));
    let problems: Vec<(&str, CscMatrix<f64>, FactoKind)> = vec![
        ("audi-proxy", gen::grid_laplacian_3d(16, 16, 16), FactoKind::Cholesky),
        (
            "serena-proxy",
            gen::shifted_laplacian_3d(12, 12, 12, 1.0),
            FactoKind::Ldlt,
        ),
    ];
    println!(
        "\n{:<14} {:>6} | {:>10} {:>10} {:>8} | {:>11} {:>11}",
        "Matrix", "facto", "scalar ms", "simd ms", "speedup", "resid(s)", "resid(v)"
    );
    let mut e2e_records = Vec::new();
    for (name, a, facto) in &problems {
        let analysis = Analysis::new(a.pattern(), *facto, &SolverOptions::default());
        force_isa(Isa::Scalar);
        let (wall_s, resid_s, kernels_s) = run_proxy(a, &analysis, nthreads);
        force_isa(detected);
        let (wall_v, resid_v, kernels_v) = run_proxy(a, &analysis, nthreads);
        // Equal-quality gate: association changes must stay at roundoff.
        let ratio = resid_s.max(resid_v) / resid_s.min(resid_v).max(f64::MIN_POSITIVE);
        let ok = resid_s < MAX_RESIDUAL && resid_v < MAX_RESIDUAL && ratio <= RESIDUAL_RATIO;
        if !ok {
            eprintln!(
                "{name}: residual mismatch — scalar {resid_s:.3e}, simd {resid_v:.3e} (ratio {ratio:.1})"
            );
            failures += 1;
        }
        println!(
            "{:<14} {:>6} | {:>10.2} {:>10.2} {:>7.2}x | {:>11.3e} {:>11.3e}{}",
            name,
            facto.label(),
            wall_s * 1e3,
            wall_v * 1e3,
            wall_s / wall_v,
            resid_s,
            resid_v,
            if ok { "" } else { "  FAILED" },
        );
        e2e_records.push(
            Json::obj()
                .field("matrix", *name)
                .field("facto", facto.label())
                .field("nthreads", nthreads as i64)
                .field("ok", ok)
                .field(
                    "scalar",
                    Json::obj()
                        .field("wall_ms", wall_s * 1e3)
                        .field("residual", resid_s)
                        .field("kernels", kernels_s),
                )
                .field(
                    "simd",
                    Json::obj()
                        .field("wall_ms", wall_v * 1e3)
                        .field("residual", resid_v)
                        .field("kernels", kernels_v),
                )
                .field("speedup", wall_s / wall_v),
        );
    }

    let doc = Json::obj()
        .field("isa", detected.name())
        .field("gemm", gemm_records)
        .field("update", update_record)
        .field("autotune", autotune_record)
        .field("gate", gate_record)
        .field("end_to_end", e2e_records);
    match write_results("BENCH_kernels", &doc) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write results: {e}");
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("kernels_bench: {failures} failure(s)");
        std::process::exit(1);
    }
}
