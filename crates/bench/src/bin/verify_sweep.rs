//! Verify the task graphs of the full evaluation matrix: the nine
//! Table-I proxy problems × {LLᵀ, LDLᵀ, LU} × the three engines.
//!
//! ```text
//! cargo run -p dagfact-bench --bin verify_sweep --release [-- --dynamic]
//! ```
//!
//! For every combination the static analyzer must prove the engine's
//! graph race-free and deadlock-free, and the three engines must induce
//! identical conflicting-access orderings. With `--dynamic`, each graph
//! is additionally replayed through the real engine under the
//! vector-clock checker (slower: the full graphs run as no-op task
//! storms). Exits non-zero on the first failing combination, so `make
//! check-analysis` can gate on it.
//!
//! The symbolic phase is facto-independent (the pattern is symmetrized
//! either way), so each proxy is analyzed once and re-labelled per
//! factorization kind — same reuse the solver's own refactorization path
//! relies on.

use dagfact_bench::proxies;
use dagfact_core::VerifyOptions;
use dagfact_symbolic::FactoKind;

fn main() {
    let dynamic = std::env::args().any(|a| a == "--dynamic");
    let nthreads = std::thread::available_parallelism().map_or(4, |v| v.get().min(8));
    let opts = VerifyOptions { nthreads, dynamic };
    println!(
        "verify sweep: 9 proxies x 3 factorizations x 3 engines (dynamic replay: {})",
        if dynamic { "on" } else { "off" }
    );
    println!(
        "{:<10} {:>6} | {:>9} {:>10} {:>9} | {:>6} {:>6} {:>5}",
        "Matrix", "Method", "tasks", "edges", "pairs", "races", "cycles", "equiv"
    );
    let mut failures = 0usize;
    for m in proxies() {
        let mut analysis = m.analyze();
        for facto in [FactoKind::Cholesky, FactoKind::Ldlt, FactoKind::Lu] {
            analysis.facto = facto;
            let outcome = analysis.verify_task_graph(&opts);
            // One row per facto; task/edge counts from the largest
            // (two-level) graph, races/cycles summed over all engines.
            let races: usize = outcome.engines.iter().map(|e| e.stat.races.len()).sum();
            let cycles: usize = outcome
                .engines
                .iter()
                .map(|e| e.stat.deadlocked.len())
                .sum();
            let pairs: usize = outcome.engines.iter().map(|e| e.stat.pairs_checked).sum();
            let biggest = outcome
                .engines
                .iter()
                .map(|e| (e.stat.ntasks, e.stat.nedges))
                .max()
                .unwrap_or((0, 0));
            let ok = outcome.is_clean();
            println!(
                "{:<10} {:>6} | {:>9} {:>10} {:>9} | {:>6} {:>6} {:>5}{}",
                m.name,
                facto.label(),
                biggest.0,
                biggest.1,
                pairs,
                races,
                cycles,
                if outcome.equivalence_errors.is_empty() { "ok" } else { "NO" },
                if ok { "" } else { "  FAILED" },
            );
            if !ok {
                failures += 1;
                print!("{outcome}");
            }
        }
    }
    if failures > 0 {
        eprintln!("verify sweep: {failures} combination(s) FAILED");
        std::process::exit(1);
    }
    println!("verify sweep: all 27 combinations clean");
}
