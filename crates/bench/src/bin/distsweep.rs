//! Distributed execution sweep over the simulated cluster: strong
//! scaling of the fan-in engine (makespan at 1/2/4/8 nodes, zero
//! faults) and recovery overhead as the injected fault rate rises
//! (message loss/dup/reorder plus node crashes at a fixed width).
//!
//! ```text
//! cargo run -p dagfact-bench --bin distsweep --release
//! ```
//!
//! Output: a human-readable table on stdout plus
//! `results/distsweep.json`. Exits non-zero if any run produces a wrong
//! answer (faulty runs may fail, but only with a typed error).

use dagfact_bench::{write_results, Json};
use dagfact_core::{factorize_dist, Analysis, DistOptions, SolverOptions};
use dagfact_rt::FaultPlan;
use dagfact_sparse::gen;
use dagfact_sparse::CscMatrix;
use dagfact_symbolic::FactoKind;
use std::sync::Arc;

const WIDTHS: &[usize] = &[1, 2, 4, 8];
/// Per-message loss = dup = reorder probability; crashes arrive at
/// twice this rate (see `plan_for`).
const FAULT_RATES: &[f64] = &[0.0, 0.02, 0.05, 0.10];
const FAULT_WIDTH: usize = 4;
const SEEDS_PER_RATE: u64 = 5;

fn residual(a: &CscMatrix<f64>, x: &[f64], b: &[f64]) -> f64 {
    let mut r = vec![0.0; b.len()];
    a.spmv(x, &mut r);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    let num = r.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let nb = b.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    num / nb.max(f64::MIN_POSITIVE)
}

fn plan_for(rate: f64, seed: u64) -> Option<Arc<FaultPlan>> {
    if rate == 0.0 {
        return None;
    }
    Some(Arc::new(
        FaultPlan::with_seed(seed)
            .message_loss(rate)
            .message_dup(rate)
            .message_reorder(rate)
            .random_crash(rate * 2.0, 3),
    ))
}

fn main() {
    let problems: Vec<(&str, CscMatrix<f64>, FactoKind)> = vec![
        ("laplace3d", gen::grid_laplacian_3d(8, 8, 8), FactoKind::Cholesky),
        (
            "shifted3d",
            gen::shifted_laplacian_3d(7, 7, 7, 1.0),
            FactoKind::Ldlt,
        ),
        (
            "convdiff3d",
            gen::convection_diffusion_3d(6, 6, 6, 0.3),
            FactoKind::Lu,
        ),
    ];
    let mut wrong = 0usize;
    let mut records = Vec::new();

    println!("strong scaling (zero faults):");
    println!(
        "{:<12} {:>6} | {:>5} {:>12} {:>8} {:>8} {:>10}",
        "Matrix", "Method", "nodes", "makespan s", "speedup", "msgs", "MB"
    );
    for (name, a, facto) in &problems {
        let analysis = Analysis::new(a.pattern(), *facto, &SolverOptions::default());
        let b = {
            let mut b = vec![0.0; a.nrows()];
            a.spmv(&vec![1.0; a.nrows()], &mut b);
            b
        };
        let mut base = 0.0f64;
        let mut clean = 0.0f64;
        let mut scaling = Vec::new();
        for &nnodes in WIDTHS {
            let opts = DistOptions {
                nnodes,
                verify: true,
                ..DistOptions::default()
            };
            let (factors, report) = match factorize_dist(&analysis, a, &opts) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{name} x{nnodes}: zero-fault run failed: {e}");
                    wrong += 1;
                    continue;
                }
            };
            let x = factors.solve(&b);
            let res = residual(a, &x, &b);
            if res > 1e-8 {
                eprintln!("{name} x{nnodes}: residual {res:.3e} too large");
                wrong += 1;
            }
            if nnodes == 1 {
                base = report.makespan;
            }
            if nnodes == FAULT_WIDTH {
                clean = report.makespan;
            }
            let speedup = if report.makespan > 0.0 { base / report.makespan } else { 0.0 };
            println!(
                "{:<12} {:>6} | {:>5} {:>12.6} {:>8.2} {:>8} {:>10.2}",
                name,
                facto.label(),
                nnodes,
                report.makespan,
                speedup,
                report.data_messages,
                report.bytes / 1e6,
            );
            scaling.push(
                Json::obj()
                    .field("nnodes", nnodes)
                    .field("makespan_s", report.makespan)
                    .field("speedup", speedup)
                    .field("tasks", report.tasks_executed)
                    .field("messages", report.data_messages)
                    .field("bytes", report.bytes)
                    .field("verified", report.verified)
                    .field("residual", res),
            );
        }

        println!("recovery overhead at {FAULT_WIDTH} nodes ({name}):");
        println!(
            "{:>6} | {:>9} {:>6} {:>12} {:>9} {:>7} {:>7} {:>7}",
            "rate", "completed", "typed", "makespan s", "overhead", "retx", "crash", "replay"
        );
        let mut faulty = Vec::new();
        for &rate in FAULT_RATES {
            let mut completed = 0u64;
            let mut typed = 0u64;
            let mut makespans = Vec::new();
            let mut retransmits = 0u64;
            let mut crashes = 0u64;
            let mut replays = 0u64;
            for seed in 0..SEEDS_PER_RATE {
                let opts = DistOptions {
                    nnodes: FAULT_WIDTH,
                    fault_plan: plan_for(rate, 1000 * seed + 17),
                    ..DistOptions::default()
                };
                match factorize_dist(&analysis, a, &opts) {
                    Ok((factors, report)) => {
                        let x = factors.solve(&b);
                        let res = residual(a, &x, &b);
                        if res > 1e-8 {
                            eprintln!("{name} rate {rate} seed {seed}: residual {res:.3e}");
                            wrong += 1;
                            continue;
                        }
                        completed += 1;
                        makespans.push(report.makespan);
                        retransmits += report.retransmits;
                        crashes += report.crashes.len() as u64;
                        replays += report.panels_restored;
                    }
                    // Typed refusal is an acceptable outcome under
                    // faults; a wrong answer never is.
                    Err(e) => {
                        let _ = e;
                        typed += 1;
                    }
                }
            }
            let mean = if makespans.is_empty() {
                0.0
            } else {
                makespans.iter().sum::<f64>() / makespans.len() as f64
            };
            let overhead = if clean > 0.0 && mean > 0.0 { mean / clean } else { 0.0 };
            println!(
                "{:>6.2} | {:>9} {:>6} {:>12.6} {:>9.3} {:>7} {:>7} {:>7}",
                rate, completed, typed, mean, overhead, retransmits, crashes, replays
            );
            faulty.push(
                Json::obj()
                    .field("rate", rate)
                    .field("runs", SEEDS_PER_RATE)
                    .field("completed", completed)
                    .field("typed_failures", typed)
                    .field("mean_makespan_s", mean)
                    .field("overhead", overhead)
                    .field("retransmits", retransmits)
                    .field("crashes", crashes)
                    .field("panels_replayed", replays),
            );
        }
        records.push(
            Json::obj()
                .field("matrix", *name)
                .field("facto", facto.label())
                .field("panels", analysis.symbol.ncblk())
                .field("scaling", scaling)
                .field("fault_width", FAULT_WIDTH)
                .field("faults", faulty),
        );
    }

    let doc = Json::obj().field("records", records);
    match write_results("distsweep", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("distsweep: cannot write results: {e}");
            std::process::exit(1);
        }
    }
    if wrong > 0 {
        eprintln!("distsweep: {wrong} run(s) produced wrong or missing answers");
        std::process::exit(1);
    }
}
