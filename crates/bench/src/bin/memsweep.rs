//! Memory-budget sweep: factorize three Table-I proxy problems (one per
//! factorization kind) unconstrained to measure the natural footprint,
//! then again under descending hard caps, recording the per-phase
//! `{peak_bytes, spill_bytes, spill_events}` accounting and the
//! degradation counters as JSON.
//!
//! ```text
//! cargo run -p dagfact-bench --bin memsweep --release
//! ```
//!
//! Output: a human-readable table on stdout plus `results/memsweep.json`.
//! Exits non-zero if any capped run fails to complete or loses accuracy,
//! so `make check-memory` can gate on it.

use dagfact_bench::{write_results, Json};
use dagfact_core::{Analysis, ExecOptions, RuntimeKind, SolverOptions};
use dagfact_rt::{MemoryBudget, MemoryStats, RetryPolicy, RunConfig};
use dagfact_sparse::gen;
use dagfact_sparse::CscMatrix;
use dagfact_symbolic::FactoKind;
use std::sync::Arc;
use std::time::Duration;

/// Fractions of the unconstrained peak to sweep (1.0 = accounting only).
const CAP_FRACTIONS: &[f64] = &[1.0, 0.75, 0.5];

fn berr(a: &CscMatrix<f64>, x: &[f64], b: &[f64]) -> f64 {
    let mut r = vec![0.0; b.len()];
    a.spmv(x, &mut r);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    let num = r.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let nx = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let nb = b.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    num / (a.norm_inf() * nx + nb).max(f64::MIN_POSITIVE)
}

fn exec(budget: Arc<MemoryBudget>, spill_dir: Option<std::path::PathBuf>) -> ExecOptions {
    ExecOptions {
        run: RunConfig {
            fault_plan: None,
            retry: RetryPolicy::retrying(),
            watchdog: Some(Duration::from_secs(60)),
            budget: Some(budget),
            trace: None,
            cancel: None,
        },
        epsilon_override: None,
        spill_dir,
    }
}

fn mem_record(mem: &MemoryStats) -> Json {
    Json::obj()
        .field("cap_bytes", mem.cap)
        .field("peak_bytes", mem.peak_bytes)
        .field("spill_bytes", mem.spill_bytes)
        .field("spill_events", mem.spill_events)
        .field("fault_in_events", mem.fault_in_events)
        .field("shed_events", mem.shed_events)
        .field("throttle_events", mem.throttle_events)
        .field("overcommit_events", mem.overcommit_events)
        .field(
            "phases",
            mem.phases
                .iter()
                .map(|p| {
                    Json::obj()
                        .field("name", p.name.as_str())
                        .field("peak_bytes", p.peak_bytes)
                        .field("spill_bytes", p.spill_bytes)
                        .field("spill_events", p.spill_events)
                })
                .collect::<Vec<_>>(),
        )
}

fn main() {
    let problems: Vec<(&str, CscMatrix<f64>, FactoKind)> = vec![
        ("audi-proxy", gen::grid_laplacian_3d(16, 16, 16), FactoKind::Cholesky),
        (
            "serena-proxy",
            gen::shifted_laplacian_3d(14, 14, 14, 1.0),
            FactoKind::Ldlt,
        ),
        (
            "mhd-proxy",
            gen::convection_diffusion_3d(12, 12, 12, 0.4),
            FactoKind::Lu,
        ),
    ];
    let spill_root = std::env::temp_dir().join(format!("dagfact-memsweep-{}", std::process::id()));
    let nthreads = std::thread::available_parallelism().map_or(4, |v| v.get().min(8));
    println!("memory sweep: {} proxies x {:?} of unconstrained peak", problems.len(), CAP_FRACTIONS);
    println!(
        "{:<14} {:>6} {:>5} | {:>10} {:>10} | {:>7} {:>8} {:>6} {:>5} | {:>9}",
        "Matrix", "Method", "cap%", "cap MB", "peak MB", "spills", "spill MB", "sheds", "thr", "berr"
    );
    let mut records = Vec::new();
    let mut failures = 0usize;
    for (name, a, facto) in &problems {
        let analysis = Analysis::new(a.pattern(), *facto, &SolverOptions::default());
        let b = vec![1.0; a.nrows()];
        // Unconstrained baseline: accounting without a cap.
        let free = exec(MemoryBudget::unbounded(), None);
        let baseline = match analysis.factorize_with(a, RuntimeKind::Native, nthreads, &free) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("{name}: unconstrained run failed: {e}");
                failures += 1;
                continue;
            }
        };
        let peak = baseline
            .stats
            .run
            .memory
            .as_ref()
            .map_or(0, |m| m.peak_bytes);
        for &frac in CAP_FRACTIONS {
            let cap = (peak as f64 * frac) as usize;
            let dir = spill_root.join(format!("{name}-{}", (frac * 100.0) as usize));
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("{name}: cannot create spill dir {}: {e}", dir.display());
                failures += 1;
                continue;
            }
            let opts = exec(MemoryBudget::with_cap(cap), Some(dir));
            let mut record = Json::obj()
                .field("matrix", *name)
                .field("facto", facto.label())
                .field("nthreads", nthreads)
                .field("cap_fraction", frac)
                .field("unconstrained_peak_bytes", peak);
            match analysis.factorize_with(a, RuntimeKind::Native, nthreads, &opts) {
                Ok(f) => {
                    let e = berr(a, &f.solve(&b), &b);
                    let ok = e <= 1e-10;
                    if !ok {
                        eprintln!("{name} @ {frac}: backward error {e:.3e} FAILED");
                        failures += 1;
                    }
                    let mem = f.stats.run.memory.clone().unwrap_or_default();
                    println!(
                        "{:<14} {:>6} {:>5.0} | {:>10.1} {:>10.1} | {:>7} {:>8.1} {:>6} {:>5} | {:>9.2e}{}",
                        name,
                        facto.label(),
                        frac * 100.0,
                        cap as f64 / 1048576.0,
                        mem.peak_bytes as f64 / 1048576.0,
                        mem.spill_events,
                        mem.spill_bytes as f64 / 1048576.0,
                        mem.shed_events,
                        mem.throttle_events,
                        e,
                        if ok { "" } else { "  FAILED" },
                    );
                    record = record
                        .field("completed", true)
                        .field("backward_error", e)
                        .field("memory", mem_record(&mem));
                }
                Err(e) => {
                    eprintln!("{name} @ {frac}: factorization FAILED: {e}");
                    failures += 1;
                    record = record
                        .field("completed", false)
                        .field("error", e.to_string());
                }
            }
            records.push(record);
        }
    }
    let _ = std::fs::remove_dir_all(&spill_root);
    let doc = Json::obj()
        .field("experiment", "memsweep")
        .field("cap_fractions", CAP_FRACTIONS.to_vec())
        .field("runs", records);
    match write_results("memsweep", &doc) {
        Ok(out) => println!("wrote {}", out.display()),
        Err(e) => {
            eprintln!("cannot write results/memsweep.json: {e}");
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("memory sweep: {failures} run(s) FAILED");
        std::process::exit(1);
    }
    println!("memory sweep: all runs completed at full accuracy");
}
