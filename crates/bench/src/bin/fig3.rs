//! Regenerate **Figure 3** of the paper: multi-stream performance of the
//! DGEMM kernel on one GPU, for the three implementations — cuBLAS-like,
//! ASTRA-like, and the sparse adaptation — with 1, 2 and 3 streams.
//!
//! Workload exactly as §V-B: `C = C − A·Bᵀ` with `N = K = 128`, `M` swept
//! to 10000, 100 kernel calls distributed round-robin over the streams.
//! For the sparse curves, "C is a panel twice as tall as A" (blocks of
//! ~200 rows on average).
//!
//! ```text
//! cargo run -p dagfact-bench --bin fig3 --release
//! ```

use dagfact_bench::{write_results, Json};
use dagfact_gpusim::kernelmodel::{stream_bench_gflops, GpuKernelKind};
use dagfact_gpusim::platform::GpuModel;

fn main() {
    let gpu = GpuModel::m2070();
    let ms = [
        128usize, 256, 384, 512, 768, 1000, 1500, 2000, 3000, 4000, 5000, 6000, 8000, 10000,
    ];
    println!("Figure 3 — DGEMM kernel GFlop/s vs M (N=K=128), 100 calls round-robin");
    println!("cuBLAS peak (square-matrix ceiling): {:.0} GFlop/s", gpu.peak_gflops);
    println!();
    println!(
        "{:>6} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}",
        "M",
        "cub-1s",
        "cub-2s",
        "cub-3s",
        "ast-1s",
        "ast-2s",
        "ast-3s",
        "sp-1s",
        "sp-2s",
        "sp-3s"
    );
    let mut rows = Vec::new();
    for &m in &ms {
        let run = |kind: GpuKernelKind, s: usize| stream_bench_gflops(&gpu, kind, m, 128, 128, 100, s);
        let sparse = GpuKernelKind::Sparse {
            // "C is a panel twice as tall as A" (§V-B experiment setup).
            target_height: 2 * m,
            ldlt: false,
        };
        let cub: Vec<f64> = (1..=3).map(|s| run(GpuKernelKind::CublasLike, s)).collect();
        let ast: Vec<f64> = (1..=3).map(|s| run(GpuKernelKind::AstraLike, s)).collect();
        let sp: Vec<f64> = (1..=3).map(|s| run(sparse, s)).collect();
        println!(
            "{:>6} | {:>7.1} {:>7.1} {:>7.1} | {:>7.1} {:>7.1} {:>7.1} | {:>7.1} {:>7.1} {:>7.1}",
            m, cub[0], cub[1], cub[2], ast[0], ast[1], ast[2], sp[0], sp[1], sp[2],
        );
        rows.push(
            Json::obj()
                .field("m", m)
                .field("cublas_gflops", cub)
                .field("astra_gflops", ast)
                .field("sparse_gflops", sp),
        );
    }
    println!();
    println!("paper checkpoints (§V-B):");
    println!("  * one stream is always worst; a second stream helps most for small M;");
    println!("  * the third stream only matters below M ≈ 1000;");
    println!("  * ASTRA sits ~15% below cuBLAS on this non-square sweep;");
    println!("  * the sparse kernel degrades as the destination panel grows taller");
    println!("    (here 2×), and an LDLt variant would cost another ~5%.");

    // LDLᵀ variant callout (the extra D parameter, §V-B last paragraph).
    let m = 4000;
    let llt = stream_bench_gflops(
        &gpu,
        GpuKernelKind::Sparse { target_height: 2 * m, ldlt: false },
        m,
        128,
        128,
        100,
        2,
    );
    let ldlt = stream_bench_gflops(
        &gpu,
        GpuKernelKind::Sparse { target_height: 2 * m, ldlt: true },
        m,
        128,
        128,
        100,
        2,
    );
    println!();
    println!(
        "LDLt kernel variant at M={m}, 2 streams: {llt:.1} -> {ldlt:.1} GFlop/s ({:.1}% loss)",
        (1.0 - ldlt / llt) * 100.0
    );
    let doc = Json::obj()
        .field("experiment", "fig3")
        .field("peak_gflops", gpu.peak_gflops)
        .field("streams", vec![1usize, 2, 3])
        .field("rows", rows)
        .field(
            "ldlt_variant",
            Json::obj()
                .field("m", m)
                .field("streams", 2usize)
                .field("llt_gflops", llt)
                .field("ldlt_gflops", ldlt),
        );
    match write_results("fig3", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("cannot write results/fig3.json: {e}");
            std::process::exit(1);
        }
    }
}
