//! Regenerate **Figure 4** of the paper: hybrid (CPU + GPU) scaling of the
//! factorization on the nine matrices — twelve CPU cores plus 0 to 3 GPUs,
//! StarPU-like vs PaRSEC-like with 1 and 3 streams, GFlop/s, with the
//! CPU-only PaStiX run as the reference bar.
//!
//! ```text
//! cargo run -p dagfact-bench --bin fig4 --release [-- <matrix-name>...]
//! ```
//!
//! Paper shape to look for (§V-C): both runtimes exploit the GPUs with
//! similar results and "satisfying scalability over the 3 GPUs"; PaRSEC
//! benefits from multiple streams (small sparse tasks underfill the
//! device); afshell10 sees almost nothing ("the amount of Flop produced is
//! too small to efficiently benefit from the GPUs").

use dagfact_bench::{proxies, write_results, Json};
use dagfact_core::{simulate_factorization, SimOptions};
use dagfact_gpusim::{Platform, SimPolicy};

fn main() {
    let filter: Vec<String> = std::env::args().skip(1).collect();
    let mut runs = Vec::new();
    println!("Figure 4 — hybrid scaling, 12 cores + 0..=3 GPUs, GFlop/s (simulated)");
    println!(
        "{:<10} {:>4} | {:>8} | {:>8} {:>9} {:>9}",
        "Matrix", "gpus", "PaStiX", "StarPU", "PaRSEC-1s", "PaRSEC-3s"
    );
    let mut speedups: Vec<(String, f64, f64)> = Vec::new();
    for m in proxies() {
        if !filter.is_empty() && !filter.iter().any(|f| f.eq_ignore_ascii_case(m.name)) {
            continue;
        }
        let analysis = m.analyze();
        let opts = SimOptions {
            complex: m.is_complex(),
            ..SimOptions::default()
        };
        let pastix_ref =
            simulate_factorization(&analysis, &opts, &Platform::mirage(12, 0), SimPolicy::NativeStatic)
                .gflops();
        let mut best0 = 0.0f64;
        let mut best3 = 0.0f64;
        for gpus in 0..=3usize {
            let platform = Platform::mirage(12, gpus);
            let g: Vec<f64> = [
                SimPolicy::StarPuLike,
                SimPolicy::ParsecLike { streams: 1 },
                SimPolicy::ParsecLike { streams: 3 },
            ]
            .into_iter()
            .map(|p| simulate_factorization(&analysis, &opts, &platform, p).gflops())
            .collect();
            let pastix_col = if gpus == 0 {
                format!("{pastix_ref:>8.2}")
            } else {
                format!("{:>8}", "-")
            };
            println!(
                "{:<10} {:>4} | {} | {:>8.2} {:>9.2} {:>9.2}",
                m.name, gpus, pastix_col, g[0], g[1], g[2]
            );
            let round_best = g.iter().copied().fold(0.0, f64::max);
            if gpus == 0 {
                best0 = round_best;
            }
            if gpus == 3 {
                best3 = round_best;
            }
            runs.push(
                Json::obj()
                    .field("matrix", m.name)
                    .field("gpus", gpus)
                    .field("pastix_cpu_gflops", (gpus == 0).then_some(pastix_ref))
                    .field("starpu_gflops", g[0])
                    .field("parsec_1s_gflops", g[1])
                    .field("parsec_3s_gflops", g[2]),
            );
        }
        println!();
        speedups.push((m.name.to_string(), best0, best3));
    }
    println!("--- GPU speedup summary (best runtime, 0 -> 3 GPUs) ---");
    for (name, b0, b3) in &speedups {
        println!("{name:<10} {b0:>8.2} -> {b3:>8.2} GFlop/s   x{:.2}", b3 / b0);
    }
    println!();
    println!("paper checkpoints (§V-C): GPUs give large gains on the big matrices;");
    println!("PaRSEC's extra streams compensate StarPU's prefetching; afshell10");
    println!("gains little (too few flops for the transfers).");
    let doc = Json::obj().field("experiment", "fig4").field("runs", runs).field(
        "speedups",
        speedups
            .iter()
            .map(|(name, b0, b3)| {
                Json::obj()
                    .field("matrix", name.as_str())
                    .field("best_0gpu_gflops", *b0)
                    .field("best_3gpu_gflops", *b3)
                    .field("speedup", b3 / b0)
            })
            .collect::<Vec<_>>(),
    );
    match write_results("fig4", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("cannot write results/fig4.json: {e}");
            std::process::exit(1);
        }
    }
}
