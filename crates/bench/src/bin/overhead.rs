//! Scheduler-overhead sweep on tiny-task graphs — the paper's afshell10
//! regime, where per-task runtime cost (allocation, locking, queue
//! traffic) dominates end-to-end factorization time.
//!
//! ```text
//! cargo run -p dagfact-bench --bin overhead --release
//! ```
//!
//! Scenarios, all with no-op (or near-no-op) task bodies so nothing but
//! the runtime itself is on the clock:
//!
//! * `native/independent` — 10k independent tasks over all workers: the
//!   per-task floor (queue push/pop + supervisor accounting).
//! * `native/chains`      — 64 chains: every task release runs the
//!   fan-in CAS and a ready-queue push.
//! * `native/steal_heavy` — all tasks owned by worker 0: idle workers
//!   hammer the steal path (victim scan + batched steal) the whole run.
//! * `native/steal_chains` — chains all owned by worker 0: every release
//!   refills worker 0's deque while the thieves batch-steal, so the
//!   owner-pop/steal race of the chase-lev protocol stays hot.
//! * `dataflow/independent`, `ptg/independent` — same floor for the
//!   other engines.
//! * `kernels/ldlt_update` — the LDLᵀ buffered update on a small panel:
//!   per-call cost including any scratch management.
//!
//! Every `native/*` scenario is timed as an interleaved A/A pair (the
//! tracesweep overhead-guard pattern): two independent sample streams of
//! the *same* configuration, alternating run by run. If their medians
//! disagree by more than [`MAX_AA_SKEW`] the box is too noisy for the
//! number to mean anything, and the bench fails instead of letting a
//! before/after gate pass on noise.
//!
//! Output: ns/task (ns/call for the kernel) per scenario, median of
//! [`REPS`] runs (+ `aa_skew` for guarded scenarios), written to
//! `results/overhead.json` — the trend file ROADMAP item 5 gates on.

use dagfact_bench::{write_results, Json};
use dagfact_kernels::update::{update_via_buffer, Scatter};
use dagfact_rt::dataflow::DataflowGraph;
use dagfact_rt::native::{run_native, NativeTask};
use dagfact_rt::ptg::{run_ptg, PtgProgram};
use dagfact_rt::AccessMode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

const NTASKS: usize = 10_000;
const REPS: usize = 9;
/// Largest tolerated A/A median skew before a scenario's number is
/// declared noise. Looser than tracesweep's 10% because these runs are
/// milliseconds, not seconds, and single-core boxes jitter more.
const MAX_AA_SKEW: f64 = 0.15;

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    samples[samples.len() / 2]
}

/// Median seconds of one run of `f`, with one warmup.
fn time_median<F: FnMut()>(mut f: F) -> f64 {
    f(); // warmup
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    median(&mut samples)
}

/// Interleaved A/A timing (tracesweep's overhead-guard pattern): two
/// sample streams of the same `f`, alternating run by run so drift hits
/// both equally. Returns `(best_median_seconds, aa_skew)` where skew is
/// the relative gap between the stream medians — the run-to-run noise
/// floor any before/after claim has to clear.
fn time_median_aa<F: FnMut()>(mut f: F) -> (f64, f64) {
    f(); // warmup
    let (mut a, mut b): (Vec<f64>, Vec<f64>) = (Vec::new(), Vec::new());
    for _ in 0..REPS {
        for out in [&mut a, &mut b] {
            let t0 = Instant::now();
            f();
            out.push(t0.elapsed().as_secs_f64());
        }
    }
    let (ma, mb) = (median(&mut a), median(&mut b));
    (ma.min(mb), (ma - mb).abs() / ma.min(mb).max(f64::MIN_POSITIVE))
}

fn independent_tasks(threads: usize) -> Vec<NativeTask> {
    (0..NTASKS)
        .map(|i| NativeTask {
            owner: i % threads,
            npred: 0,
            succs: vec![],
            priority: (i % 97) as f64,
        })
        .collect()
}

/// 64 parallel chains: task i depends on i-64 (same chain lane).
fn chain_tasks(threads: usize) -> Vec<NativeTask> {
    const LANES: usize = 64;
    (0..NTASKS)
        .map(|i| NativeTask {
            owner: (i % LANES) % threads,
            npred: u32::from(i >= LANES),
            succs: if i + LANES < NTASKS {
                vec![i + LANES]
            } else {
                vec![]
            },
            priority: (NTASKS - i) as f64,
        })
        .collect()
}

fn steal_heavy_tasks() -> Vec<NativeTask> {
    (0..NTASKS)
        .map(|i| NativeTask {
            owner: 0,
            npred: 0,
            succs: vec![],
            priority: (i % 97) as f64,
        })
        .collect()
}

/// 64 chains all owned by worker 0: every release refills the owner's
/// deque while every other worker lives on the batched-steal path.
fn steal_chain_tasks() -> Vec<NativeTask> {
    const LANES: usize = 64;
    (0..NTASKS)
        .map(|i| NativeTask {
            owner: 0,
            npred: u32::from(i >= LANES),
            succs: if i + LANES < NTASKS {
                vec![i + LANES]
            } else {
                vec![]
            },
            priority: (NTASKS - i) as f64,
        })
        .collect()
}

/// A/A-guarded native-engine timing: `(seconds, aa_skew)`.
fn bench_native(tasks: &[NativeTask], threads: usize) -> (f64, f64) {
    time_median_aa(|| {
        let count = AtomicUsize::new(0);
        // ORDERING: completion tally; the engine joins its workers
        // before returning, which orders the final load.
        run_native(tasks, threads, |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), NTASKS);
    })
}

fn bench_dataflow(threads: usize) -> f64 {
    time_median(|| {
        let count = AtomicUsize::new(0);
        let mut g = DataflowGraph::new(64);
        // ORDERING: completion tally; `execute` joins its workers
        // before returning, which orders the final load.
        for i in 0..NTASKS {
            let count = &count;
            g.submit(&[(i % 64, AccessMode::ReadWrite)], 0.0, move |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        g.execute(threads);
        assert_eq!(count.load(Ordering::Relaxed), NTASKS);
    })
}

struct Flat<'a> {
    count: &'a AtomicUsize,
}
impl PtgProgram for Flat<'_> {
    fn num_tasks(&self) -> usize {
        NTASKS
    }
    fn num_predecessors(&self, _t: usize) -> u32 {
        0
    }
    fn successors(&self, _t: usize, _out: &mut Vec<usize>) {}
    fn execute(&self, _t: usize, _w: usize) {
        // ORDERING: completion tally; the engine's join orders the
        // final load in `bench_ptg`.
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

fn bench_ptg(threads: usize) -> f64 {
    time_median(|| {
        let count = AtomicUsize::new(0);
        run_ptg(&Flat { count: &count }, threads);
        // ORDERING: completion tally; `run_ptg` joined its workers.
        assert_eq!(count.load(Ordering::Relaxed), NTASKS);
    })
}

/// LDLᵀ buffered update on an afshell-sized small panel, many calls per
/// rep so scratch-buffer management (the per-call `k×n` W2 materialize)
/// is on the clock.
fn bench_ldlt_update() -> (f64, usize) {
    let (m, n, k) = (48usize, 16usize, 16usize);
    let calls = 2_000usize;
    let a1: Vec<f64> = (0..k * m).map(|i| (i % 13) as f64 * 0.25 - 1.0).collect();
    let a2: Vec<f64> = (0..k * n).map(|i| (i % 11) as f64 * 0.125 - 0.5).collect();
    let d: Vec<f64> = (0..k).map(|i| 1.0 + (i % 5) as f64).collect();
    let row_map: Vec<usize> = (0..m).map(|i| i + i / 4).collect();
    let ldc = row_map.last().map_or(m, |&r| r + 1);
    let mut c = vec![0.0f64; ldc * (n + 1)];
    let mut work: Vec<f64> = Vec::new();
    let scatter = Scatter {
        row_map: &row_map,
        col_offset: 1,
    };
    let sec = time_median(|| {
        for _ in 0..calls {
            update_via_buffer(
                m, n, k, -1.0, &a1, m, &a2, n,
                Some(&d), &mut work, &mut c, ldc, scatter,
            );
        }
        std::hint::black_box(&mut c);
    });
    (sec, calls)
}

fn main() {
    // At least two workers so the steal/contention paths execute even on
    // a single-core box; the 1-worker scenarios are the clean per-task
    // floor (no context-switch noise).
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get().max(2));
    let mut scenarios: Vec<(String, f64, Option<f64>)> = Vec::new();
    let mut noisy = 0usize;

    println!("overhead: tiny-task scheduler sweep ({NTASKS} tasks, {threads} workers, median of {REPS})");
    println!("{:<24} {:>12} {:>10}", "scenario", "ns/task", "A/A skew");

    fn push(scenarios: &mut Vec<(String, f64, Option<f64>)>, name: &str, per_task_ns: f64) {
        println!("{name:<24} {per_task_ns:>12.1} {:>10}", "-");
        scenarios.push((name.to_string(), per_task_ns, None));
    }
    fn push_aa(
        scenarios: &mut Vec<(String, f64, Option<f64>)>,
        noisy: &mut usize,
        name: &str,
        per_task_ns: f64,
        skew: f64,
    ) {
        println!("{name:<24} {per_task_ns:>12.1} {:>9.1}%", skew * 100.0);
        if skew > MAX_AA_SKEW {
            eprintln!(
                "overhead: {name} A/A skew {:.1}% exceeds the {:.0}% noise bound — \
                 this number cannot support a before/after claim",
                skew * 100.0,
                MAX_AA_SKEW * 100.0
            );
            *noisy += 1;
        }
        scenarios.push((name.to_string(), per_task_ns, Some(skew)));
    }

    let (sec, skew) = bench_native(&independent_tasks(1), 1);
    push_aa(&mut scenarios, &mut noisy, "native/independent_1w", sec * 1e9 / NTASKS as f64, skew);

    let (sec, skew) = bench_native(&chain_tasks(1), 1);
    push_aa(&mut scenarios, &mut noisy, "native/chains_1w", sec * 1e9 / NTASKS as f64, skew);

    let (sec, skew) = bench_native(&independent_tasks(threads), threads);
    push_aa(&mut scenarios, &mut noisy, "native/independent", sec * 1e9 / NTASKS as f64, skew);

    let (sec, skew) = bench_native(&chain_tasks(threads), threads);
    push_aa(&mut scenarios, &mut noisy, "native/chains", sec * 1e9 / NTASKS as f64, skew);

    let (sec, skew) = bench_native(&steal_heavy_tasks(), threads);
    push_aa(&mut scenarios, &mut noisy, "native/steal_heavy", sec * 1e9 / NTASKS as f64, skew);

    let (sec, skew) = bench_native(&steal_chain_tasks(), threads);
    push_aa(&mut scenarios, &mut noisy, "native/steal_chains", sec * 1e9 / NTASKS as f64, skew);

    let sec = bench_dataflow(1);
    push(&mut scenarios, "dataflow/independent_1w", sec * 1e9 / NTASKS as f64);

    let sec = bench_ptg(1);
    push(&mut scenarios, "ptg/independent_1w", sec * 1e9 / NTASKS as f64);

    let (sec, calls) = bench_ldlt_update();
    push(&mut scenarios, "kernels/ldlt_update", sec * 1e9 / calls as f64);

    let mut arr: Vec<Json> = Vec::new();
    for (name, ns, skew) in &scenarios {
        let mut obj = Json::obj()
            .field("scenario", name.as_str())
            .field("ns_per_task", *ns);
        if let Some(skew) = skew {
            obj = obj.field("aa_skew", *skew);
        }
        arr.push(obj);
    }
    let doc = Json::obj()
        .field("bench", "overhead")
        .field("ntasks", NTASKS as i64)
        .field("workers", threads as i64)
        .field("reps", REPS as i64)
        .field("max_aa_skew", MAX_AA_SKEW)
        .field("scenarios", Json::Arr(arr));
    match write_results("overhead", &doc) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => {
            eprintln!("overhead: could not write results: {e}");
            std::process::exit(1);
        }
    }
    if noisy > 0 {
        eprintln!("overhead: A/A guard FAILED on {noisy} scenario(s)");
        std::process::exit(1);
    }
}
