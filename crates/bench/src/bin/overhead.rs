//! Scheduler-overhead sweep on tiny-task graphs — the paper's afshell10
//! regime, where per-task runtime cost (allocation, locking, queue
//! traffic) dominates end-to-end factorization time.
//!
//! ```text
//! cargo run -p dagfact-bench --bin overhead --release
//! ```
//!
//! Scenarios, all with no-op (or near-no-op) task bodies so nothing but
//! the runtime itself is on the clock:
//!
//! * `native/independent` — 10k independent tasks over all workers: the
//!   per-task floor (queue push/pop + supervisor accounting).
//! * `native/chains`      — 64 chains: every task release runs the
//!   fan-in CAS and a ready-queue push.
//! * `native/steal_heavy` — all tasks owned by worker 0: idle workers
//!   hammer the steal path (victim scan) the whole run.
//! * `dataflow/independent`, `ptg/independent` — same floor for the
//!   other engines.
//! * `kernels/ldlt_update` — the LDLᵀ buffered update on a small panel:
//!   per-call cost including any scratch management.
//!
//! Output: ns/task (ns/call for the kernel) per scenario, median of
//! [`REPS`] runs, written to `results/overhead.json` — the trend file
//! ROADMAP item 5 gates on.

use dagfact_bench::{write_results, Json};
use dagfact_kernels::update::{update_via_buffer, Scatter};
use dagfact_rt::dataflow::DataflowGraph;
use dagfact_rt::native::{run_native, NativeTask};
use dagfact_rt::ptg::{run_ptg, PtgProgram};
use dagfact_rt::AccessMode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

const NTASKS: usize = 10_000;
const REPS: usize = 9;

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    samples[samples.len() / 2]
}

/// Median seconds of one run of `f`, with one warmup.
fn time_median<F: FnMut()>(mut f: F) -> f64 {
    f(); // warmup
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    median(&mut samples)
}

fn independent_tasks(threads: usize) -> Vec<NativeTask> {
    (0..NTASKS)
        .map(|i| NativeTask {
            owner: i % threads,
            npred: 0,
            succs: vec![],
            priority: (i % 97) as f64,
        })
        .collect()
}

/// 64 parallel chains: task i depends on i-64 (same chain lane).
fn chain_tasks(threads: usize) -> Vec<NativeTask> {
    const LANES: usize = 64;
    (0..NTASKS)
        .map(|i| NativeTask {
            owner: (i % LANES) % threads,
            npred: u32::from(i >= LANES),
            succs: if i + LANES < NTASKS {
                vec![i + LANES]
            } else {
                vec![]
            },
            priority: (NTASKS - i) as f64,
        })
        .collect()
}

fn steal_heavy_tasks() -> Vec<NativeTask> {
    (0..NTASKS)
        .map(|i| NativeTask {
            owner: 0,
            npred: 0,
            succs: vec![],
            priority: (i % 97) as f64,
        })
        .collect()
}

fn bench_native(tasks: &[NativeTask], threads: usize) -> f64 {
    time_median(|| {
        let count = AtomicUsize::new(0);
        run_native(tasks, threads, |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), NTASKS);
    })
}

fn bench_dataflow(threads: usize) -> f64 {
    time_median(|| {
        let count = AtomicUsize::new(0);
        let mut g = DataflowGraph::new(64);
        for i in 0..NTASKS {
            let count = &count;
            g.submit(&[(i % 64, AccessMode::ReadWrite)], 0.0, move |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        g.execute(threads);
        assert_eq!(count.load(Ordering::Relaxed), NTASKS);
    })
}

struct Flat<'a> {
    count: &'a AtomicUsize,
}
impl PtgProgram for Flat<'_> {
    fn num_tasks(&self) -> usize {
        NTASKS
    }
    fn num_predecessors(&self, _t: usize) -> u32 {
        0
    }
    fn successors(&self, _t: usize, _out: &mut Vec<usize>) {}
    fn execute(&self, _t: usize, _w: usize) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

fn bench_ptg(threads: usize) -> f64 {
    time_median(|| {
        let count = AtomicUsize::new(0);
        run_ptg(&Flat { count: &count }, threads);
        assert_eq!(count.load(Ordering::Relaxed), NTASKS);
    })
}

/// LDLᵀ buffered update on an afshell-sized small panel, many calls per
/// rep so scratch-buffer management (the per-call `k×n` W2 materialize)
/// is on the clock.
fn bench_ldlt_update() -> (f64, usize) {
    let (m, n, k) = (48usize, 16usize, 16usize);
    let calls = 2_000usize;
    let a1: Vec<f64> = (0..k * m).map(|i| (i % 13) as f64 * 0.25 - 1.0).collect();
    let a2: Vec<f64> = (0..k * n).map(|i| (i % 11) as f64 * 0.125 - 0.5).collect();
    let d: Vec<f64> = (0..k).map(|i| 1.0 + (i % 5) as f64).collect();
    let row_map: Vec<usize> = (0..m).map(|i| i + i / 4).collect();
    let ldc = row_map.last().map_or(m, |&r| r + 1);
    let mut c = vec![0.0f64; ldc * (n + 1)];
    let mut work: Vec<f64> = Vec::new();
    let scatter = Scatter {
        row_map: &row_map,
        col_offset: 1,
    };
    let sec = time_median(|| {
        for _ in 0..calls {
            update_via_buffer(
                m, n, k, -1.0, &a1, m, &a2, n,
                Some(&d), &mut work, &mut c, ldc, scatter,
            );
        }
        std::hint::black_box(&mut c);
    });
    (sec, calls)
}

fn main() {
    // At least two workers so the steal/contention paths execute even on
    // a single-core box; the 1-worker scenarios are the clean per-task
    // floor (no context-switch noise).
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get().max(2));
    let mut scenarios: Vec<(String, f64)> = Vec::new();

    println!("overhead: tiny-task scheduler sweep ({NTASKS} tasks, {threads} workers, median of {REPS})");
    println!("{:<24} {:>12}", "scenario", "ns/task");

    let mut push = |name: &str, per_task_ns: f64| {
        println!("{name:<24} {per_task_ns:>12.1}");
        scenarios.push((name.to_string(), per_task_ns));
    };

    let sec = bench_native(&independent_tasks(1), 1);
    push("native/independent_1w", sec * 1e9 / NTASKS as f64);

    let sec = bench_native(&chain_tasks(1), 1);
    push("native/chains_1w", sec * 1e9 / NTASKS as f64);

    let sec = bench_native(&independent_tasks(threads), threads);
    push("native/independent", sec * 1e9 / NTASKS as f64);

    let sec = bench_native(&chain_tasks(threads), threads);
    push("native/chains", sec * 1e9 / NTASKS as f64);

    let sec = bench_native(&steal_heavy_tasks(), threads);
    push("native/steal_heavy", sec * 1e9 / NTASKS as f64);

    let sec = bench_dataflow(1);
    push("dataflow/independent_1w", sec * 1e9 / NTASKS as f64);

    let sec = bench_ptg(1);
    push("ptg/independent_1w", sec * 1e9 / NTASKS as f64);

    let (sec, calls) = bench_ldlt_update();
    push("kernels/ldlt_update", sec * 1e9 / calls as f64);

    let mut arr: Vec<Json> = Vec::new();
    for (name, ns) in &scenarios {
        arr.push(
            Json::obj()
                .field("scenario", name.as_str())
                .field("ns_per_task", *ns),
        );
    }
    let doc = Json::obj()
        .field("bench", "overhead")
        .field("ntasks", NTASKS as i64)
        .field("workers", threads as i64)
        .field("reps", REPS as i64)
        .field("scenarios", Json::Arr(arr));
    match write_results("overhead", &doc) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => {
            eprintln!("overhead: could not write results: {e}");
            std::process::exit(1);
        }
    }
}
