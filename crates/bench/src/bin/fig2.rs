//! Regenerate **Figure 2** of the paper: CPU strong scaling of the
//! factorization on the nine matrices with the three schedulers
//! (PaStiX-native, StarPU-like, PaRSEC-like) at 1/3/6/9/12 cores, in
//! GFlop/s, on the simulated Mirage node.
//!
//! ```text
//! cargo run -p dagfact-bench --bin fig2 --release [-- <matrix-name>...]
//! ```
//!
//! Paper shape to look for (§V-A): the three schedulers are *comparable*
//! on shared memory; PaRSEC is usually ahead of StarPU (cache reuse), and
//! the generic runtimes trail native PaStiX on the LDLᵀ matrices
//! (pmlDF, Serena) because they redo the D·Lᵀ product in every update.

use dagfact_bench::{proxies, write_results, Json};
use dagfact_core::{simulate_factorization, SimOptions};
use dagfact_gpusim::{Platform, SimPolicy};

fn main() {
    let filter: Vec<String> = std::env::args().skip(1).collect();
    let cores = [1usize, 3, 6, 9, 12];
    let mut runs = Vec::new();
    println!("Figure 2 — CPU scaling, GFlop/s (simulated Mirage node)");
    println!(
        "{:<10} {:>5} | {:>8} {:>8} {:>8}",
        "Matrix", "cores", "PaStiX", "StarPU", "PaRSEC"
    );
    let mut summary: Vec<(String, [f64; 3])> = Vec::new();
    for m in proxies() {
        if !filter.is_empty() && !filter.iter().any(|f| f.eq_ignore_ascii_case(m.name)) {
            continue;
        }
        let analysis = m.analyze();
        let opts = SimOptions {
            complex: m.is_complex(),
            ..SimOptions::default()
        };
        let mut at12 = [0.0f64; 3];
        for &ncores in &cores {
            let platform = Platform::mirage(ncores, 0);
            let g: Vec<f64> = [
                SimPolicy::NativeStatic,
                SimPolicy::StarPuLike,
                SimPolicy::ParsecLike { streams: 1 },
            ]
            .into_iter()
            .map(|p| simulate_factorization(&analysis, &opts, &platform, p).gflops())
            .collect();
            println!(
                "{:<10} {:>5} | {:>8.2} {:>8.2} {:>8.2}",
                m.name, ncores, g[0], g[1], g[2]
            );
            if ncores == 12 {
                at12 = [g[0], g[1], g[2]];
            }
            runs.push(
                Json::obj()
                    .field("matrix", m.name)
                    .field("cores", ncores)
                    .field("pastix_gflops", g[0])
                    .field("starpu_gflops", g[1])
                    .field("parsec_gflops", g[2]),
            );
        }
        println!();
        summary.push((m.name.to_string(), at12));
    }
    println!("--- 12-core summary (who wins) ---");
    for (name, g) in &summary {
        let winner = ["PaStiX", "StarPU", "PaRSEC"][g
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0];
        println!(
            "{name:<10} PaStiX {:>7.2}  StarPU {:>7.2}  PaRSEC {:>7.2}   best: {winner}",
            g[0], g[1], g[2]
        );
    }
    println!();
    println!("paper checkpoints (§V-A): schedulers comparable on shared memory;");
    println!("PaRSEC ≥ StarPU as cores grow; PaStiX ahead on LDLt (pmlDF, Serena).");
    let doc = Json::obj().field("experiment", "fig2").field("runs", runs).field(
        "summary_12core",
        summary
            .iter()
            .map(|(name, g)| {
                Json::obj()
                    .field("matrix", name.as_str())
                    .field("pastix_gflops", g[0])
                    .field("starpu_gflops", g[1])
                    .field("parsec_gflops", g[2])
            })
            .collect::<Vec<_>>(),
    );
    match write_results("fig2", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("cannot write results/fig2.json: {e}");
            std::process::exit(1);
        }
    }
}
