//! Trace sweep: factorize three Table-I proxy problems under each of the
//! three runtime engines with span recording enabled, and distil the
//! traces into scheduler metrics — wall time, parallel efficiency,
//! critical path, per-kernel time/GFLOP/s and per-worker busy/idle
//! shares — recorded as JSON.
//!
//! ```text
//! cargo run -p dagfact-bench --bin tracesweep --release
//! ```
//!
//! Output: a human-readable table on stdout plus `results/tracesweep.json`.
//!
//! The sweep ends with the tracing overhead guard: the same factorization
//! timed with the recorder detached and attached. The detached path is a
//! single branch on an `Option` per task, so its cost must sit below the
//! run-to-run noise floor; the guard measures that noise (A/A skew
//! between two interleaved detached sample sets) and the attached
//! overhead, and fails the sweep if recording itself distorts the run.
//! Exits non-zero on any failed run or violated invariant, so
//! `make check-trace` can gate on it.

use dagfact_bench::{chrome_trace, write_results, Json};
use dagfact_core::{Analysis, ExecOptions, RuntimeKind, SolverOptions};
use dagfact_rt::{RunConfig, Trace, TraceRecorder};
use dagfact_sparse::gen;
use dagfact_sparse::CscMatrix;
use dagfact_symbolic::FactoKind;
use std::sync::Arc;
use std::time::Instant;

const ENGINES: &[RuntimeKind] = &[RuntimeKind::Native, RuntimeKind::Dataflow, RuntimeKind::Ptg];

/// Attached tracing must not stretch the factorization by more than this
/// factor; generous because recording adds two clock reads per task.
const MAX_ATTACHED_OVERHEAD: f64 = 0.50;
/// A/A skew bound between the two detached sample sets: the noise floor
/// the disabled branch must hide under.
const MAX_DETACHED_SKEW: f64 = 0.10;
const OVERHEAD_REPS: usize = 4;

fn traced_exec(rec: Option<Arc<TraceRecorder>>) -> ExecOptions {
    ExecOptions {
        run: RunConfig {
            trace: rec,
            ..RunConfig::resilient()
        },
        epsilon_override: None,
        spill_dir: None,
    }
}

fn trace_record(trace: &Trace) -> Json {
    let cp = trace.critical_path();
    let wall = trace.wall_ns();
    Json::obj()
        .field("spans", trace.spans.len())
        .field("wall_ms", wall as f64 / 1e6)
        .field("parallel_efficiency", trace.parallel_efficiency())
        .field("critical_path_ms", cp.length_ns as f64 / 1e6)
        .field("critical_path_tasks", cp.tasks.len())
        .field(
            "kernels",
            trace
                .kernel_breakdown()
                .iter()
                .map(|k| {
                    Json::obj()
                        .field("kernel", k.kernel)
                        .field("tasks", k.count)
                        .field("time_ms", k.total_ns as f64 / 1e6)
                        .field("gflops", k.gflops)
                })
                .collect::<Vec<_>>(),
        )
        .field(
            "workers",
            trace
                .worker_stats()
                .iter()
                .map(|w| {
                    Json::obj()
                        .field("worker", w.worker)
                        .field("tasks", w.tasks)
                        .field("busy_ms", w.busy_ns as f64 / 1e6)
                        .field("wait_ms", w.wait_ns as f64 / 1e6)
                        .field("steal_ms", w.steal_ns as f64 / 1e6)
                        .field("idle_frac", w.idle_frac)
                })
                .collect::<Vec<_>>(),
        )
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn main() {
    let problems: Vec<(&str, CscMatrix<f64>, FactoKind)> = vec![
        ("audi-proxy", gen::grid_laplacian_3d(16, 16, 16), FactoKind::Cholesky),
        (
            "serena-proxy",
            gen::shifted_laplacian_3d(14, 14, 14, 1.0),
            FactoKind::Ldlt,
        ),
        (
            "mhd-proxy",
            gen::convection_diffusion_3d(12, 12, 12, 0.4),
            FactoKind::Lu,
        ),
    ];
    let nthreads = std::thread::available_parallelism().map_or(4, |v| v.get().min(8));
    let mut records = Vec::new();
    let mut failures = 0usize;
    println!(
        "trace sweep: {} proxies x {} engines on {nthreads} threads",
        problems.len(),
        ENGINES.len()
    );
    println!(
        "{:<14} {:>8} | {:>9} {:>8} {:>9} {:>7} | {:>6}",
        "Matrix", "Engine", "wall ms", "eff %", "cp ms", "cp len", "spans"
    );
    for (name, a, facto) in &problems {
        let analysis = Analysis::new(a.pattern(), *facto, &SolverOptions::default());
        for &engine in ENGINES {
            let rec = TraceRecorder::shared();
            let run = analysis.factorize_with(a, engine, nthreads, &traced_exec(Some(rec.clone())));
            if let Err(e) = run {
                eprintln!("{name}/{}: factorization FAILED: {e}", engine.label());
                failures += 1;
                continue;
            }
            let trace = rec.snapshot();
            let cp = trace.critical_path();
            let wall = trace.wall_ns();
            let eff = trace.parallel_efficiency();
            // Invariants the sweep gates on: a non-empty measured DAG, a
            // critical path inside the wall clock, a sane efficiency, and
            // a Chrome-trace export with one event per span.
            let events = match chrome_trace(&trace) {
                Json::Obj(ref fields) => fields
                    .iter()
                    .find(|(k, _)| k == "traceEvents")
                    .map_or(0, |(_, v)| match v {
                        Json::Arr(items) => items.len(),
                        _ => 0,
                    }),
                _ => 0,
            };
            let ok = !trace.spans.is_empty()
                && cp.length_ns <= wall
                && eff > 0.0
                && eff <= 1.0 + 1e-9
                && events == trace.spans.len();
            if !ok {
                eprintln!(
                    "{name}/{}: trace invariants violated (spans {}, cp {} ns, wall {wall} ns, eff {eff:.3}, events {events})",
                    engine.label(),
                    trace.spans.len(),
                    cp.length_ns
                );
                failures += 1;
            }
            println!(
                "{:<14} {:>8} | {:>9.3} {:>8.1} {:>9.3} {:>7} | {:>6}{}",
                name,
                engine.label(),
                wall as f64 / 1e6,
                eff * 100.0,
                cp.length_ns as f64 / 1e6,
                cp.tasks.len(),
                trace.spans.len(),
                if ok { "" } else { "  FAILED" },
            );
            records.push(
                Json::obj()
                    .field("matrix", *name)
                    .field("facto", facto.label())
                    .field("runtime", engine.label())
                    .field("nthreads", nthreads)
                    .field("ok", ok)
                    .field("trace", trace_record(&trace)),
            );
        }
    }

    // Overhead guard: interleaved detached/detached/attached timings of
    // one proxy factorization under the PTG engine.
    let (name, a, facto) = &problems[0];
    let analysis = Analysis::new(a.pattern(), *facto, &SolverOptions::default());
    let (mut off_a, mut off_b, mut on) = (Vec::new(), Vec::new(), Vec::new());
    let time_run = |exec: &ExecOptions, out: &mut Vec<f64>| {
        let t0 = Instant::now();
        let r = analysis.factorize_with(a, RuntimeKind::Ptg, nthreads, exec);
        out.push(t0.elapsed().as_secs_f64());
        r.is_ok()
    };
    let mut overhead_ok = true;
    for _ in 0..OVERHEAD_REPS {
        overhead_ok &= time_run(&traced_exec(None), &mut off_a);
        overhead_ok &= time_run(&traced_exec(None), &mut off_b);
        overhead_ok &= time_run(&traced_exec(Some(TraceRecorder::shared())), &mut on);
    }
    let (m_off_a, m_off_b, m_on) = (median(&mut off_a), median(&mut off_b), median(&mut on));
    let m_off = m_off_a.min(m_off_b);
    let detached_skew = (m_off_a - m_off_b).abs() / m_off.max(f64::MIN_POSITIVE);
    let attached_overhead = (m_on - m_off) / m_off.max(f64::MIN_POSITIVE);
    println!(
        "overhead ({name}, ptg): detached {:.3} ms / {:.3} ms (A/A skew {:.2}%), attached {:.3} ms (+{:.2}%)",
        m_off_a * 1e3,
        m_off_b * 1e3,
        detached_skew * 100.0,
        m_on * 1e3,
        attached_overhead * 100.0
    );
    if !overhead_ok || detached_skew > MAX_DETACHED_SKEW || attached_overhead > MAX_ATTACHED_OVERHEAD
    {
        eprintln!(
            "overhead guard FAILED (skew bound {:.0}%, attached bound {:.0}%)",
            MAX_DETACHED_SKEW * 100.0,
            MAX_ATTACHED_OVERHEAD * 100.0
        );
        failures += 1;
    }

    let doc = Json::obj()
        .field("experiment", "tracesweep")
        .field("nthreads", nthreads)
        .field("runs", records)
        .field(
            "overhead",
            Json::obj()
                .field("matrix", *name)
                .field("runtime", "ptg")
                .field("reps", OVERHEAD_REPS)
                .field("detached_median_s", m_off)
                .field("detached_aa_skew", detached_skew)
                .field("attached_median_s", m_on)
                .field("attached_overhead", attached_overhead),
        );
    match write_results("tracesweep", &doc) {
        Ok(out) => println!("wrote {}", out.display()),
        Err(e) => {
            eprintln!("cannot write results/tracesweep.json: {e}");
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("trace sweep: {failures} run(s) FAILED");
        std::process::exit(1);
    }
    println!("trace sweep: all runs completed with consistent traces");
}
