//! Service latency sweep: run the three Table-I proxy problems through
//! `dagfact-serve` and measure what the request-level caches buy —
//! cold (no reuse), pattern-hit (analysis cached, numeric factorization
//! fresh) and factor-hit (numeric factors cached, solve only) — then
//! p50/p99 end-to-end latency under concurrent factor-hit load.
//!
//! ```text
//! cargo run -p dagfact-bench --bin servesweep --release
//! ```
//!
//! Output: a human-readable table on stdout plus `results/servesweep.json`.
//! Exits non-zero if any job fails or the factor-hit path is not at
//! least 5× faster than cold, so the Makefile can gate on it.

use dagfact_bench::{write_results, Json};
use dagfact_serve::{JobSpec, MatrixSource, ReusePolicy, ServeConfig, Service};
use dagfact_sparse::{gen, CscMatrix};
use dagfact_symbolic::FactoKind;
use std::time::Instant;

/// Repetitions per latency tier (medians are reported).
const REPS: usize = 3;
/// Concurrent clients and jobs-per-client in the load phase.
const CLIENTS: usize = 4;
const JOBS_PER_CLIENT: usize = 25;
/// Acceptance gate: factor hits must beat cold by at least this factor.
const MIN_FACTOR_SPEEDUP: f64 = 5.0;

fn triplets_of(a: &CscMatrix<f64>) -> Vec<(usize, usize, f64)> {
    let p = a.pattern();
    let mut out = Vec::with_capacity(a.nnz());
    for j in 0..a.ncols() {
        for (k, &i) in p.col(j).iter().enumerate() {
            out.push((i, j, a.values()[p.colptr()[j] + k]));
        }
    }
    out
}

fn spec_for(a: &CscMatrix<f64>, facto: FactoKind, reuse: ReusePolicy, tag: &str) -> JobSpec {
    JobSpec {
        matrix: MatrixSource::Inline {
            n: a.nrows(),
            triplets: triplets_of(a),
        },
        facto,
        threads: 2,
        refine: 2,
        reuse,
        tag: Some(tag.to_string()),
        ..JobSpec::default()
    }
}

/// Wall-clock latency of one blocking job, in microseconds.
fn timed_job(service: &Service, spec: JobSpec, failures: &mut usize) -> Option<f64> {
    let t0 = Instant::now();
    match service.solve_blocking(spec) {
        Ok(_) => Some(t0.elapsed().as_secs_f64() * 1e6),
        Err(e) => {
            eprintln!("job failed: {e:?}");
            *failures += 1;
            None
        }
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    samples[samples.len() / 2]
}

/// Nearest-rank percentile of a sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((q / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx]
}

fn main() {
    let problems: Vec<(&str, CscMatrix<f64>, FactoKind)> = vec![
        ("audi-proxy", gen::grid_laplacian_3d(16, 16, 16), FactoKind::Cholesky),
        (
            "serena-proxy",
            gen::shifted_laplacian_3d(14, 14, 14, 1.0),
            FactoKind::Ldlt,
        ),
        (
            "mhd-proxy",
            gen::convection_diffusion_3d(12, 12, 12, 0.4),
            FactoKind::Lu,
        ),
    ];
    println!(
        "service sweep: {} proxies, {REPS} reps/tier, {CLIENTS}x{JOBS_PER_CLIENT} concurrent jobs",
        problems.len()
    );
    println!(
        "{:<14} {:>6} | {:>10} {:>10} {:>10} | {:>8}",
        "Matrix", "Method", "cold µs", "pat µs", "fact µs", "speedup"
    );

    let mut failures = 0usize;
    let mut records = Vec::new();
    let mut worst_speedup = f64::INFINITY;
    let service = Service::start(ServeConfig {
        workers: CLIENTS,
        queue_cap: 2 * CLIENTS * JOBS_PER_CLIENT,
        ..ServeConfig::default()
    });

    for (name, a, facto) in &problems {
        // Cold: reuse=none bypasses both caches — the full pipeline
        // (load, ordering, symbolic analysis, factorization, solve)
        // runs on every request.
        let mut cold: Vec<f64> = (0..REPS)
            .filter_map(|r| {
                let spec = spec_for(a, *facto, ReusePolicy::None, &format!("{name}-cold{r}"));
                timed_job(&service, spec, &mut failures)
            })
            .collect();
        // Warm both caches once (this request pays the fill).
        let _ = timed_job(
            &service,
            spec_for(a, *facto, ReusePolicy::Factors, &format!("{name}-warm")),
            &mut failures,
        );
        // Pattern hit: analysis from cache, numeric factorization fresh.
        let mut pattern: Vec<f64> = (0..REPS)
            .filter_map(|r| {
                let spec = spec_for(a, *facto, ReusePolicy::Pattern, &format!("{name}-pat{r}"));
                timed_job(&service, spec, &mut failures)
            })
            .collect();
        // Factor hit: cached numeric factors, solve + refinement only.
        let mut factor: Vec<f64> = (0..REPS)
            .filter_map(|r| {
                let spec = spec_for(a, *facto, ReusePolicy::Factors, &format!("{name}-fac{r}"));
                timed_job(&service, spec, &mut failures)
            })
            .collect();
        if cold.is_empty() || pattern.is_empty() || factor.is_empty() {
            eprintln!("{name}: a latency tier produced no samples");
            failures += 1;
            continue;
        }
        let (c, p, f) = (median(&mut cold), median(&mut pattern), median(&mut factor));
        let speedup = c / f;
        worst_speedup = worst_speedup.min(speedup);
        println!(
            "{:<14} {:>6} | {:>10.0} {:>10.0} {:>10.0} | {:>7.1}x",
            name,
            format!("{facto:?}"),
            c,
            p,
            f,
            speedup
        );
        records.push(
            Json::obj()
                .field("matrix", *name)
                .field("facto", format!("{facto:?}"))
                .field("n", a.nrows())
                .field("nnz", a.nnz())
                .field("cold_us", c)
                .field("pattern_hit_us", p)
                .field("factor_hit_us", f)
                .field("factor_speedup", speedup),
        );
    }

    // Concurrent load: every client hammers the warmed factor caches
    // with interleaved problems; end-to-end wall-clock per request.
    let load_specs: Vec<JobSpec> = problems
        .iter()
        .map(|(name, a, facto)| spec_for(a, *facto, ReusePolicy::Factors, &format!("{name}-load")))
        .collect();
    let t_load = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let service = &service;
                let load_specs = &load_specs;
                scope.spawn(move || {
                    let mut lats = Vec::with_capacity(JOBS_PER_CLIENT);
                    let mut client_failures = 0usize;
                    for r in 0..JOBS_PER_CLIENT {
                        let spec = load_specs[(c + r) % load_specs.len()].clone();
                        if let Some(us) = timed_job(service, spec, &mut client_failures) {
                            lats.push(us);
                        }
                    }
                    (lats, client_failures)
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            let (lats, f) = h.join().expect("client thread");
            all.extend(lats);
            failures += f;
        }
        all
    });
    let load_wall = t_load.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let (p50, p99) = if latencies.is_empty() {
        failures += 1;
        (f64::NAN, f64::NAN)
    } else {
        (percentile(&latencies, 50.0), percentile(&latencies, 99.0))
    };
    println!(
        "concurrent load: {} jobs in {:.2}s — p50 {:.0}µs p99 {:.0}µs",
        latencies.len(),
        load_wall,
        p50,
        p99
    );

    let stats = service.shutdown();
    let doc = Json::obj()
        .field("bench", "servesweep")
        .field("tiers", records)
        .field(
            "concurrent",
            Json::obj()
                .field("clients", CLIENTS)
                .field("jobs_per_client", JOBS_PER_CLIENT)
                .field("completed", latencies.len())
                .field("wall_s", load_wall)
                .field("p50_us", p50)
                .field("p99_us", p99),
        )
        .field(
            "service",
            Json::obj()
                .field("submitted", stats.submitted)
                .field("completed", stats.completed)
                .field("failed", stats.failed)
                .field("pattern_cache_hits", stats.pattern_cache.hits)
                .field("factor_cache_hits", stats.factor_cache.hits),
        )
        .field("min_factor_speedup_required", MIN_FACTOR_SPEEDUP)
        .field("worst_factor_speedup", worst_speedup)
        .field("failures", failures);
    match write_results("servesweep", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("cannot write results: {e}");
            failures += 1;
        }
    }
    if worst_speedup < MIN_FACTOR_SPEEDUP {
        eprintln!(
            "FAIL: factor-hit speedup {worst_speedup:.1}x is below the \
             {MIN_FACTOR_SPEEDUP:.0}x acceptance gate"
        );
        std::process::exit(1);
    }
    if failures > 0 {
        eprintln!("FAIL: {failures} job failure(s)");
        std::process::exit(1);
    }
    println!("OK: factor hits ≥{MIN_FACTOR_SPEEDUP:.0}x faster than cold on every proxy");
}
