//! Fan-in communication study over the Table-I proxies: for each matrix,
//! predict the message/byte traffic of fan-out vs fan-in distribution at
//! cluster widths 1/2/4/8 and record it as JSON through the same emitter
//! `dagfact dist --study` uses, so `results/comm.json` has one format
//! regardless of which tool wrote it.
//!
//! ```text
//! cargo run -p dagfact-bench --bin comm --release
//! ```
//!
//! Output: a human-readable table on stdout plus `results/comm.json`.

use dagfact_bench::{comm_study_json, proxies, write_results, Json};
use dagfact_core::fan_in_study;

const WIDTHS: &[usize] = &[1, 2, 4, 8];

fn main() {
    println!("communication study: {} proxies x widths {WIDTHS:?}", proxies().len());
    println!(
        "{:<12} {:>6} {:>7} | {:>9} {:>11} | {:>9} {:>11} | {:>6}",
        "Matrix", "Method", "panels", "out msgs", "out MB", "in msgs", "in MB", "ratio"
    );
    let mut records = Vec::new();
    for m in proxies() {
        let analysis = m.analyze();
        for &nnodes in WIDTHS {
            let study = fan_in_study(&analysis, m.is_complex(), nnodes);
            let ratio = study.fan_in.bytes / study.fan_out.bytes.max(f64::MIN_POSITIVE);
            println!(
                "{:<12} {:>6} {:>7} | {:>9} {:>11.1} | {:>9} {:>11.1} | {:>6.3}",
                format!("{}x{}", m.name, nnodes),
                analysis.facto.label(),
                analysis.symbol.ncblk(),
                study.fan_out.messages,
                study.fan_out.bytes / 1e6,
                study.fan_in.messages,
                study.fan_in.bytes / 1e6,
                ratio,
            );
        }
        records.push(comm_study_json(m.name, &analysis, m.is_complex(), WIDTHS));
    }
    let doc = Json::obj().field("records", records);
    match write_results("comm", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("comm: cannot write results: {e}");
            std::process::exit(1);
        }
    }
}
