//! Regenerate **Table I** of the paper: the matrix inventory with size,
//! nnz(A), nnz(L) and factorization flops, for the nine proxy problems.
//!
//! ```text
//! cargo run -p dagfact-bench --bin table1 --release
//! ```
//!
//! Columns labelled `paper` are the published values (matrices ~300×
//! larger); `proxy` are this reproduction's synthetic stand-ins. Compare
//! *ratios* (fill factor nnzL/nnzA, flops ordering), not absolutes.
//!
//! Output: the table on stdout plus machine-readable
//! `results/table1.json` (redirect stdout for the `.txt` copy).

use dagfact_bench::{proxies, write_results, Json};

fn main() {
    println!("Table I — matrix description (paper values vs. synthetic proxies)");
    println!(
        "{:<10} {:>4} {:>6} | {:>9} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>10} {:>8}",
        "Matrix",
        "Prec",
        "Method",
        "n(paper)",
        "nnzA(p)",
        "nnzL(p)",
        "TFlop(p)",
        "n",
        "nnzA",
        "nnzL",
        "GFlop",
        "fill"
    );
    let mut prev_flops = 0.0;
    let mut ordering_ok = true;
    let mut rows = Vec::new();
    for m in proxies() {
        let analysis = m.analyze();
        let st = analysis.stats();
        let flops = if m.is_complex() {
            st.flops_complex
        } else {
            st.flops_real
        };
        let fill = st.nnz_l as f64 / (st.nnz_a as f64 / 2.0);
        println!(
            "{:<10} {:>4} {:>6} | {:>9.1e} {:>9.1e} {:>9.1e} {:>9.2} | {:>9} {:>9} {:>9} {:>10.2} {:>8.1}",
            m.name,
            m.prec,
            m.facto.label(),
            m.paper.n,
            m.paper.nnz_a,
            m.paper.nnz_l,
            m.paper.tflop,
            st.n,
            st.nnz_a,
            st.nnz_l,
            flops / 1e9,
            fill,
        );
        if flops < prev_flops {
            ordering_ok = false;
        }
        prev_flops = flops;
        rows.push(
            Json::obj()
                .field("matrix", m.name)
                .field("prec", m.prec)
                .field("method", m.facto.label())
                .field(
                    "paper",
                    Json::obj()
                        .field("n", m.paper.n)
                        .field("nnz_a", m.paper.nnz_a)
                        .field("nnz_l", m.paper.nnz_l)
                        .field("tflop", m.paper.tflop),
                )
                .field(
                    "proxy",
                    Json::obj()
                        .field("n", st.n)
                        .field("nnz_a", st.nnz_a)
                        .field("nnz_l", st.nnz_l)
                        .field("gflop", flops / 1e9)
                        .field("fill", fill)
                        .field("desc", m.proxy_desc),
                ),
        );
    }
    println!();
    println!(
        "flop ordering preserved vs. Table I: {}",
        if ordering_ok { "yes" } else { "NO — adjust proxy sizes" }
    );
    println!("proxy descriptions:");
    for m in proxies() {
        println!("  {:<10} {}", m.name, m.proxy_desc);
    }
    let doc = Json::obj()
        .field("experiment", "table1")
        .field("flop_ordering_preserved", ordering_ok)
        .field("rows", rows);
    match write_results("table1", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("cannot write results/table1.json: {e}");
            std::process::exit(1);
        }
    }
}
