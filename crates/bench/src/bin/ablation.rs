//! Ablation studies beyond the paper's figures, exercising the design
//! choices DESIGN.md calls out:
//!
//! 1. **amalgamation ratio sweep** — how the paper's "up to 12% more
//!    fill-in" parameter trades flops for panel size and hybrid speed;
//! 2. **panel split width** — the §III granularity knob (1D-ish wide
//!    panels vs. fine splitting);
//! 3. **ordering** — nested dissection vs. the RCM baseline (DAG shape);
//! 4. **scheduler locality** — the cold-read penalty's contribution to
//!    the PaRSEC-vs-StarPU gap (data-reuse on/off).
//!
//! ```text
//! cargo run -p dagfact-bench --bin ablation --release
//! ```

use dagfact_bench::{write_results, Json};
use dagfact_core::{simulate_factorization, Analysis, SimOptions, SolverOptions};
use dagfact_gpusim::{Platform, SimPolicy};
use dagfact_order::OrderingKind;
use dagfact_sparse::gen::grid_laplacian_3d;
use dagfact_symbolic::structure::SplitOptions;
use dagfact_symbolic::supernode::AmalgamationOptions;
use dagfact_symbolic::FactoKind;

fn main() {
    let a = grid_laplacian_3d(40, 40, 40);
    let opts = SimOptions::default();
    let hybrid = Platform::mirage(12, 3);
    let cpu12 = Platform::mirage(12, 0);

    println!("Ablation studies on a 40^3 Poisson problem (Cholesky)");
    println!();
    println!("1) amalgamation fill budget (paper default 0.12)");
    println!(
        "{:>6} {:>9} {:>8} {:>8} | {:>10} {:>10}",
        "ratio", "GFlop", "panels", "blocks", "cpu GF/s", "hyb GF/s"
    );
    let mut amalgamation_rows = Vec::new();
    for ratio in [0.0, 0.05, 0.12, 0.25, 0.50] {
        let an = Analysis::new(
            a.pattern(),
            FactoKind::Cholesky,
            &SolverOptions {
                amalgamation: AmalgamationOptions {
                    fill_ratio: ratio,
                    min_width: 8,
                },
                ..SolverOptions::default()
            },
        );
        let st = an.stats();
        let cpu = simulate_factorization(&an, &opts, &cpu12, SimPolicy::ParsecLike { streams: 1 })
            .gflops();
        let hyb = simulate_factorization(&an, &opts, &hybrid, SimPolicy::ParsecLike { streams: 3 })
            .gflops();
        println!(
            "{:>6.2} {:>9.2} {:>8} {:>8} | {:>10.2} {:>10.2}",
            ratio,
            st.flops_real / 1e9,
            st.ncblk,
            st.nblocks,
            cpu,
            hyb
        );
        amalgamation_rows.push(
            Json::obj()
                .field("fill_ratio", ratio)
                .field("gflop", st.flops_real / 1e9)
                .field("panels", st.ncblk)
                .field("blocks", st.nblocks)
                .field("cpu_gflops", cpu)
                .field("hybrid_gflops", hyb),
        );
    }

    println!();
    println!("2) panel split width (paper §III: split to create parallelism)");
    println!(
        "{:>6} {:>8} {:>8} | {:>10} {:>10}",
        "width", "panels", "blocks", "cpu GF/s", "hyb GF/s"
    );
    let mut split_rows = Vec::new();
    for width in [32usize, 64, 128, 256, 1024] {
        let an = Analysis::new(
            a.pattern(),
            FactoKind::Cholesky,
            &SolverOptions {
                split: SplitOptions { max_width: width },
                ..SolverOptions::default()
            },
        );
        let st = an.stats();
        let cpu = simulate_factorization(&an, &opts, &cpu12, SimPolicy::ParsecLike { streams: 1 })
            .gflops();
        let hyb = simulate_factorization(&an, &opts, &hybrid, SimPolicy::ParsecLike { streams: 3 })
            .gflops();
        println!(
            "{:>6} {:>8} {:>8} | {:>10.2} {:>10.2}",
            width, st.ncblk, st.nblocks, cpu, hyb
        );
        split_rows.push(
            Json::obj()
                .field("max_width", width)
                .field("panels", st.ncblk)
                .field("blocks", st.nblocks)
                .field("cpu_gflops", cpu)
                .field("hybrid_gflops", hyb),
        );
    }

    println!();
    println!("3) ordering (fill-reduction drives everything)");
    println!(
        "{:>18} {:>10} {:>10} | {:>10}",
        "ordering", "nnzL", "GFlop", "cpu GF/s"
    );
    let mut ordering_rows = Vec::new();
    for (name, kind) in [
        ("nested dissection", OrderingKind::NestedDissection),
        ("reverse CM", OrderingKind::ReverseCuthillMcKee),
    ] {
        let an = Analysis::new(
            a.pattern(),
            FactoKind::Cholesky,
            &SolverOptions {
                ordering: kind,
                ..SolverOptions::default()
            },
        );
        let st = an.stats();
        let cpu = simulate_factorization(&an, &opts, &cpu12, SimPolicy::ParsecLike { streams: 1 })
            .gflops();
        println!(
            "{:>18} {:>10} {:>10.2} | {:>10.2}",
            name,
            st.nnz_l,
            st.flops_real / 1e9,
            cpu
        );
        ordering_rows.push(
            Json::obj()
                .field("ordering", name)
                .field("nnz_l", st.nnz_l)
                .field("gflop", st.flops_real / 1e9)
                .field("cpu_gflops", cpu),
        );
    }

    println!();
    println!("4) LDLt temp-buffer trick (native) vs per-update D·Lt (generic, §V-A)");
    let an = Analysis::new(a.pattern(), FactoKind::Ldlt, &SolverOptions::default());
    let native = simulate_factorization(&an, &opts, &cpu12, SimPolicy::NativeStatic).gflops();
    let generic = simulate_factorization(&an, &opts, &cpu12, SimPolicy::ParsecLike { streams: 1 })
        .gflops();
    println!("   native (buffered D·Lt): {native:.2} GF/s");
    println!("   generic (per-update):   {generic:.2} GF/s   ({:.0}% gap)",
        (1.0 - generic / native) * 100.0
    );

    println!();
    println!("5) subtree clustering (the paper's §VI future work) on a small,");
    println!("   overhead-bound problem (16^3, afshell10-like regime)");
    let small = dagfact_sparse::gen::grid_laplacian_3d(16, 16, 16);
    let an = Analysis::new(small.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    let costs = an.costs(false);
    println!(
        "{:>12} {:>8} | {:>10} {:>10}",
        "threshold", "tasks", "starpu GF/s", "parsec GF/s"
    );
    let mut cluster_rows = Vec::new();
    for divisor in [0usize, 1000, 300, 100, 30] {
        let o = SimOptions {
            cluster_flops: (divisor > 0).then(|| costs.total / divisor as f64),
            ..SimOptions::default()
        };
        let dag = dagfact_core::build_sim_dag(&an, &o, &cpu12, SimPolicy::StarPuLike);
        let s = simulate_factorization(&an, &o, &cpu12, SimPolicy::StarPuLike).gflops();
        let p = simulate_factorization(&an, &o, &cpu12, SimPolicy::ParsecLike { streams: 1 })
            .gflops();
        let label = if divisor == 0 {
            "off".to_string()
        } else {
            format!("total/{divisor}")
        };
        println!("{label:>12} {:>8} | {s:>10.2} {p:>11.2}", dag.tasks.len());
        cluster_rows.push(
            Json::obj()
                .field("threshold", label.as_str())
                .field("tasks", dag.tasks.len())
                .field("starpu_gflops", s)
                .field("parsec_gflops", p),
        );
    }

    println!();
    println!("6) fan-in vs fan-out communication (the paper's §VI distributed");
    println!("   future work) — proportional mapping of the 40^3 problem");
    let an = Analysis::new(a.pattern(), FactoKind::Cholesky, &SolverOptions::default());
    println!(
        "{:>6} | {:>10} {:>10} | {:>10} {:>10} | {:>9} {:>9}",
        "nodes", "msgs(out)", "MB(out)", "msgs(in)", "MB(in)", "msg cut", "byte cut"
    );
    let mut fan_rows = Vec::new();
    for nnodes in [2usize, 4, 8, 16] {
        let study = dagfact_core::fan_in_study(&an, false, nnodes);
        fan_rows.push(
            Json::obj()
                .field("nodes", nnodes)
                .field(
                    "fan_out",
                    Json::obj()
                        .field("messages", study.fan_out.messages)
                        .field("bytes", study.fan_out.bytes),
                )
                .field(
                    "fan_in",
                    Json::obj()
                        .field("messages", study.fan_in.messages)
                        .field("bytes", study.fan_in.bytes),
                ),
        );
        println!(
            "{:>6} | {:>10} {:>10.1} | {:>10} {:>10.1} | {:>8.1}x {:>8.2}x",
            nnodes,
            study.fan_out.messages,
            study.fan_out.bytes / 1e6,
            study.fan_in.messages,
            study.fan_in.bytes / 1e6,
            study.fan_out.messages as f64 / study.fan_in.messages.max(1) as f64,
            study.fan_out.bytes / study.fan_in.bytes.max(1.0),
        );
    }
    println!("   (fan-in accumulates remote updates locally: far fewer messages,");
    println!("    somewhat fewer bytes, at the price of local buffers — §VI)");
    let doc = Json::obj()
        .field("experiment", "ablation")
        .field("amalgamation", amalgamation_rows)
        .field("split_width", split_rows)
        .field("ordering", ordering_rows)
        .field(
            "ldlt_update",
            Json::obj()
                .field("native_gflops", native)
                .field("generic_gflops", generic),
        )
        .field("clustering", cluster_rows)
        .field("fan_in_out", fan_rows);
    match write_results("ablation", &doc) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("cannot write results/ablation.json: {e}");
            std::process::exit(1);
        }
    }
}
