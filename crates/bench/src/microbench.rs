//! Minimal, dependency-free micro-benchmark harness.
//!
//! The container this repository builds in has no network access, so the
//! bench targets cannot pull an external benchmarking framework; this
//! module supplies the small subset actually needed: named groups,
//! warmup + adaptive iteration counts, median-of-samples timing, and
//! optional element throughput. Bench binaries keep `harness = false`
//! and drive it from `main`.
//!
//! Timing model: each benchmark is warmed up, then run in batches sized
//! so one sample lasts ≳ 5 ms; the reported figure is the median over
//! [`SAMPLES`] batches — robust to scheduler noise without rigorous
//! statistics.

use std::hint::black_box;
use std::time::{Duration, Instant};

const SAMPLES: usize = 11;
const TARGET_SAMPLE: Duration = Duration::from_millis(5);
const WARMUP: Duration = Duration::from_millis(30);

/// Top-level harness: parses the CLI filter and prints a header.
pub struct Bench {
    filter: Option<String>,
}

impl Default for Bench {
    fn default() -> Self {
        Self::from_args()
    }
}

impl Bench {
    /// Build from `std::env::args`: the first non-flag argument is a
    /// substring filter on `group/name` ids (flags like `--bench` that
    /// cargo passes are ignored).
    pub fn from_args() -> Bench {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Bench { filter }
    }

    /// Start a named benchmark group.
    pub fn group(&self, name: &str) -> Group<'_> {
        Group {
            bench: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// A named group of related benchmarks.
pub struct Group<'a> {
    bench: &'a Bench,
    name: String,
    throughput: Option<u64>,
}

impl Group<'_> {
    /// Set the per-iteration element count; subsequent benches report
    /// elements/second alongside time.
    pub fn throughput(&mut self, elements: u64) -> &mut Self {
        self.throughput = Some(elements);
        self
    }

    /// Benchmark `f`, timed over whole batches.
    pub fn bench<F: FnMut()>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if !self.bench.matches(&full) {
            return self;
        }
        // Warmup + per-iteration estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            f();
            warm_iters += 1;
        }
        // Clamp like `bench_batched` below: a zero-duration estimate (a
        // no-op body on a coarse clock) would make the batch size
        // `inf.ceil() as u64` — which saturates to u64::MAX and hangs the
        // sample loop.
        let per_iter = (warm_start.elapsed().as_secs_f64() / warm_iters as f64).max(1e-9);
        let batch = ((TARGET_SAMPLE.as_secs_f64() / per_iter).ceil() as u64).max(1);
        let mut samples: Vec<f64> = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let t0 = Instant::now();
            for _ in 0..batch {
                f();
            }
            samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        report(&full, median, self.throughput);
        self
    }

    /// Benchmark `run` on a fresh `setup()` value each iteration; only
    /// `run` is timed (per-iteration stopwatch, for workloads that
    /// consume their input).
    pub fn bench_batched<S, I, F, R>(&mut self, id: &str, mut setup: S, mut run: F) -> &mut Self
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let full = format!("{}/{}", self.name, id);
        if !self.bench.matches(&full) {
            return self;
        }
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut warm_spent = Duration::ZERO;
        while warm_start.elapsed() < WARMUP {
            let input = setup();
            let t0 = Instant::now();
            black_box(run(input));
            warm_spent += t0.elapsed();
            warm_iters += 1;
        }
        let per_iter = (warm_spent.as_secs_f64() / warm_iters as f64).max(1e-9);
        let batch = ((TARGET_SAMPLE.as_secs_f64() / per_iter).ceil() as u64).max(1);
        let mut samples: Vec<f64> = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let mut spent = Duration::ZERO;
            for _ in 0..batch {
                let input = setup();
                let t0 = Instant::now();
                black_box(run(input));
                spent += t0.elapsed();
            }
            samples.push(spent.as_secs_f64() / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        report(&full, median, self.throughput);
        self
    }
}

fn report(id: &str, secs: f64, throughput: Option<u64>) {
    let time = if secs >= 1.0 {
        format!("{secs:9.3} s ")
    } else if secs >= 1e-3 {
        format!("{:9.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:9.3} µs", secs * 1e6)
    } else {
        format!("{:9.1} ns", secs * 1e9)
    };
    match throughput {
        Some(elems) => {
            let rate = elems as f64 / secs;
            println!("{id:<48} {time}   {:10.3} Melem/s", rate / 1e6);
        }
        None => println!("{id:<48} {time}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let b = Bench { filter: None };
        let mut calls = 0u64;
        b.group("smoke").throughput(100).bench("noop", || {
            calls += 1;
        });
        assert!(calls > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let b = Bench {
            filter: Some("other".to_string()),
        };
        let mut calls = 0u64;
        b.group("smoke").bench("noop", || calls += 1);
        assert_eq!(calls, 0);
    }

    /// Regression: a body whose timed section rounds to zero used to
    /// drive the batch size through `inf.ceil() as u64` → u64::MAX and
    /// hang the sample loop. With the clamp the batch stays finite and
    /// the bench terminates.
    #[test]
    fn zero_duration_body_terminates() {
        let b = Bench { filter: None };
        let mut runs = 0u64;
        b.group("smoke").bench_batched("noop", || (), |()| {
            runs += 1;
        });
        assert!(runs > 0);
        let mut calls = 0u64;
        b.group("smoke").bench("noop-direct", || {
            calls += 1;
        });
        assert!(calls > 0);
    }

    #[test]
    fn batched_setup_not_timed() {
        let b = Bench { filter: None };
        let mut runs = 0u64;
        b.group("smoke").bench_batched(
            "clone",
            || vec![1u8; 16],
            |v| {
                runs += 1;
                v.len()
            },
        );
        assert!(runs > 0);
    }
}
