//! Property-style tests of the discrete-event engine on random layered
//! DAGs: for any valid input, any policy and any platform, the simulator
//! must terminate, execute every task exactly once, stay deterministic,
//! and respect basic physical bounds. Cases come from a deterministic
//! seeded sweep so failures reproduce exactly.

use dagfact_gpusim::{simulate, Platform, SimDag, SimData, SimPolicy, SimTask, TaskShape};

/// Deterministic parameter source (SplitMix64).
struct Params {
    state: u64,
}

impl Params {
    fn new(case: u64) -> Params {
        Params {
            state: 0x51A1_0000 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// Random layered DAG: tasks in layer ℓ may depend only on layer ℓ−1.
fn random_dag(p: &mut Params) -> SimDag {
    let layers = p.range(2, 6);
    let width = p.range(1, 12);
    let seed = p.next_u64();
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let ntasks = layers * width;
    let mut tasks: Vec<SimTask> = Vec::with_capacity(ntasks);
    for l in 0..layers {
        for w in 0..width {
            let id = l * width + w;
            let m = 32 + (next() % 512) as usize;
            let update = next() % 2 == 0;
            let shape = if update {
                TaskShape::Update {
                    m,
                    n: 64,
                    k: 64,
                    target_height: m + (next() % 256) as usize,
                    ldlt: next() % 4 == 0,
                }
            } else {
                TaskShape::Panel {
                    width: 16 + (next() % 64) as usize,
                    height: m,
                }
            };
            tasks.push(SimTask {
                shape,
                flops: 1e4 + (next() % 100_000) as f64 * 100.0,
                reads: vec![(next() as usize) % (ntasks + 1)],
                writes: id % (ntasks + 1),
                gpu_eligible: update,
                succs: vec![],
                npred: 0,
                priority: (next() % 100) as f64,
                static_owner: (next() as usize) % 8,
                cpu_multiplier: 1.0 + (next() % 3) as f64 * 0.1,
            });
            // Edges from the previous layer.
            if l > 0 {
                let nedges = next() % 3;
                for _ in 0..nedges {
                    let pred = (l - 1) * width + (next() as usize) % width;
                    if !tasks[pred].succs.contains(&id) {
                        tasks[pred].succs.push(id);
                        tasks[id].npred += 1;
                    }
                }
            }
        }
    }
    let data = (0..ntasks + 1)
        .map(|_| SimData {
            bytes: 1e3 + (next() % 1_000_000) as f64,
        })
        .collect();
    SimDag { tasks, data }
}

fn policies() -> Vec<SimPolicy> {
    vec![
        SimPolicy::NativeStatic,
        SimPolicy::StarPuLike,
        SimPolicy::ParsecLike { streams: 1 },
        SimPolicy::ParsecLike { streams: 3 },
    ]
}

const CASES: u64 = 48;

#[test]
fn every_policy_terminates_and_accounts_all_tasks() {
    for case in 0..CASES {
        let mut p = Params::new(case);
        let dag = random_dag(&mut p);
        let cores = p.range(1, 13);
        let gpus = p.range(0, 4);
        if dag.validate().is_err() {
            continue;
        }
        let platform = Platform::mirage(cores, gpus);
        for policy in policies() {
            let r = simulate(&dag, &platform, policy);
            assert_eq!(
                r.tasks_on_cpu + r.tasks_on_gpu,
                dag.tasks.len(),
                "case {case}: {policy:?} lost tasks"
            );
            assert!(r.makespan.is_finite() && r.makespan > 0.0, "case {case}");
            // Native never offloads.
            if policy == SimPolicy::NativeStatic {
                assert_eq!(r.tasks_on_gpu, 0, "case {case}");
            }
            // No GPUs → no transfers.
            if gpus == 0 {
                assert_eq!(r.bytes_h2d, 0.0, "case {case}");
            }
        }
    }
}

#[test]
fn simulation_is_a_pure_function() {
    for case in 0..CASES {
        let mut p = Params::new(1000 + case);
        let dag = random_dag(&mut p);
        let gpus = p.range(0, 3);
        if dag.validate().is_err() {
            continue;
        }
        let platform = Platform::mirage(6, gpus);
        for policy in policies() {
            let a = simulate(&dag, &platform, policy);
            let b = simulate(&dag, &platform, policy);
            assert_eq!(a.makespan, b.makespan, "case {case}");
            assert_eq!(a.tasks_on_gpu, b.tasks_on_gpu, "case {case}");
            assert_eq!(a.bytes_h2d, b.bytes_h2d, "case {case}");
            assert_eq!(a.bytes_d2h, b.bytes_d2h, "case {case}");
        }
    }
}

#[test]
fn makespan_lower_bounded_by_ideal_compute() {
    for case in 0..CASES {
        let mut p = Params::new(2000 + case);
        let dag = random_dag(&mut p);
        let cores = p.range(1, 13);
        if dag.validate().is_err() {
            continue;
        }
        let platform = Platform::mirage(cores, 0);
        // Nothing can beat all cores running flat-out at the efficiency
        // ceiling with zero dependencies/overheads.
        let ceiling = platform.cpu.peak_gflops * platform.cpu.max_efficiency * 1e9;
        let ideal = dag.total_flops() / (ceiling * cores as f64);
        for policy in policies() {
            let r = simulate(&dag, &platform, policy);
            assert!(
                r.makespan >= ideal * 0.999,
                "case {case}: {policy:?}: makespan {} below physical bound {}",
                r.makespan,
                ideal
            );
        }
    }
}
