//! Property tests of the discrete-event engine on random layered DAGs:
//! for any valid input, any policy and any platform, the simulator must
//! terminate, execute every task exactly once, stay deterministic, and
//! respect basic physical bounds.

use dagfact_gpusim::{simulate, Platform, SimDag, SimData, SimPolicy, SimTask, TaskShape};
use proptest::prelude::*;

/// Random layered DAG: tasks in layer ℓ may depend only on layer ℓ−1.
fn arb_dag() -> impl Strategy<Value = SimDag> {
    (2usize..6, 1usize..12, any::<u64>()).prop_map(|(layers, width, seed)| {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let ntasks = layers * width;
        let mut tasks: Vec<SimTask> = Vec::with_capacity(ntasks);
        for l in 0..layers {
            for w in 0..width {
                let id = l * width + w;
                let m = 32 + (next() % 512) as usize;
                let update = next() % 2 == 0;
                let shape = if update {
                    TaskShape::Update {
                        m,
                        n: 64,
                        k: 64,
                        target_height: m + (next() % 256) as usize,
                        ldlt: next() % 4 == 0,
                    }
                } else {
                    TaskShape::Panel {
                        width: 16 + (next() % 64) as usize,
                        height: m,
                    }
                };
                tasks.push(SimTask {
                    shape,
                    flops: 1e4 + (next() % 100_000) as f64 * 100.0,
                    reads: vec![(next() as usize) % (ntasks + 1)],
                    writes: id % (ntasks + 1),
                    gpu_eligible: update,
                    succs: vec![],
                    npred: 0,
                    priority: (next() % 100) as f64,
                    static_owner: (next() as usize) % 8,
                    cpu_multiplier: 1.0 + (next() % 3) as f64 * 0.1,
                });
                // Edges from the previous layer.
                if l > 0 {
                    let nedges = next() % 3;
                    for _ in 0..nedges {
                        let pred = (l - 1) * width + (next() as usize) % width;
                        if !tasks[pred].succs.contains(&id) {
                            tasks[pred].succs.push(id);
                            tasks[id].npred += 1;
                        }
                    }
                }
            }
        }
        let data = (0..ntasks + 1)
            .map(|_| SimData {
                bytes: 1e3 + (next() % 1_000_000) as f64,
            })
            .collect();
        SimDag { tasks, data }
    })
}

fn policies() -> Vec<SimPolicy> {
    vec![
        SimPolicy::NativeStatic,
        SimPolicy::StarPuLike,
        SimPolicy::ParsecLike { streams: 1 },
        SimPolicy::ParsecLike { streams: 3 },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_policy_terminates_and_accounts_all_tasks(
        dag in arb_dag(),
        cores in 1usize..13,
        gpus in 0usize..4,
    ) {
        prop_assume!(dag.validate().is_ok());
        let platform = Platform::mirage(cores, gpus);
        for policy in policies() {
            let r = simulate(&dag, &platform, policy);
            prop_assert_eq!(
                r.tasks_on_cpu + r.tasks_on_gpu,
                dag.tasks.len(),
                "{:?} lost tasks", policy
            );
            prop_assert!(r.makespan.is_finite() && r.makespan > 0.0);
            // Native never offloads.
            if policy == SimPolicy::NativeStatic {
                prop_assert_eq!(r.tasks_on_gpu, 0);
            }
            // No GPUs → no transfers.
            if gpus == 0 {
                prop_assert_eq!(r.bytes_h2d, 0.0);
            }
        }
    }

    #[test]
    fn simulation_is_a_pure_function(dag in arb_dag(), gpus in 0usize..3) {
        prop_assume!(dag.validate().is_ok());
        let platform = Platform::mirage(6, gpus);
        for policy in policies() {
            let a = simulate(&dag, &platform, policy);
            let b = simulate(&dag, &platform, policy);
            prop_assert_eq!(a.makespan, b.makespan);
            prop_assert_eq!(a.tasks_on_gpu, b.tasks_on_gpu);
            prop_assert_eq!(a.bytes_h2d, b.bytes_h2d);
            prop_assert_eq!(a.bytes_d2h, b.bytes_d2h);
        }
    }

    #[test]
    fn makespan_lower_bounded_by_ideal_compute(
        dag in arb_dag(),
        cores in 1usize..13,
    ) {
        prop_assume!(dag.validate().is_ok());
        let platform = Platform::mirage(cores, 0);
        // Nothing can beat all cores running flat-out at the efficiency
        // ceiling with zero dependencies/overheads.
        let ceiling = platform.cpu.peak_gflops * platform.cpu.max_efficiency * 1e9;
        let ideal = dag.total_flops() / (ceiling * cores as f64);
        for policy in policies() {
            let r = simulate(&dag, &platform, policy);
            prop_assert!(
                r.makespan >= ideal * 0.999,
                "{:?}: makespan {} below physical bound {}", policy, r.makespan, ideal
            );
        }
    }
}
