//! # dagfact-gpusim
//!
//! Discrete-event simulator of the paper's hybrid evaluation platform — the
//! substitution (DESIGN.md §2) for the Mirage nodes (two hexa-core Westmere
//! X5650 + 3× Tesla M2070) that this reproduction has no access to.
//!
//! The simulator executes a task DAG ([`dag::SimDag`]) against a
//! parameterized machine ([`platform::Platform`]) under one of three
//! scheduling policies ([`SimPolicy`]) that mirror the real engines of
//! `dagfact-rt`:
//!
//! * [`SimPolicy::NativeStatic`] — PaStiX: analyze-time static list
//!   schedule of 1D tasks + work stealing, CPU only;
//! * [`SimPolicy::StarPuLike`] — dmda-style earliest-completion placement
//!   from a centralized queue; one CPU worker is *dedicated* to (removed
//!   for) each GPU; single-stream kernels with transfer prefetch;
//! * [`SimPolicy::ParsecLike`] — PTG-style local release with LIFO data
//!   reuse and stealing; GPUs are fed by the submitting cores without
//!   dedicating a thread, and run `streams` concurrent kernels that share
//!   the device (the multi-stream effect of Figures 3/4).
//!
//! Kernel durations come from calibrated performance models
//! ([`kernelmodel`]): a cuBLAS-like dense GEMM curve, its ASTRA-like
//! auto-tuned variant (−15%), the texture-less variant (−5%) and the
//! paper's sparse scatter kernel (penalized by the destination-panel
//! height ratio), plus a roofline-flavoured CPU efficiency curve. Data
//! movement is simulated per GPU over PCIe links with an MSI-style
//! validity protocol, so transfer-bound cases (afshell10 in Figure 4)
//! emerge naturally.
//!
//! The simulation is fully deterministic: same DAG + platform + policy →
//! same schedule, independent of the host machine.

pub mod cluster;
pub mod dag;
pub mod engine;
pub mod kernelmodel;
pub mod platform;
pub mod report;

pub use cluster::{ClusterPlatform, EventQueue};
pub use dag::{SimDag, SimData, SimTask, TaskShape};
pub use engine::{simulate, SimPolicy};
pub use platform::{CpuModel, GpuModel, LinkModel, Platform, SchedulerCosts};
pub use report::{SimReport, SimResource, SimSpan};
