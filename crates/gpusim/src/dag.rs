//! Task-DAG description consumed by the simulator.
//!
//! `dagfact-core` lowers an analyzed factorization into this form; the
//! simulator itself is solver-agnostic (any DAG with flop counts, data
//! footprints and GEMM-like shapes works, which the unit tests exploit).

/// Identifier of a task in a [`SimDag`].
pub type TaskId = usize;

/// Identifier of a datum (panel) in a [`SimDag`].
pub type DataId = usize;

/// Shape information used by the kernel performance models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskShape {
    /// Panel factorization + triangular solve: `width` columns over a
    /// total panel height `height`. Never GPU-offloaded (paper §V-B: "we
    /// decide not to offload the tasks that factorize and update the panel
    /// […] due to the limited computational load").
    Panel {
        /// Panel width (columns).
        width: usize,
        /// Stored rows of the panel.
        height: usize,
    },
    /// A sparse GEMM update: `C[m×n] -= A₁[m×k]·A₂[n×k]ᵀ` scattered into a
    /// destination panel whose stored height is `target_height` (the
    /// taller the destination relative to `m`, the worse the scatter
    /// kernel performs — Figure 3).
    Update {
        /// Rows of the contribution.
        m: usize,
        /// Columns of the contribution.
        n: usize,
        /// Panel width (inner dimension).
        k: usize,
        /// Stored height of the destination panel.
        target_height: usize,
        /// LDLᵀ update (`C -= L·D·Lᵀ`): the GPU kernel variant costs ≈5%
        /// (§V-B).
        ldlt: bool,
    },
}

/// One task of the simulated DAG.
#[derive(Debug, Clone)]
pub struct SimTask {
    /// Kernel shape (drives the performance models).
    pub shape: TaskShape,
    /// Flop count (numerator of every GFlop/s figure).
    pub flops: f64,
    /// Data read by the task.
    pub reads: Vec<DataId>,
    /// Datum written (read-modify-write) by the task.
    pub writes: DataId,
    /// May this task run on a GPU? (update tasks only, set by the solver).
    pub gpu_eligible: bool,
    /// Successor tasks.
    pub succs: Vec<TaskId>,
    /// Number of predecessors.
    pub npred: u32,
    /// Critical-path priority (higher = more urgent).
    pub priority: f64,
    /// Static owner (CPU worker) for the native policy; ignored by the
    /// dynamic policies.
    pub static_owner: usize,
    /// CPU kernel-efficiency multiplier (≥ 1): execution takes
    /// `flops/rate × multiplier`. Models per-runtime kernel differences —
    /// e.g. the generic runtimes' per-update `D·Lᵀ` recomputation on LDLᵀ
    /// problems (§V-A) — without distorting the useful-flop accounting.
    pub cpu_multiplier: f64,
}

/// A datum (panel) with its memory footprint.
#[derive(Debug, Clone, Copy)]
pub struct SimData {
    /// Size in bytes (drives PCIe transfer times and the CPU cache-reuse
    /// penalty).
    pub bytes: f64,
}

/// A complete simulation input.
#[derive(Debug, Clone, Default)]
pub struct SimDag {
    /// Tasks, topologically consistent (`succs` may only point forward or
    /// backward, but the `npred` counts must match).
    pub tasks: Vec<SimTask>,
    /// Data registry.
    pub data: Vec<SimData>,
}

impl SimDag {
    /// Total flops of the DAG.
    pub fn total_flops(&self) -> f64 {
        self.tasks.iter().map(|t| t.flops).sum()
    }

    /// Validate structural invariants (predecessor counts consistent with
    /// successor lists, data ids in range). Used by tests and debug
    /// builds.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.tasks.len();
        let mut npred = vec![0u32; n];
        for (i, t) in self.tasks.iter().enumerate() {
            if t.writes >= self.data.len() {
                return Err(format!("task {i} writes unknown datum {}", t.writes));
            }
            for &d in &t.reads {
                if d >= self.data.len() {
                    return Err(format!("task {i} reads unknown datum {d}"));
                }
            }
            for &s in &t.succs {
                if s >= n {
                    return Err(format!("task {i} has out-of-range successor {s}"));
                }
                npred[s] += 1;
            }
        }
        for (i, t) in self.tasks.iter().enumerate() {
            if npred[i] != t.npred {
                return Err(format!(
                    "task {i}: npred {} but {} incoming edges",
                    t.npred, npred[i]
                ));
            }
        }
        // Roots must exist unless the DAG is empty (cycles would deadlock
        // the event loop).
        if n > 0 && !self.tasks.iter().any(|t| t.npred == 0) {
            return Err("no root task (cycle?)".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_task(succs: Vec<TaskId>, npred: u32) -> SimTask {
        SimTask {
            shape: TaskShape::Panel {
                width: 8,
                height: 8,
            },
            flops: 1e6,
            reads: vec![],
            writes: 0,
            gpu_eligible: false,
            succs,
            npred,
            priority: 0.0,
            static_owner: 0,
            cpu_multiplier: 1.0,
        }
    }

    #[test]
    fn validate_accepts_simple_chain() {
        let dag = SimDag {
            tasks: vec![tiny_task(vec![1], 0), tiny_task(vec![], 1)],
            data: vec![SimData { bytes: 100.0 }],
        };
        dag.validate().unwrap();
        assert_eq!(dag.total_flops(), 2e6);
    }

    #[test]
    fn validate_rejects_bad_npred() {
        let dag = SimDag {
            tasks: vec![tiny_task(vec![1], 0), tiny_task(vec![], 2)],
            data: vec![SimData { bytes: 100.0 }],
        };
        assert!(dag.validate().is_err());
    }

    #[test]
    fn validate_rejects_unknown_data() {
        let mut t = tiny_task(vec![], 0);
        t.writes = 5;
        let dag = SimDag {
            tasks: vec![t],
            data: vec![SimData { bytes: 1.0 }],
        };
        assert!(dag.validate().is_err());
    }

    #[test]
    fn validate_rejects_rootless_cycle() {
        let dag = SimDag {
            tasks: vec![tiny_task(vec![1], 1), tiny_task(vec![0], 1)],
            data: vec![SimData { bytes: 1.0 }],
        };
        assert!(dag.validate().is_err());
    }
}
