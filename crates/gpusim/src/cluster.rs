//! Cluster substrate: N hybrid nodes + a network, and the deterministic
//! min-heap event queue that drives discrete-event simulations over them.
//!
//! The single-node [`Platform`](crate::platform::Platform) models the
//! paper's Mirage machine; a [`ClusterPlatform`] is simply N of those
//! connected by a network link whose latency/bandwidth are modeled with
//! the same [`LinkModel`](crate::platform::LinkModel) abstraction as the
//! PCIe lanes (ROADMAP item 3: "network links with latency/bandwidth
//! alongside the existing PCIe model").
//!
//! [`EventQueue`] is the cluster event loop's core: a binary min-heap of
//! `(virtual time, sequence number, payload)` entries. The sequence
//! number breaks time ties in insertion order, so a simulation that
//! schedules the same events always pops them in the same order — the
//! determinism the chaos sweeps rely on (same seed → same schedule →
//! same faults → same recovery, independent of the host machine).

use crate::platform::{LinkModel, Platform};
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;

/// N simulated hybrid nodes connected by a network.
#[derive(Debug, Clone)]
pub struct ClusterPlatform {
    /// Per-node machine description (cores, GPUs, PCIe links).
    pub nodes: Vec<Platform>,
    /// Inter-node network link (shared model for every pair; the
    /// simulation charges one traversal per message).
    pub network: LinkModel,
}

impl ClusterPlatform {
    /// A homogeneous cluster of `nnodes` Mirage-style nodes with `cores`
    /// CPU cores and `ngpus` GPUs each, connected by an
    /// InfiniBand-flavoured network (12 GB/s, 1.5 µs — an order of
    /// magnitude more latency than the PCIe model, as on real clusters).
    pub fn homogeneous(nnodes: usize, cores: usize, ngpus: usize) -> ClusterPlatform {
        assert!(nnodes >= 1, "a cluster needs at least one node");
        ClusterPlatform {
            nodes: vec![Platform::mirage(cores, ngpus); nnodes],
            network: LinkModel {
                bandwidth_gbps: 12.0,
                latency: 1.5e-6,
            },
        }
    }

    /// Number of nodes.
    pub fn nnodes(&self) -> usize {
        self.nodes.len()
    }

    /// Network transfer time for a `bytes`-sized message.
    pub fn net_time(&self, bytes: f64) -> f64 {
        self.network.time(bytes)
    }
}

/// One scheduled event: fires at `time`, ties broken by insertion order.
struct Entry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == CmpOrdering::Equal
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event
        // (then the lowest sequence number) on top. total_cmp keeps the
        // order total even if a cost model ever produces a NaN time.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic discrete-event min-heap keyed by `(time, seq)`.
///
/// Popping yields events in nondecreasing virtual time; simultaneous
/// events come out in the order they were pushed. Virtual time never
/// runs backwards from the *consumer's* perspective as long as handlers
/// only schedule into the future (enforced by [`EventQueue::push_at`]'s
/// clamp against the last popped time).
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at virtual time zero.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
        }
    }

    /// Current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedule `event` at absolute time `at`, clamped to the current
    /// virtual time so a handler rounding below `now` cannot make the
    /// clock run backwards.
    pub fn push_at(&mut self, at: f64, event: E) {
        let time = if at.is_finite() { at.max(self.now) } else { self.now };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Schedule `event` after a `delay` relative to the current time.
    pub fn push_after(&mut self, delay: f64, event: E) {
        self.push_at(self.now + delay.max(0.0), event);
    }

    /// Pop the earliest event and advance the virtual clock to it.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let e = self.heap.pop()?;
        self.now = e.time;
        Some((e.time, e.event))
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is the queue drained?
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_cluster_matches_inventory() {
        let c = ClusterPlatform::homogeneous(4, 12, 2);
        assert_eq!(c.nnodes(), 4);
        assert_eq!(c.nodes[0].cores, 12);
        assert_eq!(c.nodes[3].gpus.len(), 2);
        // Network latency dominates PCIe latency but bandwidth is higher
        // than one PCIe 2.0 link — the classic cluster trade.
        assert!(c.network.latency < c.nodes[0].link.latency * 1000.0);
        assert!(c.network.bandwidth_gbps > c.nodes[0].link.bandwidth_gbps);
    }

    #[test]
    fn net_time_includes_latency_and_bandwidth() {
        let c = ClusterPlatform::homogeneous(2, 1, 0);
        let small = c.net_time(0.0);
        assert!((small - c.network.latency).abs() < 1e-12);
        let big = c.net_time(12e9);
        assert!((big - 1.0 - c.network.latency).abs() < 1e-9);
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push_at(3.0, "c");
        q.push_at(1.0, "a");
        q.push_at(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..64 {
            q.push_at(1.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..64).collect::<Vec<_>>(), "FIFO within a tick");
    }

    #[test]
    fn clock_is_monotone_even_with_past_pushes() {
        let mut q = EventQueue::new();
        q.push_at(5.0, "later");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 5.0);
        assert_eq!(q.now(), 5.0);
        // A handler scheduling "into the past" is clamped to now.
        q.push_at(1.0, "past");
        q.push_after(-3.0, "negative-delay");
        let (t1, _) = q.pop().unwrap();
        let (t2, _) = q.pop().unwrap();
        assert_eq!(t1, 5.0);
        assert_eq!(t2, 5.0);
        // NaN times (a broken cost model) clamp instead of corrupting
        // the heap order.
        q.push_at(f64::NAN, "nan");
        assert_eq!(q.pop().unwrap().0, 5.0);
    }

    #[test]
    fn identical_schedules_replay_identically() {
        let run = || {
            let mut q = EventQueue::new();
            let mut log = Vec::new();
            q.push_at(0.5, 100u32);
            q.push_at(0.5, 200);
            q.push_at(0.25, 300);
            while let Some((t, e)) = q.pop() {
                log.push((t.to_bits(), e));
                if e == 300 {
                    q.push_after(0.25, 400);
                }
            }
            log
        };
        assert_eq!(run(), run(), "same schedule must replay bit-identically");
    }
}
