//! Simulation results.

/// Resource a simulated span occupied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimResource {
    /// CPU worker `w` executing a task.
    Cpu(usize),
    /// GPU `g` executing a kernel.
    Gpu(usize),
    /// Host→device PCIe link of GPU `g`.
    H2d(usize),
    /// Device→host PCIe link of GPU `g`.
    D2h(usize),
}

/// One interval of simulated time on one resource. Times are simulated
/// seconds from the start of the run (the simulator's native unit; the
/// trace exporter converts to nanoseconds/microseconds — see
/// `dagfact_rt::trace::units` for the wall-clock conventions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimSpan {
    /// Where the interval was spent.
    pub resource: SimResource,
    /// The task involved (`None` for data-movement spans).
    pub task: Option<usize>,
    /// Start, simulated seconds.
    pub start: f64,
    /// End, simulated seconds (≥ `start`).
    pub end: f64,
    /// Display label (`"cpu-task"`, `"gpu-kernel"`, `"h2d"`, `"d2h"`).
    pub label: &'static str,
}

/// Outcome of one simulated factorization run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// End-to-end simulated time (seconds), including the final
    /// write-back of GPU-resident panels.
    pub makespan: f64,
    /// Total flops of the DAG.
    pub total_flops: f64,
    /// Busy seconds per CPU worker.
    pub cpu_busy: Vec<f64>,
    /// Busy seconds (compute) per GPU.
    pub gpu_busy: Vec<f64>,
    /// Bytes moved host→device.
    pub bytes_h2d: f64,
    /// Bytes moved device→host.
    pub bytes_d2h: f64,
    /// Number of tasks executed on GPUs.
    pub tasks_on_gpu: usize,
    /// Number of tasks executed on CPU cores.
    pub tasks_on_cpu: usize,
    /// Peak bytes resident in each device's memory.
    pub peak_device_bytes: Vec<f64>,
    /// Panels evicted from device memory because the working set
    /// exceeded [`crate::GpuModel::memory_bytes`].
    pub device_evictions: usize,
    /// Bytes freed by those evictions (write-back traffic is folded into
    /// `bytes_d2h` when the device held the only valid copy).
    pub bytes_evicted: f64,
    /// Per-resource execution/transfer timeline of the simulated run
    /// (CPU task bodies, GPU kernels, PCIe transfers).
    pub spans: Vec<SimSpan>,
}

impl SimReport {
    /// Aggregate performance in GFlop/s — the Y axis of Figures 2 and 4.
    pub fn gflops(&self) -> f64 {
        if self.makespan <= 0.0 {
            0.0
        } else {
            self.total_flops / self.makespan / 1e9
        }
    }

    /// Fraction of CPU capacity actually used.
    pub fn cpu_utilization(&self) -> f64 {
        if self.cpu_busy.is_empty() || self.makespan <= 0.0 {
            return 0.0;
        }
        self.cpu_busy.iter().sum::<f64>() / (self.makespan * self.cpu_busy.len() as f64)
    }
}
