//! Simulation results.

/// Outcome of one simulated factorization run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// End-to-end simulated time (seconds), including the final
    /// write-back of GPU-resident panels.
    pub makespan: f64,
    /// Total flops of the DAG.
    pub total_flops: f64,
    /// Busy seconds per CPU worker.
    pub cpu_busy: Vec<f64>,
    /// Busy seconds (compute) per GPU.
    pub gpu_busy: Vec<f64>,
    /// Bytes moved host→device.
    pub bytes_h2d: f64,
    /// Bytes moved device→host.
    pub bytes_d2h: f64,
    /// Number of tasks executed on GPUs.
    pub tasks_on_gpu: usize,
    /// Number of tasks executed on CPU cores.
    pub tasks_on_cpu: usize,
    /// Peak bytes resident in each device's memory.
    pub peak_device_bytes: Vec<f64>,
    /// Panels evicted from device memory because the working set
    /// exceeded [`crate::GpuModel::memory_bytes`].
    pub device_evictions: usize,
    /// Bytes freed by those evictions (write-back traffic is folded into
    /// `bytes_d2h` when the device held the only valid copy).
    pub bytes_evicted: f64,
}

impl SimReport {
    /// Aggregate performance in GFlop/s — the Y axis of Figures 2 and 4.
    pub fn gflops(&self) -> f64 {
        if self.makespan <= 0.0 {
            0.0
        } else {
            self.total_flops / self.makespan / 1e9
        }
    }

    /// Fraction of CPU capacity actually used.
    pub fn cpu_utilization(&self) -> f64 {
        if self.cpu_busy.is_empty() || self.makespan <= 0.0 {
            return 0.0;
        }
        self.cpu_busy.iter().sum::<f64>() / (self.makespan * self.cpu_busy.len() as f64)
    }
}
