//! Machine description: CPU cores, GPUs, PCIe links, scheduler costs.
//!
//! [`Platform::mirage`] reproduces the paper's evaluation node: "two
//! hexa-core Westmere Xeon X5650 (2.67 GHz), 32 GB of memory and 3 Tesla
//! M2070 GPUs" (§V), with performance constants calibrated against the
//! paper's Figure 3 (kernel curves) and the per-core DGEMM throughput of
//! the Westmere generation.

/// CPU core performance model.
#[derive(Debug, Clone, Copy)]
pub struct CpuModel {
    /// Peak double-precision GFlop/s of one core (Westmere: 2.67 GHz × 4
    /// flops/cycle ≈ 10.7).
    pub peak_gflops: f64,
    /// Half-saturation block size of the roofline-flavoured efficiency
    /// curve `eff(b) = b / (b + half_size)`: small panels run far below
    /// peak.
    pub half_size: f64,
    /// Ceiling of the efficiency curve (vendor BLAS on Westmere sustains
    /// ~85-90% of peak on large tiles).
    pub max_efficiency: f64,
    /// Effective bandwidth (GB/s) at which a core re-reads data written by
    /// another core (the cache-reuse penalty; local data is free).
    pub cold_read_gbps: f64,
}

/// GPU device performance model (see [`crate::kernelmodel`]).
#[derive(Debug, Clone, Copy)]
pub struct GpuModel {
    /// Dense cuBLAS DGEMM ceiling (M2070 ≈ 300 GFlop/s, the "cuBLAS peak"
    /// line of Figure 3).
    pub peak_gflops: f64,
    /// Half-saturation value of M (at N=K=128) for the single-kernel
    /// throughput curve.
    pub m_half: f64,
    /// Fixed per-kernel launch overhead (seconds).
    pub launch_overhead: f64,
    /// Scatter penalty coefficient of the sparse kernel (Figure 3's
    /// "Sparse" curves): rate ÷= 1 + β·(target_height/m − 1).
    pub scatter_beta: f64,
    /// Device memory capacity in bytes. The engine caps the resident
    /// working set at this size; excess panels are evicted LRU with a
    /// write-back over PCIe when the device holds the only valid copy.
    pub memory_bytes: f64,
}

/// PCIe link model (one h2d + one d2h lane per GPU).
#[derive(Debug, Clone, Copy)]
pub struct LinkModel {
    /// Sustained bandwidth in GB/s (PCIe 2.0 x16 ≈ 6 effective).
    pub bandwidth_gbps: f64,
    /// Per-transfer latency in seconds.
    pub latency: f64,
}

/// Per-policy scheduling overheads (seconds per task) — the runtime costs
/// the paper attributes to each system on multicore runs (§V-A).
#[derive(Debug, Clone, Copy)]
pub struct SchedulerCosts {
    /// Native static scheduler: queue pop of a precomputed list.
    pub native_per_task: f64,
    /// StarPU-like centralized queue: base cost per pop…
    pub dataflow_per_task: f64,
    /// …plus contention that grows with the worker count.
    pub dataflow_contention: f64,
    /// PaRSEC-like local release: successor evaluation per task.
    pub ptg_per_task: f64,
}

impl Default for SchedulerCosts {
    fn default() -> Self {
        SchedulerCosts {
            native_per_task: 0.3e-6,
            dataflow_per_task: 1.8e-6,
            dataflow_contention: 0.25e-6,
            ptg_per_task: 0.8e-6,
        }
    }
}

/// A complete simulated machine.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Number of CPU cores.
    pub cores: usize,
    /// Core model.
    pub cpu: CpuModel,
    /// GPUs (empty for CPU-only studies).
    pub gpus: Vec<GpuModel>,
    /// PCIe link per GPU.
    pub link: LinkModel,
    /// Scheduler overhead constants.
    pub sched: SchedulerCosts,
}

impl Platform {
    /// The paper's Mirage node with `cores` CPU cores and `ngpus` Tesla
    /// M2070s (cores ∈ 1..=12, ngpus ∈ 0..=3 in the paper's experiments).
    pub fn mirage(cores: usize, ngpus: usize) -> Platform {
        assert!(cores >= 1);
        Platform {
            cores,
            cpu: CpuModel {
                peak_gflops: 10.7,
                half_size: 24.0,
                max_efficiency: 0.88,
                cold_read_gbps: 5.0,
            },
            gpus: vec![GpuModel::m2070(); ngpus],
            link: LinkModel {
                bandwidth_gbps: 6.0,
                latency: 15e-6,
            },
            sched: SchedulerCosts::default(),
        }
    }
}

impl GpuModel {
    /// Tesla M2070 (Fermi) constants calibrated on Figure 3.
    pub fn m2070() -> GpuModel {
        GpuModel {
            peak_gflops: 300.0,
            m_half: 450.0,
            launch_overhead: 8e-6,
            scatter_beta: 0.35,
            memory_bytes: 6e9, // 6 GB GDDR5
        }
    }
}

impl CpuModel {
    /// Sustained GFlop/s of one core on a kernel whose smallest blocking
    /// dimension is `b`.
    pub fn rate(&self, b: usize) -> f64 {
        let b = b as f64;
        self.peak_gflops * self.max_efficiency * (b / (b + self.half_size))
    }
}

impl LinkModel {
    /// Transfer time for `bytes`.
    pub fn time(&self, bytes: f64) -> f64 {
        self.latency + bytes / (self.bandwidth_gbps * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirage_matches_paper_inventory() {
        let p = Platform::mirage(12, 3);
        assert_eq!(p.cores, 12);
        assert_eq!(p.gpus.len(), 3);
        // 12 Westmere cores peak just above 100 GFlop/s DP.
        assert!((p.cpu.peak_gflops * 12.0 - 128.4).abs() < 1.0);
        // A GPU is worth several cores on large GEMMs.
        assert!(p.gpus[0].peak_gflops > 20.0 * p.cpu.rate(64));
        // Tesla M2070: 6 GB of device memory.
        assert!((p.gpus[0].memory_bytes - 6e9).abs() < 1.0);
    }

    #[test]
    fn cpu_rate_curve_is_monotone_and_bounded() {
        let c = Platform::mirage(1, 0).cpu;
        let mut prev = 0.0;
        for b in [1usize, 8, 16, 32, 64, 128, 256, 1024] {
            let r = c.rate(b);
            assert!(r > prev);
            assert!(r <= c.peak_gflops * c.max_efficiency);
            prev = r;
        }
        // Large blocks approach the sustained ceiling.
        assert!(c.rate(2048) > 0.95 * c.peak_gflops * c.max_efficiency);
    }

    #[test]
    fn link_time_includes_latency() {
        let l = LinkModel {
            bandwidth_gbps: 6.0,
            latency: 15e-6,
        };
        assert!((l.time(0.0) - 15e-6).abs() < 1e-12);
        // 6 GB at 6 GB/s = 1 s (+latency).
        assert!((l.time(6e9) - 1.0 - 15e-6).abs() < 1e-9);
    }
}
