//! GPU kernel performance models — the three families of Figure 3.
//!
//! The paper benchmarks `C = C − A·Bᵀ` with `N = K = 128` and `M` swept to
//! 10000, for: the cuBLAS DGEMM, the auto-tuned ASTRA kernel (~15% below
//! cuBLAS, tuned on square matrices), and the paper's *sparse* adaptation
//! of ASTRA (textures disabled: −5%; scatter into a gappy destination
//! panel: throughput degrades as the destination grows taller than the
//! contribution). The LDLᵀ variant (`C −= L·D·Lᵀ`) costs another 5%.
//!
//! The model is a saturating-throughput curve in the row count `M` (small
//! kernels cannot fill the device — the reason "one stream always gives
//! the worst performance" and extra streams pay off, §V-B), scaled by the
//! per-family factors above.

use crate::platform::GpuModel;

/// Which GPU GEMM implementation a kernel call uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuKernelKind {
    /// Vendor cuBLAS (dense, closed source — the paper's reference).
    CublasLike,
    /// ASTRA auto-tuned dense kernel (−15% vs. cuBLAS off-square).
    AstraLike,
    /// ASTRA with textures disabled for multi-stream compatibility (−5%).
    AstraNoTex,
    /// The paper's sparse scatter kernel (no-tex ASTRA + gap penalty).
    Sparse {
        /// Stored height of the destination panel (≥ m).
        target_height: usize,
        /// LDLᵀ variant (extra D scaling): −5%.
        ldlt: bool,
    },
}

/// Single-kernel sustained throughput (GFlop/s) of a `M×N×K` GEMM-like
/// call when alone on the device. Multi-kernel sharing is handled by the
/// engine's fluid model on top of this.
///
/// Cast audit: the `usize → f64` conversions on matrix dimensions here
/// (and in [`stream_bench_gflops`]'s flop count) are exact — dimensions
/// and `m·n·k` products stay far below 2⁵³, where every integer is
/// representable. Time units follow `dagfact_rt::trace::units` (the
/// simulator works in seconds as `f64`).
pub fn kernel_rate(gpu: &GpuModel, kind: GpuKernelKind, m: usize, n: usize, k: usize) -> f64 {
    // Occupancy: a kernel with few rows cannot fill the SMs. N and K also
    // matter but the paper's sweep fixes N=K=128; we fold their effect
    // into an effective size so other shapes stay sane.
    let eff_rows = m as f64 * (n.min(k) as f64 / 128.0).clamp(0.25, 1.0);
    let occupancy = eff_rows / (eff_rows + gpu.m_half);
    kernel_ceiling(gpu, kind, m) * occupancy
}

/// Device-saturated throughput ceiling of a kernel family on this
/// workload. No combination of concurrent kernels exceeds it — "this peak
/// is never reached with the particular configuration case studied here"
/// (§V-B): the non-square N=K=128 sweep tops out ≈5% below the
/// square-matrix cuBLAS peak.
pub fn kernel_ceiling(gpu: &GpuModel, kind: GpuKernelKind, m: usize) -> f64 {
    let base = gpu.peak_gflops * 0.95;
    match kind {
        GpuKernelKind::CublasLike => base,
        GpuKernelKind::AstraLike => base * 0.85,
        GpuKernelKind::AstraNoTex => base * 0.85 * 0.95,
        GpuKernelKind::Sparse {
            target_height,
            ldlt,
        } => {
            let ratio = (target_height.max(m) as f64) / (m.max(1) as f64);
            let scatter = 1.0 / (1.0 + gpu.scatter_beta * (ratio - 1.0));
            let ldlt_factor = if ldlt { 0.95 } else { 1.0 };
            base * 0.85 * 0.95 * scatter * ldlt_factor
        }
    }
}

/// Wall-clock duration of a single kernel call alone on the device.
pub fn kernel_time(gpu: &GpuModel, kind: GpuKernelKind, m: usize, n: usize, k: usize, flops: f64) -> f64 {
    gpu.launch_overhead + flops / (kernel_rate(gpu, kind, m, n, k) * 1e9)
}

/// Aggregate GFlop/s of `ncalls` identical kernels issued round-robin over
/// `streams` CUDA streams — the exact experiment of the paper's Figure 3
/// ("the 100 calls made in the experiments are distributed in a
/// round-robin manner over the available streams").
///
/// Concurrent kernels share the device under the fluid model: each runs at
/// `alone_rate · min(1, peak/Σ alone_rates)`.
pub fn stream_bench_gflops(
    gpu: &GpuModel,
    kind: GpuKernelKind,
    m: usize,
    n: usize,
    k: usize,
    ncalls: usize,
    streams: usize,
) -> f64 {
    assert!(streams >= 1 && ncalls >= 1);
    let flops = 2.0 * (m * n * k) as f64;
    let alone = kernel_rate(gpu, kind, m, n, k);
    let cap = kernel_ceiling(gpu, kind, m);
    // Each stream serializes its own calls; across streams the device is
    // shared. With identical kernels the fluid solution is exact:
    // whenever `c` kernels are active each progresses at alone·share(c).
    let per_call_work = flops + gpu.launch_overhead * alone * 1e9;
    let mut remaining: Vec<usize> = (0..streams)
        .map(|s| ncalls / streams + usize::from(s < ncalls % streams))
        .collect();
    let mut inflight: Vec<f64> = remaining
        .iter()
        .map(|&r| if r > 0 { per_call_work } else { 0.0 })
        .collect();
    for r in &mut remaining {
        if *r > 0 {
            *r -= 1;
        }
    }
    let mut t = 0.0;
    loop {
        let active: Vec<usize> = (0..streams).filter(|&s| inflight[s] > 0.0).collect();
        if active.is_empty() {
            break;
        }
        let share = (cap / (alone * active.len() as f64)).min(1.0);
        let rate = alone * share * 1e9;
        // Advance until the smallest in-flight kernel finishes.
        let dt = active
            .iter()
            .map(|&s| inflight[s] / rate)
            .fold(f64::INFINITY, f64::min);
        t += dt;
        for &s in &active {
            inflight[s] -= rate * dt;
            if inflight[s] <= 1e-6 {
                inflight[s] = if remaining[s] > 0 {
                    remaining[s] -= 1;
                    per_call_work
                } else {
                    0.0
                };
            }
        }
    }
    ncalls as f64 * flops / t / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::GpuModel;

    fn gpu() -> GpuModel {
        GpuModel::m2070()
    }

    fn gflops(kind: GpuKernelKind, m: usize) -> f64 {
        // The paper's Figure 3 workload: C -= A·Bᵀ, N = K = 128.
        let flops = 2.0 * m as f64 * 128.0 * 128.0;
        let t = kernel_time(&gpu(), kind, m, 128, 128, flops) - gpu().launch_overhead;
        flops / t / 1e9
    }

    #[test]
    fn cublas_curve_matches_figure3_shape() {
        // Small M: well under 100 GFlop/s; large M: approaches but never
        // exceeds the 300 GFlop/s peak line.
        assert!(gflops(GpuKernelKind::CublasLike, 128) < 100.0);
        let big = gflops(GpuKernelKind::CublasLike, 10_000);
        assert!(big > 250.0 && big < 300.0, "got {big}");
        // Monotone in M.
        let mut prev = 0.0;
        for m in [64, 128, 256, 512, 1024, 2048, 4096, 8192] {
            let g = gflops(GpuKernelKind::CublasLike, m);
            assert!(g > prev);
            prev = g;
        }
    }

    #[test]
    fn astra_loses_about_15_percent() {
        for m in [256, 1024, 8192] {
            let c = gflops(GpuKernelKind::CublasLike, m);
            let a = gflops(GpuKernelKind::AstraLike, m);
            assert!((a / c - 0.85).abs() < 1e-9);
            let nt = gflops(GpuKernelKind::AstraNoTex, m);
            assert!((nt / a - 0.95).abs() < 1e-9);
        }
    }

    #[test]
    fn sparse_kernel_degrades_with_taller_destination() {
        // "the taller the panel, the lower the performance" (§V-B). The
        // paper's experiment uses C twice as tall as A.
        let m = 2048;
        let flat = gflops(
            GpuKernelKind::Sparse {
                target_height: m,
                ldlt: false,
            },
            m,
        );
        let double = gflops(
            GpuKernelKind::Sparse {
                target_height: 2 * m,
                ldlt: false,
            },
            m,
        );
        let quad = gflops(
            GpuKernelKind::Sparse {
                target_height: 4 * m,
                ldlt: false,
            },
            m,
        );
        assert!(flat > double && double > quad);
        // With no gaps the sparse kernel equals no-tex ASTRA.
        assert!((flat - gflops(GpuKernelKind::AstraNoTex, m)).abs() < 1e-9);
    }

    #[test]
    fn ldlt_variant_costs_5_percent() {
        let m = 1024;
        let llt = gflops(
            GpuKernelKind::Sparse {
                target_height: 2 * m,
                ldlt: false,
            },
            m,
        );
        let ldlt = gflops(
            GpuKernelKind::Sparse {
                target_height: 2 * m,
                ldlt: true,
            },
            m,
        );
        assert!((ldlt / llt - 0.95).abs() < 1e-9);
    }

    #[test]
    fn stream_bench_reproduces_figure3_stream_effects() {
        // "One stream always gives the worst performance. Adding a second
        // stream increases the performance of all implementations and
        // especially for small cases" (§V-B).
        for m in [128usize, 512, 1000] {
            let s1 = stream_bench_gflops(&gpu(), GpuKernelKind::CublasLike, m, 128, 128, 100, 1);
            let s2 = stream_bench_gflops(&gpu(), GpuKernelKind::CublasLike, m, 128, 128, 100, 2);
            let s3 = stream_bench_gflops(&gpu(), GpuKernelKind::CublasLike, m, 128, 128, 100, 3);
            assert!(s2 > s1 * 1.3, "m={m}: 2 streams {s2} vs 1 stream {s1}");
            // "The third one is an improvement for matrices with M smaller
            // than 1000, and is similar to two streams over 1000": two
            // streams may already saturate the device for mid-size M.
            assert!(s3 >= s2 * 0.98, "m={m}: s1={s1} s2={s2} s3={s3}"); // ragged 34/33/33 tail
            if m < 256 {
                assert!(s3 > s2 * 1.2, "m={m}: third stream should help small kernels (s2={s2} s3={s3})");
            }
        }
        // Over M ≈ 1000·m_half the streams converge: the device is full.
        let big1 = stream_bench_gflops(&gpu(), GpuKernelKind::CublasLike, 10_000, 128, 128, 100, 1);
        let big3 = stream_bench_gflops(&gpu(), GpuKernelKind::CublasLike, 10_000, 128, 128, 100, 3);
        assert!(big3 < big1 * 1.15, "streams should converge for large M");
        // Never exceeding peak.
        assert!(big3 <= gpu().peak_gflops + 1e-9);
    }

    #[test]
    fn narrow_inner_dimensions_reduce_throughput() {
        let wide = kernel_rate(&gpu(), GpuKernelKind::CublasLike, 2048, 128, 128);
        let narrow = kernel_rate(&gpu(), GpuKernelKind::CublasLike, 2048, 16, 16);
        assert!(narrow < wide);
    }
}
