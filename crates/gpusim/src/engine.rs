//! The discrete-event execution engine.
//!
//! One event loop drives CPU workers, GPU stream processors and PCIe links
//! under a pluggable scheduling policy. All state transitions are
//! deterministic (ties broken by task/worker index), so a given
//! (DAG, platform, policy) triple always produces the same schedule —
//! the property that makes the paper's figures reproducible on any host.

use crate::dag::{DataId, SimDag, TaskId, TaskShape};
use crate::kernelmodel::{kernel_ceiling, kernel_rate, GpuKernelKind};
use crate::platform::Platform;
use crate::report::{SimReport, SimResource, SimSpan};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Scheduling policy simulated on top of the platform (see crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimPolicy {
    /// PaStiX native: static list schedule (task `static_owner` fields) +
    /// work stealing; CPU only.
    NativeStatic,
    /// StarPU-like dmda: centralized queue, earliest-estimated-completion
    /// placement, one CPU worker dedicated per GPU, 1 stream per GPU.
    StarPuLike,
    /// PaRSEC-like: local LIFO release + stealing, GPUs fed without
    /// dedicating workers, `streams` concurrent kernels per GPU.
    ParsecLike {
        /// CUDA streams per device (1 or 3 in the paper).
        streams: usize,
    },
}

impl SimPolicy {
    fn label(&self) -> &'static str {
        match self {
            SimPolicy::NativeStatic => "native-static",
            SimPolicy::StarPuLike => "starpu-like",
            SimPolicy::ParsecLike { .. } => "parsec-like",
        }
    }
}

/// LDLᵀ flag for the sparse GPU kernel model: the engine cannot see the
/// scalar kind, so the solver encodes it in the DAG via this marker datum
/// convention — unused here; kernels are keyed purely on shape. Kept for
/// future extension.
const _: () = ();

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A CPU worker finished its current task.
    CpuFinish { worker: usize, task: TaskId },
    /// A CPU worker should look for work.
    WorkerWake { worker: usize },
    /// Re-examine a GPU's fluid kernel set (versioned; stale checks are
    /// dropped).
    GpuCheck { gpu: usize, version: u64 },
    /// A staged task's inbound transfers completed; it may enter a stream.
    GpuTaskReady { gpu: usize, task: TaskId },
}

struct EventQueue {
    heap: BinaryHeap<Reverse<(OrdF64, u64, EventSlot)>>,
    seq: u64,
}

#[derive(PartialEq, PartialOrd)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.partial_cmp(other).unwrap()
    }
}

#[derive(PartialEq, Eq)]
struct EventSlot(Event);
impl PartialOrd for EventSlot {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventSlot {
    fn cmp(&self, _other: &Self) -> core::cmp::Ordering {
        core::cmp::Ordering::Equal // sequence number already breaks ties
    }
}

impl EventQueue {
    fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
    fn push(&mut self, time: f64, ev: Event) {
        self.seq += 1;
        self.heap.push(Reverse((OrdF64(time), self.seq, EventSlot(ev))));
    }
    fn pop(&mut self) -> Option<(f64, Event)> {
        self.heap.pop().map(|Reverse((t, _, e))| (t.0, e.0))
    }
}

// ---------------------------------------------------------------------
// Data residency (MSI-flavoured)
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq)]
enum LastWriter {
    None,
    Cpu(usize),
    Gpu(usize),
}

struct DataState {
    /// valid bit per location: index 0 = host, 1 + g = GPU g.
    valid: u32,
    last_writer: LastWriter,
}

const HOST: u32 = 1;

impl DataState {
    fn new() -> Self {
        DataState {
            valid: HOST,
            last_writer: LastWriter::None,
        }
    }
    fn gpu_bit(g: usize) -> u32 {
        1 << (g + 1)
    }
    fn valid_on_gpu(&self, g: usize) -> bool {
        self.valid & Self::gpu_bit(g) != 0
    }
    fn valid_on_host(&self) -> bool {
        self.valid & HOST != 0
    }
    /// Some GPU holding the only valid copy, if the host copy is stale.
    fn dirty_gpu(&self) -> Option<usize> {
        if self.valid_on_host() {
            return None;
        }
        (0..31).find(|&g| self.valid & Self::gpu_bit(g) != 0)
    }
}

// ---------------------------------------------------------------------
// GPU state (fluid multi-stream processor)
// ---------------------------------------------------------------------

struct ActiveKernel {
    task: TaskId,
    /// Remaining work in flops (launch overhead folded in as
    /// flop-equivalents).
    remaining: f64,
    /// Throughput when alone on the device (GFlop/s).
    alone_rate: f64,
    /// Device-saturated ceiling of this kernel's family (GFlop/s).
    ceiling: f64,
    /// Simulated time the kernel entered its stream (for the span log).
    started: f64,
}

/// One datum held in a device's memory.
struct ResidentData {
    data: DataId,
    /// LRU stamp (global monotone clock; higher = hotter).
    stamp: u64,
    /// Tasks staged on this device that still need the datum; pinned
    /// entries are never evicted.
    pins: u32,
}

struct GpuState {
    streams: usize,
    active: Vec<ActiveKernel>,
    /// Tasks whose transfers completed, waiting for a free stream.
    ready: VecDeque<TaskId>,
    /// Tasks assigned to this GPU (for queue-length heuristics).
    assigned: usize,
    /// h2d link busy horizon.
    h2d_busy: f64,
    /// d2h link busy horizon.
    d2h_busy: f64,
    /// Time of the last fluid-state update.
    last_update: f64,
    /// Event versioning for stale GpuCheck events.
    version: u64,
    busy_time: f64,
    /// dmda bookkeeping: expected availability.
    expected_free: f64,
    /// Data resident in device memory (mirrors the per-datum valid bits).
    resident: Vec<ResidentData>,
    resident_bytes: f64,
    peak_resident: f64,
}

impl GpuState {
    fn share(&self, _peak: f64) -> f64 {
        let total: f64 = self.active.iter().map(|k| k.alone_rate).sum();
        // Concurrent kernels fill idle SMs but cannot beat the fully-fed
        // device: the aggregate is capped by the best family ceiling
        // among the active kernels.
        let cap = self
            .active
            .iter()
            .map(|k| k.ceiling)
            .fold(0.0f64, f64::max);
        if total <= cap {
            1.0
        } else {
            cap / total
        }
    }

    /// Advance remaining work of the active kernels to `now`.
    fn advance(&mut self, now: f64, peak: f64) {
        let share = self.share(peak);
        let dt = now - self.last_update;
        if dt > 0.0 {
            if !self.active.is_empty() {
                self.busy_time += dt;
            }
            for k in &mut self.active {
                k.remaining -= k.alone_rate * 1e9 * share * dt;
            }
        }
        self.last_update = now;
    }

    /// Time until the earliest active kernel completes (given current
    /// sharing).
    fn next_completion(&self, peak: f64) -> Option<f64> {
        let share = self.share(peak);
        self.active
            .iter()
            .map(|k| (k.remaining.max(0.0)) / (k.alone_rate * 1e9 * share))
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }
}

// ---------------------------------------------------------------------
// CPU-side policy queues
// ---------------------------------------------------------------------

#[derive(PartialEq)]
struct PrioEntry {
    priority: f64,
    task: TaskId,
}
impl Eq for PrioEntry {}
impl PartialOrd for PrioEntry {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PrioEntry {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.priority
            .partial_cmp(&other.priority)
            .unwrap()
            .then_with(|| other.task.cmp(&self.task))
    }
}

enum CpuQueues {
    /// Native: one priority heap per worker (static owners) + stealing.
    PerWorker(Vec<BinaryHeap<PrioEntry>>),
    /// StarPU: one central heap.
    Central(BinaryHeap<PrioEntry>),
    /// PaRSEC: per-worker LIFO deques + stealing.
    Deques(Vec<VecDeque<TaskId>>),
}

// ---------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------

struct Engine<'a> {
    dag: &'a SimDag,
    platform: &'a Platform,
    policy: SimPolicy,
    events: EventQueue,
    now: f64,
    pending: Vec<u32>,
    data: Vec<DataState>,
    gpus: Vec<GpuState>,
    queues: CpuQueues,
    /// Per-CPU-worker: busy-until horizon (f64) and idle flag.
    worker_free: Vec<f64>,
    worker_idle: Vec<bool>,
    cpu_busy: Vec<f64>,
    /// For ParsecLike: which worker offloaded each GPU task (successor
    /// release target).
    submitter: Vec<usize>,
    remaining_tasks: usize,
    bytes_h2d: f64,
    bytes_d2h: f64,
    tasks_on_gpu: usize,
    tasks_on_cpu: usize,
    /// Global LRU clock for device residency.
    lru_clock: u64,
    device_evictions: usize,
    bytes_evicted: f64,
    /// Per-resource timeline of the run (CPU tasks, GPU kernels, PCIe
    /// transfers), in simulated seconds.
    spans: Vec<SimSpan>,
}

/// Number of CPU workers that execute tasks under a policy.
fn cpu_worker_count(platform: &Platform, policy: SimPolicy) -> usize {
    match policy {
        // "when a GPU is used, a CPU worker is removed" (§V-C).
        SimPolicy::StarPuLike => platform.cores.saturating_sub(platform.gpus.len()).max(1),
        _ => platform.cores,
    }
}

/// Simulate the DAG on the platform under the policy.
pub fn simulate(dag: &SimDag, platform: &Platform, policy: SimPolicy) -> SimReport {
    debug_assert_eq!(dag.validate(), Ok(()));
    let nworkers = cpu_worker_count(platform, policy);
    let queues = match policy {
        SimPolicy::NativeStatic => {
            CpuQueues::PerWorker((0..nworkers).map(|_| BinaryHeap::new()).collect())
        }
        SimPolicy::StarPuLike => CpuQueues::Central(BinaryHeap::new()),
        SimPolicy::ParsecLike { .. } => {
            CpuQueues::Deques((0..nworkers).map(|_| VecDeque::new()).collect())
        }
    };
    let streams = match policy {
        SimPolicy::ParsecLike { streams } => streams.max(1),
        _ => 1,
    };
    let mut engine = Engine {
        dag,
        platform,
        policy,
        events: EventQueue::new(),
        now: 0.0,
        pending: dag.tasks.iter().map(|t| t.npred).collect(),
        data: dag.data.iter().map(|_| DataState::new()).collect(),
        gpus: platform
            .gpus
            .iter()
            .map(|_| GpuState {
                streams,
                active: Vec::new(),
                ready: VecDeque::new(),
                assigned: 0,
                h2d_busy: 0.0,
                d2h_busy: 0.0,
                last_update: 0.0,
                version: 0,
                busy_time: 0.0,
                expected_free: 0.0,
                resident: Vec::new(),
                resident_bytes: 0.0,
                peak_resident: 0.0,
            })
            .collect(),
        queues,
        worker_free: vec![0.0; nworkers],
        worker_idle: vec![true; nworkers],
        cpu_busy: vec![0.0; nworkers],
        submitter: vec![0; dag.tasks.len()],
        remaining_tasks: dag.tasks.len(),
        bytes_h2d: 0.0,
        bytes_d2h: 0.0,
        tasks_on_gpu: 0,
        tasks_on_cpu: 0,
        lru_clock: 0,
        device_evictions: 0,
        bytes_evicted: 0.0,
        spans: Vec::new(),
    };
    engine.run();
    let flush = engine.final_flush_time();
    engine
        .spans
        .sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap_or(core::cmp::Ordering::Equal));
    SimReport {
        makespan: engine.now.max(flush),
        total_flops: dag.total_flops(),
        cpu_busy: engine.cpu_busy,
        gpu_busy: engine.gpus.iter().map(|g| g.busy_time).collect(),
        bytes_h2d: engine.bytes_h2d,
        bytes_d2h: engine.bytes_d2h,
        tasks_on_gpu: engine.tasks_on_gpu,
        tasks_on_cpu: engine.tasks_on_cpu,
        peak_device_bytes: engine.gpus.iter().map(|g| g.peak_resident).collect(),
        device_evictions: engine.device_evictions,
        bytes_evicted: engine.bytes_evicted,
        spans: engine.spans,
    }
}

impl<'a> Engine<'a> {
    fn run(&mut self) {
        // Seed the roots.
        let roots: Vec<TaskId> = (0..self.dag.tasks.len())
            .filter(|&t| self.dag.tasks[t].npred == 0)
            .collect();
        for t in roots {
            self.route_ready_task(t, None);
        }
        self.wake_all_workers();
        while self.remaining_tasks > 0 {
            let Some((time, ev)) = self.events.pop() else {
                panic!(
                    "event queue drained with {} tasks left under {} (deadlock)",
                    self.remaining_tasks,
                    self.policy.label()
                );
            };
            debug_assert!(time >= self.now - 1e-12);
            self.now = time.max(self.now);
            match ev {
                Event::CpuFinish { worker, task } => self.on_cpu_finish(worker, task),
                Event::WorkerWake { worker } => self.try_dispatch_worker(worker),
                Event::GpuCheck { gpu, version } => self.on_gpu_check(gpu, version),
                Event::GpuTaskReady { gpu, task } => {
                    self.gpus[gpu].ready.push_back(task);
                    self.try_start_kernels(gpu);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Routing of ready tasks
    // ------------------------------------------------------------------

    /// Place a ready task according to the policy. `releaser` is the CPU
    /// worker whose task completion released it (None for roots and GPU
    /// completions routed through the submitter).
    fn route_ready_task(&mut self, t: TaskId, releaser: Option<usize>) {
        let task = &self.dag.tasks[t];
        match self.policy {
            SimPolicy::NativeStatic => {
                let owner = task.static_owner % self.worker_free.len();
                if let CpuQueues::PerWorker(ref mut qs) = self.queues {
                    qs[owner].push(PrioEntry {
                        priority: task.priority,
                        task: t,
                    });
                }
                // Wake everyone: idle workers other than the owner can
                // steal the new work.
                self.wake_all_workers();
            }
            SimPolicy::StarPuLike => {
                // dmda: estimated completion on CPU vs. each GPU.
                if task.gpu_eligible && !self.gpus.is_empty() {
                    let cpu_est = self.earliest_cpu_free() + self.cpu_exec_time(t, usize::MAX);
                    let mut best_gpu: Option<(usize, f64)> = None;
                    for g in 0..self.gpus.len() {
                        let est = self.gpu_completion_estimate(t, g);
                        if best_gpu.is_none_or(|(_, b)| est < b) {
                            best_gpu = Some((g, est));
                        }
                    }
                    if let Some((g, est)) = best_gpu {
                        if est < cpu_est {
                            self.offload(t, g);
                            return;
                        }
                    }
                }
                if let CpuQueues::Central(ref mut q) = self.queues {
                    q.push(PrioEntry {
                        priority: task.priority,
                        task: t,
                    });
                }
                self.wake_all_workers();
            }
            SimPolicy::ParsecLike { .. } => {
                // Offload decision made by the releasing worker when it
                // would otherwise execute the task: here we approximate
                // PaRSEC by deciding at release time with a size threshold
                // and device affinity/queue-depth heuristics.
                if task.gpu_eligible && !self.gpus.is_empty() && self.worth_offloading(t) {
                    let g = self.pick_gpu_by_affinity(t);
                    if self.gpus[g].assigned < 4 * self.gpus[g].streams + 4 {
                        self.submitter[t] = releaser.unwrap_or(0);
                        self.offload(t, g);
                        return;
                    }
                }
                let w = releaser.unwrap_or(t % self.worker_free.len());
                if let CpuQueues::Deques(ref mut qs) = self.queues {
                    qs[w].push_front(t); // LIFO: hottest data first
                }
                // Idle workers other than the releaser must wake to steal.
                self.wake_all_workers();
            }
        }
    }

    /// Size threshold for PaRSEC-like offload ("threshold based criterion
    /// on the size of the computational tasks", §II).
    fn worth_offloading(&self, t: TaskId) -> bool {
        match self.dag.tasks[t].shape {
            TaskShape::Update { m, n, .. } => m * n >= 64 * 64,
            TaskShape::Panel { .. } => false,
        }
    }

    fn pick_gpu_by_affinity(&self, t: TaskId) -> usize {
        let task = &self.dag.tasks[t];
        // Prefer the device already holding the destination panel, then
        // the one holding a source, then the least loaded.
        for g in 0..self.gpus.len() {
            if self.data[task.writes].valid_on_gpu(g) {
                return g;
            }
        }
        for g in 0..self.gpus.len() {
            if task.reads.iter().any(|&d| self.data[d].valid_on_gpu(g)) {
                return g;
            }
        }
        (0..self.gpus.len())
            .min_by_key(|&g| self.gpus[g].assigned)
            .unwrap()
    }

    // ------------------------------------------------------------------
    // GPU path
    // ------------------------------------------------------------------

    /// Shape → kernel model kind for GPU updates.
    fn gpu_kernel(&self, t: TaskId) -> (GpuKernelKind, usize, usize, usize) {
        match self.dag.tasks[t].shape {
            TaskShape::Update {
                m,
                n,
                k,
                target_height,
                ldlt,
            } => (
                GpuKernelKind::Sparse {
                    target_height,
                    ldlt,
                },
                m,
                n,
                k,
            ),
            TaskShape::Panel { width, height } => {
                // Panels are never offloaded; shape kept for completeness.
                (GpuKernelKind::AstraNoTex, height, width, width)
            }
        }
    }

    fn gpu_completion_estimate(&self, t: TaskId, g: usize) -> f64 {
        let task = &self.dag.tasks[t];
        let gpu = &self.gpus[g];
        let mut transfer = 0.0;
        for &d in task.reads.iter().chain(std::iter::once(&task.writes)) {
            if !self.data[d].valid_on_gpu(g) {
                transfer += self.platform.link.time(self.dag.data[d].bytes);
            }
        }
        let (kind, m, n, k) = self.gpu_kernel(t);
        let exec = task.flops / (kernel_rate(&self.platform.gpus[g], kind, m, n, k) * 1e9)
            + self.platform.gpus[g].launch_overhead;
        gpu.expected_free.max(gpu.h2d_busy.max(self.now) + transfer) + exec
    }

    /// Stage a task onto GPU `g`: pin its data into device memory (evicting
    /// cold panels if the working set overflows), enqueue its missing
    /// transfers on the h2d link and schedule its readiness.
    fn offload(&mut self, t: TaskId, g: usize) {
        self.gpus[g].assigned += 1;
        let all: Vec<DataId> = {
            let task = &self.dag.tasks[t];
            task.reads
                .iter()
                .chain(std::iter::once(&task.writes))
                .copied()
                .collect()
        };
        for &d in &all {
            self.pin_device_data(g, d);
        }
        self.enforce_device_capacity(g);
        let mut ready_at = self.now;
        let needs: Vec<DataId> = all
            .into_iter()
            .filter(|&d| !self.data[d].valid_on_gpu(g))
            .collect();
        for d in needs {
            let bytes = self.dag.data[d].bytes;
            // If the only valid copy is on another GPU, fetch it home
            // first (StarPU could do d2d; we model the conservative path
            // for both, the d2d benefit being minor for this workload).
            if let Some(owner) = self.data[d].dirty_gpu() {
                if owner != g {
                    let from = self.gpus[owner].d2h_busy.max(self.now);
                    let done = from + self.platform.link.time(bytes);
                    self.gpus[owner].d2h_busy = done;
                    self.bytes_d2h += bytes;
                    self.data[d].valid |= HOST;
                    self.spans.push(SimSpan {
                        resource: SimResource::D2h(owner),
                        task: Some(t),
                        start: from,
                        end: done,
                        label: "d2h",
                    });
                    ready_at = ready_at.max(done);
                }
            }
            let start = self.gpus[g].h2d_busy.max(ready_at);
            let done = start + self.platform.link.time(bytes);
            self.gpus[g].h2d_busy = done;
            self.bytes_h2d += bytes;
            self.data[d].valid |= DataState::gpu_bit(g);
            self.spans.push(SimSpan {
                resource: SimResource::H2d(g),
                task: Some(t),
                start,
                end: done,
                label: "h2d",
            });
            ready_at = ready_at.max(done);
        }
        let (kind, m, n, k) = self.gpu_kernel(t);
        let exec = self.dag.tasks[t].flops
            / (kernel_rate(&self.platform.gpus[g], kind, m, n, k) * 1e9);
        self.gpus[g].expected_free = self.gpus[g].expected_free.max(ready_at) + exec;
        self.events.push(ready_at, Event::GpuTaskReady { gpu: g, task: t });
    }

    /// Pin a datum into GPU `g`'s memory, refreshing its LRU stamp. New
    /// entries count toward the resident footprint immediately (the
    /// allocation precedes the transfer).
    fn pin_device_data(&mut self, g: usize, d: DataId) {
        self.lru_clock += 1;
        let stamp = self.lru_clock;
        let bytes = self.dag.data[d].bytes;
        let gpu = &mut self.gpus[g];
        if let Some(r) = gpu.resident.iter_mut().find(|r| r.data == d) {
            r.stamp = stamp;
            r.pins += 1;
        } else {
            gpu.resident.push(ResidentData { data: d, stamp, pins: 1 });
            gpu.resident_bytes += bytes;
            gpu.peak_resident = gpu.peak_resident.max(gpu.resident_bytes);
        }
    }

    fn unpin_device_data(&mut self, g: usize, d: DataId) {
        if let Some(r) = self.gpus[g].resident.iter_mut().find(|r| r.data == d) {
            r.pins = r.pins.saturating_sub(1);
        }
    }

    /// Evict cold (LRU, unpinned) data until GPU `g`'s resident set fits
    /// its device memory. A datum whose only valid copy lives on the
    /// device is written back over PCIe before being dropped. When every
    /// resident datum is pinned by staged tasks the device overcommits —
    /// the in-flight working set cannot be shrunk without stalling.
    fn enforce_device_capacity(&mut self, g: usize) {
        let cap = self.platform.gpus[g].memory_bytes;
        while self.gpus[g].resident_bytes > cap {
            let Some(idx) = self.gpus[g]
                .resident
                .iter()
                .enumerate()
                .filter(|(_, r)| r.pins == 0)
                .min_by_key(|(_, r)| r.stamp)
                .map(|(i, _)| i)
            else {
                return; // everything pinned: overcommit
            };
            let victim = self.gpus[g].resident.swap_remove(idx);
            let bytes = self.dag.data[victim.data].bytes;
            self.gpus[g].resident_bytes -= bytes;
            self.device_evictions += 1;
            self.bytes_evicted += bytes;
            if self.data[victim.data].dirty_gpu() == Some(g) {
                // Only valid copy: write it back before dropping it.
                let from = self.gpus[g].d2h_busy.max(self.now);
                let done = from + self.platform.link.time(bytes);
                self.gpus[g].d2h_busy = done;
                self.bytes_d2h += bytes;
                self.data[victim.data].valid |= HOST;
                self.spans.push(SimSpan {
                    resource: SimResource::D2h(g),
                    task: None,
                    start: from,
                    end: done,
                    label: "d2h",
                });
            }
            self.data[victim.data].valid &= !DataState::gpu_bit(g);
        }
    }

    fn try_start_kernels(&mut self, g: usize) {
        let peak = self.platform.gpus[g].peak_gflops;
        self.gpus[g].advance(self.now, peak);
        let mut changed = false;
        while self.gpus[g].active.len() < self.gpus[g].streams {
            let Some(t) = self.gpus[g].ready.pop_front() else {
                break;
            };
            let (kind, m, n, k) = self.gpu_kernel(t);
            let alone = kernel_rate(&self.platform.gpus[g], kind, m, n, k);
            let overhead_flops = self.platform.gpus[g].launch_overhead * alone * 1e9;
            self.gpus[g].active.push(ActiveKernel {
                task: t,
                remaining: self.dag.tasks[t].flops + overhead_flops,
                alone_rate: alone,
                ceiling: kernel_ceiling(&self.platform.gpus[g], kind, m),
                started: self.now,
            });
            changed = true;
        }
        if changed {
            self.reschedule_gpu(g);
        }
    }

    fn reschedule_gpu(&mut self, g: usize) {
        let peak = self.platform.gpus[g].peak_gflops;
        self.gpus[g].version += 1;
        if let Some(dt) = self.gpus[g].next_completion(peak) {
            let v = self.gpus[g].version;
            self.events
                .push(self.now + dt.max(0.0), Event::GpuCheck { gpu: g, version: v });
        }
    }

    fn on_gpu_check(&mut self, g: usize, version: u64) {
        if self.gpus[g].version != version {
            return; // stale
        }
        let peak = self.platform.gpus[g].peak_gflops;
        self.gpus[g].advance(self.now, peak);
        let finished: Vec<(TaskId, f64)> = self.gpus[g]
            .active
            .iter()
            .filter(|k| k.remaining <= 1.0) // < 1 flop left = done
            .map(|k| (k.task, k.started))
            .collect();
        if finished.is_empty() {
            self.reschedule_gpu(g);
            return;
        }
        self.gpus[g].active.retain(|k| k.remaining > 1.0);
        for (t, started) in finished {
            self.spans.push(SimSpan {
                resource: SimResource::Gpu(g),
                task: Some(t),
                start: started,
                end: self.now,
                label: "gpu-kernel",
            });
            self.gpus[g].assigned -= 1;
            self.tasks_on_gpu += 1;
            // Write: the GPU now holds the only valid copy.
            let d = self.dag.tasks[t].writes;
            self.data[d].valid = DataState::gpu_bit(g);
            self.data[d].last_writer = LastWriter::Gpu(g);
            let used: Vec<DataId> = {
                let task = &self.dag.tasks[t];
                task.reads
                    .iter()
                    .chain(std::iter::once(&task.writes))
                    .copied()
                    .collect()
            };
            for d in used {
                self.unpin_device_data(g, d);
            }
            self.complete_task(t, None);
        }
        self.scavenge_for_gpu(g);
        self.try_start_kernels(g);
        self.reschedule_gpu(g);
    }

    /// PaRSEC-like devices pull eligible work from the CPU deques when
    /// their pipeline drains ("the first computational threads that submit
    /// a GPU task takes the management of the GPU until no GPU work
    /// remains", §V-C — the manager keeps feeding it while work exists).
    fn scavenge_for_gpu(&mut self, g: usize) {
        if !matches!(self.policy, SimPolicy::ParsecLike { .. }) {
            return;
        }
        let cap = 4 * self.gpus[g].streams + 4;
        loop {
            if self.gpus[g].assigned >= cap {
                return;
            }
            // Steal a gpu-eligible task from the cold end of the longest
            // deque.
            let CpuQueues::Deques(ref mut qs) = self.queues else {
                return;
            };
            let mut found: Option<(usize, usize, TaskId)> = None; // (worker, pos-from-back, task)
            for (w, q) in qs.iter().enumerate() {
                for (i, &t) in q.iter().rev().enumerate() {
                    if self.dag.tasks[t].gpu_eligible
                        && matches!(self.dag.tasks[t].shape, TaskShape::Update { m, n, .. } if m * n >= 64 * 64)
                    {
                        if found.is_none_or(|(fw, _, _)| q.len() > qs[fw].len()) {
                            found = Some((w, i, t));
                        }
                        break;
                    }
                }
            }
            let Some((w, pos_from_back, t)) = found else {
                return;
            };
            let idx = qs[w].len() - 1 - pos_from_back;
            qs[w].remove(idx);
            self.submitter[t] = w;
            self.offload(t, g);
        }
    }

    // ------------------------------------------------------------------
    // CPU path
    // ------------------------------------------------------------------

    fn earliest_cpu_free(&self) -> f64 {
        self.worker_free
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .max(self.now)
    }

    /// Execution time of a task on a CPU core, including the cache-reuse
    /// penalty when its inputs were last written elsewhere.
    fn cpu_exec_time(&self, t: TaskId, worker: usize) -> f64 {
        let task = &self.dag.tasks[t];
        let b = match task.shape {
            TaskShape::Panel { width, .. } => width,
            TaskShape::Update { n, k, .. } => n.min(k),
        };
        let rate = self.platform.cpu.rate(b.max(1));
        let mut time = task.flops / (rate * 1e9) * task.cpu_multiplier;
        // Cold-data penalty: inputs last touched by another worker or a
        // GPU must stream through the memory hierarchy again.
        for &d in task.reads.iter().chain(std::iter::once(&task.writes)) {
            let cold = match self.data[d].last_writer {
                LastWriter::None => false,
                LastWriter::Cpu(w) => w != worker,
                LastWriter::Gpu(_) => true,
            };
            if cold {
                time += self.dag.data[d].bytes / (self.platform.cpu.cold_read_gbps * 1e9);
            }
        }
        time
    }

    fn sched_overhead(&self, nworkers: usize) -> f64 {
        let c = &self.platform.sched;
        match self.policy {
            SimPolicy::NativeStatic => c.native_per_task,
            SimPolicy::StarPuLike => {
                c.dataflow_per_task + c.dataflow_contention * nworkers as f64
            }
            SimPolicy::ParsecLike { .. } => c.ptg_per_task,
        }
    }

    /// Try to give worker `w` a task; park it if nothing is available.
    fn try_dispatch_worker(&mut self, w: usize) {
        if !self.worker_idle[w] || self.now < self.worker_free[w] {
            return;
        }
        let Some(t) = self.pick_cpu_task(w) else {
            return; // stays idle; a later push wakes it
        };
        self.worker_idle[w] = false;
        // Fetch dirty inputs from GPUs (synchronous acquire).
        let mut start = self.now + self.sched_overhead(self.worker_free.len());
        let fetches: Vec<DataId> = {
            let task = &self.dag.tasks[t];
            task.reads
                .iter()
                .chain(std::iter::once(&task.writes))
                .copied()
                .filter(|&d| !self.data[d].valid_on_host())
                .collect()
        };
        for d in fetches {
            if let Some(g) = self.data[d].dirty_gpu() {
                let bytes = self.dag.data[d].bytes;
                let from = self.gpus[g].d2h_busy.max(self.now);
                let done = from + self.platform.link.time(bytes);
                self.gpus[g].d2h_busy = done;
                self.bytes_d2h += bytes;
                self.data[d].valid |= HOST;
                self.spans.push(SimSpan {
                    resource: SimResource::D2h(g),
                    task: Some(t),
                    start: from,
                    end: done,
                    label: "d2h",
                });
                start = start.max(done);
            }
        }
        let exec = self.cpu_exec_time(t, w);
        let finish = start + exec;
        self.cpu_busy[w] += finish - self.now;
        self.worker_free[w] = finish;
        self.spans.push(SimSpan {
            resource: SimResource::Cpu(w),
            task: Some(t),
            start,
            end: finish,
            label: "cpu-task",
        });
        self.events.push(finish, Event::CpuFinish { worker: w, task: t });
    }

    /// Policy-specific CPU work selection for worker `w`.
    fn pick_cpu_task(&mut self, w: usize) -> Option<TaskId> {
        match self.queues {
            CpuQueues::PerWorker(ref mut qs) => {
                if let Some(e) = qs[w].pop() {
                    return Some(e.task);
                }
                // Steal the lowest-priority entry of the most loaded queue.
                let victim = (0..qs.len())
                    .filter(|&v| v != w && !qs[v].is_empty())
                    .max_by_key(|&v| qs[v].len())?;
                let mut entries: Vec<PrioEntry> = std::mem::take(&mut qs[victim]).into_vec();
                let (idx, _) = entries
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.cmp(b.1))
                    .unwrap();
                let stolen = entries.swap_remove(idx);
                qs[victim] = entries.into_iter().collect();
                Some(stolen.task)
            }
            CpuQueues::Central(ref mut q) => q.pop().map(|e| e.task),
            CpuQueues::Deques(ref mut qs) => {
                if let Some(t) = qs[w].pop_front() {
                    return Some(t);
                }
                let victim = (0..qs.len())
                    .filter(|&v| v != w && !qs[v].is_empty())
                    .max_by_key(|&v| qs[v].len())?;
                qs[victim].pop_back()
            }
        }
    }

    fn on_cpu_finish(&mut self, w: usize, t: TaskId) {
        self.tasks_on_cpu += 1;
        let d = self.dag.tasks[t].writes;
        self.data[d].valid = HOST;
        self.data[d].last_writer = LastWriter::Cpu(w);
        self.worker_idle[w] = true;
        self.complete_task(t, Some(w));
        self.try_dispatch_worker(w);
    }

    /// Decrement successors; route the newly-ready ones.
    fn complete_task(&mut self, t: TaskId, releaser: Option<usize>) {
        self.remaining_tasks -= 1;
        let succs = self.dag.tasks[t].succs.clone();
        let releaser = releaser.or(Some(self.submitter[t]));
        for s in succs {
            self.pending[s] -= 1;
            if self.pending[s] == 0 {
                self.route_ready_task(s, releaser);
            }
        }
    }

    fn wake_worker(&mut self, w: usize) {
        if self.worker_idle[w] {
            self.events
                .push(self.now.max(self.worker_free[w]), Event::WorkerWake { worker: w });
        }
    }

    fn wake_all_workers(&mut self) {
        for w in 0..self.worker_free.len() {
            self.wake_worker(w);
        }
    }

    /// Time to flush every GPU-dirty panel back to host memory after the
    /// last task (results must land in main memory for the solve phase).
    fn final_flush_time(&mut self) -> f64 {
        let mut horizon = self.now;
        for d in 0..self.data.len() {
            if let Some(g) = self.data[d].dirty_gpu() {
                let bytes = self.dag.data[d].bytes;
                let from = self.gpus[g].d2h_busy.max(self.now);
                let done = from + self.platform.link.time(bytes);
                self.gpus[g].d2h_busy = done;
                self.bytes_d2h += bytes;
                self.data[d].valid |= HOST;
                self.spans.push(SimSpan {
                    resource: SimResource::D2h(g),
                    task: None,
                    start: from,
                    end: done,
                    label: "d2h",
                });
                horizon = horizon.max(done);
            }
        }
        horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{SimData, SimTask};

    /// A bag of `n` independent update tasks with the given flops.
    fn independent_updates(n: usize, flops: f64, m: usize) -> SimDag {
        SimDag {
            tasks: (0..n)
                .map(|i| SimTask {
                    shape: TaskShape::Update {
                        m,
                        n: 128,
                        k: 128,
                        target_height: m,
                        ldlt: false,
                    },
                    flops,
                    reads: vec![i % 4],
                    writes: 4 + i,
                    gpu_eligible: true,
                    succs: vec![],
                    npred: 0,
                    priority: 1.0,
                    static_owner: i,
                    cpu_multiplier: 1.0,
                })
                .collect(),
            data: (0..n + 4).map(|_| SimData { bytes: 1e6 }).collect(),
        }
    }

    /// A pure serial chain of panel tasks.
    fn chain(n: usize, flops: f64) -> SimDag {
        SimDag {
            tasks: (0..n)
                .map(|i| SimTask {
                    shape: TaskShape::Panel {
                        width: 64,
                        height: 128,
                    },
                    flops,
                    reads: vec![],
                    writes: 0,
                    gpu_eligible: false,
                    succs: if i + 1 < n { vec![i + 1] } else { vec![] },
                    npred: u32::from(i > 0),
                    priority: (n - i) as f64,
                    static_owner: 0,
                    cpu_multiplier: 1.0,
                })
                .collect(),
            data: vec![SimData { bytes: 1e5 }],
        }
    }

    fn policies() -> Vec<SimPolicy> {
        vec![
            SimPolicy::NativeStatic,
            SimPolicy::StarPuLike,
            SimPolicy::ParsecLike { streams: 1 },
            SimPolicy::ParsecLike { streams: 3 },
        ]
    }

    #[test]
    fn serial_chain_time_is_sum_of_tasks() {
        let dag = chain(50, 1e7);
        for policy in policies() {
            let p = Platform::mirage(4, 0);
            let r = simulate(&dag, &p, policy);
            // Lower bound: pure compute time on one core.
            let rate = p.cpu.rate(64) * 1e9;
            let compute = 50.0 * 1e7 / rate;
            assert!(r.makespan >= compute, "{policy:?}");
            // Upper bound: compute + generous per-task overhead.
            assert!(r.makespan <= compute * 1.2 + 50.0 * 1e-4, "{policy:?}");
            assert_eq!(r.tasks_on_cpu, 50);
            assert_eq!(r.tasks_on_gpu, 0);
        }
    }

    #[test]
    fn independent_tasks_scale_with_cores() {
        let dag = independent_updates(256, 5e7, 512);
        for policy in policies() {
            let r1 = simulate(&dag, &Platform::mirage(1, 0), policy);
            let r8 = simulate(&dag, &Platform::mirage(8, 0), policy);
            let speedup = r1.makespan / r8.makespan;
            assert!(
                speedup > 5.0,
                "{policy:?}: speedup {speedup} makespans {} / {}",
                r1.makespan,
                r8.makespan
            );
        }
    }

    #[test]
    fn gpus_accelerate_large_updates() {
        let dag = independent_updates(128, 4e8, 4096);
        for policy in [SimPolicy::StarPuLike, SimPolicy::ParsecLike { streams: 1 }] {
            let cpu_only = simulate(&dag, &Platform::mirage(12, 0), policy);
            let hybrid = simulate(&dag, &Platform::mirage(12, 3), policy);
            assert!(
                hybrid.makespan < 0.6 * cpu_only.makespan,
                "{policy:?}: {} vs {}",
                hybrid.makespan,
                cpu_only.makespan
            );
            assert!(hybrid.tasks_on_gpu > 0, "{policy:?} never offloaded");
            assert!(hybrid.bytes_h2d > 0.0);
        }
    }

    #[test]
    fn native_policy_never_uses_gpus() {
        let dag = independent_updates(64, 4e8, 4096);
        let r = simulate(&dag, &Platform::mirage(12, 3), SimPolicy::NativeStatic);
        assert_eq!(r.tasks_on_gpu, 0);
        assert_eq!(r.bytes_h2d, 0.0);
    }

    #[test]
    fn multiple_streams_help_small_kernels() {
        // Small kernels underutilize the device: 3 streams should beat 1
        // (the Figure 3 effect), while huge kernels see little change.
        // Data footprints are kept tiny so the workload is compute-bound
        // (a transfer-bound mix hides the stream effect behind the PCIe
        // link, which is exactly the separate transfer-bound test below).
        let mut small = independent_updates(512, 4e6, 128);
        for d in &mut small.data {
            d.bytes = 1e4;
        }
        let s1 = simulate(&small, &Platform::mirage(12, 1), SimPolicy::ParsecLike { streams: 1 });
        let s3 = simulate(&small, &Platform::mirage(12, 1), SimPolicy::ParsecLike { streams: 3 });
        // Guard: both runs must actually use the GPU for the comparison
        // to mean anything.
        assert!(s1.tasks_on_gpu > 0 && s3.tasks_on_gpu > 0);
        assert!(
            s3.makespan < s1.makespan * 0.95,
            "streams gave no speedup: {} vs {}",
            s3.makespan,
            s1.makespan
        );
    }

    #[test]
    fn tight_device_memory_forces_evictions_and_extra_traffic() {
        // 128 updates × 1 MB writes + 4 shared 1 MB reads. A 6 GB device
        // holds everything; a 4 MB device must evict cold panels and
        // re-fetch the shared sources, inflating PCIe traffic.
        let dag = independent_updates(128, 4e8, 4096);
        let policy = SimPolicy::ParsecLike { streams: 1 };
        let roomy = Platform::mirage(12, 1);
        let mut tight = roomy.clone();
        tight.gpus[0].memory_bytes = 4e6;
        let a = simulate(&dag, &roomy, policy);
        let b = simulate(&dag, &tight, policy);
        assert!(a.tasks_on_gpu > 0 && b.tasks_on_gpu > 0);
        assert_eq!(a.device_evictions, 0, "6 GB fits the whole working set");
        assert!(a.peak_device_bytes[0] > 0.0);
        assert!(a.peak_device_bytes[0] <= roomy.gpus[0].memory_bytes);
        assert!(b.device_evictions > 0, "4 MB cannot hold the working set");
        assert!(b.bytes_evicted > 0.0);
        assert!(
            b.peak_device_bytes[0] < a.peak_device_bytes[0],
            "capped footprint must stay below the unconstrained one: {} vs {}",
            b.peak_device_bytes[0],
            a.peak_device_bytes[0]
        );
        // Dirty victims are written back, not silently dropped.
        assert!(b.bytes_d2h >= a.bytes_d2h);
    }

    #[test]
    fn evicted_source_is_refetched_when_reused() {
        // A serial chain where the last task re-reads the first task's
        // source. With 3 MB of device memory that datum goes cold, gets
        // evicted mid-chain, and must cross PCIe a second time.
        let n = 10;
        let dag = SimDag {
            tasks: (0..n)
                .map(|i| SimTask {
                    shape: TaskShape::Update {
                        m: 4096,
                        n: 128,
                        k: 128,
                        target_height: 4096,
                        ldlt: false,
                    },
                    flops: 1e8,
                    reads: vec![if i + 1 == n { 0 } else { i }],
                    writes: n + i,
                    gpu_eligible: true,
                    succs: if i + 1 < n { vec![i + 1] } else { vec![] },
                    npred: u32::from(i > 0),
                    priority: 1.0,
                    static_owner: 0,
                    cpu_multiplier: 1.0,
                })
                .collect(),
            data: (0..2 * n).map(|_| SimData { bytes: 1e6 }).collect(),
        };
        let policy = SimPolicy::ParsecLike { streams: 1 };
        let roomy = Platform::mirage(4, 1);
        let mut tight = roomy.clone();
        tight.gpus[0].memory_bytes = 3e6;
        let a = simulate(&dag, &roomy, policy);
        let b = simulate(&dag, &tight, policy);
        assert_eq!(a.tasks_on_gpu, n, "chain must run on the device");
        assert_eq!(b.tasks_on_gpu, n, "chain must run on the device");
        assert_eq!(a.device_evictions, 0);
        assert!(b.device_evictions > 0);
        assert!(
            b.bytes_h2d > a.bytes_h2d,
            "the evicted source must be re-fetched: {} vs {}",
            b.bytes_h2d,
            a.bytes_h2d
        );
    }

    #[test]
    fn deterministic_replay() {
        let dag = independent_updates(200, 1e7, 256);
        for policy in policies() {
            let a = simulate(&dag, &Platform::mirage(6, 2), policy);
            let b = simulate(&dag, &Platform::mirage(6, 2), policy);
            assert_eq!(a.makespan, b.makespan, "{policy:?}");
            assert_eq!(a.tasks_on_gpu, b.tasks_on_gpu);
            assert_eq!(a.bytes_h2d, b.bytes_h2d);
        }
    }

    #[test]
    fn makespan_at_least_critical_path_and_at_most_serial() {
        let dag = chain(20, 1e8);
        let p = Platform::mirage(12, 0);
        for policy in policies() {
            let r = simulate(&dag, &p, policy);
            let rate = p.cpu.rate(64) * 1e9;
            let serial: f64 = 20.0 * 1e8 / rate;
            // A chain cannot go faster than its serial compute.
            assert!(r.makespan >= serial * 0.999, "{policy:?}");
        }
    }

    #[test]
    fn starpu_dedicates_a_worker_per_gpu() {
        // With 2 cores and 1 GPU, StarPU-like has a single compute core:
        // CPU-bound work should take ~2x the 2-core time.
        let dag = chain(40, 5e7);
        let two_cores = simulate(&dag, &Platform::mirage(2, 0), SimPolicy::StarPuLike);
        let with_gpu = simulate(&dag, &Platform::mirage(2, 1), SimPolicy::StarPuLike);
        // A chain is serial anyway, so use utilization instead: the
        // dedicated worker must not appear in cpu_busy.
        assert_eq!(two_cores.cpu_busy.len(), 2);
        assert_eq!(with_gpu.cpu_busy.len(), 1);
    }

    #[test]
    fn transfer_bound_workload_sees_little_gpu_benefit() {
        // Tiny flops on large data: PCIe dominates (the afshell10 story).
        let mut dag = independent_updates(64, 1e6, 96);
        for d in &mut dag.data {
            d.bytes = 64e6; // 64 MB per panel
        }
        let cpu = simulate(&dag, &Platform::mirage(12, 0), SimPolicy::ParsecLike { streams: 3 });
        let gpu = simulate(&dag, &Platform::mirage(12, 3), SimPolicy::ParsecLike { streams: 3 });
        assert!(
            gpu.makespan > 0.8 * cpu.makespan,
            "transfer-bound workload should not speed up: {} vs {}",
            gpu.makespan,
            cpu.makespan
        );
    }
}
