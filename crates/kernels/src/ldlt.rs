//! LDLᵀ factorization of a dense diagonal block without pivoting.
//!
//! PaStiX (and hence this reproduction) performs *static* pivoting: the
//! structure of the factors is fixed at analysis time, so the numerical
//! kernel never permutes. LDLᵀ is used for symmetric indefinite problems —
//! in the paper's test set, `pmlDF` (complex symmetric) and `Serena` — where
//! Cholesky would fail on negative (or complex) pivots.
//!
//! The factorization writes the unit lower factor `L` in the strict lower
//! triangle of `a` (the diagonal of `a` receives `D`), and duplicates `D`
//! into the caller-provided `d` vector, which the update and solve kernels
//! consume directly.

use crate::scalar::Scalar;
use crate::KernelError;

/// Blocking factor for the right-looking sweep.
const NB: usize = 48;

/// Factor `A = L·D·Lᵀ` in place (lower, column-major, no pivoting).
///
/// On return the strict lower triangle of `a` holds the unit-lower `L`, the
/// diagonal holds `D`, and `d` (length ≥ `n`) holds a copy of `D`.
///
/// `small_pivot_threshold` implements PaStiX-style static pivoting: a pivot
/// with modulus below `threshold` is replaced by `±threshold` (sign of the
/// real part, `+` for zero), and the number of such repairs is returned.
///
/// Blocked right-looking sweep: unblocked LDLᵀ on the diagonal tile, unit
/// TRSM + diagonal scaling on the panel below, then a `D·Lᵀ`-buffered GEMM
/// trailing update — the same temp-buffer structure the native scheduler
/// uses at panel level (§V-A).
pub fn ldlt<T: Scalar>(
    n: usize,
    a: &mut [T],
    lda: usize,
    d: &mut [T],
    small_pivot_threshold: f64,
) -> Result<usize, KernelError> {
    debug_assert!(n == 0 || (lda >= n && a.len() >= lda * (n - 1) + n));
    debug_assert!(d.len() >= n);
    let mut repaired = 0usize;
    let mut k = 0;
    while k < n {
        let kb = NB.min(n - k);
        repaired += ldlt_unblocked(
            kb,
            &mut a[k * lda + k..],
            lda,
            &mut d[k..k + kb],
            small_pivot_threshold,
            k,
        )?;
        let rest = n - k - kb;
        if rest > 0 {
            // Panel below the tile: P ← P · L_kk⁻ᵀ · D⁻¹.
            let mut tile = vec![T::zero(); kb * kb];
            for j in 0..kb {
                for i in (j + 1)..kb {
                    tile[j * kb + i] = a[(k + j) * lda + (k + i)];
                }
            }
            {
                let panel = &mut a[k * lda + k + kb..];
                crate::trsm::trsm(
                    crate::trsm::Side::Right,
                    crate::trsm::Uplo::Lower,
                    crate::gemm::Trans::Trans,
                    crate::trsm::Diag::Unit,
                    rest,
                    kb,
                    &tile,
                    kb,
                    panel,
                    lda,
                );
                ldlt_apply_diag(rest, kb, &d[k..k + kb], panel, lda);
            }
            // W = D·Pᵀ buffered once (kb × rest, column per panel row).
            let mut w = vec![T::zero(); kb * rest];
            ldlt_scale_transpose(rest, kb, &d[k..k + kb], &a[k * lda + k + kb..], lda, &mut w);
            // Trailing lower triangle: column j gets C[j.., j] -= P[j.., :]·W[:, j].
            let (head, tail) = a.split_at_mut((k + kb) * lda);
            for j in 0..rest {
                let pj = k * lda + (k + kb + j);
                let cj = j * lda + (k + kb + j);
                crate::gemm::gemm(
                    crate::gemm::Trans::NoTrans,
                    crate::gemm::Trans::NoTrans,
                    rest - j,
                    1,
                    kb,
                    -T::one(),
                    &head[pj..],
                    lda,
                    &w[j * kb..j * kb + kb],
                    kb,
                    T::one(),
                    &mut tail[cj..],
                    lda,
                );
            }
        }
        k += kb;
    }
    Ok(repaired)
}

/// Unblocked left-looking LDLᵀ of the leading `n×n`; `col0` only labels
/// errors.
fn ldlt_unblocked<T: Scalar>(
    n: usize,
    a: &mut [T],
    lda: usize,
    d: &mut [T],
    small_pivot_threshold: f64,
    col0: usize,
) -> Result<usize, KernelError> {
    let mut repaired = 0usize;
    // Column-by-column left-looking sweep. `w` caches L[j, k] · d_k for the
    // current column to avoid re-reading d with a multiply in the inner
    // loop.
    let mut w: Vec<T> = vec![T::zero(); n];
    for j in 0..n {
        // w[k] = l_jk * d_k for k < j.
        for k in 0..j {
            w[k] = a[k * lda + j] * d[k];
        }
        // d_j = a_jj - Σ l_jk² d_k
        let mut dj = a[j * lda + j];
        for k in 0..j {
            dj -= a[k * lda + j] * w[k];
        }
        if !dj.modulus().is_finite() {
            return Err(KernelError::NonFinitePivot { column: col0 + j });
        }
        if dj.modulus() < small_pivot_threshold {
            repaired += 1;
            let sign = if dj.re() < 0.0 { -1.0 } else { 1.0 };
            dj = T::from_f64(sign * small_pivot_threshold);
        }
        if dj.modulus() == 0.0 {
            return Err(KernelError::ZeroPivot { column: col0 + j });
        }
        d[j] = dj;
        a[j * lda + j] = dj;
        let inv = dj.inv();
        // l_ij = (a_ij - Σ_k l_ik (l_jk d_k)) / d_j
        for i in (j + 1)..n {
            let mut v = a[j * lda + i];
            for k in 0..j {
                v -= a[k * lda + i] * w[k];
            }
            a[j * lda + i] = v * inv;
        }
    }
    Ok(repaired)
}

/// Scale the columns of a block `B` (`m×n`, column-major) by the inverse
/// diagonal: `B ← B · D⁻¹`. Applied to the off-diagonal blocks of an LDLᵀ
/// panel after the unit TRSM, completing `A_i ← A_i L⁻ᵀ D⁻¹`.
pub fn ldlt_apply_diag<T: Scalar>(m: usize, n: usize, d: &[T], b: &mut [T], ldb: usize) {
    debug_assert!(d.len() >= n);
    for (j, &dj) in d.iter().enumerate().take(n) {
        let inv = dj.inv();
        for v in &mut b[j * ldb..j * ldb + m] {
            *v *= inv;
        }
    }
}

/// Form `W = D·Bᵀ` for a block `B` (`m×n`) into `w` (`n×m`, column-major):
/// `w[i, j] = d_i · b[j, i]`. This is the PaStiX temporary-buffer trick
/// (§V-A): the native scheduler materializes `D·Lᵀ` once per panel so every
/// update becomes a plain GEMM, whereas the generic runtimes recompute the
/// scaling inside each update task.
pub fn ldlt_scale_transpose<T: Scalar>(m: usize, n: usize, d: &[T], b: &[T], ldb: usize, w: &mut [T]) {
    // Same packed layout as the generalized panel packer — one code path
    // for the D·Lᵀ buffer and the Cholesky/LU B-panels.
    crate::update::pack_b(m, n, Some(d), b, ldb, w);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::C64;
    use crate::smallblas::reconstruct_ldlt;

    fn sym_indefinite(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed | 1;
        let mut a = vec![0.0f64; n * n];
        for j in 0..n {
            for i in 0..=j {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let v = (s % 2000) as f64 / 1000.0 - 1.0;
                a[j * n + i] = v;
                a[i * n + j] = v;
            }
            // Strong diagonal with alternating sign: indefinite but far
            // from singular, so no pivoting is genuinely needed.
            a[j * n + j] = if j % 2 == 0 { 4.0 } else { -4.0 };
        }
        a
    }

    #[test]
    fn factor_reconstructs_real_indefinite() {
        for n in [1, 2, 5, 9, 17] {
            let a0 = sym_indefinite(n, 3 + n as u64);
            let mut a = a0.clone();
            let mut d = vec![0.0; n];
            let repaired = ldlt(n, &mut a, n, &mut d, 0.0).unwrap();
            assert_eq!(repaired, 0);
            let r = reconstruct_ldlt(n, &a, n, &d);
            for j in 0..n {
                for i in j..n {
                    assert!(
                        (r[j * n + i] - a0[j * n + i]).abs() < 1e-9,
                        "n={n} ({i},{j}): {} vs {}",
                        r[j * n + i],
                        a0[j * n + i]
                    );
                }
            }
        }
    }

    #[test]
    fn factor_reconstructs_complex_symmetric() {
        // Complex *symmetric* (not Hermitian), like the paper's pmlDF.
        let n = 6;
        let mut a0 = vec![C64::new(0.0, 0.0); n * n];
        let mut s = 77u64;
        for j in 0..n {
            for i in 0..=j {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let v = C64::new((s % 100) as f64 / 50.0 - 1.0, ((s >> 8) % 100) as f64 / 50.0 - 1.0);
                a0[j * n + i] = v;
                a0[i * n + j] = v; // plain symmetry, no conjugate
            }
            a0[j * n + j] = C64::new(3.0, 1.0 + j as f64 * 0.1);
        }
        let mut a = a0.clone();
        let mut d = vec![C64::new(0.0, 0.0); n];
        ldlt(n, &mut a, n, &mut d, 0.0).unwrap();
        let r = reconstruct_ldlt(n, &a, n, &d);
        for j in 0..n {
            for i in j..n {
                assert!((r[j * n + i] - a0[j * n + i]).modulus() < 1e-9);
            }
        }
    }

    #[test]
    fn static_pivoting_repairs_small_pivots() {
        // Leading pivot is tiny: static pivoting must bump it.
        let mut a = vec![1e-30, 1.0, 1.0, 2.0];
        let mut d = vec![0.0; 2];
        let repaired = ldlt(2, &mut a, 2, &mut d, 1e-8).unwrap();
        assert_eq!(repaired, 1);
        assert_eq!(d[0], 1e-8);
        assert!(d.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn zero_pivot_detected_without_threshold() {
        let mut a = vec![0.0, 1.0, 1.0, 2.0];
        let mut d = vec![0.0; 2];
        let err = ldlt(2, &mut a, 2, &mut d, 0.0).unwrap_err();
        assert_eq!(err, KernelError::ZeroPivot { column: 0 });
    }

    #[test]
    fn scale_transpose_matches_definition() {
        let m = 3;
        let n = 2;
        // B = [[1,4],[2,5],[3,6]] col-major, d = [10, 100]
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let d = vec![10.0, 100.0];
        let mut w = vec![0.0; n * m];
        ldlt_scale_transpose(m, n, &d, &b, m, &mut w);
        // w[i,j] = d_i * b[j,i]; w is n×m col-major.
        assert_eq!(w, vec![10.0, 400.0, 20.0, 500.0, 30.0, 600.0]);
    }

    #[test]
    fn apply_diag_divides_columns() {
        let mut b = vec![2.0, 4.0, 9.0, 12.0];
        ldlt_apply_diag(2, 2, &[2.0, 3.0], &mut b, 2);
        assert_eq!(b, vec![1.0, 2.0, 3.0, 4.0]);
    }
}

#[cfg(test)]
mod blocked_tests {
    use super::*;
    use crate::smallblas::reconstruct_ldlt;

    #[test]
    fn blocked_path_reconstructs_large_indefinite() {
        // n > NB exercises the tile/TRSM/GEMM sweep.
        for n in [NB + 3, NB + 29, 2 * NB + 7] {
            let mut s = n as u64 | 1;
            let mut a = vec![0.0f64; n * n];
            for j in 0..n {
                for i in 0..=j {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    let v = (s % 2000) as f64 / 2000.0 - 0.5;
                    a[j * n + i] = v;
                    a[i * n + j] = v;
                }
                a[j * n + j] = if j % 4 == 0 { -(n as f64) - 3.0 } else { n as f64 + 3.0 };
            }
            let a0 = a.clone();
            let mut d = vec![0.0f64; n];
            let repaired = ldlt(n, &mut a, n, &mut d, 0.0).unwrap();
            assert_eq!(repaired, 0, "n={n}");
            let r = reconstruct_ldlt(n, &a, n, &d);
            let mut max = 0.0f64;
            for j in 0..n {
                for i in j..n {
                    max = max.max((r[j * n + i] - a0[j * n + i]).abs());
                }
            }
            assert!(max < 1e-7, "n={n}: max error {max}");
        }
    }
}
