//! Cholesky factorization of a dense diagonal block (column-major, lower).
//!
//! This is step 1 of the paper's 1D panel task (Figure 1): `A_kk = L·Lᵀ`.
//! A blocked right-looking variant delegates the trailing update to
//! [`gemm`](crate::gemm::gemm()) so most of the work runs at GEMM speed; the
//! unblocked base case handles the final tile.
//!
//! SAFETY audit: this kernel (like the whole `dagfact-kernels` crate)
//! contains **no** `unsafe` code — the one aliasing temptation (the
//! diagonal tile feeding the panel TRSM below it) is resolved by copying
//! the ≤ NB² tile instead. `make lint-strict` (`lint-safety`) keeps it
//! that way: any future `unsafe` here must carry a SAFETY contract.

use crate::gemm::{gemm, Trans};
use crate::scalar::Scalar;
use crate::trsm::{trsm, Diag, Side, Uplo};
use crate::KernelError;

/// Blocking factor for the right-looking panel sweep.
const NB: usize = 48;

/// Factor the lower triangle of the `n×n` column-major block `a` in place:
/// on success `a`'s lower triangle holds `L` with `A = L·Lᵀ` (`L·L^T` also
/// for complex symmetric input — the solver uses LDLᵀ or LU for complex
/// matrices, but the kernel stays generic). The strict upper triangle is
/// not referenced.
///
/// Fails with [`KernelError::NotPositiveDefinite`] when a pivot's real part
/// is not strictly positive.
pub fn potrf<T: Scalar>(n: usize, a: &mut [T], lda: usize) -> Result<(), KernelError> {
    debug_assert!(n == 0 || (lda >= n && a.len() >= lda * (n - 1) + n));
    let mut k = 0;
    while k < n {
        let kb = NB.min(n - k);
        // Factor the diagonal tile A[k..k+kb, k..k+kb].
        potrf_unblocked(kb, &mut a[k * lda + k..], lda, k)?;
        let rest = n - k - kb;
        if rest > 0 {
            // Panel below the tile: P = A[k+kb.., k..k+kb] ← P · L⁻ᵀ.
            // The tile (read) and the panel (write) share columns of `a`,
            // so copy the small (≤ NB²) tile rather than resorting to
            // unsafe aliasing.
            let mut tile = vec![T::zero(); kb * kb];
            for j in 0..kb {
                for i in j..kb {
                    tile[j * kb + i] = a[(k + j) * lda + (k + i)];
                }
            }
            {
                let panel = &mut a[k * lda + k + kb..];
                trsm(
                    Side::Right,
                    Uplo::Lower,
                    Trans::Trans,
                    Diag::NonUnit,
                    rest,
                    kb,
                    &tile,
                    kb,
                    panel,
                    lda,
                );
            }
            // Trailing update of the lower triangle: for each trailing
            // column j, A[k+kb+j.., k+kb+j] -= P[j.., :] · P[j, :]ᵀ. The
            // panel P lives in columns k..k+kb (head) and the trailing
            // columns start at k+kb (tail), so one split gives disjoint
            // borrows and the work runs through the optimized GEMM.
            let (head, tail) = a.split_at_mut((k + kb) * lda);
            for j in 0..rest {
                let pj = k * lda + (k + kb + j);
                let cj = j * lda + (k + kb + j);
                gemm(
                    Trans::NoTrans,
                    Trans::Trans,
                    rest - j,
                    1,
                    kb,
                    -T::one(),
                    &head[pj..],
                    lda,
                    &head[pj..],
                    lda,
                    T::one(),
                    &mut tail[cj..],
                    lda,
                );
            }
        }
        k += kb;
    }
    Ok(())
}

/// Unblocked lower Cholesky on the leading `n×n` of `a` (offset `col0` only
/// used for error reporting).
fn potrf_unblocked<T: Scalar>(
    n: usize,
    a: &mut [T],
    lda: usize,
    col0: usize,
) -> Result<(), KernelError> {
    for j in 0..n {
        // d = a_jj - Σ_{k<j} l_jk²
        let mut d = a[j * lda + j];
        for k in 0..j {
            let l = a[k * lda + j];
            d -= l * l;
        }
        if !d.modulus().is_finite() {
            return Err(KernelError::NonFinitePivot { column: col0 + j });
        }
        // Positivity check on the real part; complex symmetric blocks may
        // legitimately have complex "pivots", so only reject when the
        // modulus vanishes or a real pivot is non-positive.
        if T::IS_COMPLEX {
            if d.modulus() == 0.0 {
                return Err(KernelError::ZeroPivot { column: col0 + j });
            }
        } else if d.re() <= 0.0 {
            return Err(KernelError::NotPositiveDefinite {
                column: col0 + j,
                pivot: d.re(),
            });
        }
        let ljj = d.sqrt();
        a[j * lda + j] = ljj;
        let inv = ljj.inv();
        for i in (j + 1)..n {
            let mut v = a[j * lda + i];
            for k in 0..j {
                v -= a[k * lda + i] * a[k * lda + j];
            }
            a[j * lda + i] = v * inv;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smallblas::reconstruct_llt;

    fn spd_matrix(n: usize, seed: u64) -> Vec<f64> {
        // A = B·Bᵀ + n·I is SPD.
        let mut s = seed | 1;
        let mut b = vec![0.0f64; n * n];
        for v in &mut b {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *v = (s % 1000) as f64 / 500.0 - 1.0;
        }
        let mut a = vec![0.0f64; n * n];
        for j in 0..n {
            for i in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += b[k * n + i] * b[k * n + j];
                }
                a[j * n + i] = acc + if i == j { n as f64 } else { 0.0 };
            }
        }
        a
    }

    #[test]
    fn factor_reconstructs_small() {
        for n in [1, 2, 3, 5, 8, 13] {
            let a = spd_matrix(n, 11 + n as u64);
            let mut l = a.clone();
            potrf(n, &mut l, n).unwrap();
            let r = reconstruct_llt(n, &l, n);
            for j in 0..n {
                for i in j..n {
                    assert!(
                        (r[j * n + i] - a[j * n + i]).abs() < 1e-9 * (n as f64),
                        "n={n} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn factor_reconstructs_blocked_path() {
        // n > NB exercises the blocked sweep.
        let n = NB + 17;
        let a = spd_matrix(n, 99);
        let mut l = a.clone();
        potrf(n, &mut l, n).unwrap();
        let r = reconstruct_llt(n, &l, n);
        let mut max_rel = 0.0f64;
        for j in 0..n {
            for i in j..n {
                let rel = (r[j * n + i] - a[j * n + i]).abs() / (1.0 + a[j * n + j].abs());
                max_rel = max_rel.max(rel);
            }
        }
        assert!(max_rel < 1e-8, "max relative error {max_rel}");
    }

    #[test]
    fn rejects_indefinite() {
        let mut a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        let err = potrf(2, &mut a, 2).unwrap_err();
        match err {
            KernelError::NotPositiveDefinite { column, .. } => assert_eq!(column, 1),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn respects_leading_dimension() {
        let n = 4;
        let lda = 9;
        let dense = spd_matrix(n, 5);
        let mut padded = vec![f64::NAN; lda * n];
        for j in 0..n {
            for i in 0..n {
                padded[j * lda + i] = dense[j * n + i];
            }
        }
        potrf(n, &mut padded, lda).unwrap();
        // Padding rows must be untouched.
        for j in 0..n {
            for i in n..lda.min(lda) {
                if j * lda + i < padded.len() {
                    assert!(padded[j * lda + i].is_nan());
                }
            }
        }
        let mut tight = vec![0.0; n * n];
        for j in 0..n {
            for i in 0..n {
                tight[j * n + i] = padded[j * lda + i];
            }
        }
        let r = reconstruct_llt(n, &tight, n);
        for j in 0..n {
            for i in j..n {
                assert!((r[j * n + i] - dense[j * n + i]).abs() < 1e-9);
            }
        }
    }
}
