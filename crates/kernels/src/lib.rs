//! # dagfact-kernels
//!
//! Dense linear-algebra kernels used by the `dagfact` supernodal sparse
//! direct solver. This crate is the Rust stand-in for the vendor BLAS/LAPACK
//! (Intel MKL in the paper) plus the paper's custom *sparse* update kernels:
//!
//! * a [`Scalar`] abstraction covering IEEE `f64` ("D" problems) and
//!   double-precision complex [`C64`] ("Z" problems), with the conventional
//!   flop accounting used by the paper's GFlop/s figures,
//! * column-major [`gemm()`](gemm::gemm), [`trsm()`](trsm::trsm) and the three diagonal-block
//!   factorizations [`potrf()`](potrf::potrf) (Cholesky), [`ldlt()`](ldlt::ldlt) (LDLᵀ without pivoting)
//!   and [`getrf()`](getrf::getrf) (LU with static pivoting),
//! * the two *sparse GEMM* update variants described in §V-B of the paper:
//!   [`update::update_via_buffer`] (compute into a contiguous scratch buffer
//!   then scatter — the CPU/PaStiX strategy) and
//!   [`update::update_scatter_direct`] (write straight into the gappy
//!   destination panel — the strategy of the GPU kernel derived from ASTRA).
//!
//! All matrices are **column-major** with an explicit leading dimension,
//! matching LAPACK conventions, so the kernels operate directly on the
//! solver's compressed panel storage.

pub mod gemm;
pub mod getrf;
pub mod ldlt;
pub mod potrf;
pub mod scalar;
pub mod simd;
pub mod smallblas;
pub mod trsm;
pub mod update;

pub use gemm::{gemm, gemm_portable, Trans};
pub use getrf::{getrf, StaticPivotStats};
pub use ldlt::{ldlt, ldlt_apply_diag};
pub use potrf::potrf;
pub use scalar::{Scalar, C64};
pub use simd::{force_isa, isa, Blocking, Isa};
pub use trsm::{trsm, Diag, Side, Uplo};
pub use update::{pack_b, update_scatter_packed, update_via_buffer_packed};

/// Error raised by the diagonal-block factorization kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// Cholesky hit a non-positive pivot: the (index, value) of the pivot.
    NotPositiveDefinite { column: usize, pivot: f64 },
    /// LDLᵀ or LU hit an exactly-zero pivot that static pivoting could not
    /// repair (only possible when the static-pivot threshold is zero).
    ZeroPivot { column: usize },
    /// A pivot came out NaN or infinite — upstream data corruption (bad
    /// input, a faulty update, injected NaN) that would otherwise spread
    /// silently through the trailing matrix.
    NonFinitePivot { column: usize },
}

impl core::fmt::Display for KernelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            KernelError::NotPositiveDefinite { column, pivot } => write!(
                f,
                "matrix is not positive definite: pivot {pivot:e} at column {column}"
            ),
            KernelError::ZeroPivot { column } => {
                write!(f, "exactly zero pivot at column {column}")
            }
            KernelError::NonFinitePivot { column } => {
                write!(f, "non-finite pivot at column {column} (corrupted data)")
            }
        }
    }
}

impl std::error::Error for KernelError {}
