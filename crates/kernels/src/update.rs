//! Sparse panel-update kernels (the paper's §V-B "sparse GEMM").
//!
//! An update task applies the outer product of two block-sets of a source
//! panel to a *facing* destination panel:
//!
//! ```text
//!   C[R', R_b] -= A₁ · diag(d?) · A₂ᵀ
//! ```
//!
//! where `A₁` holds the source-panel rows `R'` at-and-below the facing block
//! `b`, `A₂` holds the rows `R_b` of block `b`, and the destination rows
//! `R'` sit at *non-contiguous* offsets of the destination panel (the
//! "gaps" of the paper's Figure 3 experiment). Two strategies exist:
//!
//! * [`update_via_buffer`] — compute the product into a contiguous scratch
//!   buffer with a plain GEMM, then scatter-add into the gappy panel. This
//!   is what PaStiX does on CPUs: it trades a per-worker constant-size
//!   buffer for running at vendor-BLAS speed.
//! * [`update_scatter_direct`] — fold the scatter into the GEMM epilogue and
//!   write straight into the destination. This mirrors the paper's modified
//!   ASTRA GPU kernel, which cannot afford the extra buffer in device
//!   memory; it avoids the scratch memory at the cost of non-coalesced
//!   writes.
//!
//! The optional `d` diagonal implements the LDLᵀ variant (`C -= L·D·Lᵀ`),
//! which the paper reports costs ≈5% on the GPU kernel and is the reason
//! the generic runtimes lose to native PaStiX on `pmlDF`/`Serena` (§V-A).

use crate::gemm::{gemm, Trans};
use crate::scalar::Scalar;
use crate::simd;

/// Scatter-add parameters shared by both update variants.
///
/// `row_map[i]` gives the destination storage row (within a destination
/// column) of source row `i`; `col_offset` is the first destination column
/// written (destination columns are contiguous because a block is a
/// contiguous row range of the source panel).
#[derive(Debug, Clone, Copy)]
pub struct Scatter<'a> {
    /// Destination storage row of each source row.
    pub row_map: &'a [usize],
    /// First destination column index.
    pub col_offset: usize,
}

/// Buffer-then-scatter update: `C[scatter] += α·A₁·diag(d?)·A₂ᵀ` computed
/// via a contiguous `m×n` scratch GEMM (`work` is resized as needed).
#[allow(clippy::too_many_arguments)]
pub fn update_via_buffer<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a1: &[T],
    lda1: usize,
    a2: &[T],
    lda2: usize,
    d: Option<&[T]>,
    work: &mut Vec<T>,
    c: &mut [T],
    ldc: usize,
    scatter: Scatter<'_>,
) {
    if m == 0 || n == 0 {
        return;
    }
    // HOT: shape guards, once per call. `row_map` feeds the scatter and
    // a short `d` would leave stale pooled-workspace contents in the tail
    // of the D·Lᵀ staging block (the staging loop below walks `d`, not
    // `0..k`) — both must fail loudly before any write.
    assert_eq!(scatter.row_map.len(), m, "update_via_buffer: row_map/m mismatch");
    let d = d.map(|d| {
        assert!(d.len() >= k, "update_via_buffer: d.len()={} < k={k}", d.len());
        // BOUNDS: guarded by the assert on the previous line.
        &d[..k]
    });
    // Both scratch regions — the m×n GEMM result and, for LDLᵀ, the k×n
    // D·Lᵀ staging block — are carved from the single caller-pooled
    // buffer, so a per-worker workspace amortizes to zero allocations
    // per update task once it reaches the panel high-water mark.
    let scratch = m * n + if d.is_some() { k * n } else { 0 };
    if work.len() < scratch {
        // ALLOC: grow-only pooled workspace — reallocates (and
        // zero-fills) only until the high-water panel size is reached,
        // then is free for the whole run. Stale contents are harmless:
        // the GEMM runs with beta = 0 (scale_c overwrites W1) and the
        // D·Lᵀ staging loop writes every element of W2 (its `d` slice is
        // exactly `k` long — asserted above).
        work.resize(scratch, T::zero());
    }
    // BOUNDS: work.len() >= scratch = m*n (+ k*n) by the resize above.
    let (w1, w2) = work[..scratch].split_at_mut(m * n);
    match d {
        None => {
            gemm(
                Trans::NoTrans,
                Trans::Trans,
                m,
                n,
                k,
                T::one(),
                a1,
                lda1,
                a2,
                lda2,
                T::zero(),
                w1,
                m,
            );
        }
        Some(d) => {
            // W2 = diag(d)·A₂ᵀ is small (k×n); materialize it so the big
            // GEMM stays a plain product. This is the panel-level D·Lᵀ
            // buffer of the native PaStiX scheduler — staged in the tail
            // of `work` rather than a fresh vec per call.
            // BOUNDS: w2 has length k*n; d has length exactly k (sliced
            // after the shape assert above), so every element of W2 is
            // written; j < n by the caller's shape contract.
            for j in 0..n {
                for (l, &dl) in d.iter().enumerate() {
                    w2[j * k + l] = dl * a2[l * lda2 + j];
                }
            }
            gemm(
                Trans::NoTrans,
                Trans::NoTrans,
                m,
                n,
                k,
                T::one(),
                a1,
                lda1,
                w2,
                k,
                T::zero(),
                w1,
                m,
            );
        }
    }
    // Scatter-add the contiguous result into the gappy destination panel.
    for j in 0..n {
        // BOUNDS: w1 is exactly m*n; j < n so j*m+m <= m*n, and row_map
        // values address the destination panel rows by construction of
        // the symbolic structure (verified in core::verify).
        let wj = &w1[j * m..j * m + m];
        let cj = &mut c[(scatter.col_offset + j) * ldc..];
        for (i, &w) in wj.iter().enumerate() {
            cj[scatter.row_map[i]] += alpha * w;
        }
    }
}

/// Direct-scatter update: same result as [`update_via_buffer`] but written
/// straight into the destination panel without scratch memory (the paper's
/// GPU-kernel strategy).
#[allow(clippy::too_many_arguments)]
pub fn update_scatter_direct<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a1: &[T],
    lda1: usize,
    a2: &[T],
    lda2: usize,
    d: Option<&[T]>,
    c: &mut [T],
    ldc: usize,
    scatter: Scatter<'_>,
) {
    if m == 0 || n == 0 {
        return;
    }
    // HOT: shape guards, once per call — same audit as update_via_buffer:
    // a short `d` would otherwise index-panic mid-scatter after partially
    // mutating C, and the SIMD tier below reads A₁/A₂/d via raw pointers.
    assert_eq!(scatter.row_map.len(), m, "update_scatter_direct: row_map/m mismatch");
    if let Some(d) = d {
        assert!(d.len() >= k, "update_scatter_direct: d.len()={} < k={k}", d.len());
    }
    assert!(
        k == 0 || (lda1 >= m && a1.len() >= lda1 * (k - 1) + m),
        "update_scatter_direct: A1 too small for m={m} k={k} lda1={lda1}"
    );
    assert!(
        k == 0 || (lda2 >= n && a2.len() >= lda2 * (k - 1) + n),
        "update_scatter_direct: A2 too small for n={n} k={k} lda2={lda2}"
    );
    // The SIMD tier writes C through raw pointers, so the destination
    // contract must be proven here, not merely slice-panicked on by the
    // portable loops: every row_map value stays inside its column and
    // the last written element (col_offset+n-1, max row_map) is inside
    // `c`. row_map is non-empty: m >= 1 past the early return.
    let max_row = scatter.row_map.iter().copied().max().unwrap_or(0);
    assert!(
        max_row < ldc,
        "update_scatter_direct: row_map max {max_row} >= ldc={ldc}"
    );
    let last = scatter
        .col_offset
        .checked_add(n - 1)
        .and_then(|j| j.checked_mul(ldc))
        .and_then(|o| o.checked_add(max_row));
    assert!(
        last.is_some_and(|last| last < c.len()),
        "update_scatter_direct: C too small for n={n} ldc={ldc} col_offset={} max row_map {max_row}",
        scatter.col_offset
    );
    // Fused GEMM-scatter (the paper's GPU-kernel strategy at CPU SIMD
    // speed): the k-reduction runs in the 8×4 register tile and only the
    // finished tile is scattered through row_map.
    if simd::try_update_scatter(
        true,
        m,
        n,
        k,
        alpha,
        a1,
        lda1,
        a2,
        lda2,
        d,
        c,
        ldc,
        scatter.row_map,
        scatter.col_offset,
    ) {
        return;
    }
    // BOUNDS: l < k, j < n against the lda1/lda2 shape contracts;
    // row_map values address destination panel rows by construction of
    // the symbolic structure (verified in core::verify).
    for j in 0..n {
        let cj = &mut c[(scatter.col_offset + j) * ldc..];
        for l in 0..k {
            let mut s = alpha * a2[l * lda2 + j];
            if let Some(d) = d {
                s *= d[l];
            }
            if s == T::zero() {
                continue;
            }
            let a1l = &a1[l * lda1..l * lda1 + m];
            // BOUNDS: i < m = row_map.len(); row_map values address the
            // destination rows by the symbolic-structure construction.
            for (i, &av) in a1l.iter().enumerate() {
                cj[scatter.row_map[i]] += s * av;
            }
        }
    }
}

/// Pack `op(B) = diag(d?)·A₂ᵀ` for a source panel block into a contiguous
/// column-major `k×n` panel (`ldb == k`): `w[j·k + l] = d?[l]·a2[l·lda2 + j]`.
///
/// Packing once per *supernode* and slicing per-update column subranges out
/// of the result turns every trailing update into a plain `NoTrans×NoTrans`
/// GEMM over a cache-resident panel — the packed layout is byte-identical
/// to what [`crate::ldlt::ldlt_scale_transpose`] produced for the LDLᵀ
/// case, generalized here to the `d = None` (Cholesky/LU) factorizations.
pub fn pack_b<T: Scalar>(n: usize, k: usize, d: Option<&[T]>, a2: &[T], lda2: usize, w: &mut [T]) {
    if n == 0 || k == 0 {
        return;
    }
    assert!(w.len() >= k * n, "pack_b: panel buffer too small for k={k} n={n}");
    assert!(
        lda2 >= n && a2.len() >= lda2 * (k - 1) + n,
        "pack_b: A2 too small for n={n} k={k} lda2={lda2}"
    );
    if let Some(d) = d {
        assert!(d.len() >= k, "pack_b: d.len()={} < k={k}", d.len());
        // BOUNDS: j < n, l < k against the asserts above.
        for j in 0..n {
            let wj = &mut w[j * k..j * k + k];
            for (l, wl) in wj.iter_mut().enumerate() {
                *wl = d[l] * a2[l * lda2 + j];
            }
        }
    } else {
        // BOUNDS: j < n, l < k against the asserts above.
        for j in 0..n {
            let wj = &mut w[j * k..j * k + k];
            for (l, wl) in wj.iter_mut().enumerate() {
                *wl = a2[l * lda2 + j];
            }
        }
    }
}

/// Buffer-then-scatter update consuming a panel packed by [`pack_b`]
/// (`pack` is the `k×n` column subrange facing this update; any `diag(d)`
/// was folded in at pack time). Identical result to [`update_via_buffer`]
/// with the same operands, at packed-panel GEMM speed.
#[allow(clippy::too_many_arguments)]
pub fn update_via_buffer_packed<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a1: &[T],
    lda1: usize,
    pack: &[T],
    work: &mut Vec<T>,
    c: &mut [T],
    ldc: usize,
    scatter: Scatter<'_>,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert_eq!(scatter.row_map.len(), m, "update_via_buffer_packed: row_map/m mismatch");
    let scratch = m * n;
    if work.len() < scratch {
        // ALLOC: grow-only pooled workspace, same amortization as
        // update_via_buffer; stale contents are overwritten by beta = 0.
        work.resize(scratch, T::zero());
    }
    // BOUNDS: work.len() >= m*n by the resize above.
    let w1 = &mut work[..scratch];
    gemm(
        Trans::NoTrans,
        Trans::NoTrans,
        m,
        n,
        k,
        T::one(),
        a1,
        lda1,
        pack,
        k.max(1),
        T::zero(),
        w1,
        m,
    );
    // Scatter-add the contiguous result into the gappy destination panel.
    for j in 0..n {
        // BOUNDS: w1 is exactly m*n; j < n so j*m+m <= m*n, and row_map
        // values address the destination panel rows by construction of
        // the symbolic structure (verified in core::verify).
        let wj = &w1[j * m..j * m + m];
        let cj = &mut c[(scatter.col_offset + j) * ldc..];
        for (i, &w) in wj.iter().enumerate() {
            cj[scatter.row_map[i]] += alpha * w;
        }
    }
}

/// Direct-scatter update consuming a panel packed by [`pack_b`]: the fused
/// GEMM-scatter register tile reads the contiguous packed panel and writes
/// straight into the gappy destination — zero scratch memory, for the
/// pressure rung where the Red ladder forbids the staging buffer.
#[allow(clippy::too_many_arguments)]
pub fn update_scatter_packed<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a1: &[T],
    lda1: usize,
    pack: &[T],
    c: &mut [T],
    ldc: usize,
    scatter: Scatter<'_>,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert_eq!(scatter.row_map.len(), m, "update_scatter_packed: row_map/m mismatch");
    assert!(
        k == 0 || (lda1 >= m && a1.len() >= lda1 * (k - 1) + m),
        "update_scatter_packed: A1 too small for m={m} k={k} lda1={lda1}"
    );
    assert!(pack.len() >= k * n, "update_scatter_packed: pack too small for k={k} n={n}");
    // Same destination contract as update_scatter_direct: the SIMD tier
    // writes C through raw pointers, so prove the bounds before dispatch.
    let max_row = scatter.row_map.iter().copied().max().unwrap_or(0);
    assert!(
        max_row < ldc,
        "update_scatter_packed: row_map max {max_row} >= ldc={ldc}"
    );
    let last = scatter
        .col_offset
        .checked_add(n - 1)
        .and_then(|j| j.checked_mul(ldc))
        .and_then(|o| o.checked_add(max_row));
    assert!(
        last.is_some_and(|last| last < c.len()),
        "update_scatter_packed: C too small for n={n} ldc={ldc} col_offset={} max row_map {max_row}",
        scatter.col_offset
    );
    if simd::try_update_scatter(
        false,
        m,
        n,
        k,
        alpha,
        a1,
        lda1,
        pack,
        k.max(1),
        None,
        c,
        ldc,
        scatter.row_map,
        scatter.col_offset,
    ) {
        return;
    }
    // Portable tier: per-l axpy into the scattered destination rows, same
    // association as update_scatter_direct.
    // BOUNDS: l < k, j < n against the asserts above; row_map values
    // address destination panel rows by the symbolic structure.
    for j in 0..n {
        let cj = &mut c[(scatter.col_offset + j) * ldc..];
        for l in 0..k {
            let s = alpha * pack[j * k + l];
            if s == T::zero() {
                continue;
            }
            let a1l = &a1[l * lda1..l * lda1 + m];
            // BOUNDS: i < m = row_map.len().
            for (i, &av) in a1l.iter().enumerate() {
                cj[scatter.row_map[i]] += s * av;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::C64;

    /// Dense reference: C_full[dest_row, dest_col] accumulation.
    /// Mirrors the BLAS-style argument list of `scatter_update`.
    #[allow(clippy::too_many_arguments)]
    fn reference<T: Scalar>(
        m: usize,
        n: usize,
        k: usize,
        alpha: T,
        a1: &[T],
        lda1: usize,
        a2: &[T],
        lda2: usize,
        d: Option<&[T]>,
        c: &mut [T],
        ldc: usize,
        scatter: Scatter<'_>,
    ) {
        for j in 0..n {
            for i in 0..m {
                let mut acc = T::zero();
                for l in 0..k {
                    let dl = d.map_or(T::one(), |d| d[l]);
                    acc += a1[l * lda1 + i] * dl * a2[l * lda2 + j];
                }
                c[(scatter.col_offset + j) * ldc + scatter.row_map[i]] += alpha * acc;
            }
        }
    }

    fn rnd(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % 1000) as f64 / 500.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn both_variants_match_reference_with_gaps() {
        let (m, n, k) = (6, 3, 4);
        let a1 = rnd(k * m, 1);
        let a2 = rnd(k * n, 2);
        // Gappy destination: 10 storage rows, source rows land at
        // scattered offsets, in increasing order as in a real panel.
        let row_map = [0usize, 2, 3, 6, 7, 9];
        let ldc = 10;
        let ncols = 5;
        let c0 = rnd(ldc * ncols, 3);
        let scatter = Scatter {
            row_map: &row_map,
            col_offset: 1,
        };

        let mut c_ref = c0.clone();
        reference(m, n, k, -1.0, &a1, m, &a2, n, None, &mut c_ref, ldc, scatter);

        let mut c_buf = c0.clone();
        let mut work = Vec::new();
        update_via_buffer(
            m, n, k, -1.0, &a1, m, &a2, n, None, &mut work, &mut c_buf, ldc, scatter,
        );
        let mut c_dir = c0.clone();
        update_scatter_direct(m, n, k, -1.0, &a1, m, &a2, n, None, &mut c_dir, ldc, scatter);

        for i in 0..c0.len() {
            assert!((c_buf[i] - c_ref[i]).abs() < 1e-12, "buffer variant @{i}");
            assert!((c_dir[i] - c_ref[i]).abs() < 1e-12, "direct variant @{i}");
        }
        // Rows not in the map and columns before col_offset are untouched.
        for j in 0..ncols {
            for r in 0..ldc {
                let touched = j >= 1 && j < 1 + n && row_map.contains(&r);
                if !touched {
                    assert_eq!(c_buf[j * ldc + r], c0[j * ldc + r]);
                }
            }
        }
    }

    #[test]
    fn ldlt_diag_variant_matches_reference() {
        let (m, n, k) = (4, 2, 3);
        let a1 = rnd(k * m, 5);
        let a2 = rnd(k * n, 6);
        let d = rnd(k, 7);
        let row_map = [1usize, 2, 4, 5];
        let ldc = 7;
        let c0 = rnd(ldc * 3, 8);
        let scatter = Scatter {
            row_map: &row_map,
            col_offset: 0,
        };
        let mut c_ref = c0.clone();
        reference(m, n, k, -1.0, &a1, m, &a2, n, Some(&d), &mut c_ref, ldc, scatter);
        let mut c_buf = c0.clone();
        let mut work = Vec::new();
        update_via_buffer(
            m, n, k, -1.0, &a1, m, &a2, n, Some(&d), &mut work, &mut c_buf, ldc, scatter,
        );
        let mut c_dir = c0.clone();
        update_scatter_direct(
            m, n, k, -1.0, &a1, m, &a2, n, Some(&d), &mut c_dir, ldc, scatter,
        );
        for i in 0..c0.len() {
            assert!((c_buf[i] - c_ref[i]).abs() < 1e-12);
            assert!((c_dir[i] - c_ref[i]).abs() < 1e-12);
        }
    }

    /// The destination contract must fail loudly *before* dispatch: the
    /// SIMD tier writes C through raw pointers, so a row_map value at or
    /// beyond ldc would be silent memory corruption, not a slice panic.
    #[test]
    #[should_panic(expected = "row_map max")]
    fn direct_scatter_rejects_row_map_beyond_ldc() {
        let (m, n, k) = (2, 1, 1);
        let a1 = [1.0f64; 2];
        let a2 = [1.0f64; 1];
        let row_map = [0usize, 4]; // 4 >= ldc
        let mut c = vec![0.0f64; 8];
        let scatter = Scatter { row_map: &row_map, col_offset: 0 };
        update_scatter_direct(m, n, k, 1.0, &a1, m, &a2, n, None, &mut c, 4, scatter);
    }

    #[test]
    #[should_panic(expected = "C too small")]
    fn direct_scatter_rejects_short_c() {
        let (m, n, k) = (2, 2, 1);
        let a1 = [1.0f64; 2];
        let a2 = [1.0f64; 2];
        let row_map = [0usize, 3];
        // Last write lands at (col_offset+1)*ldc + 3 = 11; c has 10.
        let mut c = vec![0.0f64; 10];
        let scatter = Scatter { row_map: &row_map, col_offset: 1 };
        update_scatter_direct(m, n, k, 1.0, &a1, m, &a2, n, None, &mut c, 4, scatter);
    }

    #[test]
    #[should_panic(expected = "C too small")]
    fn packed_scatter_rejects_short_c() {
        let (m, n, k) = (2, 2, 1);
        let a1 = [1.0f64; 2];
        let pack = [1.0f64; 2];
        let row_map = [0usize, 3];
        let mut c = vec![0.0f64; 10];
        let scatter = Scatter { row_map: &row_map, col_offset: 1 };
        update_scatter_packed(m, n, k, 1.0, &a1, m, &pack, &mut c, 4, scatter);
    }

    #[test]
    fn complex_update_variants_agree() {
        let (m, n, k) = (5, 4, 3);
        let re1 = rnd(k * m, 11);
        let im1 = rnd(k * m, 12);
        let a1: Vec<C64> = re1
            .iter()
            .zip(&im1)
            .map(|(&r, &i)| C64::new(r, i))
            .collect();
        let re2 = rnd(k * n, 13);
        let im2 = rnd(k * n, 14);
        let a2: Vec<C64> = re2
            .iter()
            .zip(&im2)
            .map(|(&r, &i)| C64::new(r, i))
            .collect();
        let row_map = [0usize, 1, 3, 4, 6];
        let ldc = 8;
        let c0: Vec<C64> = rnd(ldc * n, 15)
            .iter()
            .map(|&r| C64::new(r, -r))
            .collect();
        let scatter = Scatter {
            row_map: &row_map,
            col_offset: 0,
        };
        let alpha = C64::new(-1.0, 0.0);
        let mut c_buf = c0.clone();
        let mut work = Vec::new();
        update_via_buffer(
            m, n, k, alpha, &a1, m, &a2, n, None, &mut work, &mut c_buf, ldc, scatter,
        );
        let mut c_dir = c0.clone();
        update_scatter_direct(m, n, k, alpha, &a1, m, &a2, n, None, &mut c_dir, ldc, scatter);
        for (x, y) in c_buf.iter().zip(&c_dir) {
            assert!((*x - *y).modulus() < 1e-12);
        }
    }
}
