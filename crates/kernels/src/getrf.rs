//! LU factorization of a dense diagonal block with *static pivoting*.
//!
//! PaStiX "doesn't perform dynamic pivoting, as opposed to SuperLU, which
//! allows the factorized matrix structure to be fully known at the analysis
//! step" (§III). The numerical price is that small pivots cannot be avoided
//! by row exchanges; instead they are *bumped* to a threshold (usually
//! `ε‖A‖`), and the loss of accuracy is recovered by iterative refinement in
//! the solve phase. This kernel reproduces exactly that behaviour.
//!
//! The blocked right-looking sweep (panel LU → TRSM on the U block row →
//! GEMM on the trailing matrix) keeps wide diagonal blocks at GEMM speed.

use crate::gemm::{gemm, Trans};
use crate::scalar::Scalar;
use crate::trsm::{trsm, Diag, Side, Uplo};
use crate::KernelError;

/// Statistics returned by the static-pivoting LU kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticPivotStats {
    /// Number of pivots whose modulus fell below the threshold and were
    /// replaced.
    pub repaired: usize,
}

/// Blocking factor for the right-looking sweep.
const NB: usize = 48;

/// Factor `A = L·U` in place without pivoting (column-major).
///
/// On return the strict lower triangle of `a` holds the unit-lower `L` and
/// the upper triangle (diagonal included) holds `U`. Pivots with modulus
/// below `small_pivot_threshold` are replaced by `±threshold` and counted.
pub fn getrf<T: Scalar>(
    n: usize,
    a: &mut [T],
    lda: usize,
    small_pivot_threshold: f64,
) -> Result<StaticPivotStats, KernelError> {
    debug_assert!(n == 0 || (lda >= n && a.len() >= lda * (n - 1) + n));
    let mut stats = StaticPivotStats::default();
    let mut k = 0;
    while k < n {
        let kb = NB.min(n - k);
        // 1) Unblocked LU of the tall panel A[k.., k..k+kb].
        let sub = getrf_unblocked(
            n - k,
            kb,
            &mut a[k * lda + k..],
            lda,
            small_pivot_threshold,
            k,
        )?;
        stats.repaired += sub.repaired;
        let rest = n - k - kb;
        if rest > 0 {
            // 2) U block row: A[k..k+kb, k+kb..] ← L_kk⁻¹ · A[k..k+kb, k+kb..].
            // The unit-lower tile is copied to sidestep aliased borrows.
            let mut tile = vec![T::zero(); kb * kb];
            for j in 0..kb {
                for i in (j + 1)..kb {
                    tile[j * kb + i] = a[(k + j) * lda + (k + i)];
                }
            }
            {
                let urow = &mut a[(k + kb) * lda + k..];
                trsm(
                    Side::Left,
                    Uplo::Lower,
                    Trans::NoTrans,
                    Diag::Unit,
                    kb,
                    rest,
                    &tile,
                    kb,
                    urow,
                    lda,
                );
            }
            // 3) Trailing update: A[k+kb.., j] -= L[k+kb.., k..k+kb]·U[k..k+kb, j]
            //    column by column; the L panel (head) and trailing columns
            //    (tail) are disjoint slices, and within a trailing column
            //    the U rows (read) and C rows (write) split cleanly.
            let (head, tail) = a.split_at_mut((k + kb) * lda);
            let lpanel = &head[k * lda + (k + kb)..];
            for j in 0..rest {
                let col = &mut tail[j * lda..j * lda + k + kb + rest];
                let (ucol, c) = col.split_at_mut(k + kb);
                gemm(
                    Trans::NoTrans,
                    Trans::NoTrans,
                    rest,
                    1,
                    kb,
                    -T::one(),
                    lpanel,
                    lda,
                    &ucol[k..],
                    kb,
                    T::one(),
                    c,
                    rest,
                );
            }
        }
        k += kb;
    }
    Ok(stats)
}

/// Unblocked LU (no pivoting) of an `m×n` tall panel (`m ≥ n`); `col0`
/// is only used for error reporting.
fn getrf_unblocked<T: Scalar>(
    m: usize,
    n: usize,
    a: &mut [T],
    lda: usize,
    small_pivot_threshold: f64,
    col0: usize,
) -> Result<StaticPivotStats, KernelError> {
    let mut stats = StaticPivotStats::default();
    for k in 0..n {
        let mut piv = a[k * lda + k];
        if !piv.modulus().is_finite() {
            return Err(KernelError::NonFinitePivot { column: col0 + k });
        }
        if piv.modulus() < small_pivot_threshold {
            stats.repaired += 1;
            let sign = if piv.re() < 0.0 { -1.0 } else { 1.0 };
            piv = T::from_f64(sign * small_pivot_threshold);
            a[k * lda + k] = piv;
        }
        if piv.modulus() == 0.0 {
            return Err(KernelError::ZeroPivot { column: col0 + k });
        }
        let inv = piv.inv();
        // Scale the pivot column: L[i, k] = A[i, k] / pivot.
        for i in (k + 1)..m {
            a[k * lda + i] *= inv;
        }
        // Rank-1 trailing update: A[i, j] -= L[i, k] · U[k, j].
        for j in (k + 1)..n {
            let ukj = a[j * lda + k];
            if ukj == T::zero() {
                continue;
            }
            // Split so the pivot column (read) and column j (write) borrow
            // disjoint parts of `a`; k < j always holds here.
            let (head, tail) = a.split_at_mut(j * lda);
            let lcol = &head[k * lda + k + 1..k * lda + m];
            let ccol = &mut tail[k + 1..m];
            for (c, &l) in ccol.iter_mut().zip(lcol.iter()) {
                *c -= l * ukj;
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::C64;
    use crate::smallblas::reconstruct_lu;

    fn diag_dominant(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed | 1;
        let mut a = vec![0.0f64; n * n];
        for v in &mut a {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *v = (s % 2000) as f64 / 1000.0 - 1.0;
        }
        for j in 0..n {
            a[j * n + j] = n as f64 + 1.0; // strictly diagonally dominant
        }
        a
    }

    #[test]
    fn factor_reconstructs_real() {
        for n in [1, 2, 4, 7, 12, 33] {
            let a0 = diag_dominant(n, n as u64 + 1);
            let mut a = a0.clone();
            let stats = getrf(n, &mut a, n, 0.0).unwrap();
            assert_eq!(stats.repaired, 0);
            let r = reconstruct_lu(n, &a, n);
            for (x, y) in r.iter().zip(a0.iter()) {
                assert!((x - y).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn factor_reconstructs_blocked_path() {
        // n > NB exercises the panel/TRSM/GEMM sweep.
        for n in [NB + 1, NB + 17, 2 * NB + 5] {
            let a0 = diag_dominant(n, 3 * n as u64);
            let mut a = a0.clone();
            getrf(n, &mut a, n, 0.0).unwrap();
            let r = reconstruct_lu(n, &a, n);
            let mut max = 0.0f64;
            for (x, y) in r.iter().zip(a0.iter()) {
                max = max.max((x - y).abs());
            }
            assert!(max < 1e-8, "n={n}: max error {max}");
        }
    }

    #[test]
    fn factor_reconstructs_complex() {
        let n = 5;
        let mut a0 = vec![C64::new(0.0, 0.0); n * n];
        let mut s = 9u64;
        for v in &mut a0 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *v = C64::new((s % 100) as f64 / 50.0 - 1.0, ((s >> 7) % 100) as f64 / 50.0 - 1.0);
        }
        for j in 0..n {
            a0[j * n + j] = C64::new(n as f64, n as f64); // dominant
        }
        let mut a = a0.clone();
        getrf(n, &mut a, n, 0.0).unwrap();
        let r = reconstruct_lu(n, &a, n);
        for (x, y) in r.iter().zip(a0.iter()) {
            assert!((*x - *y).modulus() < 1e-9);
        }
    }

    #[test]
    fn static_pivoting_counts_and_repairs() {
        // Zero leading pivot: without a threshold this must fail, with one
        // it must be repaired and counted.
        let a0 = vec![0.0, 1.0, 1.0, 1.0];
        let mut a = a0.clone();
        assert_eq!(
            getrf(2, &mut a, 2, 0.0).unwrap_err(),
            KernelError::ZeroPivot { column: 0 }
        );
        let mut a = a0;
        let stats = getrf(2, &mut a, 2, 1e-10).unwrap();
        assert_eq!(stats.repaired, 1);
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn respects_leading_dimension() {
        let n = 3;
        let lda = 6;
        let dense = diag_dominant(n, 77);
        let mut padded = vec![f64::NAN; lda * n];
        for j in 0..n {
            for i in 0..n {
                padded[j * lda + i] = dense[j * n + i];
            }
        }
        getrf(n, &mut padded, lda, 0.0).unwrap();
        let mut tight = vec![0.0; n * n];
        for j in 0..n {
            for i in 0..n {
                tight[j * n + i] = padded[j * lda + i];
                assert!(padded[j * lda + i].is_finite());
            }
            for i in n..lda {
                assert!(padded[j * lda + i].is_nan(), "padding row touched");
            }
        }
        let r = reconstruct_lu(n, &tight, n);
        for (x, y) in r.iter().zip(dense.iter()) {
            assert!((x - y).abs() < 1e-9);
        }
    }
}
