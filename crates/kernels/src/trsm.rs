//! Triangular solve with multiple right-hand sides (column-major TRSM).
//!
//! The panel task of the supernodal factorization (Figure 1, step 2) applies
//! the freshly factorized diagonal block to every off-diagonal block of the
//! panel: `A_i ← A_i · L_kkᵀ⁻¹` for Cholesky, `A_i · U_kk⁻¹` for the L side
//! of LU, and the analogous unit-diagonal solves for LDLᵀ and the
//! (transposed-stored) U side of LU. All eight side/uplo/trans combinations
//! are provided so the solve phase can reuse the kernel.

use crate::gemm::axpy;
use crate::scalar::Scalar;
use crate::simd;

/// Which side the triangular matrix multiplies from.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Side {
    /// Solve `op(T)·X = B`.
    Left,
    /// Solve `X·op(T) = B`.
    Right,
}

/// Which triangle of `t` holds the data.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Uplo {
    /// Lower triangular.
    Lower,
    /// Upper triangular.
    Upper,
}

/// Whether the triangular matrix has an implicit unit diagonal.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Diag {
    /// Diagonal entries are taken from `t`.
    NonUnit,
    /// Diagonal entries are implicitly one (e.g. the `L` factor of LU/LDLᵀ).
    Unit,
}

pub use crate::gemm::Trans;

/// Solve a triangular system in place: `B` (`m×n`, leading dimension `ldb`)
/// is overwritten with the solution `X` of `op(T)·X = B` (left) or
/// `X·op(T) = B` (right), where `T` is the `k×k` triangle (`k = m` for left,
/// `k = n` for right) stored in `t` with leading dimension `ldt`.
#[allow(clippy::too_many_arguments)]
pub fn trsm<T: Scalar>(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    m: usize,
    n: usize,
    t: &[T],
    ldt: usize,
    b: &mut [T],
    ldb: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    match side {
        Side::Left => trsm_left(uplo, trans, diag, m, n, t, ldt, b, ldb),
        Side::Right => trsm_right(uplo, trans, diag, m, n, t, ldt, b, ldb),
    }
}

/// Effective triangle entry `op(T)[i, j]`, honoring transposition and
/// conjugation; callers guarantee `(i, j)` is inside the stored triangle of
/// the *transposed* view.
#[inline]
fn tval<T: Scalar>(t: &[T], ldt: usize, trans: Trans, i: usize, j: usize) -> T {
    // BOUNDS: (i, j) inside the stored triangle and the ldt shape
    // contract debug-asserted by trsm_left/trsm_right (doc above).
    match trans {
        Trans::NoTrans => t[j * ldt + i],
        Trans::Trans => t[i * ldt + j],
        Trans::ConjTrans => t[i * ldt + j].conj(),
    }
}

/// Is `op(T)` lower triangular?
#[inline]
fn effective_lower(uplo: Uplo, trans: Trans) -> bool {
    match (uplo, trans) {
        (Uplo::Lower, Trans::NoTrans) => true,
        (Uplo::Lower, _) => false,
        (Uplo::Upper, Trans::NoTrans) => false,
        (Uplo::Upper, _) => true,
    }
}

#[allow(clippy::too_many_arguments)]
fn trsm_left<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    m: usize,
    n: usize,
    t: &[T],
    ldt: usize,
    b: &mut [T],
    ldb: usize,
) {
    debug_assert!(ldt >= m && t.len() >= ldt * (m - 1) + m);
    debug_assert!(ldb >= m && b.len() >= ldb * (n - 1) + m);
    let lower = effective_lower(uplo, trans);
    for j in 0..n {
        // BOUNDS: j < n and the ldb shape contract asserted above; col
        // has length m so col[k] with k < m is in range.
        let col = &mut b[j * ldb..j * ldb + m];
        if lower {
            // Forward substitution.
            // BOUNDS: k < m == col.len().
            for k in 0..m {
                let mut xk = col[k];
                if diag == Diag::NonUnit {
                    xk /= tval(t, ldt, trans, k, k);
                }
                col[k] = xk;
                if xk != T::zero() {
                    for (i, ci) in col.iter_mut().enumerate().skip(k + 1) {
                        let lik = tval(t, ldt, trans, i, k);
                        *ci -= lik * xk;
                    }
                }
            }
        } else {
            // Backward substitution.
            // BOUNDS: k < m == col.len().
            for k in (0..m).rev() {
                let mut xk = col[k];
                if diag == Diag::NonUnit {
                    xk /= tval(t, ldt, trans, k, k);
                }
                col[k] = xk;
                if xk != T::zero() {
                    for (i, ci) in col.iter_mut().enumerate().take(k) {
                        let uik = tval(t, ldt, trans, i, k);
                        *ci -= uik * xk;
                    }
                }
            }
        }
    }
}

/// `B[:, dst] += s · B[:, src]` for two distinct columns of a column-major
/// buffer.
#[inline]
fn col_axpy<T: Scalar>(b: &mut [T], ldb: usize, m: usize, s: T, src: usize, dst: usize) {
    debug_assert_ne!(src, dst);
    let (lo, hi) = (src.min(dst), src.max(dst));
    // BOUNDS: src/dst are column indices < n under trsm_right's ldb
    // shape contract, so both column slices are inside b.
    let (head, tail) = b.split_at_mut(hi * ldb);
    let (col_lo, col_hi) = (&mut head[lo * ldb..lo * ldb + m], &mut tail[..m]);
    let (x, y) = if src < dst { (col_lo, col_hi) } else { (col_hi, col_lo) };
    if !simd::try_axpy(s, x, y) {
        axpy(s, x, y);
    }
}

#[allow(clippy::too_many_arguments)]
fn trsm_right<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    m: usize,
    n: usize,
    t: &[T],
    ldt: usize,
    b: &mut [T],
    ldb: usize,
) {
    debug_assert!(ldt >= n && t.len() >= ldt * (n - 1) + n);
    debug_assert!(ldb >= m && b.len() >= ldb * (n - 1) + m);
    // X · op(T) = B. Column j of B couples X[:, l] for l on one side of j:
    //   B[:, j] = Σ_l X[:, l] · op(T)[l, j]
    // op(T) effectively *lower* → l ≥ j → solve j descending;
    // op(T) effectively *upper* → l ≤ j → solve j ascending.
    let lower = effective_lower(uplo, trans);
    // Columns solve in descending order when op(T) is lower, ascending
    // when upper; the already-solved columns coupling into j are then
    // (j+1)..n resp. 0..j. Plain index arithmetic — no order vector or
    // boxed iterator on this per-panel-task path.
    for jj in 0..n {
        // BOUNDS: jj < n in both branches, so j < n; the solved range
        // stays within 0..n; the ldb column slice is covered by the
        // shape contract asserted above.
        let j = if lower { n - 1 - jj } else { jj };
        let (solved_lo, solved_hi) = if lower { (j + 1, n) } else { (0, j) };
        // X[:, j] = (B[:, j] - Σ_{l already solved} X[:, l]·op(T)[l, j]) / op(T)[j, j]
        for l in solved_lo..solved_hi {
            let coef = tval(t, ldt, trans, l, j);
            if coef == T::zero() {
                continue;
            }
            // col_j -= coef * col_l; the two columns are disjoint (l != j).
            col_axpy(b, ldb, m, -coef, l, j);
        }
        if diag == Diag::NonUnit {
            let d = tval(t, ldt, trans, j, j).inv();
            // BOUNDS: j < n against the ldb/b-length contract above.
            let col = &mut b[j * ldb..j * ldb + m];
            if !simd::try_scale(d, col) {
                for v in col {
                    *v *= d;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm;
    use crate::scalar::C64;

    fn rand_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % 2000) as f64 / 1000.0 - 1.0
            })
            .collect()
    }

    /// Build a well-conditioned k×k triangle (identity + small noise).
    fn make_triangle(k: usize, uplo: Uplo, seed: u64) -> Vec<f64> {
        let mut t = rand_vec(k * k, seed);
        for j in 0..k {
            for i in 0..k {
                let keep = match uplo {
                    Uplo::Lower => i >= j,
                    Uplo::Upper => i <= j,
                };
                if !keep {
                    t[j * k + i] = f64::NAN; // must never be read
                } else if i == j {
                    t[j * k + i] = 2.0 + t[j * k + i].abs();
                } else {
                    t[j * k + i] *= 0.3;
                }
            }
        }
        t
    }

    /// op(T) as a dense matrix with unit-diag handling, for verification.
    fn dense_op(
        t: &[f64],
        k: usize,
        uplo: Uplo,
        trans: Trans,
        diag: Diag,
    ) -> Vec<f64> {
        let mut full = vec![0.0; k * k];
        for j in 0..k {
            for i in 0..k {
                let inside = match uplo {
                    Uplo::Lower => i >= j,
                    Uplo::Upper => i <= j,
                };
                if inside {
                    full[j * k + i] = if i == j && diag == Diag::Unit {
                        1.0
                    } else {
                        t[j * k + i]
                    };
                }
            }
        }
        if trans == Trans::NoTrans {
            full
        } else {
            let mut tr = vec![0.0; k * k];
            for j in 0..k {
                for i in 0..k {
                    tr[j * k + i] = full[i * k + j];
                }
            }
            tr
        }
    }

    #[test]
    fn all_combinations_solve_correctly() {
        let m = 6;
        let n = 4;
        for &side in &[Side::Left, Side::Right] {
            for &uplo in &[Uplo::Lower, Uplo::Upper] {
                for &trans in &[Trans::NoTrans, Trans::Trans] {
                    for &diag in &[Diag::NonUnit, Diag::Unit] {
                        let k = if side == Side::Left { m } else { n };
                        let t = make_triangle(k, uplo, 42);
                        let b0 = rand_vec(m * n, 7);
                        let mut x = b0.clone();
                        trsm(side, uplo, trans, diag, m, n, &t, k, &mut x, m);
                        // Verify op(T)·X = B (left) or X·op(T) = B (right).
                        let opt = dense_op(&t, k, uplo, trans, diag);
                        let mut prod = vec![0.0; m * n];
                        match side {
                            Side::Left => gemm(
                                Trans::NoTrans,
                                Trans::NoTrans,
                                m,
                                n,
                                m,
                                1.0,
                                &opt,
                                m,
                                &x,
                                m,
                                0.0,
                                &mut prod,
                                m,
                            ),
                            Side::Right => gemm(
                                Trans::NoTrans,
                                Trans::NoTrans,
                                m,
                                n,
                                n,
                                1.0,
                                &x,
                                m,
                                &opt,
                                n,
                                0.0,
                                &mut prod,
                                m,
                            ),
                        }
                        for (p, b) in prod.iter().zip(b0.iter()) {
                            assert!(
                                (p - b).abs() < 1e-10,
                                "{side:?} {uplo:?} {trans:?} {diag:?}: {p} vs {b}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn complex_conj_trans_right_lower() {
        // The Hermitian panel solve used by a complex Cholesky:
        // X · L^H = B.
        let n = 3;
        let m = 2;
        let mut l = vec![C64::new(0.0, 0.0); n * n];
        for j in 0..n {
            for i in j..n {
                l[j * n + i] = if i == j {
                    C64::new(2.0 + i as f64, 0.0)
                } else {
                    C64::new(0.1 * i as f64, 0.2 * j as f64 + 0.1)
                };
            }
        }
        let b0: Vec<C64> = (0..m * n)
            .map(|i| C64::new(i as f64 + 1.0, -(i as f64)))
            .collect();
        let mut x = b0.clone();
        trsm(
            Side::Right,
            Uplo::Lower,
            Trans::ConjTrans,
            Diag::NonUnit,
            m,
            n,
            &l,
            n,
            &mut x,
            m,
        );
        // Check X·L^H = B.
        let mut prod = vec![C64::new(0.0, 0.0); m * n];
        gemm(
            Trans::NoTrans,
            Trans::ConjTrans,
            m,
            n,
            n,
            C64::new(1.0, 0.0),
            &x,
            m,
            &l,
            n,
            C64::new(0.0, 0.0),
            &mut prod,
            m,
        );
        for (p, b) in prod.iter().zip(b0.iter()) {
            assert!((*p - *b).modulus() < 1e-10);
        }
    }
}
