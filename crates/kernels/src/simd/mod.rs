//! Runtime-dispatched SIMD microkernels (ROADMAP item 2).
//!
//! The portable kernels in [`crate::gemm`] / [`crate::update`] are safe
//! blocked Rust compiled for the baseline target (SSE2 on x86-64). This
//! module adds explicit `std::arch` AVX2+FMA microkernels behind *runtime*
//! feature detection, so one binary runs everywhere and uses the wide
//! path where the host supports it:
//!
//! * [`isa()`] — the cached dispatch decision. Detection
//!   (`is_x86_feature_detected!`) runs once; every later call is a single
//!   relaxed atomic load, so dispatch is legal inside the hot-path purity
//!   roots (no allocation, no locks, no panics).
//! * [`avx2`] — the 8×4 register-tiled f64 GEMM microkernel with
//!   mc/kc/nc cache blocking, plus the fused GEMM-scatter epilogue used
//!   by the direct-scatter pressure rung.
//! * [`Blocking`] — the autotunable block sizes. Defaults suit a
//!   ~32 KiB L1 / ~1 MiB L2 core; `kernels_bench --tune` sweeps
//!   candidates and persists the winner, which replays through the
//!   `DAGFACT_KERNELS_BLOCK=mc,kc,nc` environment variable (read once,
//!   at first dispatch).
//!
//! Scalar fallback is the portable kernel itself: every entry point here
//! returns `false` (or routes to plain loops) when the host lacks AVX2,
//! the element type is not `f64`, or the crate is built with
//! `--no-default-features` (feature `simd` off) — that build is how CI
//! keeps the fallback tested on any host.
//!
//! Numerical note: the AVX2 path contracts multiply-add pairs into FMAs
//! and vectorizes the row loop; results can differ from the portable
//! kernel by a few ulp (the differential fuzz suite pins the bound at
//! ≤ 4 ulp). Accumulation *order* over `k` is preserved, so the drift is
//! rounding-only, never catastrophic.

use crate::scalar::Scalar;
use core::any::TypeId;
use core::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub(crate) mod avx2;

/// Instruction-set tier selected by runtime dispatch.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Isa {
    /// Portable blocked Rust (the baseline-target build of the crate).
    Scalar,
    /// AVX2 + FMA f64 microkernels.
    Avx2,
}

impl Isa {
    /// Stable lowercase name for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
        }
    }
}

/// Cached dispatch decision: 0 = undetected, 1 = scalar, 2 = avx2.
static ISA_CACHE: AtomicU8 = AtomicU8::new(0);

/// The active instruction-set tier. First call detects and caches;
/// every later call is one relaxed load — cheap enough for the GEMM
/// entry point.
#[inline]
pub fn isa() -> Isa {
    // ORDERING: one-time monotonic cache of a pure hardware property;
    // racing initializers write the same value, readers need no
    // happens-before beyond the value itself.
    match ISA_CACHE.load(Ordering::Relaxed) {
        1 => Isa::Scalar,
        2 => Isa::Avx2,
        _ => detect_and_cache(),
    }
}

/// Force the dispatch decision (tests and the bench harness compare the
/// portable and SIMD paths in one process). Overrides detection until
/// the next call.
pub fn force_isa(isa: Isa) {
    // A force ahead of the first isa() call skips detect_and_cache()
    // entirely, so the persisted autotune choice must be seeded here
    // too (once-guarded — see load_env_blocking).
    load_env_blocking();
    let v = match isa {
        Isa::Scalar => 1,
        Isa::Avx2 => 2,
    };
    // ORDERING: same monotonic-cache discipline as `isa()`.
    ISA_CACHE.store(v, Ordering::Relaxed);
}

/// Cold path of [`isa()`]: probe the CPU, honor overrides, seed the
/// blocking knobs from the environment, cache the verdict.
#[cold]
fn detect_and_cache() -> Isa {
    load_env_blocking();
    let detected = detect();
    let v = match detected {
        Isa::Scalar => 1,
        Isa::Avx2 => 2,
    };
    // Install only if still unseeded: a concurrent force_isa() racing
    // ahead of first detection must win, not be clobbered (bench/test
    // tier pinning).
    // ORDERING: same monotonic-cache discipline as `isa()` — the value
    // itself is the only payload, no happens-before needed.
    match ISA_CACHE.compare_exchange(0, v, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => detected,
        Err(1) => Isa::Scalar,
        Err(_) => Isa::Avx2,
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn detect() -> Isa {
    if std::env::var_os("DAGFACT_FORCE_SCALAR").is_some() {
        return Isa::Scalar;
    }
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        Isa::Avx2
    } else {
        Isa::Scalar
    }
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
fn detect() -> Isa {
    Isa::Scalar
}

// ---------------------------------------------------------------------
// Autotunable cache blocking
// ---------------------------------------------------------------------

/// Cache-blocking parameters of the AVX2 GEMM: the `k`-panel depth
/// (`kc`, L1-resident B columns), the row-block height (`mc`,
/// L2-resident A block) and the column-block width (`nc`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Blocking {
    /// Row-block height (multiple of the 8-row register tile).
    pub mc: usize,
    /// Inner-dimension panel depth.
    pub kc: usize,
    /// Column-block width (multiple of the 4-column register tile).
    pub nc: usize,
}

impl Default for Blocking {
    fn default() -> Self {
        // 8×kc A-tile stream (one cache line per column) against kc×4
        // B columns: kc=256 keeps the active B block at 8 KiB; mc=128
        // holds a 128×256 f64 A block in 256 KiB of L2; nc=512 bounds
        // the C working set.
        Blocking { mc: 128, kc: 256, nc: 512 }
    }
}

/// 0 means "use the built-in default".
static MC: AtomicUsize = AtomicUsize::new(0);
static KC: AtomicUsize = AtomicUsize::new(0);
static NC: AtomicUsize = AtomicUsize::new(0);

/// The blocking currently in effect.
#[inline]
pub fn blocking() -> Blocking {
    let d = Blocking::default();
    // ORDERING: independent tuning knobs; any torn combination of old
    // and new values is still a valid (merely untuned) blocking.
    let pick = |a: &AtomicUsize, def: usize| match a.load(Ordering::Relaxed) {
        0 => def,
        v => v,
    };
    Blocking {
        mc: pick(&MC, d.mc),
        kc: pick(&KC, d.kc),
        nc: pick(&NC, d.nc),
    }
}

/// Upper bound on any blocking dimension — far above any cache-sane
/// value, low enough that tile rounding (and mc·kc panel products)
/// cannot overflow `usize`. A multiple of both register-tile sizes, so
/// `next_multiple_of` below is overflow-free after the clamp.
const MAX_BLOCK: usize = 1 << 24;

/// Install autotuned block sizes (values are clamped into
/// `[tile, MAX_BLOCK]` and rounded to the register-tile granularity —
/// absurd values from a corrupted `DAGFACT_KERNELS_BLOCK` degrade to the
/// cap rather than panicking at first dispatch).
pub fn set_blocking(b: Blocking) {
    // ORDERING: see `blocking()`.
    MC.store(b.mc.clamp(MR, MAX_BLOCK).next_multiple_of(MR), Ordering::Relaxed);
    KC.store(b.kc.clamp(8, MAX_BLOCK), Ordering::Relaxed);
    NC.store(b.nc.clamp(NR, MAX_BLOCK).next_multiple_of(NR), Ordering::Relaxed);
}

/// Once-guard for [`load_env_blocking`].
static ENV_BLOCKING_LOADED: AtomicU8 = AtomicU8::new(0);

/// Parse `DAGFACT_KERNELS_BLOCK=mc,kc,nc` (the persisted autotune
/// choice) once, at the first dispatch *or* the first [`force_isa`] —
/// whichever comes first. Malformed values are ignored.
fn load_env_blocking() {
    // Once-only: both detect_and_cache() and force_isa() call here; the
    // guard keeps a later caller from clobbering set_blocking() tuning
    // installed in between.
    // ORDERING: the blocking knobs it guards are themselves relaxed and
    // self-contained (any torn combination is a valid blocking), so the
    // once-flag needs no happens-before either; racing initializers at
    // worst both read the same env value.
    if ENV_BLOCKING_LOADED.swap(1, Ordering::Relaxed) != 0 {
        return;
    }
    let Some(raw) = std::env::var_os("DAGFACT_KERNELS_BLOCK") else {
        return;
    };
    let Some(raw) = raw.to_str() else { return };
    let mut parts = raw.split(',');
    let mut next = || parts.next().and_then(parse_usize);
    if let (Some(mc), Some(kc), Some(nc)) = (next(), next(), next()) {
        if mc > 0 && kc > 0 && nc > 0 {
            set_blocking(Blocking { mc, kc, nc });
        }
    }
}

/// Decimal-only `usize` parser. `str::parse` would do, but several
/// workspace types also have a `parse` and the hot-path lint resolves
/// method calls by name — a local free function keeps the dispatch
/// path's call graph self-contained (and allocation-free).
fn parse_usize(s: &str) -> Option<usize> {
    let s = s.trim_ascii();
    if s.is_empty() {
        return None;
    }
    let mut v: usize = 0;
    for b in s.bytes() {
        if !b.is_ascii_digit() {
            return None;
        }
        v = v.checked_mul(10)?.checked_add((b - b'0') as usize)?;
    }
    Some(v)
}

/// Register-tile height of the AVX2 microkernel (rows of C per tile).
pub const MR: usize = 8;
/// Register-tile width of the AVX2 microkernel (columns of C per tile).
pub const NR: usize = 4;

// ---------------------------------------------------------------------
// f64 element-type witness
// ---------------------------------------------------------------------

/// View a generic scalar slice as `&[f64]` when `T` *is* `f64`.
#[cfg_attr(not(all(feature = "simd", target_arch = "x86_64")), allow(dead_code))]
#[inline]
pub(crate) fn as_f64<T: Scalar>(s: &[T]) -> Option<&[f64]> {
    if TypeId::of::<T>() == TypeId::of::<f64>() {
        // SAFETY: TypeId equality proves T == f64; same layout, same
        // lifetime, shared reference.
        Some(unsafe { core::slice::from_raw_parts(s.as_ptr().cast::<f64>(), s.len()) })
    } else {
        None
    }
}

/// Mutable counterpart of [`as_f64`].
#[cfg_attr(not(all(feature = "simd", target_arch = "x86_64")), allow(dead_code))]
#[inline]
pub(crate) fn as_f64_mut<T: Scalar>(s: &mut [T]) -> Option<&mut [f64]> {
    if TypeId::of::<T>() == TypeId::of::<f64>() {
        // SAFETY: TypeId equality proves T == f64; same layout, same
        // lifetime, and the &mut borrow is carried through.
        Some(unsafe { core::slice::from_raw_parts_mut(s.as_mut_ptr().cast::<f64>(), s.len()) })
    } else {
        None
    }
}

// ---------------------------------------------------------------------
// Dispatch entry points (called by the portable kernels)
// ---------------------------------------------------------------------

/// Attempt the AVX2 GEMM for `C ← α·A·op(B) + β·C` with `A` untransposed.
/// Returns `true` when the SIMD path handled the call; `false` sends the
/// caller down the portable kernel (wrong type, unsupported layout, host
/// without AVX2, or a problem too small to win from vectorization).
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn try_gemm_a_notrans<T: Scalar>(
    b_trans: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if isa() != Isa::Avx2 || m < MR {
            return false;
        }
        let (Some(af), Some(bf)) = (as_f64(a), as_f64(b)) else {
            return false;
        };
        let Some(cf) = as_f64_mut(c) else { return false };
        let layout = if b_trans {
            avx2::BLayout::Trans { ldb }
        } else {
            avx2::BLayout::NoTrans { ldb }
        };
        // SAFETY: isa() == Avx2 certifies avx2+fma on this CPU; the
        // shape contracts (lda/ldb/ldc vs m/n/k and the slice lengths)
        // were asserted by the calling `gemm` before any dispatch.
        unsafe {
            avx2::gemm_f64(
                m,
                n,
                k,
                alpha.re(),
                af.as_ptr(),
                lda,
                bf.as_ptr(),
                layout,
                beta.re(),
                cf.as_mut_ptr(),
                ldc,
            );
        }
        true
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        let _ = (b_trans, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
        false
    }
}

/// Attempt the fused AVX2 GEMM-scatter: `C[row_map, col_offset..] +=
/// α · A · diag(d?) · op(B)` with the scatter folded into the register
/// tile's epilogue (zero scratch memory — the direct-scatter pressure
/// rung). `b_trans` selects `op(B)[l,j] = b[l*ldb+j]` (outer-product
/// layout) vs `b[j*ldb+l]` (packed panel). Returns `false` when the
/// caller must run the portable scalar loops.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn try_update_scatter<T: Scalar>(
    b_trans: bool,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a1: &[T],
    lda1: usize,
    b: &[T],
    ldb: usize,
    d: Option<&[T]>,
    c: &mut [T],
    ldc: usize,
    row_map: &[usize],
    col_offset: usize,
) -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if isa() != Isa::Avx2 || m < MR {
            return false;
        }
        let (Some(af), Some(bf)) = (as_f64(a1), as_f64(b)) else {
            return false;
        };
        let df = match d {
            None => None,
            Some(d) => match as_f64(d) {
                Some(df) => Some(df),
                None => return false,
            },
        };
        let Some(cf) = as_f64_mut(c) else { return false };
        let layout = if b_trans {
            avx2::BLayout::Trans { ldb }
        } else {
            avx2::BLayout::NoTrans { ldb }
        };
        // SAFETY: isa() == Avx2 certifies avx2+fma; shape contracts
        // (row_map.len() == m, d.len() >= k, the A/B strides, and the
        // destination: every row_map value < ldc and the last written
        // element (col_offset+n-1, max row_map) inside `c`) were
        // asserted by the calling update kernel before dispatch.
        unsafe {
            avx2::update_scatter_f64(
                m,
                n,
                k,
                alpha.re(),
                af.as_ptr(),
                lda1,
                bf.as_ptr(),
                layout,
                df.map(|d| d.as_ptr()),
                cf.as_mut_ptr(),
                ldc,
                row_map,
                col_offset,
            );
        }
        true
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        let _ = (
            b_trans, m, n, k, alpha, a1, lda1, b, ldb, d, c, ldc, row_map, col_offset,
        );
        false
    }
}

/// SIMD `y += s·x`; `true` when handled.
#[inline]
pub(crate) fn try_axpy<T: Scalar>(s: T, x: &[T], y: &mut [T]) -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if isa() != Isa::Avx2 {
            return false;
        }
        let Some(xf) = as_f64(x) else { return false };
        let Some(yf) = as_f64_mut(y) else { return false };
        // SAFETY: isa() == Avx2 certifies avx2+fma on this CPU.
        unsafe { avx2::axpy_f64(s.re(), xf, yf) };
        true
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        let _ = (s, x, y);
        false
    }
}

/// SIMD in-place scale `x *= s`; `true` when handled.
#[inline]
pub(crate) fn try_scale<T: Scalar>(s: T, x: &mut [T]) -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if isa() != Isa::Avx2 {
            return false;
        }
        let Some(xf) = as_f64_mut(x) else { return false };
        // SAFETY: isa() == Avx2 certifies avx2 on this CPU.
        unsafe { avx2::scale_f64(s.re(), xf) };
        true
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        let _ = (s, x);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_is_cached_and_forcible() {
        let first = isa();
        assert_eq!(isa(), first, "second call must replay the cache");
        force_isa(Isa::Scalar);
        assert_eq!(isa(), Isa::Scalar);
        force_isa(first);
        assert_eq!(isa(), first);
    }

    #[test]
    fn blocking_roundtrip_and_clamps() {
        let prev = blocking();
        set_blocking(Blocking { mc: 1, kc: 1, nc: 1 });
        let b = blocking();
        assert_eq!(b.mc, MR, "mc clamps to the register tile");
        assert_eq!(b.nc, NR, "nc clamps to the register tile");
        assert_eq!(b.kc, 8);
        set_blocking(Blocking { mc: 96, kc: 192, nc: 384 });
        assert_eq!(blocking(), Blocking { mc: 96, kc: 192, nc: 384 });
        // Absurd (e.g. corrupted-env) values clamp to the cap instead of
        // overflowing in next_multiple_of.
        set_blocking(Blocking {
            mc: usize::MAX,
            kc: usize::MAX,
            nc: usize::MAX,
        });
        let b = blocking();
        assert_eq!(b, Blocking { mc: MAX_BLOCK, kc: MAX_BLOCK, nc: MAX_BLOCK });
        set_blocking(prev);
    }

    #[test]
    fn f64_witness_accepts_f64_rejects_complex() {
        let v = [1.0f64, 2.0];
        assert!(as_f64(&v).is_some());
        let c = [crate::scalar::C64::new(1.0, 2.0)];
        assert!(as_f64(&c).is_none());
        let mut v = [1.0f64];
        assert!(as_f64_mut(&mut v).is_some());
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn detection_matches_cpu_when_simd_enabled() {
        let det = detect();
        #[cfg(feature = "simd")]
        {
            let want = if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
                && std::env::var_os("DAGFACT_FORCE_SCALAR").is_none()
            {
                Isa::Avx2
            } else {
                Isa::Scalar
            };
            assert_eq!(det, want);
        }
        #[cfg(not(feature = "simd"))]
        assert_eq!(det, Isa::Scalar);
    }
}
