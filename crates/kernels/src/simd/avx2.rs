//! AVX2 + FMA `f64` microkernels.
//!
//! One register-tiled GEMM kernel serves every dispatched entry point:
//! an 8×4 tile of `C` (two `ymm` rows × four columns = 8 accumulator
//! registers) is held in registers while the `k` loop streams columns of
//! `A` (contiguous 8-element loads — `A` is column-major and
//! untransposed) and broadcasts elements of `op(B)`. `op(B)` is read
//! through [`BLayout`], so the same kernel covers the `NoTrans×Trans`
//! outer product of the supernodal update *and* the `NoTrans×NoTrans`
//! packed-panel product — only the broadcast address differs.
//!
//! Accumulation **association matches the portable kernel**: the C tile
//! is loaded first (β applied on the first `kc` chunk), then one FMA per
//! `k` step — the same per-`l` axpy order as
//! [`crate::gemm`]'s `gemm_a_notrans`, with the multiply-add pair
//! contracted into a single rounding. The differential fuzz suite pins
//! the resulting drift.
//!
//! Everything here is `unsafe fn` + raw pointers: callers (the dispatch
//! shims in [`super`]) re-assert the LAPACK shape contracts before any
//! pointer is formed, and `isa()` certifies the CPU features.

use super::{blocking, MR, NR};
use core::arch::x86_64::*;

/// How `op(B)[l, j]` maps onto the `b` buffer.
#[derive(Copy, Clone, Debug)]
pub(crate) enum BLayout {
    /// `op(B)[l, j] = b[j*ldb + l]` — `B` stored `k×n` column-major
    /// (the packed-panel case has `ldb == k`).
    NoTrans {
        /// Leading dimension of `b`.
        ldb: usize,
    },
    /// `op(B)[l, j] = b[l*ldb + j]` — `B` stored `n×k` column-major,
    /// used as its transpose (the `L_{i,k}·L_{j,k}ᵀ` outer product).
    Trans {
        /// Leading dimension of `b`.
        ldb: usize,
    },
}

impl BLayout {
    /// Read `op(B)[l, j]`.
    ///
    /// # Safety
    /// `(l, j)` must satisfy the shape contract the caller asserted for
    /// `b` under this layout.
    #[inline(always)]
    unsafe fn at(self, b: *const f64, l: usize, j: usize) -> f64 {
        match self {
            // SAFETY: caller contract (doc above).
            BLayout::NoTrans { ldb } => unsafe { *b.add(j * ldb + l) },
            // SAFETY: caller contract (doc above).
            BLayout::Trans { ldb } => unsafe { *b.add(l * ldb + j) },
        }
    }
}

/// `C ← α·A·op(B) + β·C`, `A` untransposed `m×k` column-major.
///
/// # Safety
/// Requires AVX2+FMA (certified by `isa()`), and the usual LAPACK shape
/// contracts: `lda ≥ m`, `ldc ≥ m`, buffers sized for the described
/// shapes (asserted by the dispatching `gemm`).
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn gemm_f64(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: *const f64,
    lda: usize,
    b: *const f64,
    bl: BLayout,
    beta: f64,
    c: *mut f64,
    ldc: usize,
) {
    let blk = blocking();
    let mut jc = 0;
    while jc < n {
        let ncb = blk.nc.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kcb = blk.kc.min(k - pc);
            let first = pc == 0;
            let mut ic = 0;
            while ic < m {
                let mcb = blk.mc.min(m - ic);
                let m_main = mcb - mcb % MR;
                let mut jr = 0;
                while jr < ncb {
                    let nrb = NR.min(ncb - jr);
                    let j0 = jc + jr;
                    if nrb == NR {
                        let mut ir = 0;
                        while ir < m_main {
                            // SAFETY: (ic+ir .. +MR) ≤ m rows and
                            // (j0 .. +NR) ≤ n cols stay inside the
                            // caller's lda/ldc shape contracts.
                            unsafe {
                                tile_8x4(
                                    kcb,
                                    a.add(pc * lda + ic + ir),
                                    lda,
                                    b,
                                    bl,
                                    pc,
                                    j0,
                                    alpha,
                                    first,
                                    beta,
                                    c.add(j0 * ldc + ic + ir),
                                    ldc,
                                );
                            }
                            ir += MR;
                        }
                    }
                    let (mt, it0) = if nrb == NR { (mcb - m_main, ic + m_main) } else { (mcb, ic) };
                    if mt > 0 {
                        // SAFETY: the ≤7-row / ≤3-col remainder stays
                        // inside the same shape contracts.
                        unsafe {
                            tile_edge(
                                mt,
                                nrb,
                                kcb,
                                a.add(pc * lda + it0),
                                lda,
                                b,
                                bl,
                                pc,
                                j0,
                                alpha,
                                first,
                                beta,
                                c.add(j0 * ldc + it0),
                                ldc,
                            );
                        }
                    }
                    jr += NR;
                }
                ic += mcb;
            }
            pc += kcb;
        }
        jc += ncb;
    }
}

/// The 8×4 register tile: `C_tile` lives in 8 `ymm` accumulators across
/// the whole `kk` loop; β is applied when `first` (chunk `pc == 0`).
///
/// # Safety
/// Caller guarantees AVX2+FMA, 8 rows × 4 columns of C at `(c, ldc)`,
/// `kk` columns of A at `(a, lda)`, and op(B) coverage of rows
/// `l0..l0+kk` × cols `j0..j0+4`.
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
#[inline]
unsafe fn tile_8x4(
    kk: usize,
    a: *const f64,
    lda: usize,
    b: *const f64,
    bl: BLayout,
    l0: usize,
    j0: usize,
    alpha: f64,
    first: bool,
    beta: f64,
    c: *mut f64,
    ldc: usize,
) {
    // SAFETY: (whole body) caller guarantees 8 rows and 4 columns of C
    // at (c, ldc), kk columns of A at (a, lda), and op(B) coverage of
    // rows l0..l0+kk × cols j0..j0+4.
    unsafe {
        let mut acc = [[_mm256_setzero_pd(); 2]; NR];
        for (jj, [lo, hi]) in acc.iter_mut().enumerate() {
            let cj = c.add(jj * ldc);
            if first {
                if beta == 0.0 {
                    // leave zeros: β=0 must not read (possibly garbage) C
                } else if beta == 1.0 {
                    *lo = _mm256_loadu_pd(cj);
                    *hi = _mm256_loadu_pd(cj.add(4));
                } else {
                    let vb = _mm256_set1_pd(beta);
                    *lo = _mm256_mul_pd(_mm256_loadu_pd(cj), vb);
                    *hi = _mm256_mul_pd(_mm256_loadu_pd(cj.add(4)), vb);
                }
            } else {
                *lo = _mm256_loadu_pd(cj);
                *hi = _mm256_loadu_pd(cj.add(4));
            }
        }
        for ll in 0..kk {
            let al = a.add(ll * lda);
            let a0 = _mm256_loadu_pd(al);
            let a1 = _mm256_loadu_pd(al.add(4));
            for (jj, [lo, hi]) in acc.iter_mut().enumerate() {
                let s = alpha * bl.at(b, l0 + ll, j0 + jj);
                let vs = _mm256_set1_pd(s);
                *lo = _mm256_fmadd_pd(a0, vs, *lo);
                *hi = _mm256_fmadd_pd(a1, vs, *hi);
            }
        }
        for (jj, &[lo, hi]) in acc.iter().enumerate() {
            let cj = c.add(jj * ldc);
            _mm256_storeu_pd(cj, lo);
            _mm256_storeu_pd(cj.add(4), hi);
        }
    }
}

/// Remainder tile (`mt ≤ 7` rows or `nt ≤ 3` columns): scalar loops with
/// the same association as [`tile_8x4`] (`mul_add` contracts to a
/// hardware FMA under the enabled feature).
///
/// # Safety
/// Caller guarantees AVX2+FMA, `mt` rows × `nt` cols of C at `(c, ldc)`,
/// `kk` columns of A at `(a, lda)`, and the matching op(B) region.
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
#[inline]
unsafe fn tile_edge(
    mt: usize,
    nt: usize,
    kk: usize,
    a: *const f64,
    lda: usize,
    b: *const f64,
    bl: BLayout,
    l0: usize,
    j0: usize,
    alpha: f64,
    first: bool,
    beta: f64,
    c: *mut f64,
    ldc: usize,
) {
    // SAFETY: (whole body) caller guarantees mt rows × nt cols of C,
    // kk columns of A, and the matching op(B) region.
    unsafe {
        for jj in 0..nt {
            let cj = c.add(jj * ldc);
            for ii in 0..mt {
                let cij = cj.add(ii);
                let mut x = if first {
                    if beta == 0.0 {
                        0.0
                    } else {
                        beta * *cij
                    }
                } else {
                    *cij
                };
                for ll in 0..kk {
                    let s = alpha * bl.at(b, l0 + ll, j0 + jj);
                    x = f64::mul_add(*a.add(ll * lda + ii), s, x);
                }
                *cij = x;
            }
        }
    }
}

/// Fused GEMM-scatter: `C[row_map[i], col_offset + j] += Σ_l s(l,j)·A[i,l]`
/// with `s(l, j) = α·op(B)[l, j]·d?[l]`, the full `k` reduction held in
/// the register tile and only the final tile scattered through
/// `row_map` — the direct-scatter pressure rung at SIMD speed with zero
/// scratch memory.
///
/// # Safety
/// Requires AVX2+FMA; `row_map.len() == m`, `d.len() ≥ k` when present,
/// and the destination must cover every `(row_map[i], col_offset + j)`
/// element under `ldc` (asserted by the dispatching update kernel).
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn update_scatter_f64(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: *const f64,
    lda: usize,
    b: *const f64,
    bl: BLayout,
    d: Option<*const f64>,
    c: *mut f64,
    ldc: usize,
    row_map: &[usize],
    col_offset: usize,
) {
    let m_main = m - m % MR;
    let mut j0 = 0;
    while j0 < n {
        let nt = NR.min(n - j0);
        if nt == NR {
            let mut i0 = 0;
            while i0 < m_main {
                // SAFETY: 8 rows at i0 and 4 cols at j0 are inside the
                // m×n update; the caller's contracts cover A/op(B)/d and
                // every scattered destination element.
                unsafe {
                    let mut acc = [[_mm256_setzero_pd(); 2]; NR];
                    for ll in 0..k {
                        let al = a.add(ll * lda + i0);
                        let a0 = _mm256_loadu_pd(al);
                        let a1 = _mm256_loadu_pd(al.add(4));
                        let dl = d.map_or(1.0, |d| *d.add(ll));
                        for (jj, [lo, hi]) in acc.iter_mut().enumerate() {
                            // Match the portable kernel's scaling order:
                            // (α·b) · d.
                            let s = match d {
                                Some(_) => (alpha * bl.at(b, ll, j0 + jj)) * dl,
                                None => alpha * bl.at(b, ll, j0 + jj),
                            };
                            let vs = _mm256_set1_pd(s);
                            *lo = _mm256_fmadd_pd(a0, vs, *lo);
                            *hi = _mm256_fmadd_pd(a1, vs, *hi);
                        }
                    }
                    let mut tile = [0.0f64; MR * NR];
                    for (jj, &[lo, hi]) in acc.iter().enumerate() {
                        _mm256_storeu_pd(tile.as_mut_ptr().add(jj * MR), lo);
                        _mm256_storeu_pd(tile.as_mut_ptr().add(jj * MR + 4), hi);
                    }
                    // BOUNDS: i0+ii < m == row_map.len(); jj*MR+ii < 32.
                    for jj in 0..NR {
                        let cj = c.add((col_offset + j0 + jj) * ldc);
                        for ii in 0..MR {
                            *cj.add(row_map[i0 + ii]) += tile[jj * MR + ii];
                        }
                    }
                }
                i0 += MR;
            }
        }
        // Remainder rows (nt == NR) or the whole narrow column block:
        // the portable per-`l` scatter loops, preserving its exact
        // association on the edge region.
        let (it0, mt) = if nt == NR { (m_main, m - m_main) } else { (0, m) };
        if mt > 0 {
            // SAFETY: same contracts as above, restricted to the edge.
            unsafe {
                for jj in 0..nt {
                    let cj = c.add((col_offset + j0 + jj) * ldc);
                    for ll in 0..k {
                        let mut s = alpha * bl.at(b, ll, j0 + jj);
                        if let Some(d) = d {
                            s *= *d.add(ll);
                        }
                        if s == 0.0 {
                            continue;
                        }
                        let al = a.add(ll * lda + it0);
                        // BOUNDS: it0+ii < m == row_map.len().
                        for ii in 0..mt {
                            *cj.add(row_map[it0 + ii]) =
                                f64::mul_add(*al.add(ii), s, *cj.add(row_map[it0 + ii]));
                        }
                    }
                }
            }
        }
        j0 += NR;
    }
}

/// `y += s·x` over equal-length slices, 4-wide FMA.
///
/// # Safety
/// Requires AVX2+FMA (certified by `isa()`).
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn axpy_f64(s: f64, x: &[f64], y: &mut [f64]) {
    let n = x.len().min(y.len());
    let vs = _mm256_set1_pd(s);
    let main = n - n % 4;
    let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
    let mut i = 0;
    while i < main {
        // SAFETY: i + 4 ≤ main ≤ both lengths.
        unsafe {
            let xv = _mm256_loadu_pd(xp.add(i));
            let yv = _mm256_loadu_pd(yp.add(i));
            _mm256_storeu_pd(yp.add(i), _mm256_fmadd_pd(xv, vs, yv));
        }
        i += 4;
    }
    while i < n {
        // SAFETY: i < n ≤ both lengths.
        unsafe { *yp.add(i) = f64::mul_add(*xp.add(i), s, *yp.add(i)) };
        i += 1;
    }
}

/// `x *= s`, 4-wide.
///
/// # Safety
/// Requires AVX2 (certified by `isa()`).
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn scale_f64(s: f64, x: &mut [f64]) {
    let n = x.len();
    let vs = _mm256_set1_pd(s);
    let main = n - n % 4;
    let xp = x.as_mut_ptr();
    let mut i = 0;
    while i < main {
        // SAFETY: i + 4 ≤ main ≤ x.len().
        unsafe { _mm256_storeu_pd(xp.add(i), _mm256_mul_pd(_mm256_loadu_pd(xp.add(i)), vs)) };
        i += 4;
    }
    while i < n {
        // SAFETY: i < n == x.len().
        unsafe { *xp.add(i) *= s };
        i += 1;
    }
}
