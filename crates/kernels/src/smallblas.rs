//! Naive reference implementations used by tests and as readable
//! specifications of what the optimized kernels compute.
//!
//! Everything here is a direct transcription of the textbook triple loop —
//! slow, obviously correct, and kept out of any hot path.

use crate::gemm::Trans;
use crate::scalar::Scalar;

/// Reference GEMM: `C ← α·op(A)·op(B) + β·C`, column-major.
#[allow(clippy::too_many_arguments)]
pub fn naive_gemm<T: Scalar>(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    let geta = |i: usize, l: usize| -> T {
        match transa {
            Trans::NoTrans => a[l * lda + i],
            Trans::Trans => a[i * lda + l],
            Trans::ConjTrans => a[i * lda + l].conj(),
        }
    };
    let getb = |l: usize, j: usize| -> T {
        match transb {
            Trans::NoTrans => b[j * ldb + l],
            Trans::Trans => b[l * ldb + j],
            Trans::ConjTrans => b[l * ldb + j].conj(),
        }
    };
    for j in 0..n {
        for i in 0..m {
            let mut acc = T::zero();
            for l in 0..k {
                acc += geta(i, l) * getb(l, j);
            }
            let cv = &mut c[j * ldc + i];
            *cv = alpha * acc + beta * *cv;
        }
    }
}

/// Reference dense matrix-vector product `y ← A x` for an `m×n` column-major
/// `A`.
pub fn naive_gemv<T: Scalar>(m: usize, n: usize, a: &[T], lda: usize, x: &[T], y: &mut [T]) {
    for yi in y.iter_mut() {
        *yi = T::zero();
    }
    for (j, &xj) in x.iter().enumerate().take(n) {
        for i in 0..m {
            y[i] += a[j * lda + i] * xj;
        }
    }
}

/// Reference lower-triangular solve `L x = b` (non-unit diagonal),
/// overwriting `b` with the solution. `L` is `n×n` column-major.
pub fn naive_lower_solve<T: Scalar>(n: usize, l: &[T], ldl: usize, b: &mut [T]) {
    for j in 0..n {
        let xj = b[j] / l[j * ldl + j];
        b[j] = xj;
        for i in (j + 1)..n {
            let lij = l[j * ldl + i];
            b[i] -= lij * xj;
        }
    }
}

/// Dense symmetric reconstruction `L·Lᵀ` (lower `L`, non-unit diagonal) into
/// a full `n×n` matrix; used to validate `potrf`.
pub fn reconstruct_llt<T: Scalar>(n: usize, l: &[T], ldl: usize) -> Vec<T> {
    let mut out = vec![T::zero(); n * n];
    for j in 0..n {
        for i in 0..n {
            let mut acc = T::zero();
            for k in 0..=i.min(j) {
                acc += l[k * ldl + i] * l[k * ldl + j];
            }
            out[j * n + i] = acc;
        }
    }
    out
}

/// Dense reconstruction `L·D·Lᵀ` (unit lower `L`, diagonal `d`); used to
/// validate `ldlt`.
pub fn reconstruct_ldlt<T: Scalar>(n: usize, l: &[T], ldl: usize, d: &[T]) -> Vec<T> {
    let mut out = vec![T::zero(); n * n];
    let lv = |i: usize, k: usize| -> T {
        match i.cmp(&k) {
            core::cmp::Ordering::Greater => l[k * ldl + i],
            core::cmp::Ordering::Equal => T::one(),
            core::cmp::Ordering::Less => T::zero(),
        }
    };
    for j in 0..n {
        for i in 0..n {
            let mut acc = T::zero();
            for (k, &dk) in d.iter().enumerate().take(n) {
                acc += lv(i, k) * dk * lv(j, k);
            }
            out[j * n + i] = acc;
        }
    }
    out
}

/// Dense reconstruction `L·U` from a packed LU factorization (unit lower in
/// the strict lower part, `U` on and above the diagonal); validates `getrf`.
pub fn reconstruct_lu<T: Scalar>(n: usize, lu: &[T], ldlu: usize) -> Vec<T> {
    let mut out = vec![T::zero(); n * n];
    let lv = |i: usize, k: usize| -> T {
        match i.cmp(&k) {
            core::cmp::Ordering::Greater => lu[k * ldlu + i],
            core::cmp::Ordering::Equal => T::one(),
            core::cmp::Ordering::Less => T::zero(),
        }
    };
    let uv = |k: usize, j: usize| -> T {
        if k <= j {
            lu[j * ldlu + k]
        } else {
            T::zero()
        }
    };
    for j in 0..n {
        for i in 0..n {
            let mut acc = T::zero();
            for k in 0..n {
                acc += lv(i, k) * uv(k, j);
            }
            out[j * n + i] = acc;
        }
    }
    out
}
