//! Scalar abstraction over the arithmetic kinds of the paper's test set.
//!
//! The paper's nine matrices mix "D" (real double) and "Z" (double complex)
//! problems (Table I). Every numeric kernel and the solver itself is generic
//! over [`Scalar`], which is implemented for [`f64`] and the in-crate
//! complex type [`C64`] (implemented here rather than pulling an external
//! complex crate, per the project dependency policy).

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A field scalar usable by the factorization kernels.
///
/// The trait deliberately exposes only what a static-pivoting supernodal
/// factorization needs: ring/field operations, conjugation, a modulus for
/// pivot magnitude checks, and flop-accounting constants matching the
/// conventional "1 complex multiply = 6 flops, 1 complex add = 2 flops"
/// counting used when papers report GFlop/s for Z problems.
pub trait Scalar:
    Copy
    + Send
    + Sync
    + PartialEq
    + fmt::Debug
    + fmt::Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Default
    + 'static
{
    /// `true` for complex arithmetic ("Z"), `false` for real ("D").
    const IS_COMPLEX: bool;
    /// One-letter LAPACK-style precision tag: `"d"` or `"z"`.
    const PREC: &'static str;
    /// Flops charged per multiply (1 real, 6 complex).
    const FLOPS_MUL: f64;
    /// Flops charged per add (1 real, 2 complex).
    const FLOPS_ADD: f64;

    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Embed a real number.
    fn from_f64(x: f64) -> Self;
    /// Build a scalar from a `(re, im)` pair; the imaginary part is ignored
    /// for real scalars.
    fn from_parts(re: f64, im: f64) -> Self;
    /// Real part.
    fn re(self) -> f64;
    /// Imaginary part (0 for real scalars).
    fn im(self) -> f64;
    /// Complex conjugate (identity for real scalars).
    fn conj(self) -> Self;
    /// Modulus |x| (absolute value for real scalars).
    fn modulus(self) -> f64;
    /// Multiplicative inverse.
    fn inv(self) -> Self;
    /// Scale by a real factor.
    fn scale(self, s: f64) -> Self;
    /// Square root (principal branch for complex).
    fn sqrt(self) -> Self;
    /// True when all components are finite.
    fn is_finite(self) -> bool;
}

impl Scalar for f64 {
    const IS_COMPLEX: bool = false;
    const PREC: &'static str = "d";
    const FLOPS_MUL: f64 = 1.0;
    const FLOPS_ADD: f64 = 1.0;

    #[inline(always)]
    fn zero() -> Self {
        0.0
    }
    #[inline(always)]
    fn one() -> Self {
        1.0
    }
    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline(always)]
    fn from_parts(re: f64, _im: f64) -> Self {
        re
    }
    #[inline(always)]
    fn re(self) -> f64 {
        self
    }
    #[inline(always)]
    fn im(self) -> f64 {
        0.0
    }
    #[inline(always)]
    fn conj(self) -> Self {
        self
    }
    #[inline(always)]
    fn modulus(self) -> f64 {
        self.abs()
    }
    #[inline(always)]
    fn inv(self) -> Self {
        1.0 / self
    }
    #[inline(always)]
    fn scale(self, s: f64) -> Self {
        self * s
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

/// Double-precision complex number (the "Z" arithmetic of Table I).
///
/// Layout-compatible with the conventional `[re, im]` pair of C99 `double
/// complex` / Fortran `COMPLEX*16`.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
#[repr(C)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Create a complex number from its parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The imaginary unit `i`.
    pub const I: C64 = C64::new(0.0, 1.0);

    /// Squared modulus |z|².
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline(always)]
    fn add(self, o: C64) -> C64 {
        C64::new(self.re + o.re, self.im + o.im)
    }
}
impl Sub for C64 {
    type Output = C64;
    #[inline(always)]
    fn sub(self, o: C64) -> C64 {
        C64::new(self.re - o.re, self.im - o.im)
    }
}
impl Mul for C64 {
    type Output = C64;
    #[inline(always)]
    fn mul(self, o: C64) -> C64 {
        C64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}
impl Div for C64 {
    type Output = C64;
    #[inline(always)]
    fn div(self, o: C64) -> C64 {
        // Smith's algorithm avoids overflow for well-scaled operands and is
        // plenty for factorization pivots.
        if o.re.abs() >= o.im.abs() {
            let r = o.im / o.re;
            let d = o.re + o.im * r;
            C64::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = o.re / o.im;
            let d = o.re * r + o.im;
            C64::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}
impl Neg for C64 {
    type Output = C64;
    #[inline(always)]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}
impl AddAssign for C64 {
    #[inline(always)]
    fn add_assign(&mut self, o: C64) {
        self.re += o.re;
        self.im += o.im;
    }
}
impl SubAssign for C64 {
    #[inline(always)]
    fn sub_assign(&mut self, o: C64) {
        self.re -= o.re;
        self.im -= o.im;
    }
}
impl MulAssign for C64 {
    #[inline(always)]
    fn mul_assign(&mut self, o: C64) {
        *self = *self * o;
    }
}
impl DivAssign for C64 {
    #[inline(always)]
    fn div_assign(&mut self, o: C64) {
        *self = *self / o;
    }
}
impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::default(), |a, b| a + b)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Scalar for C64 {
    const IS_COMPLEX: bool = true;
    const PREC: &'static str = "z";
    const FLOPS_MUL: f64 = 6.0;
    const FLOPS_ADD: f64 = 2.0;

    #[inline(always)]
    fn zero() -> Self {
        C64::new(0.0, 0.0)
    }
    #[inline(always)]
    fn one() -> Self {
        C64::new(1.0, 0.0)
    }
    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        C64::new(x, 0.0)
    }
    #[inline(always)]
    fn from_parts(re: f64, im: f64) -> Self {
        C64::new(re, im)
    }
    #[inline(always)]
    fn re(self) -> f64 {
        self.re
    }
    #[inline(always)]
    fn im(self) -> f64 {
        self.im
    }
    #[inline(always)]
    fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }
    #[inline(always)]
    fn modulus(self) -> f64 {
        self.norm_sqr().sqrt()
    }
    #[inline(always)]
    fn inv(self) -> Self {
        C64::new(1.0, 0.0) / self
    }
    #[inline(always)]
    fn scale(self, s: f64) -> Self {
        C64::new(self.re * s, self.im * s)
    }
    fn sqrt(self) -> Self {
        // Principal square root via the half-angle identities; numerically
        // stable variant used by num-complex and libm.
        if self.re == 0.0 && self.im == 0.0 {
            return C64::new(0.0, 0.0);
        }
        let m = self.modulus();
        let re = ((m + self.re) * 0.5).sqrt();
        let im = ((m - self.re) * 0.5).sqrt();
        if self.im >= 0.0 {
            C64::new(re, im)
        } else {
            C64::new(re, -im)
        }
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

/// Flop count of an `m x n x k` GEMM (`2mnk` real-equivalent operations for
/// real scalars; complex counts each multiply as 6 and add as 2).
pub fn gemm_flops<T: Scalar>(m: usize, n: usize, k: usize) -> f64 {
    let muls = (m * n * k) as f64;
    let adds = (m * n * k) as f64;
    muls * T::FLOPS_MUL + adds * T::FLOPS_ADD
}

/// Flop count of a TRSM with an `n x n` triangle applied to `m` vectors.
pub fn trsm_flops<T: Scalar>(n: usize, m: usize) -> f64 {
    let ops = (n * n) as f64 * m as f64 / 2.0;
    ops * (T::FLOPS_MUL + T::FLOPS_ADD)
}

/// Flop count of an `n x n` Cholesky / LDLᵀ / LU diagonal-block
/// factorization (`n³/3` multiply-adds for Cholesky-like kernels, `2n³/3`
/// for LU).
pub fn facto_flops<T: Scalar>(n: usize, lu: bool) -> f64 {
    let n3 = (n as f64).powi(3);
    let muladds = if lu { 2.0 * n3 / 3.0 } else { n3 / 3.0 };
    muladds * (T::FLOPS_MUL + T::FLOPS_ADD) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c64_field_ops() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(-3.0, 0.5);
        assert_eq!(a + b, C64::new(-2.0, 2.5));
        assert_eq!(a - b, C64::new(4.0, 1.5));
        assert_eq!(a * b, C64::new(-3.0 - 1.0, 0.5 - 6.0));
        let q = a / b;
        let back = q * b;
        assert!((back - a).modulus() < 1e-14);
    }

    #[test]
    fn c64_inv_and_conj() {
        let a = C64::new(3.0, -4.0);
        assert!((a * a.inv() - C64::new(1.0, 0.0)).modulus() < 1e-15);
        assert_eq!(a.conj(), C64::new(3.0, 4.0));
        assert_eq!(a.modulus(), 5.0);
    }

    #[test]
    fn c64_sqrt_roundtrip() {
        for &(re, im) in &[(4.0, 0.0), (0.0, 2.0), (-1.0, 0.0), (3.0, -4.0), (-5.0, 12.0)] {
            let z = C64::new(re, im);
            let s = z.sqrt();
            assert!((s * s - z).modulus() < 1e-12, "sqrt({z}) = {s}");
            assert!(s.re >= 0.0, "principal branch");
        }
    }

    #[test]
    fn f64_scalar_impl() {
        assert_eq!(<f64 as Scalar>::PREC, "d");
        assert_eq!(2.0f64.conj(), 2.0);
        assert_eq!((-2.0f64).modulus(), 2.0);
        assert_eq!(4.0f64.inv(), 0.25);
        assert!(Scalar::is_finite(1.0f64));
        assert!(!Scalar::is_finite(f64::NAN));
    }

    #[test]
    fn flop_accounting() {
        // Real GEMM is the textbook 2mnk.
        assert_eq!(gemm_flops::<f64>(10, 20, 30), 2.0 * 6000.0);
        // Complex GEMM charges 8 flops per multiply-add pair.
        assert_eq!(gemm_flops::<C64>(10, 20, 30), 8.0 * 6000.0);
    }
}
