//! General matrix-matrix multiply (column-major).
//!
//! The update tasks of the supernodal factorization spend nearly all their
//! time here (`C ← βC + α·op(A)·op(B)`), so the `NoTrans × Trans` case —
//! the outer product `L_{i,k} · L_{j,k}ᵀ` of the paper's Figure 1 — gets a
//! cache-friendly axpy-based fast path. Two tiers serve it:
//!
//! * the portable blocked safe-Rust kernel ([`gemm_portable`]) — the
//!   baseline-target build that runs everywhere and is the reference the
//!   differential fuzz suite pins the SIMD tier against, and
//! * the AVX2+FMA register-tiled microkernel in [`crate::simd`], entered
//!   through a cached runtime dispatch when the host supports it, the
//!   element type is `f64`, and the shape is big enough to win.
//!
//! [`gemm`] is the dispatching front door; everything else in the solver
//! calls it and gets the fastest applicable tier.

use crate::scalar::Scalar;
use crate::simd;

/// Transposition selector for a GEMM operand.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    NoTrans,
    /// Use the transpose.
    Trans,
    /// Use the conjugate transpose.
    ConjTrans,
}

impl Trans {
    #[inline]
    fn apply<T: Scalar>(self, v: T) -> T {
        match self {
            Trans::ConjTrans => v.conj(),
            _ => v,
        }
    }
}

/// `C ← α·op(A)·op(B) + β·C` on column-major buffers.
///
/// * `m, n` — dimensions of `C`; `k` — inner dimension.
/// * `a` has logical shape `m×k` after `transa`, stored with leading
///   dimension `lda` (so untransposed `A` is `m×k`, transposed is `k×m`).
/// * Panics if `c` is too small for the described shape (checked before
///   any write — a release build must never slice-panic mid-update and
///   leave `C` half-mutated); the remaining contracts are debug-checked
///   on the portable tier and promoted to real asserts on the
///   `A`-untransposed arms, where the SIMD tier reads raw pointers.
#[allow(clippy::too_many_arguments)]
pub fn gemm<T: Scalar>(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    // HOT: shape guard, once per call, outside every loop — fails before
    // the first write instead of slice-panicking mid-update in release.
    assert!(
        ldc >= m && c.len() >= ldc * (n - 1) + m,
        "gemm: C buffer too small for m={m} n={n} ldc={ldc}"
    );
    if k == 0 || alpha == T::zero() {
        scale_c(m, n, beta, c, ldc);
        return;
    }
    if transa == Trans::NoTrans {
        let b_trans = transb != Trans::NoTrans;
        // HOT: the SIMD tier reads A/B through raw pointers, so its shape
        // contracts must hold in release builds too. Once per call.
        assert!(
            lda >= m && a.len() >= lda * (k - 1) + m,
            "gemm: A buffer too small for m={m} k={k} lda={lda}"
        );
        assert!(
            if b_trans {
                ldb >= n && b.len() >= ldb * (k - 1) + n
            } else {
                ldb >= k && b.len() >= ldb * (n - 1) + k
            },
            "gemm: B buffer too small for n={n} k={k} ldb={ldb}"
        );
        if simd::try_gemm_a_notrans(b_trans, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc) {
            return;
        }
    }
    gemm_body(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

/// The portable blocked kernel with no SIMD dispatch — identical argument
/// contract to [`gemm`]. This is the scalar reference of the differential
/// fuzz suite and the guaranteed-reproducible tier of the forced-scalar
/// (`--no-default-features`) build.
#[allow(clippy::too_many_arguments)]
pub fn gemm_portable<T: Scalar>(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(
        ldc >= m && c.len() >= ldc * (n - 1) + m,
        "gemm: C buffer too small for m={m} n={n} ldc={ldc}"
    );
    if k == 0 || alpha == T::zero() {
        scale_c(m, n, beta, c, ldc);
        return;
    }
    gemm_body(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

/// Shared portable body of [`gemm`] / [`gemm_portable`]; callers have
/// handled the degenerate shapes and the `C` contract.
#[allow(clippy::too_many_arguments)]
fn gemm_body<T: Scalar>(
    transa: Trans,
    transb: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    match (transa, transb) {
        (Trans::NoTrans, Trans::NoTrans) => {
            debug_assert!(lda >= m && a.len() >= lda * (k - 1) + m);
            debug_assert!(ldb >= k && b.len() >= ldb * (n - 1) + k);
            // op(B)[l, j] = B[l, j] stored at b[j*ldb + l].
            // BOUNDS: l < k, j < n, and the ldb shape contract above.
            gemm_a_notrans(m, n, k, alpha, a, lda, beta, c, ldc, |l, j| b[j * ldb + l]);
        }
        (Trans::NoTrans, tb) => {
            debug_assert!(lda >= m && a.len() >= lda * (k - 1) + m);
            debug_assert!(ldb >= n && b.len() >= ldb * (k - 1) + n);
            // op(B)[l, j] = B[j, l](^conj) stored at b[l*ldb + j].
            // BOUNDS: l < k, j < n, and the ldb shape contract above.
            gemm_a_notrans(m, n, k, alpha, a, lda, beta, c, ldc, |l, j| {
                tb.apply(b[l * ldb + j])
            });
        }
        (ta, Trans::NoTrans) => {
            // C[i,j] = alpha * dot(op(A)[i,:], B[:,j]) + beta C[i,j]
            debug_assert!(lda >= k && a.len() >= lda * (m - 1) + k);
            debug_assert!(ldb >= k && b.len() >= ldb * (n - 1) + k);
            // BOUNDS: all slices below stay inside the lda/ldb/ldc shape
            // contracts asserted above (i < m, j < n by loop bounds).
            for j in 0..n {
                let bj = &b[j * ldb..j * ldb + k];
                let cj = &mut c[j * ldc..j * ldc + m];
                for (i, cij) in cj.iter_mut().enumerate() {
                    let ai = &a[i * lda..i * lda + k];
                    let mut acc = T::zero();
                    for (&av, &bv) in ai.iter().zip(bj.iter()) {
                        acc += ta.apply(av) * bv;
                    }
                    *cij = alpha * acc + beta * *cij;
                }
            }
        }
        (ta, tb) => {
            // Fully transposed case: rarely used, straightforward loops.
            debug_assert!(lda >= k && a.len() >= lda * (m - 1) + k);
            debug_assert!(ldb >= n && b.len() >= ldb * (k - 1) + n);
            // BOUNDS: i < m, l < k, j < n against the shape contracts
            // asserted above.
            for j in 0..n {
                let cj = &mut c[j * ldc..j * ldc + m];
                for (i, cij) in cj.iter_mut().enumerate() {
                    let mut acc = T::zero();
                    for l in 0..k {
                        acc += ta.apply(a[i * lda + l]) * tb.apply(b[l * ldb + j]);
                    }
                    *cij = alpha * acc + beta * *cij;
                }
            }
        }
    }
}

/// Shared fast path for `A` untransposed: `C[:, j] += α Σ_l A[:, l]·op(B)[l, j]`
/// with `op(B)` supplied by an indexing closure. Columns of `C` are
/// processed four at a time so each `A` column is streamed once per four
/// outputs — the register/cache blocking that matters for the tall-skinny
/// panels of the supernodal update.
#[allow(clippy::too_many_arguments)]
#[inline]
fn gemm_a_notrans<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
    bval: impl Fn(usize, usize) -> T,
) {
    scale_c(m, n, beta, c, ldc);
    let mut j = 0;
    // 4-wide blocks.
    // BOUNDS: j+4 <= n and the caller's ldc >= m contract keep every
    // column slice inside c; al/c0..c3 all have length m.
    while j + 4 <= n {
        let (c0_block, rest) = c[j * ldc..].split_at_mut(ldc);
        let (c1_block, rest) = rest.split_at_mut(ldc);
        let (c2_block, rest) = rest.split_at_mut(ldc);
        let c0 = &mut c0_block[..m];
        let c1 = &mut c1_block[..m];
        let c2 = &mut c2_block[..m];
        let c3 = &mut rest[..m];
        // BOUNDS: l < k against the caller's lda shape contract; i < m
        // by al's length, matching c0..c3.
        for l in 0..k {
            let s0 = alpha * bval(l, j);
            let s1 = alpha * bval(l, j + 1);
            let s2 = alpha * bval(l, j + 2);
            let s3 = alpha * bval(l, j + 3);
            let al = &a[l * lda..l * lda + m];
            if s0 == T::zero() && s1 == T::zero() && s2 == T::zero() && s3 == T::zero() {
                continue;
            }
            // BOUNDS: i < m = al.len() = c0..c3 lengths.
            for (i, &av) in al.iter().enumerate() {
                c0[i] += s0 * av;
                c1[i] += s1 * av;
                c2[i] += s2 * av;
                c3[i] += s3 * av;
            }
        }
        j += 4;
    }
    // Remainder columns.
    // BOUNDS: j < n, l < k against the caller's lda/ldc contracts.
    while j < n {
        let cj = &mut c[j * ldc..j * ldc + m];
        for l in 0..k {
            let s = alpha * bval(l, j);
            if s == T::zero() {
                continue;
            }
            axpy(s, &a[l * lda..l * lda + m], cj);
        }
        j += 1;
    }
}

#[inline]
fn scale_c<T: Scalar>(m: usize, n: usize, beta: T, c: &mut [T], ldc: usize) {
    // BOUNDS: j < n and gemm's ldc >= m / c-length contract.
    for j in 0..n {
        scale_col(beta, &mut c[j * ldc..j * ldc + m]);
    }
}

#[inline]
fn scale_col<T: Scalar>(beta: T, col: &mut [T]) {
    if beta == T::one() {
        return;
    }
    if beta == T::zero() {
        for v in col {
            *v = T::zero();
        }
    } else {
        for v in col {
            *v *= beta;
        }
    }
}

/// `y += s * x` over equal-length slices.
#[inline]
pub(crate) fn axpy<T: Scalar>(s: T, x: &[T], y: &mut [T]) {
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += s * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::C64;
    use crate::smallblas::naive_gemm;

    fn fill(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 / 500.0 - 1.0
            })
            .collect()
    }

    fn fill_c(n: usize, seed: u64) -> Vec<C64> {
        let re = fill(n, seed);
        let im = fill(n, seed.wrapping_add(7));
        re.into_iter().zip(im).map(|(r, i)| C64::new(r, i)).collect()
    }

    fn check_f64(ta: Trans, tb: Trans, m: usize, n: usize, k: usize) {
        let (ar, ac) = if ta == Trans::NoTrans { (m, k) } else { (k, m) };
        let (br, bc) = if tb == Trans::NoTrans { (k, n) } else { (n, k) };
        let a = fill(ar * ac, 1);
        let b = fill(br * bc, 2);
        let mut c = fill(m * n, 3);
        let mut cref = c.clone();
        gemm(ta, tb, m, n, k, 0.5, &a, ar, &b, br, -2.0, &mut c, m);
        naive_gemm(ta, tb, m, n, k, 0.5, &a, ar, &b, br, -2.0, &mut cref, m);
        for (x, y) in c.iter().zip(cref.iter()) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y} ({ta:?},{tb:?})");
        }
    }

    #[test]
    fn matches_naive_all_trans_combinations() {
        for &ta in &[Trans::NoTrans, Trans::Trans, Trans::ConjTrans] {
            for &tb in &[Trans::NoTrans, Trans::Trans, Trans::ConjTrans] {
                check_f64(ta, tb, 7, 5, 9);
                check_f64(ta, tb, 1, 1, 1);
                check_f64(ta, tb, 16, 3, 2);
            }
        }
    }

    #[test]
    fn complex_conjugate_transpose_differs_from_transpose() {
        let m = 4;
        let a = fill_c(m * m, 5);
        let b = fill_c(m * m, 6);
        let mut ct = vec![C64::new(0.0, 0.0); m * m];
        let mut ch = ct.clone();
        gemm(
            Trans::NoTrans,
            Trans::Trans,
            m,
            m,
            m,
            C64::new(1.0, 0.0),
            &a,
            m,
            &b,
            m,
            C64::new(0.0, 0.0),
            &mut ct,
            m,
        );
        gemm(
            Trans::NoTrans,
            Trans::ConjTrans,
            m,
            m,
            m,
            C64::new(1.0, 0.0),
            &a,
            m,
            &b,
            m,
            C64::new(0.0, 0.0),
            &mut ch,
            m,
        );
        assert!(ct.iter().zip(&ch).any(|(x, y)| (*x - *y).modulus() > 1e-9));
        // And both match the naive implementation.
        let mut r = vec![C64::new(0.0, 0.0); m * m];
        naive_gemm(
            Trans::NoTrans,
            Trans::ConjTrans,
            m,
            m,
            m,
            C64::new(1.0, 0.0),
            &a,
            m,
            &b,
            m,
            C64::new(0.0, 0.0),
            &mut r,
            m,
        );
        for (x, y) in ch.iter().zip(&r) {
            assert!((*x - *y).modulus() < 1e-12);
        }
    }

    #[test]
    fn beta_zero_overwrites_nan_free() {
        // beta = 0 must not propagate garbage from C.
        let a = vec![1.0f64; 4];
        let b = vec![1.0f64; 4];
        let mut c = vec![f64::NAN; 4];
        gemm(
            Trans::NoTrans,
            Trans::NoTrans,
            2,
            2,
            2,
            1.0,
            &a,
            2,
            &b,
            2,
            0.0,
            &mut c,
            2,
        );
        assert!(c.iter().all(|v| v.is_finite()));
        // k = 0 with beta = 0 zeroes C.
        let mut c2 = vec![f64::NAN; 4];
        gemm(
            Trans::NoTrans,
            Trans::NoTrans,
            2,
            2,
            0,
            1.0,
            &a,
            2,
            &b,
            2,
            0.0,
            &mut c2,
            2,
        );
        assert_eq!(c2, vec![0.0; 4]);
    }

    #[test]
    fn leading_dimension_strides_respected() {
        // Embed a 2x2 product inside larger buffers.
        let lda = 5;
        let ldb = 4;
        let ldc = 7;
        let mut a = vec![99.0; lda * 2];
        let mut b = vec![88.0; ldb * 2];
        let mut c = vec![7.0; ldc * 2];
        // A = [[1,3],[2,4]] col-major.
        a[0] = 1.0;
        a[1] = 2.0;
        a[lda] = 3.0;
        a[lda + 1] = 4.0;
        // B = I
        b[0] = 1.0;
        b[1] = 0.0;
        b[ldb] = 0.0;
        b[ldb + 1] = 1.0;
        gemm(
            Trans::NoTrans,
            Trans::NoTrans,
            2,
            2,
            2,
            1.0,
            &a,
            lda,
            &b,
            ldb,
            0.0,
            &mut c,
            ldc,
        );
        assert_eq!(&c[0..2], &[1.0, 2.0]);
        assert_eq!(&c[ldc..ldc + 2], &[3.0, 4.0]);
        // Padding untouched.
        assert_eq!(c[2], 7.0);
        assert_eq!(c[ldc + 2], 7.0);
    }
}
