//! Counting-allocator proof that the buffered update kernel runs
//! allocation-free once its caller-pooled workspace reaches the panel
//! high-water mark — the dynamic twin of the `lint-hot` static rule
//! that flagged the old per-call `vec![0; k*n]` D·Lᵀ staging buffer
//! (DESIGN.md §13).

use dagfact_kernels::update::{update_via_buffer, Scatter};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counts allocations only on threads that opted in via [`MEASURING`]
/// — libtest's harness threads allocate concurrently and would make a
/// global counter flaky.
struct Counting;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    static MEASURING: Cell<bool> = const { Cell::new(false) };
}

// SAFETY: pure pass-through to the System allocator; the only added
// behavior is a Relaxed counter bump and a const-initialized
// thread-local read (no allocation, so no reentrancy).
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if MEASURING.try_with(Cell::get).unwrap_or(false) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: same layout contract as the caller's, forwarded.
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr came from this allocator's alloc/realloc with
        // this layout, which forwarded to System.
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if MEASURING.try_with(Cell::get).unwrap_or(false) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: ptr/layout/new_size contract forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: Counting = Counting;

#[test]
fn warm_update_via_buffer_does_not_allocate() {
    let (m, n, k) = (48usize, 16usize, 16usize);
    let a1: Vec<f64> = (0..k * m).map(|i| (i % 13) as f64 * 0.25 - 1.0).collect();
    let a2: Vec<f64> = (0..k * n).map(|i| (i % 11) as f64 * 0.125 - 0.5).collect();
    let d: Vec<f64> = (0..k).map(|i| 1.0 + (i % 5) as f64).collect();
    let row_map: Vec<usize> = (0..m).map(|i| i + i / 4).collect();
    let ldc = row_map.last().map_or(m, |&r| r + 1);
    let mut c = vec![0.0f64; ldc * (n + 1)];
    let mut work: Vec<f64> = Vec::new();
    let scatter = Scatter {
        row_map: &row_map,
        col_offset: 1,
    };

    // Warmup: the grow-only workspace reaches the high-water mark
    // (m*n + k*n for the LDLᵀ variant) on the first call.
    update_via_buffer(
        m, n, k, -1.0, &a1, m, &a2, n,
        Some(&d), &mut work, &mut c, ldc, scatter,
    );
    assert_eq!(work.len(), m * n + k * n);

    let before = ALLOCS.load(Ordering::Relaxed);
    MEASURING.with(|m| m.set(true));
    for _ in 0..1_000 {
        // Alternate LDLᵀ (full scratch) and LLᵀ (m*n prefix only): the
        // smaller call must not shrink or churn the pooled buffer.
        update_via_buffer(
            m, n, k, -1.0, &a1, m, &a2, n,
            Some(&d), &mut work, &mut c, ldc, scatter,
        );
        update_via_buffer(
            m, n, k, -1.0, &a1, m, &a2, n,
            None, &mut work, &mut c, ldc, scatter,
        );
    }
    MEASURING.with(|m| m.set(false));
    let during = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(during, 0, "warm update_via_buffer allocated {during} times");
}
